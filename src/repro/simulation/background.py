"""Co-existing background traffic (the paper's conclusion scenario).

"When the flow co-exist with other traffic, the number of input traffic
at the end host is changed and the flows' average input rate may be
increased or decreased for the changed traffic load. ... the same
process of adaptive control algorithm can be implemented to control the
traffic and its co-existed flows when the traffic priority is ignored."

:func:`simulate_host_with_background` realises that setting: the K
group flows pass their (adaptively chosen) regulators while additional
*background* flows enter the multiplexer unregulated.  The effective
capacity left for the groups shrinks by the background's sustained
rate, so the adaptive controller is handed the *residual* capacity --
exactly the paper's "average input rate may be increased ... for the
changed traffic load" adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.simulation.flow import PacketTrace
from repro.simulation.fluid import (
    _adversarial_worst,
    _default_drain_margin,
    _regulator_stage,
    fluid_next_empty,
)
from repro.utils.validation import check_positive

__all__ = ["BackgroundResult", "simulate_host_with_background"]


@dataclass(frozen=True)
class BackgroundResult:
    """Outcome of a host simulation with co-existing background traffic."""

    mode: str
    worst_case_delay: float          #: worst over the regulated group flows
    per_flow_worst: tuple[float, ...]
    background_rate: float
    residual_capacity: float


def simulate_host_with_background(
    traces: Sequence[PacketTrace],
    envelopes: Sequence[ArrivalEnvelope],
    background_traces: Sequence[PacketTrace],
    background_rates: Sequence[float],
    *,
    mode: str = "adaptive",
    capacity: float = 1.0,
    dt: float = 1e-3,
    horizon: Optional[float] = None,
) -> BackgroundResult:
    """Group flows through regulators; background straight into the MUX.

    Parameters
    ----------
    traces, envelopes:
        The K group flows (as in
        :func:`repro.simulation.fluid.simulate_fluid_host`).
    background_traces, background_rates:
        Unregulated co-existing flows and their sustained rates; the
        adaptive controller sees only the residual capacity
        ``C - sum(background_rates)``.
    mode:
        ``"adaptive"`` (the paper's algorithm on the residual capacity)
        or an explicit regulator family.

    Returns
    -------
    BackgroundResult
        Adversarial (general-MUX) worst-case delays of the group flows;
        background flows are load, not measurement targets.
    """
    check_positive(capacity, "capacity")
    if len(traces) != len(envelopes):
        raise ValueError("traces and envelopes must align")
    if len(background_traces) != len(background_rates):
        raise ValueError("background traces and rates must align")
    bg_rate = float(sum(background_rates))
    residual = capacity - bg_rate
    if residual <= 0:
        raise ValueError(
            f"background rate {bg_rate} saturates the capacity {capacity}"
        )
    if horizon is None:
        horizon = max(
            float(tr.times[-1])
            for tr in [*traces, *background_traces] if len(tr)
        ) + dt
    margin = _default_drain_margin(envelopes, residual)
    total = horizon + margin
    n_bins = int(np.ceil(total / dt))
    t_grid = dt * np.arange(n_bins + 1)

    def cum(tr: PacketTrace) -> np.ndarray:
        return np.concatenate(
            ([0.0], np.cumsum(tr.restrict(horizon).binned_arrivals(dt, total)))
        )

    group_arr = [cum(tr) for tr in traces]
    bg_arr = [cum(tr) for tr in background_traces]
    # The regulators are sized against the residual capacity: the
    # controller normalises rho by what is actually available.
    eff_mode, shaped = _regulator_stage(
        group_arr, t_grid, envelopes, mode, residual, 0.0
    )
    agg = np.sum(shaped + bg_arr, axis=0) if bg_arr else np.sum(shaped, axis=0)
    next_empty = fluid_next_empty(t_grid, agg, capacity)
    per_flow = tuple(
        _adversarial_worst(t_grid, group_arr[f], shaped[f], next_empty)
        for f in range(len(traces))
    )
    return BackgroundResult(
        mode=eff_mode,
        worst_case_delay=max(per_flow),
        per_flow_worst=per_flow,
        background_rate=bg_rate,
        residual_capacity=residual,
    )
