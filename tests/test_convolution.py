"""Min-plus algebra vs the closed forms of the service module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus.convolution import (
    backlog_bound_curves,
    delay_bound_curves,
    min_plus_convolve,
    min_plus_deconvolve,
)
from repro.calculus.envelope import ArrivalEnvelope
from repro.calculus.service import (
    LatencyRateServer,
    backlog_bound,
    delay_bound,
    output_envelope,
)
from repro.utils.piecewise import PiecewiseLinearCurve as PLC

HORIZON = 8.0
N = 512
GRID = HORIZON / N


class TestConvolve:
    def test_latency_rate_concatenation_matches_closed_form(self):
        """beta1 (*) beta2 = beta_{min(R), T1+T2} (tested on the grid)."""
        a = LatencyRateServer(rate=2.0, latency=0.5)
        b = LatencyRateServer(rate=1.0, latency=0.25)
        conv = min_plus_convolve(
            a.as_curve(HORIZON), b.as_curve(HORIZON), HORIZON, N
        )
        closed = a.concatenate(b).as_curve(HORIZON)
        t = np.linspace(0, HORIZON * 0.5, 40)  # stay well inside the domain
        assert np.allclose(conv.evaluate(t), closed.evaluate(t), atol=3 * GRID)

    def test_convolution_with_zero_latency_identity(self):
        """beta_{inf-ish, 0} acts as (near) identity on a curve."""
        f = PLC.from_segments(0.0, 0.0, [2.0, 6.0], [1.0, 0.25])
        ident = LatencyRateServer(rate=1e6).as_curve(HORIZON)
        conv = min_plus_convolve(f, ident, HORIZON, N)
        t = np.linspace(0, HORIZON * 0.5, 20)
        assert np.allclose(conv.evaluate(t), f.evaluate(t), atol=3 * GRID * 1e0)

    def test_commutativity(self):
        f = LatencyRateServer(rate=1.5, latency=0.3).as_curve(HORIZON)
        g = LatencyRateServer(rate=0.8, latency=0.6).as_curve(HORIZON)
        t = np.linspace(0, HORIZON * 0.5, 25)
        fg = min_plus_convolve(f, g, HORIZON, N).evaluate(t)
        gf = min_plus_convolve(g, f, HORIZON, N).evaluate(t)
        assert np.allclose(fg, gf, atol=1e-9)


class TestDeconvolve:
    def test_output_envelope_matches_closed_form(self):
        """alpha (/) beta for affine alpha and latency-rate beta gives
        (sigma + rho T, rho) -- the service-module closed form."""
        env = ArrivalEnvelope(0.5, 0.4)
        srv = LatencyRateServer(rate=1.0, latency=0.5)
        dec = min_plus_deconvolve(
            env.as_curve(2 * HORIZON), srv.as_curve(2 * HORIZON), HORIZON, N
        )
        closed = output_envelope(env, srv)
        t = np.linspace(0.0, HORIZON * 0.4, 30)
        expected = closed.sigma + closed.rho * t
        assert np.allclose(dec.evaluate(t), expected, atol=5 * GRID)


class TestBoundsViaCurves:
    @given(
        sigma=st.floats(min_value=0.05, max_value=2.0),
        rho=st.floats(min_value=0.05, max_value=0.8),
        rate=st.floats(min_value=0.9, max_value=3.0),
        latency=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_hdev_vdev_match_closed_forms(self, sigma, rho, rate, latency):
        env = ArrivalEnvelope(sigma, rho)
        srv = LatencyRateServer(rate=rate, latency=latency)
        horizon = 20.0 * max(1.0, sigma)
        alpha = env.as_curve(horizon)
        beta = srv.as_curve(horizon)
        d = delay_bound_curves(alpha, beta)
        b = backlog_bound_curves(alpha, beta)
        assert d == pytest.approx(delay_bound(env, srv), rel=1e-6, abs=1e-9)
        assert b == pytest.approx(backlog_bound(env, srv), rel=1e-6, abs=1e-9)


class TestValidation:
    def test_bad_grid_rejected(self):
        f = PLC([0, 1], [0, 1])
        with pytest.raises(ValueError):
            min_plus_convolve(f, f, 1.0, 0)
        with pytest.raises(ValueError):
            min_plus_convolve(f, f, -1.0, 16)
