"""Primed fast-path benchmarks (the PR-5 tentpole numbers).

PR 3 made the vacation host cheap; PR 5 makes the *rest* of the DES
hot paths array-first: the sigma-rho host collapses into closed-form
token-bucket kernels, chain hop 0 resolves without an event loop, and
whole-tree replication commits one fanout event per busy period per
child with all cross traffic folded into the MUXes as zero-event
background trains.  These benchmarks measure exactly those cells and
emit the machine-readable ``BENCH_pr5.json`` trajectory point at the
repo root, alongside the PR-3/PR-4 files.

Floors (generous headroom under observed numbers so CI noise does not
flake; observed on the 1-core reference container: ~8-9x primed
sigma-rho host over the evented batched path, ~6-7x whole tree at 16
members and ~10-11x at 64 members over legacy):

* primed sigma-rho host >= 5x over the evented batched path;
* whole tree (16 members) >= 3x over legacy;
* whole tree (64 members) >= 3x over legacy.

The parallel-campaign section records ``cpu_count`` next to its
speedup and asserts the floor only on >= 4 cores (process parallelism
cannot win on fewer; the number is recorded as-is there -- see the
``context`` block every trajectory file carries).
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from benchmarks.conftest import PARALLEL_JOBS, run_once
from repro.calculus.envelope import ArrivalEnvelope
from repro.runtime import CellCostModel, ProcessExecutor
from repro.scenarios import generate_scenarios, run_batch
from repro.simulation.flow import VBRVideoSource
from repro.simulation.host_sim import simulate_regulated_host
from repro.simulation.tree_sim import simulate_multicast_tree

#: Asserted floor: primed sigma-rho host vs the evented batched path.
SIGMA_RHO_PRIMED_FLOOR = 5.0
#: Asserted floor: whole-tree busy-period fanout vs the legacy engine.
TREE_SPEEDUP_FLOOR = 3.0
#: The parallel-campaign job count comes from benchmarks.conftest
#: (PARALLEL_JOBS): one constant drives the worker count, the floor
#: skip rule, and the context block's parallel_floors_asserted flag.


def _best_of(n: int, fn, *args, **kwargs):
    """(best wall seconds, last result) over ``n`` runs."""
    best = float("inf")
    result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def sigma_rho_workload():
    rho = 0.3
    trace = VBRVideoSource(rho).generate(10.0, rng=1).fragment(0.002)
    envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * 3
    return [trace] * 3, envs


def test_sigma_rho_host_primed_speedup(benchmark, bench_pr5, artifact_report,
                                       sigma_rho_workload):
    """The primed token-bucket host: closed-form departures + one
    merged adversarial MUX pass, no event loop at all."""
    traces, envs = sigma_rho_workload
    kwargs = dict(mode="sigma-rho", discipline="adversarial")
    t_evented, evented = _best_of(
        3, simulate_regulated_host, traces, envs, engine="evented", **kwargs
    )
    t_legacy, legacy = _best_of(
        3, simulate_regulated_host, traces, envs, engine="legacy", **kwargs
    )
    primed = run_once(
        benchmark, simulate_regulated_host, traces, envs,
        engine="batched", **kwargs,
    )
    t_primed, _ = _best_of(
        3, simulate_regulated_host, traces, envs, engine="batched", **kwargs
    )
    # sigma-rho adversarial cells are in the bit-identical class.
    assert primed.worst_case_delay == evented.worst_case_delay
    assert primed.worst_case_delay == legacy.worst_case_delay
    packets = sum(len(tr) for tr in traces)
    speedup = t_evented / t_primed
    bench_pr5["sigma_rho_host"] = {
        "packets": packets,
        "evented_seconds": round(t_evented, 5),
        "legacy_seconds": round(t_legacy, 5),
        "primed_seconds": round(t_primed, 5),
        "speedup_vs_evented_x": round(speedup, 2),
        "speedup_vs_legacy_x": round(t_legacy / t_primed, 2),
        "primed_packets_per_sec": round(packets / t_primed),
    }
    benchmark.extra_info.update(bench_pr5["sigma_rho_host"])
    artifact_report.append(
        "== Primed DES: sigma-rho host ==\n"
        f"packets: {packets}\n"
        f"legacy:  {t_legacy * 1e3:.1f} ms\n"
        f"evented: {t_evented * 1e3:.1f} ms\n"
        f"primed:  {t_primed * 1e3:.1f} ms "
        f"({packets / t_primed / 1e3:.0f}k packets/s)\n"
        f"speedup: {speedup:.1f}x vs evented, "
        f"{t_legacy / t_primed:.1f}x vs legacy"
    )
    assert speedup >= SIGMA_RHO_PRIMED_FLOOR, (
        f"primed sigma-rho host only {speedup:.2f}x over the evented path"
    )


def _tree_fixture(members: int, horizon: float):
    from repro.overlay.groups import MultiGroupNetwork
    from repro.topology.attach import attach_hosts
    from repro.topology.transit_stub import transit_stub_backbone

    g = transit_stub_backbone(3, 2, 3, rng=1)
    net = attach_hosts(g, members, rng=2)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=3)
    tree = mgn.build_tree(0, "dsct", rng=4)
    traces = [
        VBRVideoSource(0.25).generate(horizon, rng=i).fragment(0.002)
        for i in range(3)
    ]
    envs = [
        ArrivalEnvelope(max(t.empirical_sigma(0.25), 1e-6), 0.25)
        for t in traces
    ]
    return ([tree] * 3, 0, traces, envs, mgn.latency), tree.size


@pytest.mark.parametrize("members,horizon,rounds", [(16, 1.5, 3), (64, 1.5, 2)])
def test_tree_busy_period_fanout_speedup(bench_pr5, artifact_report,
                                         members, horizon, rounds):
    """Whole-tree DES with busy-period replication and background-folded
    cross traffic, against the legacy per-packet chain."""
    args, size = _tree_fixture(members, horizon)
    kwargs = dict(mode="sigma-rho", discipline="adversarial")
    t_legacy, legacy = _best_of(
        rounds, simulate_multicast_tree, *args, engine="legacy", **kwargs
    )
    t_batched, batched = _best_of(
        rounds, simulate_multicast_tree, *args, engine="batched", **kwargs
    )
    for host, worst in batched.per_receiver_worst.items():
        assert worst <= legacy.per_receiver_worst[host] + 1e-15
    speedup = t_legacy / t_batched
    bench_pr5[f"tree_des_{members}"] = {
        "members": size,
        "legacy_seconds": round(t_legacy, 5),
        "batched_seconds": round(t_batched, 5),
        "speedup_x": round(speedup, 2),
        "legacy_events": legacy.events,
        "batched_events": batched.events,
    }
    artifact_report.append(
        f"== Primed DES: whole tree ({size} members) ==\n"
        f"legacy:  {t_legacy * 1e3:.1f} ms ({legacy.events} events)\n"
        f"batched: {t_batched * 1e3:.1f} ms ({batched.events} events)\n"
        f"speedup: {speedup:.2f}x"
    )
    assert speedup >= TREE_SPEEDUP_FLOOR, (
        f"{size}-member tree batched engine only {speedup:.2f}x over legacy"
    )


def _des_forced_matrix(count: int):
    """Generated host/chain cells forced onto the DES backend; the
    default adversarial discipline routes them to the primed paths."""
    cells = []
    for sc in generate_scenarios(count * 2, seed=11, horizon=0.8):
        if sc.topology == "tree":
            continue
        cells.append(
            dataclasses.replace(sc, backend="des", mode="sigma-rho")
        )
        if len(cells) == count:
            break
    return cells


def test_primed_campaign_cells_per_sec(bench_pr5, artifact_report):
    """DES-forced campaign throughput on the primed paths, plus the
    cost-scheduled parallel speedup with its cpu_count context."""
    cells = _des_forced_matrix(48)
    t0 = time.perf_counter()
    serial = run_batch(cells)
    serial_elapsed = time.perf_counter() - t0
    assert not serial.violations
    jobs = PARALLEL_JOBS
    cores = os.cpu_count() or 1
    t0 = time.perf_counter()
    parallel = run_batch(
        cells,
        executor=ProcessExecutor(jobs=jobs),
        cost_model=CellCostModel(),
    )
    parallel_elapsed = time.perf_counter() - t0
    assert not parallel.violations
    assert [o.measured for o in parallel.outcomes] == [
        o.measured for o in serial.outcomes
    ]
    speedup = serial_elapsed / parallel_elapsed
    bench_pr5["des_campaign"] = {
        "cells": len(cells),
        "serial_seconds": round(serial_elapsed, 3),
        "serial_cells_per_sec": round(serial.scenarios_per_sec, 1),
        "parallel_jobs": jobs,
        "parallel_seconds": round(parallel_elapsed, 3),
        "parallel_cells_per_sec": round(parallel.scenarios_per_sec, 1),
        "parallel_speedup_x": round(speedup, 2),
        "cpu_count": cores,
        "floor_asserted": cores >= jobs,
    }
    artifact_report.append(
        "== DES-forced campaign (48 cells, primed paths) ==\n"
        f"serial:   {serial.scenarios_per_sec:.1f} cells/s "
        f"({serial_elapsed:.2f}s)\n"
        f"parallel: {parallel.scenarios_per_sec:.1f} cells/s "
        f"({parallel_elapsed:.2f}s, {jobs} jobs, {cores} cores)\n"
        f"speedup:  {speedup:.2f}x"
        + ("" if cores >= jobs else "  (floor not asserted: too few cores)")
    )
    if cores >= jobs:
        assert speedup >= 1.3, (
            f"cost-scheduled {jobs}-job campaign only {speedup:.2f}x"
        )
