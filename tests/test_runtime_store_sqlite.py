"""SQLite store backend: concurrent writers and quarantine parity.

The backend's reason to exist is multi-writer safety: N shard
processes filling one store must lose nothing and corrupt nothing,
where concurrent JSONL appends could tear lines.  These tests drive
real OS processes at one database, and pin the quarantine semantics
(corrupt payloads moved aside, never fatal) that the JSONL backend
established.
"""

import json
import multiprocessing
import sqlite3

import pytest

from repro.runtime.store import JsonlResultStore, merge_stores, open_store
from repro.runtime.store_sqlite import SqliteResultStore

pytestmark = pytest.mark.runtime


def _rec(key, *, sound=True, tightness=0.5):
    return {
        "key": key,
        "sound": sound,
        "error": None,
        "budget_ok": True,
        "tightness": tightness,
        "wall_time": 0.1,
    }


def _writer(root: str, prefix: str, n: int) -> None:
    """Child-process entry: batch-append ``n`` records to one store."""
    store = SqliteResultStore(root)
    store.append_many(_rec(f"{prefix}{i:03d}") for i in range(n))
    store.close()


class TestWalMode:
    def test_database_runs_wal_journal(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        store.append(_rec("a"))
        mode = store._connect().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_reopen_sees_committed_records(self, tmp_path):
        first = SqliteResultStore(tmp_path)
        first.append(_rec("a"))
        first.close()
        assert set(SqliteResultStore(tmp_path).load()) == {"a"}


class TestConcurrentWriters:
    def test_two_processes_one_store_lose_nothing(self, tmp_path):
        """Two OS processes batch-append to one database concurrently;
        the union must be exact -- no lost, torn, or duplicated rows."""
        root = str(tmp_path / "shared")
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_writer, args=(root, prefix, 40))
            for prefix in ("a", "b")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        records = SqliteResultStore(root).load()
        assert len(records) == 80
        assert {k for k in records if k.startswith("a")} == {
            f"a{i:03d}" for i in range(40)
        }

    def test_concurrent_fill_summarises_like_serial(self, tmp_path):
        """Concurrent writers + summary refresh == serial JSONL run,
        byte for byte (the store contract's determinism claim)."""
        root = str(tmp_path / "shared")
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_writer, args=(root, prefix, 25))
            for prefix in ("x", "y")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        merge_stores(root)  # post-shard summary refresh
        serial = JsonlResultStore(tmp_path / "serial")
        serial.append_many(
            [_rec(f"{prefix}{i:03d}") for prefix in ("x", "y") for i in range(25)]
        )
        serial.write_summary()
        assert (
            SqliteResultStore(root).summary_path.read_bytes()
            == serial.summary_path.read_bytes()
        )


class TestQuarantine:
    def _corrupt(self, store: SqliteResultStore, key: str, payload: str):
        with store._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results (key, v, record) "
                "VALUES (?, 2, ?)",
                (key, payload),
            )

    def test_corrupt_payloads_quarantined_not_fatal(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        store.append(_rec("aa"))
        self._corrupt(store, "zz", "{torn json!!")     # unparseable
        self._corrupt(store, "yy", '{"sound": true}')  # keyless payload
        store.append(_rec("bb"))
        records = store.load()
        assert set(records) == {"aa", "bb"}
        assert store.quarantined == 2
        assert "{torn json!!" in store.quarantine_lines()
        # The table is clean afterwards: a second load sees no rot.
        assert store.load() == records
        assert store.quarantined == 0

    def test_quarantine_counted_in_summary(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        store.append(_rec("aa"))
        self._corrupt(store, "zz", "not json")
        summary = store.write_summary()
        assert summary["cells"] == 1
        assert summary["quarantined_rows"] == 1

    def test_quarantine_parity_with_jsonl(self, tmp_path):
        """Both backends eat the same corrupt payload the same way."""
        sq = SqliteResultStore(tmp_path / "sq")
        sq.append(_rec("aa"))
        self._corrupt(sq, "zz", "{torn json!!")
        js = JsonlResultStore(tmp_path / "js")
        js.append(_rec("aa"))
        with js.results_path.open("a") as fh:
            fh.write("{torn json!!\n")
        assert sq.load() == js.load()
        assert sq.quarantined == js.quarantined == 1
        assert sq.quarantine_lines() == js.quarantine_path.read_text().splitlines()


class TestSchema:
    def test_cell_keys_are_primary_keys(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        store.append(_rec("aa", sound=False))
        store.append(_rec("aa", sound=True))   # REPLACE, not a second row
        conn = sqlite3.connect(store.db_path)
        (count,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
        assert count == 1
        (pk,) = conn.execute(
            "SELECT name FROM pragma_table_info('results') WHERE pk = 1"
        ).fetchone()
        assert pk == "key"
        conn.close()

    def test_nonfinite_floats_roundtrip_as_json_text(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        store.append({"key": "inf", "bound": float("inf")})
        raw = (
            sqlite3.connect(store.db_path)
            .execute("SELECT record FROM results")
            .fetchone()[0]
        )
        assert "Infinity" in raw            # same wire format as JSONL
        assert json.loads(raw)["bound"] == float("inf")

    def test_url_prefix_tolerated_in_constructor(self, tmp_path):
        store = SqliteResultStore(f"sqlite:{tmp_path / 'camp'}")
        assert store.root == tmp_path / "camp"
        assert isinstance(open_store(f"sqlite:{tmp_path / 'camp'}"),
                          SqliteResultStore)
