"""Deterministic discrete-event simulation core.

A deliberately small engine: a binary-heap event queue with a strict
total order on events ``(time, priority, sequence)`` so that runs are
bit-for-bit reproducible, plus the component conventions the rest of
:mod:`repro.simulation` builds on (components hold a reference to the
simulator and schedule callbacks).

The engine is profiling-friendly (see the HPC guidance in
``/opt/skills/guides``): the hot loop does nothing but pop-and-call,
:attr:`Simulator.events_processed` lets benchmarks report event rates,
and the hot-path data structure is deliberately lean --
:class:`ScheduledEvent` is a ``__slots__`` record (no dataclass
machinery, no per-event ``__dict__``), :attr:`Simulator.pending` is a
live counter maintained on schedule/cancel/pop instead of an O(n) heap
scan, and :meth:`Simulator.schedule_batch` enqueues whole packet
trains with one validation pass (sorted trains into an empty queue
degrade to a plain ``list.extend``).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = ["Simulator", "ScheduledEvent"]


class ScheduledEvent:
    """An entry in the event queue.

    A ``__slots__`` record rather than a dataclass: millions of these
    are created per DES cell, so per-event ``__dict__`` allocation and
    generated comparison tuples are measurable.  Ordering is the strict
    total order ``(time, priority, seq)``; only ``__lt__`` is defined
    because that is all ``heapq`` consults.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator while the event sits in the queue; cleared
        #: on pop so a late ``cancel()`` (after the event ran or was
        #: discarded) cannot corrupt the live-event counter.
        self._sim = sim

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        flag = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(t={self.time}, prio={self.priority}, seq={self.seq}{flag})"

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        O(1): the heap entry stays behind as residue and is discarded
        lazily, but the owning simulator's live-event counter is
        decremented immediately so :attr:`Simulator.pending` stays O(1).
        """
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._live -= 1
                self._sim = None


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=100.0)

    Events at equal times execute in (priority, schedule-order) order;
    lower priority values run first.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        #: Live (scheduled, not cancelled, not yet popped) event count.
        self._live: int = 0
        self.events_processed: int = 0
        #: Cancelled events discarded when popped -- the heap residue of
        #: the lazy O(1) cancellation.  Batch harnesses report this next
        #: to :attr:`events_processed` so event-rate figures are honest
        #: about how much of the heap traffic was dead weight.
        self.cancelled_events: int = 0
        #: Total events ever pushed (single or batch scheduling).
        self.events_scheduled: int = 0
        # Engine-adjacent telemetry tallies: batched components fold
        # their own structural counts into the simulator they share, so
        # one :func:`repro.runtime.telemetry.record_engine` call per
        # cell captures the whole engine picture.
        self.busy_periods: int = 0
        self.receive_batch_calls: int = 0

    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Returns the event handle, whose :meth:`ScheduledEvent.cancel`
        removes it lazily (cancelled events are skipped when popped --
        O(1) cancellation at the cost of heap residue, the standard
        trade-off).
        """
        if time < self.now - 1e-15:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        ev = ScheduledEvent(float(time), priority, next(self._seq), callback, args, self)
        heapq.heappush(self._queue, ev)
        self._live += 1
        self.events_scheduled += 1
        return ev

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any, priority: int = 0
    ) -> ScheduledEvent:
        """Schedule relative to the current time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self.now + delay, callback, *args, priority=priority)

    def schedule_batch(
        self,
        times: Sequence[float],
        callback: Callable[..., None],
        args_seq: Optional[Iterable[tuple]] = None,
        *,
        priority: int = 0,
    ) -> list[ScheduledEvent]:
        """Schedule ``callback(*args)`` at every time of a whole train.

        The batch counterpart of :meth:`schedule`: one validation pass,
        one live-counter update, and -- when the queue is empty and the
        train is time-sorted (the common case: injecting a packet trace
        before the run, or a window-batched component committing one
        window's departures) -- a plain ``extend`` instead of per-event
        sift-ups, since a sorted list already satisfies the heap
        invariant.  ``args_seq`` provides one args tuple per event
        (``()`` for all events when omitted).
        """
        times = [float(t) for t in times]
        if not times:
            return []
        now = self.now
        if min(times) < now - 1e-15:
            raise ValueError(
                f"cannot schedule in the past (now={now}, min time={min(times)})"
            )
        seq = self._seq
        sim = self
        if args_seq is None:
            events = [
                ScheduledEvent(t, priority, next(seq), callback, (), sim)
                for t in times
            ]
        else:
            events = [
                ScheduledEvent(t, priority, next(seq), callback, args, sim)
                for t, args in zip(times, args_seq)
            ]
            if len(events) != len(times):
                raise ValueError("args_seq must provide one tuple per time")
        queue = self._queue
        if not queue and all(a <= b for a, b in zip(times, times[1:])):
            # Sorted batch into an empty queue: already a valid heap.
            queue.extend(events)
        else:
            push = heapq.heappush
            for ev in events:
                push(queue, ev)
        self._live += len(events)
        self.events_scheduled += len(events)
        return events

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time
            (the clock is left at ``until``).
        max_events:
            Safety valve for tests; raises ``RuntimeError`` when
            exceeded (a runaway component is a bug, not a result).
        """
        queue = self._queue
        pop = heapq.heappop
        processed_here = 0
        while queue:
            ev = queue[0]
            if ev.cancelled:
                pop(queue)
                self.cancelled_events += 1
                continue
            if until is not None and ev.time > until:
                break
            pop(queue)
            ev._sim = None
            self._live -= 1
            self.now = ev.time
            ev.callback(*ev.args)
            self.events_processed += 1
            processed_here += 1
            if max_events is not None and processed_here > max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events}; runaway component?"
                )
        if until is not None and self.now < until:
            self.now = until

    def peek_time(self) -> float:
        """Time of the next pending event (``inf`` when idle)."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self.cancelled_events += 1
        return self._queue[0].time if self._queue else float("inf")

    @property
    def pending(self) -> int:
        """Number of (non-cancelled) scheduled events.

        O(1): a live counter maintained on schedule/cancel/pop, not a
        heap scan -- components may poll it inside their drain loops.
        """
        return self._live
