"""Unit conversions and the C = 1 normalisation convention."""

import pytest

from repro.utils.units import (
    AUDIO_RATE_BPS,
    KBPS,
    MBPS,
    VIDEO_RATE_BPS,
    aggregate_utilization,
    bits_to_megabits,
    megabits_to_bits,
    ms_to_seconds,
    normalize_rate,
    normalized_to_rate,
    seconds_to_ms,
)


def test_constants_match_paper_workloads():
    assert AUDIO_RATE_BPS == 64 * KBPS
    assert VIDEO_RATE_BPS == 1.5 * MBPS


def test_megabit_round_trip():
    assert bits_to_megabits(megabits_to_bits(3.5)) == pytest.approx(3.5)


def test_time_conversions():
    assert seconds_to_ms(1.5) == pytest.approx(1500.0)
    assert ms_to_seconds(250.0) == pytest.approx(0.25)


def test_normalize_rate_basic():
    # A 1.5 Mbps video stream on a 10 Mbps link has rho = 0.15.
    assert normalize_rate(VIDEO_RATE_BPS, 10 * MBPS) == pytest.approx(0.15)


def test_normalize_round_trip():
    rho = normalize_rate(640 * KBPS, 2 * MBPS)
    assert normalized_to_rate(rho, 2 * MBPS) == pytest.approx(640 * KBPS)


def test_normalize_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        normalize_rate(1.0, 0.0)
    with pytest.raises(ValueError):
        normalized_to_rate(0.5, -1.0)


def test_aggregate_utilization_sums_flows():
    # 3 video flows on a 10 Mbps link: u = 0.45 (Fig. 4(b)'s axis).
    rates = [VIDEO_RATE_BPS] * 3
    assert aggregate_utilization(rates, 10 * MBPS) == pytest.approx(0.45)
