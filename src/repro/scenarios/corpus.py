"""The curated adversarial scenario corpus.

Hand-picked configurations that historically stress worst-case-bound
reproductions the hardest:

* **synchronised bursts** -- every group fed the same realisation (the
  paper's own evaluation setup), which aligns burst arrivals and pushes
  the measured worst case towards the analytic bound;
* **worst-phase regulator staggering** -- the vacation schedule shifted
  through the cycle, including the half-period phase where a burst
  lands just after its window closes (the ``2 lambda sigma / rho``
  term of Lemma 1 is exactly this wait);
* **heavy-load band** -- aggregate rates at the top of the Theorem 5
  band ``rho_bar in [1/K - 1/K^(n+1), 1/K)``, the regime the paper's
  ``O(K^n)`` improvement claim lives in;
* **staggered starts** -- synchronised streams skewed per flow so
  cross-traffic bursts collide with the tagged flow mid-chain;
* **multi-hop** -- Theorem-7 critical-path chains and a DSCT tree over
  a transit-stub underlay, in both backends;
* **an unstable cell** -- ``sum rho_i > C`` with infinite bounds, kept
  to pin the vacuous-soundness path of the batch runner.

Importing :mod:`repro.scenarios` registers the corpus.
"""

from __future__ import annotations

from repro.core.delay_bounds import theorem5_band
from repro.scenarios.spec import Scenario

__all__ = ["adversarial_corpus"]


def _heavy_band_utilization(k: int, n: int) -> float:
    """An aggregate utilisation at the top of the Theorem 5 band."""
    lo, hi = theorem5_band(k, n)
    return min(k * (lo + 0.8 * (hi - lo)), 0.96)


def adversarial_corpus() -> tuple[Scenario, ...]:
    """The curated corpus (fresh tuple; registration happens on import)."""
    scenarios = [
        # -- synchronised bursts (the paper's own setup) ----------------
        Scenario(
            name="sync-burst-video",
            kinds=("video",) * 3,
            utilization=0.9,
            mode="sigma-rho-lambda",
            seed=101,
            tags=("corpus", "sync-burst"),
        ),
        Scenario(
            name="sync-burst-audio",
            kinds=("audio",) * 3,
            utilization=0.85,
            mode="sigma-rho",
            seed=102,
            tags=("corpus", "sync-burst"),
        ),
        # -- worst-phase vacation staggering ----------------------------
        *(
            Scenario(
                name=f"worst-phase-{int(phase * 100):02d}",
                kinds=("video",) * 3,
                utilization=0.88,
                mode="sigma-rho-lambda",
                stagger_phase=phase,
                seed=103,
                tags=("corpus", "worst-phase"),
            )
            for phase in (0.25, 0.5, 0.75)
        ),
        # -- Theorem 5 heavy-load band ----------------------------------
        Scenario(
            name="heavy-band-k2-n2",
            kinds=("onoff",) * 2,
            utilization=_heavy_band_utilization(2, 2),
            mode="sigma-rho-lambda",
            seed=104,
            tags=("corpus", "heavy-band"),
        ),
        Scenario(
            name="heavy-band-k3-n2",
            kinds=("video",) * 3,
            utilization=_heavy_band_utilization(3, 2),
            mode="sigma-rho-lambda",
            seed=105,
            tags=("corpus", "heavy-band"),
        ),
        Scenario(
            name="heavy-band-k4-n1",
            kinds=("audio",) * 4,
            utilization=_heavy_band_utilization(4, 1),
            mode="sigma-rho-lambda",
            seed=106,
            tags=("corpus", "heavy-band"),
        ),
        # -- adversarial staggered starts -------------------------------
        Scenario(
            name="staggered-start-skew",
            kinds=("onoff",) * 4,
            utilization=0.8,
            mode="sigma-rho-lambda",
            start_offsets=(0.0, 0.05, 0.1, 0.15),
            seed=107,
            tags=("corpus", "staggered-start"),
        ),
        Scenario(
            name="staggered-start-video",
            kinds=("video",) * 3,
            utilization=0.75,
            mode="sigma-rho",
            start_offsets=(0.0, 0.02, 0.11),
            seed=108,
            tags=("corpus", "staggered-start"),
        ),
        # -- adaptive controller on both sides of the threshold ---------
        Scenario(
            name="adaptive-light",
            kinds=("video", "audio", "audio"),
            utilization=0.4,
            mode="adaptive",
            seed=109,
            tags=("corpus", "adaptive"),
        ),
        Scenario(
            name="adaptive-heavy",
            kinds=("video", "audio", "audio"),
            utilization=0.92,
            mode="adaptive",
            seed=110,
            tags=("corpus", "adaptive"),
        ),
        # -- multi-hop: Theorem-7 chains and a DSCT tree ----------------
        Scenario(
            name="chain-3hop-video",
            kinds=("video",) * 3,
            utilization=0.85,
            mode="sigma-rho-lambda",
            topology="chain",
            hops=3,
            propagation=0.005,
            seed=111,
            tags=("corpus", "chain"),
        ),
        Scenario(
            name="chain-2hop-hetero",
            kinds=("video", "onoff", "audio"),
            utilization=0.8,
            mode="sigma-rho",
            topology="chain",
            hops=2,
            seed=112,
            tags=("corpus", "chain"),
        ),
        Scenario(
            name="tree-dsct-16",
            kinds=("video",) * 3,
            utilization=0.8,
            mode="sigma-rho-lambda",
            topology="tree",
            tree_members=16,
            seed=113,
            tags=("corpus", "tree"),
        ),
        # -- whole-tree packet DES (no critical-path reduction) ---------
        Scenario(
            name="tree-des-full-12",
            kinds=("video", "audio", "audio"),
            utilization=0.75,
            mode="sigma-rho",
            topology="tree",
            tree_members=12,
            backend="tree_des",
            horizon=1.0,
            seed=118,
            tags=("corpus", "tree", "tree-des"),
        ),
        # -- packet-exact DES slice -------------------------------------
        Scenario(
            name="des-host-lambda",
            kinds=("video",) * 3,
            utilization=0.9,
            mode="sigma-rho-lambda",
            backend="des",
            seed=114,
            tags=("corpus", "des"),
        ),
        Scenario(
            name="des-host-sigma-rho",
            kinds=("audio",) * 3,
            utilization=0.8,
            mode="sigma-rho",
            backend="des",
            seed=115,
            tags=("corpus", "des"),
        ),
        Scenario(
            name="des-chain-2hop",
            kinds=("video",) * 3,
            utilization=0.8,
            mode="sigma-rho",
            topology="chain",
            hops=2,
            backend="des",
            seed=116,
            tags=("corpus", "des", "chain"),
        ),
        # -- unstable cell: infinite bounds, vacuously sound ------------
        Scenario(
            name="unstable-sigma-rho",
            kinds=("cbr",) * 3,
            utilization=1.05,
            mode="sigma-rho",
            horizon=1.0,
            seed=117,
            tags=("corpus", "unstable"),
        ),
    ]
    return tuple(scenarios)
