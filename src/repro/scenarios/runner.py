"""The batched analytic-vs-simulation cross-validation runner.

:func:`run_batch` is the engine behind ``scenarios run`` and the
``tests/test_scenarios_*`` matrix.  It is split into three stages so
campaigns parallelise over the :mod:`repro.runtime` executors:

1. **evaluate (worker side, picklable)** -- :func:`evaluate_cell` takes
   one :class:`Scenario` (pure primitives), realises it (traces
   generated, empirical envelopes measured, adaptive mode resolved,
   tree topologies built), runs the simulated side on the requested
   backend (vectorised fluid engine, packet DES on the critical-path
   reduction, or whole-tree packet DES) and returns a
   :class:`CellResult` of primitives.  Both ends of the exchange pickle
   cheaply; heavyweight intermediates (traces, trees, simulators) never
   cross the process boundary.
2. **analytic (parent side, vectorised)** -- Theorem 1/2 per hop,
   scaled by the Theorem 7 / Remark 2 hop count, plus propagation, is
   evaluated for the whole batch in one NumPy pass
   (:func:`repro.scenarios.analytic.batch_bounds`) over the envelope
   parameters the workers measured.
3. **verdict (parent side)** -- each cell gets a soundness verdict
   ``measured <= bound + eps`` where ``eps`` covers the backend's
   quantisation (O(dt) per hop for the fluid grid, packet/window
   granularity for the DES).  A worker exception becomes an *error
   outcome* (``sound == False``) for that cell alone; cells may also
   carry a wall-clock ``perf_budget`` whose violation is reported
   separately from soundness.

A soundness violation is never tolerance-tuned away: the verdict line
is the repo's central regression net, and any `sound=False` cell is a
bug in either the theorems' implementation or a simulator.

Determinism contract: every random draw inside :func:`evaluate_cell`
derives from ``scenario.seed`` via :func:`repro.utils.rng.derive_seed`,
so serial and parallel executions of the same matrix produce
bit-identical traces, measurements and verdicts regardless of worker
count, chunking or completion order.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.core.delay_bounds import theorem1_wdb_heterogeneous
from repro.core.multicast_bounds import dsct_height_bound
from repro.overlay.groups import MultiGroupNetwork
from repro.runtime import faults
from repro.runtime.executor import (
    Executor,
    RetryPolicy,
    SerialExecutor,
    TaskResult,
    _error_head,
    _run_one_with_retry,
)
from repro.runtime.telemetry import CellTelemetry, counter_add, span
from repro.scenarios.analytic import batch_bounds
from repro.scenarios.spec import Scenario
from repro.simulation.chain import simulate_regulated_chain
from repro.simulation.flow import PacketTrace
from repro.simulation.fluid import simulate_fluid_chain, simulate_fluid_host
from repro.simulation.host_sim import simulate_regulated_host
from repro.simulation.tree_sim import simulate_multicast_tree
from repro.topology.attach import attach_hosts
from repro.topology.transit_stub import transit_stub_backbone
from repro.utils.rng import derive_seed
from repro.workloads.profiles import DEFAULT_MTU

__all__ = [
    "CellResult",
    "ScenarioOutcome",
    "BatchReport",
    "evaluate_cell",
    "evaluate_cells_grouped",
    "finalise_batch",
    "run_batch",
    "run_scenario",
]

#: Relative slack of the soundness verdict (float accumulation).
EPS_REL = 1e-3
#: Absolute floor of the soundness verdict, in seconds.
EPS_ABS = 5e-3
#: Fluid-grid quantisation charged per hop, in units of ``dt``.
FLUID_GRID_FACTOR = 3.0
#: DES packet/window quantisation charged per hop, in units of the MTU.
DES_MTU_FACTOR = 6.0
#: Smallest MTU the DES backend will fragment to before falling back to
#: the fluid backend (tiny reduced bursts would explode packet counts).
MIN_DES_MTU = 2e-4


@dataclass(frozen=True)
class CellResult:
    """Worker-side product of one evaluated cell (picklable primitives).

    Everything the parent needs for the vectorised analytic pass and
    the verdict: the measured envelope parameters (``sigmas``/``rhos``),
    the effective execution facts, the simulated worst case and the
    backend quantisation term ``quant_eps`` (already scaled by hop
    count; the parent adds the float-noise slack on top).
    """

    name: str
    eff_mode: str
    eff_backend: str
    hops: int
    propagation_total: float
    sigmas: tuple[float, ...]
    rhos: tuple[float, ...]
    measured: float
    events: int
    cancelled_events: int
    height_ok: bool
    quant_eps: float
    #: Whether the simulator resolved the cell on a closed-form primed
    #: fast path (array kernels / background-folded cross traffic);
    #: the cost model prices primed cells on their own coefficient.
    primed: bool = False


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's verdict (all delays in seconds)."""

    scenario: Scenario
    eff_mode: str
    eff_backend: str
    hops: int
    propagation_total: float
    measured: float
    bound: float
    baseline_bound: float
    eps: float
    events: int
    cancelled_events: int
    height_ok: bool = True
    #: Worker wall-clock spent realising + simulating this cell.
    wall_time: float = 0.0
    #: Captured worker traceback; a non-``None`` value fails the verdict.
    error: Optional[str] = None
    #: Closed-form fast path used (see :class:`CellResult`).
    primed: bool = False
    #: Worker-side telemetry (spans/counters; ``None`` when collection
    #: is off).  Excluded from equality: the serial==parallel==grouped
    #: bit-identity contract compares verdicts, never timings.
    telemetry: Optional[CellTelemetry] = field(
        default=None, compare=False, repr=False
    )
    #: Attempt-ledger fields (retry/fault-tolerance accounting), also
    #: excluded from equality: a recovered cell must compare equal to
    #: an undisturbed one -- the determinism-under-retry invariant.
    attempts: int = field(default=1, compare=False)
    attempt_errors: tuple = field(default=(), compare=False, repr=False)

    @property
    def sound(self) -> bool:
        """The invariant: simulated worst case within the analytic bound.

        An infinite bound (unstable cell) is vacuously satisfied, but
        the Lemma-2 height check still applies to tree cells; a worker
        error fails the verdict outright.
        """
        if self.error is not None:
            return False
        if not np.isfinite(self.bound):
            return self.height_ok
        return self.measured <= self.bound + self.eps and self.height_ok

    @property
    def budget_ok(self) -> bool:
        """Perf verdict: worker wall time within the cell's budget."""
        budget = self.scenario.perf_budget
        return budget <= 0.0 or self.wall_time <= budget

    @property
    def tightness(self) -> float:
        """measured / bound (0 for infinite bounds and error cells)."""
        if self.error is not None:
            return 0.0
        if not np.isfinite(self.bound) or self.bound <= 0.0:
            return 0.0
        return self.measured / self.bound


@dataclass(frozen=True)
class BatchReport:
    """Aggregate over one :func:`run_batch` invocation."""

    outcomes: tuple[ScenarioOutcome, ...]
    elapsed: float
    #: Grouped-evaluation accounting (one mapping per SoA group plus a
    #: ``grouping_summary`` entry) when the structure-of-arrays path
    #: ran; empty for per-cell evaluation.  Excluded from equality for
    #: the same reason as per-cell telemetry: timings are not verdicts.
    group_stats: tuple = field(default=(), compare=False, repr=False)

    @property
    def n_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> tuple[ScenarioOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.sound)

    @property
    def errors(self) -> tuple[ScenarioOutcome, ...]:
        """Cells whose worker crashed (a subset of :attr:`violations`)."""
        return tuple(o for o in self.outcomes if o.error is not None)

    @property
    def perf_violations(self) -> tuple[ScenarioOutcome, ...]:
        """Cells over their declared wall-clock budget."""
        return tuple(o for o in self.outcomes if not o.budget_ok)

    @property
    def events_total(self) -> int:
        return sum(o.events for o in self.outcomes)

    @property
    def cancelled_total(self) -> int:
        """DES heap residue across the batch (cancelled-event pops)."""
        return sum(o.cancelled_events for o in self.outcomes)

    @property
    def worker_wall_total(self) -> float:
        """Summed per-cell worker seconds (> elapsed when parallel)."""
        return sum(o.wall_time for o in self.outcomes)

    @property
    def scenarios_per_sec(self) -> float:
        if self.n_scenarios == 0 or self.elapsed <= 0:
            return 0.0
        return self.n_scenarios / self.elapsed

    @property
    def max_tightness(self) -> float:
        return max((o.tightness for o in self.outcomes), default=0.0)

    def summary_lines(self) -> list[str]:
        """Human-readable digest (the CLI prints these)."""
        lines = [
            f"scenarios evaluated: {self.n_scenarios}",
            f"soundness violations: {len(self.violations)}",
            f"worker errors: {len(self.errors)}",
            f"perf-budget violations: {len(self.perf_violations)}",
            f"max tightness (measured/bound): {self.max_tightness:.3f}",
            f"throughput: {self.scenarios_per_sec:.1f} scenarios/s "
            f"({self.elapsed:.1f}s wall, {self.worker_wall_total:.1f}s worker)",
            f"DES events processed: {self.events_total} "
            f"(+{self.cancelled_total} cancelled heap residue)",
        ]
        for o in self.violations:
            if o.error is not None:
                first = o.error.strip().splitlines()[-1] if o.error.strip() else "?"
                lines.append(f"  ERROR {o.scenario.name}: {first}")
            else:
                lines.append(
                    f"  VIOLATION {o.scenario.name}: measured={o.measured:.6g} "
                    f"> bound={o.bound:.6g} + eps={o.eps:.3g}"
                )
        for o in self.perf_violations:
            lines.append(
                f"  OVER-BUDGET {o.scenario.name}: wall={o.wall_time:.3g}s "
                f"> budget={o.scenario.perf_budget:.3g}s"
            )
        return lines


# ----------------------------------------------------------------------
# Realisation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Realised:
    """A scenario with its traces, envelopes and topology resolved.

    Worker-internal: never pickled, so the tree context may hold
    heavyweight objects.
    """

    scenario: Scenario
    traces: list[PacketTrace]
    envelopes: list[ArrivalEnvelope]
    eff_mode: str
    eff_backend: str
    mtu: float
    hops: int
    propagation: tuple[float, ...]
    height_ok: bool
    #: Extra per-hop soundness slack (DES vacation-window quantisation).
    extra_eps: float = 0.0
    #: Whole-tree context ``(tree, latency_matrix)`` (tree_des only).
    tree_ctx: Optional[tuple] = None


def _build_tree(sc: Scenario):
    """Construct the DSCT tree over a transit-stub underlay.

    Returns ``(mgn, tree)``; seeded identically for the critical-path
    reduction and the whole-tree backend so both see the same topology.
    """
    base = derive_seed(sc.seed, "tree-topology", sc.name)
    # One independent stream per construction stage (the convention of
    # experiments/trees.py); a shared integer would restart the same
    # default_rng sequence at every stage and correlate the draws.
    g = transit_stub_backbone(3, 2, 3, rng=derive_seed(base, "backbone"))
    net = attach_hosts(g, sc.tree_members, rng=derive_seed(base, "attach"))
    mgn = MultiGroupNetwork.fully_joined(
        net, sc.k, rng=derive_seed(base, "groups")
    )
    tree = mgn.build_tree(0, "dsct", rng=derive_seed(base, "tree"))
    return mgn, tree


def _resolve_tree(sc: Scenario) -> tuple[int, tuple[float, ...], bool]:
    """Reduce a DSCT tree scenario to its critical-path chain.

    Returns ``(hops, per-hop propagation, height_ok)`` where
    ``height_ok`` asserts the constructed height against Lemma 2.
    """
    mgn, tree = _build_tree(sc)
    path = tree.critical_path()
    # Lemma 2 plus the one-layer slack small random domains can pack
    # (the same property the dsct construction tests assert).  The delay
    # verdict uses the *constructed* height, so this side-check never
    # loosens the bound accounting.
    height_ok = tree.height <= dsct_height_bound(tree.size) + 1
    if len(path) < 2:
        return 1, (0.0,), height_ok
    lat = mgn.latency
    prop = tuple(float(lat[a, b]) for a, b in zip(path, path[1:]))
    return len(path) - 1, prop, height_ok


def _resolve_tree_full(sc: Scenario):
    """Realise the whole tree for the ``tree_des`` backend.

    Returns ``(hops, propagation, height_ok, tree_ctx)``.  A receiver
    at depth ``d`` crosses ``d + 1`` regulated-host pipelines (every
    member, the leaf included, forwards through its own pipeline before
    local delivery), so the hop count charged to the analytic side is
    the tree *height* (layers, Lemma 2's ``H``), and the propagation
    term is the worst root-to-member latency sum -- together they
    dominate every receiver's path.
    """
    mgn, tree = _build_tree(sc)
    height_ok = tree.height <= dsct_height_bound(tree.size) + 1
    lat = mgn.latency
    worst_prop = 0.0
    for member in tree.members():
        path = tree.path_from_root(member)
        prop = sum(float(lat[a, b]) for a, b in zip(path, path[1:]))
        worst_prop = max(worst_prop, prop)
    return tree.height, (worst_prop,), height_ok, (tree, lat)


def _des_lambda_fit(
    sc: Scenario, envelopes: Sequence[ArrivalEnvelope]
) -> Optional[tuple[float, float]]:
    """Decide whether the DES can resolve a (sigma, rho, lambda) cell.

    The DES vacation regulator is non-preemptive with a fit check: a
    packet must fit inside one working period ``W_i = sigma_i*/(1-rho_i)``
    (built on the *reduced* bursts of Theorem 1, which can be far below
    the empirical sigma), so the MTU must shrink to a fraction of the
    smallest window.  On top of that, the minimum-feasible ``lambda``
    makes the window budget exactly tight (``rho P = W``): up to one
    packet serialisation is wasted per cycle by the fit check, and that
    waste accumulates over the run -- an honest quantisation term of
    ``(horizon / P) * mtu / rho`` that no per-packet slack covers.

    Returns ``(mtu, extra_eps_per_hop)``, or ``None`` when the packet
    count would explode (``mtu < MIN_DES_MTU``) or the accumulated
    window waste would swamp the bound -- the caller then falls back to
    the fluid backend, which resolves the cell exactly.
    """
    plan = AdaptiveController(envelopes, sc.capacity).build_stagger_plan()
    w_min = min(r.working_period for r in plan.regulators)
    mtu = min(DEFAULT_MTU, w_min * sc.capacity / 32.0)
    if mtu < MIN_DES_MTU:
        return None
    rho_min = min(e.rho for e in envelopes) / sc.capacity
    cycles = sc.horizon / plan.period + 1.0
    extra = cycles * (mtu / sc.capacity) / rho_min
    bound = theorem1_wdb_heterogeneous(
        [e.sigma for e in envelopes], [e.rho for e in envelopes], sc.capacity
    )
    if not np.isfinite(bound) or extra > 0.3 * bound:
        return None
    return mtu, extra


def _realise(sc: Scenario) -> _Realised:
    raw = sc.realise_traces(mtu=None)
    # Empirical envelopes are fragmentation-invariant (fragments share
    # the original emission times), so measure them once on raw traces.
    envelopes = sc.realise_envelopes(raw)
    return _realise_from(sc, raw, envelopes)


def _realise_from(
    sc: Scenario,
    raw: Sequence[PacketTrace],
    envelopes: Sequence[ArrivalEnvelope],
    fragment_cache: Optional[dict] = None,
) -> _Realised:
    """Finish realising a scenario whose traces/envelopes are known.

    The tail of :func:`_realise`, factored out so the grouped
    cell-matrix evaluator (:mod:`repro.scenarios.cellmatrix`) can feed
    its cached trace/envelope realisation through the *same* backend
    fallback, fragmentation and topology resolution code -- one source
    of truth for the effective execution facts.  ``fragment_cache``
    (optional, keyed by ``(id(trace), mtu)``) memoises
    :meth:`PacketTrace.fragment` across cells sharing trace objects;
    fragmentation is deterministic, so sharing is exact.
    """
    envelopes = list(envelopes)
    eff_mode = sc.effective_mode(envelopes)
    backend, mtu, extra_eps = sc.backend, DEFAULT_MTU, 0.0
    if backend in ("des", "des_legacy") and eff_mode == "sigma-rho-lambda":
        fit = _des_lambda_fit(sc, envelopes)
        if fit is None:
            backend = "fluid"
        else:
            mtu, extra_eps = fit
    if fragment_cache is None:
        traces = [tr.fragment(mtu) for tr in raw]
    else:
        traces = []
        for tr in raw:
            key = (id(tr), mtu)
            # The cached entry pins the source trace: ids are only
            # unique among *live* objects, so holding the reference
            # keeps the key valid for the cache's whole lifetime (and
            # the identity check catches any stale hit regardless).
            entry = fragment_cache.get(key)
            if entry is None or entry[0] is not tr:
                entry = (tr, tr.fragment(mtu))
                fragment_cache[key] = entry
            traces.append(entry[1])
    tree_ctx = None
    if sc.topology == "tree":
        if backend in ("tree_des", "tree_des_legacy"):
            hops, prop, height_ok, tree_ctx = _resolve_tree_full(sc)
        else:
            hops, prop, height_ok = _resolve_tree(sc)
    elif sc.topology == "chain":
        hops, prop, height_ok = sc.hops, (sc.propagation,) * sc.hops, True
    else:
        hops, prop, height_ok = 1, (0.0,), True
    return _Realised(
        sc, traces, envelopes, eff_mode, backend, mtu, hops, prop,
        height_ok, extra_eps, tree_ctx,
    )


# ----------------------------------------------------------------------
# Simulation
# ----------------------------------------------------------------------
def _simulate(r: _Realised) -> tuple[float, int, int, bool]:
    """Run one realised scenario.

    Returns ``(measured, events, cancelled, primed)`` where ``primed``
    reports whether the simulator resolved the cell on a closed-form
    fast path (the batched engines route eligible cells automatically;
    the flag feeds the cost model's primed-vs-evented pricing).
    """
    sc = r.scenario
    # The *_legacy backends run the identical cell on the per-packet
    # legacy DES engine (the equivalence suite's reference).
    engine = "legacy" if r.eff_backend.endswith("_legacy") else "batched"
    if r.eff_backend in ("tree_des", "tree_des_legacy"):
        tree, latency = r.tree_ctx
        res = simulate_multicast_tree(
            [tree],
            0,
            r.traces,
            r.envelopes,
            latency,
            mode=r.eff_mode,
            capacity=sc.capacity,
            discipline=sc.discipline,
            engine=engine,
        )
        return res.worst_case_delay, res.events, 0, res.primed
    if sc.topology == "host":
        if r.eff_backend == "fluid":
            res = simulate_fluid_host(
                r.traces,
                r.envelopes,
                mode=r.eff_mode,
                capacity=sc.capacity,
                discipline=sc.discipline,
                stagger_phase=sc.stagger_phase,
                dt=sc.dt,
            )
            return res.worst_case_delay, 0, 0, False
        res = simulate_regulated_host(
            r.traces,
            r.envelopes,
            mode=r.eff_mode,
            capacity=sc.capacity,
            discipline=sc.discipline,
            stagger_phase=sc.stagger_phase,
            engine=engine,
        )
        return res.worst_case_delay, res.events, res.cancelled_events, res.primed
    tagged, cross = r.traces[0], list(r.traces[1:])
    cross_per_hop = [cross] * r.hops
    if r.eff_backend == "fluid":
        res = simulate_fluid_chain(
            tagged,
            cross_per_hop,
            r.envelopes,
            mode=r.eff_mode,
            capacity=sc.capacity,
            discipline=sc.discipline,
            stagger_phase=sc.stagger_phase,
            propagation=list(r.propagation),
            dt=sc.dt,
        )
        return res.worst_case_delay, 0, 0, False
    des = simulate_regulated_chain(
        tagged,
        cross_per_hop,
        r.envelopes,
        mode=r.eff_mode,
        capacity=sc.capacity,
        discipline=sc.discipline,
        stagger_phase=sc.stagger_phase,
        propagation=list(r.propagation),
        engine=engine,
    )
    return des.worst_case_delay, des.events, des.cancelled_events, des.primed


def _quant_eps(r: _Realised) -> float:
    """Backend quantisation slack, already scaled by hop count.

    The legacy backends charge the same eps as their batched
    counterparts -- the engines are delay-equivalent, so the verdict
    thresholds must not differ between them.
    """
    if r.eff_backend == "fluid":
        return FLUID_GRID_FACTOR * r.scenario.dt * r.hops
    if r.eff_backend in ("tree_des", "tree_des_legacy"):
        return DES_MTU_FACTOR * r.mtu * r.hops
    return (DES_MTU_FACTOR * r.mtu + r.extra_eps) * r.hops


# ----------------------------------------------------------------------
# Worker stage
# ----------------------------------------------------------------------
def evaluate_cell(scenario: Scenario) -> CellResult:
    """Realise and simulate one cell (the picklable worker stage).

    Exceptions deliberately propagate: the executor layer captures them
    into per-cell error results, which :func:`finalise_batch` turns
    into failed verdicts.
    """
    with span("realise"):
        r = _realise(scenario)
    # Chaos-harness hook: a single None check when no FaultPlan is
    # active, an injected failure (raise/kill/delay/hang) when one is.
    faults.check_fault("kernel", scenario)
    with span("simulate"):
        measured, events, cancelled, primed = _simulate(r)
    if primed:
        counter_add("primed_cells")
    return CellResult(
        name=scenario.name,
        eff_mode=r.eff_mode,
        eff_backend=r.eff_backend,
        hops=r.hops,
        propagation_total=float(sum(r.propagation)),
        sigmas=tuple(float(e.sigma) for e in r.envelopes),
        rhos=tuple(float(e.rho) for e in r.envelopes),
        measured=float(measured),
        events=events,
        cancelled_events=cancelled,
        height_ok=r.height_ok,
        quant_eps=_quant_eps(r),
        primed=primed,
    )


def evaluate_cells_grouped(
    scenarios: Sequence[Scenario],
    *,
    tick: Optional[callable] = None,
    stats: Optional[dict] = None,
    batch_realise: Optional[bool] = None,
    cost_model=None,
) -> list[TaskResult]:
    """Evaluate a matrix with structure-of-arrays cell grouping.

    Cells sharing ``(backend, discipline, topology, mode shape)`` are
    packed into parameter matrices and resolved by one vectorised pass
    per group (:mod:`repro.scenarios.cellmatrix`); cells no group
    kernel covers -- and cells whose grouped realisation raises -- fall
    back to :func:`evaluate_cell` semantics individually, so results
    (including error strings) are bit-identical to the per-cell path.

    ``batch_realise`` selects batched cross-cell trace synthesis
    (:mod:`repro.scenarios.tracebatch`) for the candidate cells:
    ``None`` (default) batches whenever more than one candidate exists,
    ``True``/``False`` force it.  Throughput-only; bit-identical either
    way.  ``cost_model`` (optional) prices the batch realisation so the
    grouping summary can compare prediction with measurement.

    Returns one :class:`~repro.runtime.executor.TaskResult` per
    scenario, in input order, exactly like
    ``SerialExecutor.map_tasks(evaluate_cell, scenarios)``.  ``stats``
    (optional, a mutable mapping) receives grouping telemetry: per-group
    sizes, lane packing and padding waste, per-reason fallback counts,
    and the source-cache hit rate.
    """
    from repro.scenarios.cellmatrix import evaluate_grouped

    return evaluate_grouped(
        scenarios,
        tick=tick,
        stats=stats,
        batch_realise=batch_realise,
        cost_model=cost_model,
    )


# ----------------------------------------------------------------------
# Parent stages: vectorised bounds + verdicts
# ----------------------------------------------------------------------
def _error_outcome(
    sc: Scenario, task: TaskResult
) -> ScenarioOutcome:
    return ScenarioOutcome(
        scenario=sc,
        eff_mode=sc.mode,
        eff_backend=sc.backend,
        hops=0,
        propagation_total=0.0,
        measured=float("nan"),
        bound=float("nan"),
        baseline_bound=float("nan"),
        eps=0.0,
        events=0,
        cancelled_events=0,
        height_ok=True,
        wall_time=task.wall_time,
        error=task.error or "unknown worker error",
        telemetry=task.telemetry,
        attempts=task.attempts,
        attempt_errors=tuple(task.attempt_errors),
    )


def finalise_batch(
    scenarios: Sequence[Scenario],
    tasks: Sequence[TaskResult],
    elapsed: float,
    *,
    progress: Optional[callable] = None,
) -> BatchReport:
    """Vectorised analytic pass + per-cell verdicts over worker results.

    ``progress`` (optional) is called as ``progress(i, n, outcome)``
    per finalised cell.
    """
    if len(tasks) != len(scenarios):
        raise ValueError("one task result per scenario is required")
    ok = [i for i, t in enumerate(tasks) if t.ok]
    bounds = np.full(len(scenarios), np.nan)
    baselines = np.full(len(scenarios), np.nan)
    t_bounds = time.perf_counter()
    if ok:
        cells: list[CellResult] = [tasks[i].value for i in ok]
        # Envelopes are frozen value records, and parameter sweeps
        # repeat (sigma, rho) points across many cells: build each
        # distinct envelope once for the whole batch.
        env_cache: dict[tuple[float, float], ArrivalEnvelope] = {}

        def _env(s: float, r: float) -> ArrivalEnvelope:
            e = env_cache.get((s, r))
            if e is None:
                e = ArrivalEnvelope(s, r)
                env_cache[(s, r)] = e
            return e

        ok_bounds, ok_baselines = batch_bounds(
            [
                [_env(s, r) for s, r in zip(c.sigmas, c.rhos)]
                for c in cells
            ],
            [c.eff_mode for c in cells],
            hops=[c.hops for c in cells],
            propagation_total=[c.propagation_total for c in cells],
            capacity=[scenarios[i].capacity for i in ok],
        )
        bounds[ok] = ok_bounds
        baselines[ok] = ok_baselines
    bounds_dur = time.perf_counter() - t_bounds
    t_verdict = time.perf_counter()
    outcomes: list[ScenarioOutcome] = []
    for i, (sc, task) in enumerate(zip(scenarios, tasks)):
        if not task.ok:
            outcome = _error_outcome(sc, task)
        else:
            cell: CellResult = task.value
            bound = float(bounds[i])
            rel = EPS_REL * bound if np.isfinite(bound) else 0.0
            outcome = ScenarioOutcome(
                scenario=sc,
                eff_mode=cell.eff_mode,
                eff_backend=cell.eff_backend,
                hops=cell.hops,
                propagation_total=cell.propagation_total,
                measured=cell.measured,
                bound=bound,
                baseline_bound=float(baselines[i]),
                eps=rel + EPS_ABS + cell.quant_eps,
                events=cell.events,
                cancelled_events=cell.cancelled_events,
                height_ok=cell.height_ok,
                wall_time=task.wall_time,
                primed=cell.primed,
                telemetry=task.telemetry,
                attempts=task.attempts,
                attempt_errors=tuple(task.attempt_errors),
            )
        outcomes.append(outcome)
        if progress is not None:
            progress(i, len(scenarios), outcome)
    verdict_dur = time.perf_counter() - t_verdict
    # The analytic pass and the verdict loop are batch-level (one NumPy
    # call / one Python loop for the whole matrix), so their cost is
    # amortised evenly across the cells that went through them -- the
    # per-cell phase breakdown then accounts for the full pipeline, not
    # just the worker stage.
    ok_tels = [
        tasks[i].telemetry for i in ok if tasks[i].telemetry is not None
    ]
    for tel in ok_tels:
        tel.add_phase("bounds", bounds_dur / len(ok_tels))
    all_tels = [o.telemetry for o in outcomes if o.telemetry is not None]
    for tel in all_tels:
        tel.add_phase("verdict", verdict_dur / len(all_tels))
    return BatchReport(outcomes=tuple(outcomes), elapsed=elapsed)


# ----------------------------------------------------------------------
# Batch driver
# ----------------------------------------------------------------------
def run_batch(
    scenarios: Sequence[Scenario],
    *,
    executor: Optional[Executor] = None,
    progress: Optional[callable] = None,
    tick: Optional[callable] = None,
    cost_model=None,
    group_cells: Optional[bool] = None,
    batch_realise: Optional[bool] = None,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    fault_plan: Optional[faults.FaultPlan] = None,
) -> BatchReport:
    """Evaluate a scenario matrix: parallel cells, vectorised bounds.

    ``executor`` defaults to the in-process serial backend; any
    :class:`repro.runtime.executor.Executor` parallelises the worker
    stage with identical results.  ``tick`` (optional) is called as
    ``tick(done, total)`` while cells are in flight (per completed
    chunk); ``progress`` (optional) is called as
    ``progress(i, n, outcome)`` per finalised cell afterwards.

    ``cost_model`` (a :class:`repro.runtime.cost.CellCostModel`,
    optional) enables cost-aware scheduling on parallel executors:
    dearest-first submission in cost-equalised, variance-shrunk chunks
    (:func:`repro.runtime.cost.plan_chunks`).  Scheduling-only -- the
    outcomes are bit-identical with or without it.

    ``group_cells`` routes the worker stage through the
    structure-of-arrays grouped evaluator
    (:func:`evaluate_cells_grouped`) instead of per-cell
    :func:`evaluate_cell` calls.  ``None`` (the default) enables
    grouping automatically when the executor runs in-process
    (``Executor.supports_cell_grouping``); ``True`` forces it (still
    in-process, bypassing the executor's worker pool); ``False``
    disables it.  Grouping is throughput-only: outcomes are
    bit-identical either way (``wall_time`` attribution aside, which
    grouped evaluation estimates by amortising each group kernel over
    its cells).

    ``batch_realise`` is forwarded to the grouped evaluator: ``None``
    (default) lets it batch trace synthesis across cells whenever more
    than one grouping candidate exists, ``True``/``False`` force it.
    Like grouping itself it is throughput-only and bit-identical; it
    has no effect when ``group_cells`` resolves to ``False``.

    ``retry``/``cell_timeout`` opt into the executor's fault-tolerant
    path (see :class:`repro.runtime.executor.RetryPolicy`); grouped
    evaluation runs in-process, so there they apply as a serial
    retry pass over the cells whose first (grouped) attempt errored.
    ``fault_plan`` (a :class:`repro.runtime.faults.FaultPlan`) arms the
    deterministic chaos harness; it forces per-cell evaluation, since
    injection targets the ``evaluate_cell`` path.
    """
    # An empty matrix is a legal degenerate case (a shard that owns
    # zero cells, `--shard i/N` with N > count): report nothing rather
    # than raising, so sharded campaign scripts exit cleanly.
    if not scenarios:
        return BatchReport(outcomes=(), elapsed=0.0)
    scenarios = list(scenarios)
    t0 = time.perf_counter()
    ex = executor if executor is not None else SerialExecutor()
    if fault_plan is not None:
        # Injection lives in evaluate_cell; the grouped evaluator's
        # batch kernels would bypass it.
        group_cells = False
    if group_cells is None:
        group_cells = getattr(ex, "supports_cell_grouping", False)
    worker = (
        evaluate_cell
        if fault_plan is None
        else functools.partial(faults.evaluate_cell_under_plan, fault_plan)
    )
    if group_cells:
        stats: dict = {}
        tasks = evaluate_cells_grouped(
            scenarios,
            tick=tick,
            stats=stats,
            batch_realise=batch_realise,
            cost_model=cost_model,
        )
        if retry is not None and retry.max_attempts > 1:
            # Grouped evaluation already spent attempt 1 of any cell
            # that errored; give it the rest of its budget per-cell.
            tasks = [
                t
                if t.ok
                else _run_one_with_retry(
                    evaluate_cell,
                    t.index,
                    scenarios[t.index],
                    True,
                    retry,
                    cell_timeout,
                    start_attempt=2,
                    prior_errors=(_error_head(t.error),),
                )
                for t in tasks
            ]
        report = finalise_batch(
            scenarios, tasks, time.perf_counter() - t0, progress=progress
        )
        return dataclasses.replace(
            report, group_stats=tuple(stats.get("records", ()))
        )
    plan = None
    if cost_model is not None and getattr(ex, "jobs", 1) > 1:
        from repro.runtime.cost import plan_chunks, spec_group_key

        costs = cost_model.estimate_many(scenarios)
        plan = plan_chunks(
            costs,
            ex.jobs,
            variances=[cost_model.relative_variance(sc) for sc in scenarios],
            groups=[spec_group_key(sc) for sc in scenarios],
        )
    tasks = ex.map_tasks(
        worker,
        scenarios,
        progress=tick,
        chunk_plan=plan,
        retry=retry,
        cell_timeout=cell_timeout,
    )
    return finalise_batch(
        scenarios, tasks, time.perf_counter() - t0, progress=progress
    )


def run_scenario(scenario: Scenario) -> ScenarioOutcome:
    """Evaluate a single scenario (a batch of one)."""
    return run_batch([scenario]).outcomes[0]
