"""Smoke tests: every example script runs and prints sane output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "sigma-rho-lambda" in out
    assert "0.73" in out or "0.732" in out


def test_tree_construction():
    out = run_example("tree_construction.py")
    assert "DSCT" in out and "NICE" in out
    assert "capacity-aware" in out


@pytest.mark.slow
def test_single_host_regulation():
    out = run_example("single_host_regulation.py")
    assert "DES" in out and "fluid" in out and "analytic bound" in out


@pytest.mark.slow
def test_multigroup_streaming_small():
    out = run_example("multigroup_streaming.py", "--hosts", "80", "--u", "0.9")
    assert "dsct+sigma-rho-lambda" in out
    assert "WDB" in out


@pytest.mark.slow
def test_adaptive_switching():
    out = run_example("adaptive_switching.py")
    assert "sigma-rho-lambda" in out
    assert "adaptivity gain" in out
