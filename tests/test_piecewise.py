"""PiecewiseLinearCurve: evaluation, deviations, envelopes (+ hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.piecewise import PiecewiseLinearCurve as PLC


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PLC([0, 1], [0])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PLC([0, 2, 1], [0, 1, 2])

    def test_rejects_decreasing_values(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PLC([0, 1, 2], [0, 2, 1])

    def test_arrays_are_read_only(self):
        c = PLC([0, 1], [0, 1])
        with pytest.raises(ValueError):
            c.times[0] = 5.0

    def test_from_segments(self):
        c = PLC.from_segments(0.0, 0.0, [1.0, 2.0], [1.0, 0.5])
        assert c.total == pytest.approx(2.0)
        assert c(1.0) == pytest.approx(1.0)
        assert c(3.0) == pytest.approx(2.0)

    def test_from_rate_grid_matches_cumsum(self):
        rates = [1.0, 0.0, 2.0]
        c = PLC.from_rate_grid(0.5, rates)
        assert c.total == pytest.approx(0.5 * 3.0)
        assert c(0.5) == pytest.approx(0.5)
        assert c(1.0) == pytest.approx(0.5)

    def test_affine_starts_at_sigma(self):
        c = PLC.affine(2.0, 0.5, 10.0)
        assert c(0.0) == pytest.approx(2.0)
        assert c(10.0) == pytest.approx(7.0)


class TestEvaluation:
    def test_interpolates(self):
        c = PLC([0, 2], [0, 4])
        assert c(1.0) == pytest.approx(2.0)

    def test_clamps_outside_domain(self):
        c = PLC([1, 2], [3, 5])
        assert c(0.0) == pytest.approx(3.0)
        assert c(10.0) == pytest.approx(5.0)

    def test_left_vs_right_at_jump(self):
        c = PLC.from_packet_arrivals([1.0], [2.0])
        assert c.evaluate(1.0, side="right") == pytest.approx(2.0)
        assert c.evaluate(1.0, side="left") == pytest.approx(0.0)

    def test_vectorised(self):
        c = PLC([0, 1], [0, 1])
        out = c(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_rejects_bad_side(self):
        c = PLC([0, 1], [0, 1])
        with pytest.raises(ValueError):
            c.evaluate(0.5, side="middle")


class TestFirstPassage:
    def test_simple_ramp(self):
        c = PLC([0, 2], [0, 4])
        assert c.first_passage(2.0) == pytest.approx(1.0)

    def test_level_above_total_is_inf(self):
        c = PLC([0, 1], [0, 1])
        assert c.first_passage(2.0) == np.inf

    def test_jump_level_maps_to_jump_instant(self):
        c = PLC.from_packet_arrivals([1.0, 3.0], [2.0, 2.0])
        assert c.first_passage(1.0) == pytest.approx(1.0)
        assert c.first_passage(3.0) == pytest.approx(3.0)

    def test_plateau_returns_left_edge(self):
        c = PLC([0, 1, 2, 3], [0, 1, 1, 2])
        assert c.first_passage(1.0) == pytest.approx(1.0)


class TestPacketArrivals:
    def test_merges_simultaneous(self):
        c = PLC.from_packet_arrivals([1.0, 1.0], [1.0, 2.0])
        assert c.total == pytest.approx(3.0)
        assert c.evaluate(1.0) == pytest.approx(3.0)

    def test_empty_trace(self):
        c = PLC.from_packet_arrivals([], [])
        assert c.total == 0.0

    def test_is_staircase(self):
        assert PLC.from_packet_arrivals([1.0], [1.0]).is_staircase
        assert not PLC([0, 1], [0, 1]).is_staircase


class TestBinaryOps:
    def test_add_on_union_grid(self):
        a = PLC([0, 2], [0, 2])
        b = PLC([0, 1, 2], [0, 0, 2])
        c = a + b
        assert c(1.0) == pytest.approx(1.0)
        assert c(2.0) == pytest.approx(4.0)

    def test_minimum_inserts_crossings(self):
        a = PLC([0, 2], [0, 4])       # slope 2
        b = PLC([0, 2], [1, 3])       # slope 1, starts higher
        m = a.minimum(b)
        # Crossing at t = 1 where both equal 2.
        assert m(1.0) == pytest.approx(2.0)
        assert m(0.0) == pytest.approx(0.0)
        assert m(2.0) == pytest.approx(3.0)

    def test_binary_ops_reject_staircases(self):
        a = PLC.from_packet_arrivals([1.0], [1.0])
        b = PLC([0, 2], [0, 2])
        with pytest.raises(ValueError, match="fluid"):
            _ = a + b

    def test_scale(self):
        c = PLC([0, 1], [0, 2]).scale(0.5)
        assert c.total == pytest.approx(1.0)
        with pytest.raises(ValueError):
            c.scale(-1.0)


class TestDeviations:
    def test_backlog_of_shifted_ramp(self):
        a = PLC([0, 10], [0, 10])
        d = PLC([0, 1, 11], [0, 0, 10])  # serves after 1 s latency
        assert a.max_vertical_deviation(d) == pytest.approx(1.0)

    def test_delay_of_shifted_ramp(self):
        a = PLC([0, 10], [0, 10])
        d = PLC([0, 1, 11], [0, 0, 10])
        assert a.max_horizontal_deviation(d) == pytest.approx(1.0, abs=1e-6)

    def test_delay_infinite_when_undelivered(self):
        a = PLC([0, 1], [0, 10])
        d = PLC([0, 1], [0, 1])
        assert a.max_horizontal_deviation(d) == np.inf

    def test_burst_through_rate_server(self):
        # A burst of 2 at t=0 served at rate 1: last bit waits 2 s.
        a = PLC.from_packet_arrivals([0.0], [2.0])
        d = PLC([0, 2, 3], [0, 2, 2])
        assert a.max_horizontal_deviation(d) == pytest.approx(2.0, abs=1e-6)
        assert a.max_vertical_deviation(d) == pytest.approx(2.0)

    def test_identical_curves_zero_deviation(self):
        a = PLC([0, 5], [0, 5])
        assert a.max_horizontal_deviation(a) == pytest.approx(0.0, abs=1e-6)
        assert a.max_vertical_deviation(a) == pytest.approx(0.0)


class TestEnvelopeQueries:
    def test_min_sigma_of_cbr_is_small(self):
        c = PLC([0, 10], [0, 5])  # pure rate 0.5
        assert c.min_sigma(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_min_sigma_of_burst(self):
        c = PLC.from_packet_arrivals([0.0], [3.0])
        assert c.min_sigma(1.0) == pytest.approx(3.0)

    def test_conforms(self):
        c = PLC.from_packet_arrivals([0.0, 1.0], [1.0, 1.0])
        assert c.conforms(sigma=1.0, rho=1.0)
        assert not c.conforms(sigma=0.5, rho=0.1)

    def test_mean_rate(self):
        c = PLC([0, 4], [0, 2])
        assert c.mean_rate() == pytest.approx(0.5)


class TestTransforms:
    def test_shift(self):
        c = PLC([0, 1], [0, 1]).shift(dt=2.0, dv=3.0)
        assert c.start_time == pytest.approx(2.0)
        assert c.total == pytest.approx(4.0)

    def test_restrict(self):
        c = PLC([0, 10], [0, 10]).restrict(4.0)
        assert c.end_time == pytest.approx(4.0)
        assert c.total == pytest.approx(4.0)

    def test_segment_rates(self):
        c = PLC([0, 1, 3], [0, 2, 2])
        assert np.allclose(c.segment_rates(), [2.0, 0.0])


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
@st.composite
def packet_traces(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    sizes = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=3.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    times = np.cumsum(gaps)
    return times, np.asarray(sizes)


@given(packet_traces())
@settings(max_examples=60, deadline=None)
def test_min_sigma_makes_curve_conformant(trace):
    times, sizes = trace
    c = PLC.from_packet_arrivals(times, sizes)
    for rho in (0.0, 0.3, 1.0):
        sigma = c.min_sigma(rho)
        assert c.conforms(sigma + 1e-9, rho)
        # Tightness: anything smaller fails (when sigma is positive).
        if sigma > 1e-6:
            assert not c.conforms(sigma * 0.9, rho)


@given(packet_traces(), st.floats(min_value=0.2, max_value=2.0))
@settings(max_examples=60, deadline=None)
def test_rate_server_delay_never_exceeds_sigma_over_c(trace, capacity):
    """Cruz: a (sigma, rho<=C) flow through a rate-C server waits <= sigma/C."""
    times, sizes = trace
    arr = PLC.from_packet_arrivals(times, sizes)
    # Fluid service at rate `capacity` starting from the first arrival.
    grid = np.linspace(
        float(times[0]), float(times[-1]) + arr.total / capacity + 1.0, 2048
    )
    service = capacity * (grid - grid[0])
    backlog_free = np.minimum.accumulate(arr.evaluate(grid) - service)
    dep = PLC(grid, service + backlog_free)
    sigma = arr.min_sigma(capacity)
    measured = arr.max_horizontal_deviation(dep)
    grid_step = grid[1] - grid[0]
    assert measured <= sigma / capacity + 2 * grid_step + 1e-6


@given(packet_traces())
@settings(max_examples=40, deadline=None)
def test_first_passage_inverts_evaluation(trace):
    times, sizes = trace
    c = PLC.from_packet_arrivals(times, sizes)
    levels = np.linspace(1e-6, c.total, 17)
    t = c.first_passage(levels)
    # The curve evaluated (right-continuously) at the passage time has
    # reached the level.
    vals = c.evaluate(t, side="right")
    assert np.all(vals >= levels - 1e-9)
