"""Vectorised fluid simulation backend.

The sweeps behind Figures 4 and 6 need hundreds of (rate, scheme,
workload) points; an exact packet DES is the reference but too slow to
sweep comfortably.  This backend rasterises traffic onto a uniform time
grid and pushes *cumulative* arrays through O(n) NumPy kernels -- the
same regulator and multiplexer semantics as the DES (the test suite
cross-validates the two backends on identical traces).

The single workhorse identity: a work-conserving server whose available
cumulative service is ``S(t)`` (non-decreasing) turns arrivals ``A``
into departures

.. math::

    D(t) = \\min_{u \\le t} \\big[ A(u) + S(t) - S(u) \\big]
          = S(t) + \\min_{u \\le t} [A(u) - S(u)],

one ``np.minimum.accumulate``.  Every stage is an instance:

* constant-rate MUX: ``S(t) = C t``;
* (sigma, rho, lambda) vacation regulator: ``S(t) = C * OnTime(t)``
  where ``OnTime`` accumulates the working windows (closed form,
  vectorised);
* strict priority ("general MUX" adversarial case): the tagged flow's
  available service is the capacity left over by the others,
  ``S_tag = C t - D_others``;
* token bucket: ``D = min(A, sigma + rho t + min_{u<=t}[A(u) - rho u])``
  (greedy (sigma, rho) shaper, bucket initially full).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController, ControlMode
from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.flow import PacketTrace
from repro.utils.piecewise import PiecewiseLinearCurve
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "fluid_work_conserving",
    "fluid_token_bucket",
    "fluid_on_time",
    "fluid_vacation_regulator",
    "fluid_mux",
    "batch_fluid_work_conserving",
    "batch_fluid_token_bucket",
    "batch_fluid_on_time",
    "batch_fluid_next_empty",
    "FluidHostResult",
    "simulate_fluid_host",
    "FluidChainResult",
    "simulate_fluid_chain",
]

#: Interpolation tolerance of the lean first-passage replica -- the
#: same value as :data:`repro.utils.piecewise._EPS`, on which the
#: bit-identity of `_first_passage_arrays` with
#: :meth:`PiecewiseLinearCurve.first_passage` rests.
_CURVE_EPS = 1e-12


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def fluid_work_conserving(
    arrivals_cum: np.ndarray, service_cum: np.ndarray
) -> np.ndarray:
    """Departures of a work-conserving server with cumulative service ``S``.

    ``D = S + running_min(A - S)``; both inputs must be non-decreasing
    arrays on the same grid with ``A[0] >= 0`` and ``S[0] = 0``.

    One temporary total: the gap buffer is accumulated and re-added in
    place (HPC guidance: avoid copies in O(n) kernels).
    """
    gap = arrivals_cum - service_cum
    np.minimum.accumulate(gap, out=gap)
    np.add(gap, service_cum, out=gap)
    return gap


def fluid_token_bucket(
    arrivals_cum: np.ndarray, t_grid: np.ndarray, sigma: float, rho: float
) -> np.ndarray:
    """Greedy (sigma, rho) shaper (token bucket, initially full).

    ``D(t) = min( A(t), sigma + rho t + min_{u<=t}[A(u) - rho u] )``.
    An input already conforming to (sigma, rho) passes unchanged.

    Two temporaries total (the ramp and the running buffer); all other
    arithmetic is in place.
    """
    check_positive(sigma, "sigma")
    check_non_negative(rho, "rho")
    ramp = rho * t_grid
    run = arrivals_cum - ramp
    np.minimum.accumulate(run, out=run)
    np.add(run, ramp, out=run)
    run += sigma
    np.minimum(arrivals_cum, run, out=run)
    return run


def fluid_on_time(
    t_grid: np.ndarray, working: float, period: float, offset: float = 0.0
) -> np.ndarray:
    """Cumulative on-time of a periodic window schedule, in closed form.

    Windows are ``[offset + m P, offset + m P + W)`` for ``m >= 0``.
    """
    check_positive(working, "working")
    check_positive(period, "period")
    check_non_negative(offset, "offset")
    if working > period + 1e-12:
        raise ValueError("working period cannot exceed the cycle period")
    shifted = np.maximum(t_grid - offset, 0.0)
    full = np.floor(shifted / period)
    phase = shifted - full * period
    return full * working + np.minimum(phase, working)


def fluid_vacation_regulator(
    arrivals_cum: np.ndarray,
    t_grid: np.ndarray,
    regulator: SigmaRhoLambdaRegulator,
    offset: float = 0.0,
    out_rate: float = 1.0,
) -> np.ndarray:
    """(sigma, rho, lambda) regulator: rate-``out_rate`` service during windows."""
    on = fluid_on_time(
        t_grid, regulator.working_period, regulator.regulator_period, offset
    )
    return fluid_work_conserving(arrivals_cum, out_rate * on)


def fluid_mux(
    arrivals_cum: Sequence[np.ndarray],
    t_grid: np.ndarray,
    capacity: float = 1.0,
    *,
    discipline: str = "fifo",
    tagged: int = 0,
) -> list[np.ndarray]:
    """Per-flow departures from the work-conserving MUX.

    ``discipline="fifo"`` serves in arrival order: the aggregate is
    served at rate ``C`` and each flow's share is read off by level
    (FIFO preserves arrival order, so when the aggregate departure
    level is ``y``, exactly the first ``y`` arrived units -- in arrival
    order across flows -- have left).

    ``discipline="priority"`` realises the adversarial general MUX for
    the ``tagged`` flow: all other flows are served strictly first and
    the tagged flow gets the leftover service.  Bounds of Theorems 1/2
    hold for any work-conserving discipline, so this is the discipline
    the worst-case measurements use.
    """
    check_positive(capacity, "capacity")
    if not arrivals_cum:
        raise ValueError("at least one flow is required")
    n = len(arrivals_cum[0])
    for a in arrivals_cum:
        if len(a) != n:
            raise ValueError("all flows must share the same grid")
    service = t_grid - t_grid[0]
    service *= capacity
    if discipline == "fifo":
        agg = np.sum(arrivals_cum, axis=0)
        dep_agg = fluid_work_conserving(agg, service)
        out = []
        for a in arrivals_cum:
            # Flow share at aggregate level y: A_f at the time the
            # aggregate arrivals reached y (FIFO order preservation).
            out.append(_compose_by_level(dep_agg, agg, a))
        return out
    if discipline == "priority":
        if not 0 <= tagged < len(arrivals_cum):
            raise ValueError(f"tagged flow {tagged} out of range")
        others = [a for i, a in enumerate(arrivals_cum) if i != tagged]
        if others:
            agg_others = np.sum(others, axis=0)
            dep_others = fluid_work_conserving(agg_others, service)
        else:
            agg_others = np.zeros(n)
            dep_others = np.zeros(n)
        # ``service`` is not consulted again: reuse it as the leftover
        # buffer instead of allocating one.
        leftover = np.subtract(service, dep_others, out=service)
        dep_tagged = fluid_work_conserving(arrivals_cum[tagged], leftover)
        out = []
        for i, a in enumerate(arrivals_cum):
            if i == tagged:
                out.append(dep_tagged)
            else:
                out.append(_compose_by_level(dep_others, agg_others, a))
        return out
    raise ValueError(f"unknown discipline {discipline!r}")


def fluid_next_empty(
    t_grid: np.ndarray,
    arrivals_agg: np.ndarray,
    capacity: float = 1.0,
    tol: float = 1e-9,
) -> np.ndarray:
    """For every grid instant, the next time the aggregate queue is empty.

    This is the worst feasible departure time of a bit present at that
    instant under the *general MUX* (no service-order guarantee): an
    adversarial discipline may serve the bit behind everything that
    arrives before the busy period ends.  Grid points beyond the last
    empty instant map to ``inf`` (extend the horizon).
    """
    dep = fluid_work_conserving(arrivals_agg, capacity * (t_grid - t_grid[0]))
    backlog = arrivals_agg - dep
    scale = max(float(arrivals_agg[-1]), 1.0)
    empty = backlog <= tol * scale
    empty_times = np.where(empty, t_grid, np.inf)
    # Backward running minimum: next empty time at or after each index.
    return np.minimum.accumulate(empty_times[::-1])[::-1]


def _compose_by_level(
    dep_agg: np.ndarray, arr_agg: np.ndarray, arr_flow: np.ndarray
) -> np.ndarray:
    """FIFO share extraction: ``D_f(t) = A_f( A_agg^{-1}( D_agg(t) ) )``.

    All arrays are non-decreasing on a common grid; the composition maps
    aggregate levels back through the aggregate arrival curve to the
    flow's own cumulative.  Flats in ``arr_agg`` are level sets with no
    arrivals, where any preimage gives the same ``A_f`` value.
    """
    idx = np.searchsorted(arr_agg, dep_agg, side="left")
    np.clip(idx, 1, len(arr_agg) - 1, out=idx)
    lo = idx - 1
    v0 = arr_agg[lo]
    rise = arr_agg[idx]
    np.subtract(rise, v0, out=rise)
    steep = rise > 1e-15
    # frac = clip((dep_agg - v0) / rise, 0, 1) where the bin rises,
    # else 1 (level sets with no arrivals) -- all in the ``v0`` buffer.
    frac = np.subtract(dep_agg, v0, out=v0)
    with np.errstate(invalid="ignore", divide="ignore"):
        np.divide(frac, rise, out=frac, where=steep)
    frac[~steep] = 1.0
    np.clip(frac, 0.0, 1.0, out=frac)
    f_lo = arr_flow[lo]
    out = arr_flow[idx]
    np.subtract(out, f_lo, out=out)
    np.multiply(out, frac, out=out)
    np.add(out, f_lo, out=out)
    # Levels at/below the first grid value.
    low = dep_agg <= arr_agg[0]
    out[low] = np.minimum(arr_flow[0], out[low])
    np.minimum(out, arr_flow[-1], out=out)
    return out


# ----------------------------------------------------------------------
# Batched (structure-of-arrays) kernels
# ----------------------------------------------------------------------
# Many lanes (one lane = one flow of one cell) share a single grid whose
# per-lane prefix ``t_grid[:n_i + 1]`` equals that lane's own grid; all
# kernels here are elementwise/prefix operations along axis 1, so every
# lane's valid prefix is bit-identical to the scalar kernel run on that
# lane alone.  Rows are padded on the right; padded arrival tails must
# be *flat* (repeat the last valid value) wherever a kernel's output is
# consumed beyond pure prefix reads (see :func:`batch_fluid_next_empty`).


def batch_fluid_work_conserving(
    arrivals_cum: np.ndarray, service_cum: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`fluid_work_conserving` over ``(lanes, grid)`` matrices."""
    gap = arrivals_cum - service_cum
    np.minimum.accumulate(gap, axis=1, out=gap)
    np.add(gap, service_cum, out=gap)
    return gap


def batch_fluid_token_bucket(
    arrivals_cum: np.ndarray,
    t_grid: np.ndarray,
    sigmas: np.ndarray,
    rhos: np.ndarray,
) -> np.ndarray:
    """Row-wise :func:`fluid_token_bucket`: lane ``i`` is shaped by
    ``(sigmas[i], rhos[i])``.  All lanes share ``t_grid``."""
    sigmas = np.asarray(sigmas, dtype=np.float64)
    rhos = np.asarray(rhos, dtype=np.float64)
    if np.any(sigmas <= 0):
        raise ValueError("sigmas must be > 0")
    if np.any(rhos < 0):
        raise ValueError("rhos must be >= 0")
    ramp = rhos[:, None] * t_grid[None, :]
    run = arrivals_cum - ramp
    np.minimum.accumulate(run, axis=1, out=run)
    np.add(run, ramp, out=run)
    run += sigmas[:, None]
    np.minimum(arrivals_cum, run, out=run)
    return run


def batch_fluid_on_time(
    t_grid: np.ndarray,
    working: np.ndarray,
    period: np.ndarray,
    offset: np.ndarray,
) -> np.ndarray:
    """Row-wise :func:`fluid_on_time`: one window schedule per lane."""
    working = np.asarray(working, dtype=np.float64)
    period = np.asarray(period, dtype=np.float64)
    offset = np.asarray(offset, dtype=np.float64)
    if np.any(working <= 0):
        raise ValueError("working periods must be > 0")
    if np.any(period <= 0):
        raise ValueError("cycle periods must be > 0")
    if np.any(offset < 0):
        raise ValueError("offsets must be >= 0")
    if np.any(working > period + 1e-12):
        raise ValueError("working period cannot exceed the cycle period")
    shifted = np.maximum(t_grid[None, :] - offset[:, None], 0.0)
    full = np.floor(shifted / period[:, None])
    phase = shifted - full * period[:, None]
    return full * working[:, None] + np.minimum(phase, working[:, None])


def batch_fluid_next_empty(
    t_grid: np.ndarray,
    arrivals_agg: np.ndarray,
    capacity: np.ndarray,
    n_valid: np.ndarray,
    tol: float = 1e-9,
) -> np.ndarray:
    """Row-wise :func:`fluid_next_empty` over per-cell aggregate rows.

    ``arrivals_agg[i]`` must be *flat-padded* beyond ``n_valid[i]``
    (repeat the last valid value): the flat tail keeps the row-end
    ``scale`` read equal to the scalar kernel's, and the padded region
    of ``empty_times`` is forced to ``inf`` before the backward running
    minimum so an unstable cell's ``inf`` tail is never masked by
    padded-bin drainage.  Each row's valid prefix is then bit-identical
    to the scalar kernel on that cell's own grid.
    """
    capacity = np.asarray(capacity, dtype=np.float64)
    n_valid = np.asarray(n_valid, dtype=np.int64)
    base = t_grid - t_grid[0]
    dep = batch_fluid_work_conserving(arrivals_agg, capacity[:, None] * base)
    backlog = arrivals_agg - dep
    scale = np.maximum(arrivals_agg[:, -1], 1.0)
    empty = backlog <= tol * scale[:, None]
    empty_times = np.where(empty, t_grid[None, :], np.inf)
    beyond = np.arange(t_grid.shape[0])[None, :] > n_valid[:, None]
    empty_times[beyond] = np.inf
    return np.minimum.accumulate(empty_times[:, ::-1], axis=1)[:, ::-1]


def _first_passage_arrays(
    t: np.ndarray, v: np.ndarray, levels: np.ndarray
) -> np.ndarray:
    """Lean replica of :meth:`PiecewiseLinearCurve.first_passage`.

    Operates on the raw breakpoint arrays, skipping the curve
    constructor (whose validation and defensive copies dominate the
    scalar call for grid-sized arrays but never change the values) --
    every arithmetic step below matches the method line for line, so
    the outputs are bit-identical.
    """
    idx = np.searchsorted(v, levels, side="left")
    out = np.empty_like(levels)
    beyond = idx >= len(v)
    out[beyond] = np.inf
    ok = ~beyond
    i = idx[ok]
    prev = np.maximum(i - 1, 0)
    t0, t1 = t[prev], t[i]
    v0, v1 = v[prev], v[i]
    rise = v1 - v0
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(
            rise > _CURVE_EPS,
            (levels[ok] - v0) / np.where(rise > _CURVE_EPS, rise, 1.0),
            1.0,
        )
    frac = np.clip(frac, 0.0, 1.0)
    res = t0 + frac * (t1 - t0)
    res = np.where(levels[ok] <= v[0], t[0], res)
    out[ok] = res
    return out


def _adversarial_worst_arrays(
    t_grid: np.ndarray,
    arr_cum: np.ndarray,
    reg_cum: np.ndarray,
    next_empty: np.ndarray,
) -> float:
    """Lean replica of :func:`_adversarial_worst` on raw arrays.

    Identical arithmetic, minus the :class:`PiecewiseLinearCurve`
    construction (validation passes and array copies that never change
    the values); the grouped cell-matrix evaluator calls this once per
    unique lane.
    """
    inc = np.diff(arr_cum)
    bins = np.nonzero(inc > 0)[0]
    if bins.size == 0:
        return 0.0
    t_arr = t_grid[bins + 1]
    levels = arr_cum[bins + 1]
    tol = 1e-9 * max(float(arr_cum[-1]), 1.0)
    release = _first_passage_arrays(
        t_grid, reg_cum, np.maximum(levels - tol, 0.0)
    )
    idx = np.searchsorted(t_grid, release, side="left")
    idx = np.clip(idx, 0, len(next_empty) - 1)
    worst_dep = next_empty[idx]
    if not np.all(np.isfinite(worst_dep)):
        return float("inf")
    return float(max((worst_dep - t_arr).max(), 0.0))


# ----------------------------------------------------------------------
# Host-level simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FluidHostResult:
    """Outcome of a fluid single-host run."""

    mode: str
    worst_case_delay: float
    per_flow_worst: tuple[float, ...]
    dt: float


def _regulator_stage(
    arrivals_cum: list[np.ndarray],
    t_grid: np.ndarray,
    envelopes: Sequence[ArrivalEnvelope],
    mode: str,
    capacity: float,
    stagger_phase: float,
) -> tuple[str, list[np.ndarray]]:
    """Apply the selected regulator family; returns (effective mode, outputs)."""
    controller = AdaptiveController(envelopes, capacity)
    if mode == "adaptive":
        mode = (
            "sigma-rho"
            if controller.select_mode() is ControlMode.SIGMA_RHO
            else "sigma-rho-lambda"
        )
    if mode == "none":
        return mode, list(arrivals_cum)
    if mode == "sigma-rho":
        return mode, [
            fluid_token_bucket(a, t_grid, e.sigma, e.rho / capacity)
            for a, e in zip(arrivals_cum, envelopes)
        ]
    if mode == "sigma-rho-lambda":
        plan = controller.build_stagger_plan()
        base = (stagger_phase % 1.0) * plan.period
        return mode, [
            fluid_vacation_regulator(
                a, t_grid, reg, offset=base + off, out_rate=capacity
            )
            for a, reg, off in zip(arrivals_cum, plan.regulators, plan.offsets)
        ]
    raise ValueError(f"unknown mode {mode!r}")


def _worst_delay(
    t_grid: np.ndarray, arr_cum: np.ndarray, dep_cum: np.ndarray
) -> float:
    """Worst-case FIFO delay between two cumulative arrays on the grid."""
    a = PiecewiseLinearCurve(t_grid, arr_cum)
    d = PiecewiseLinearCurve(t_grid, np.minimum(dep_cum, arr_cum[-1]))
    return a.max_horizontal_deviation(d)


def _adversarial_worst(
    t_grid: np.ndarray,
    arr_cum: np.ndarray,
    reg_cum: np.ndarray,
    next_empty: np.ndarray,
) -> float:
    """Worst feasible delay of any bit of one flow under the general MUX.

    A bit reaching cumulative level ``y`` arrives at the host at
    ``T_A(y)``, leaves its regulator at ``T_R(y)`` and -- served last by
    an adversarial work-conserving discipline -- leaves the MUX no later
    than the first instant after ``T_R(y)`` at which the aggregate MUX
    backlog empties.  The supremum over levels is evaluated at bin
    granularity (O(dt) quantisation, like every fluid measure here).
    """
    inc = np.diff(arr_cum)
    bins = np.nonzero(inc > 0)[0]
    if bins.size == 0:
        return 0.0
    t_arr = t_grid[bins + 1]  # data in bin j has fully arrived by t[j+1]
    levels = arr_cum[bins + 1]
    tol = 1e-9 * max(float(arr_cum[-1]), 1.0)
    reg_curve = PiecewiseLinearCurve(t_grid, reg_cum)
    release = reg_curve.first_passage(np.maximum(levels - tol, 0.0))
    idx = np.searchsorted(t_grid, release, side="left")
    idx = np.clip(idx, 0, len(next_empty) - 1)
    worst_dep = next_empty[idx]
    if not np.all(np.isfinite(worst_dep)):
        return float("inf")
    return float(max((worst_dep - t_arr).max(), 0.0))


def simulate_fluid_host(
    traces: Sequence[PacketTrace],
    envelopes: Sequence[ArrivalEnvelope],
    *,
    mode: str = "adaptive",
    capacity: float = 1.0,
    discipline: str = "priority",
    stagger_phase: float = 0.0,
    dt: float = 1e-3,
    horizon: Optional[float] = None,
    drain_margin: Optional[float] = None,
) -> FluidHostResult:
    """Fluid counterpart of :func:`repro.simulation.host_sim.simulate_regulated_host`.

    Parameters
    ----------
    traces, envelopes:
        One packet trace and one (sigma, rho) description per flow.
    stagger_phase:
        Fraction of the stagger period added to every vacation-regulator
        offset (the bounds hold for *any* phase; adversarial scenario
        tests sweep it).
    dt:
        Grid resolution in seconds; measured delays carry an O(dt)
        quantisation error.
    horizon:
        Traffic injection window (defaults to the longest trace).
    drain_margin:
        Extra simulated time so queues empty before measuring; defaults
        to a bound-derived margin.

    With ``discipline="priority"`` each flow is measured one-vs-rest
    (served last), realising the general-MUX worst case for every flow;
    with FIFO a single aggregate pass serves all flows.
    """
    if len(traces) != len(envelopes):
        raise ValueError("traces and envelopes must align")
    if not traces:
        raise ValueError("at least one flow is required")
    if horizon is None:
        horizon = max(float(tr.times[-1]) for tr in traces if len(tr)) + dt
    if drain_margin is None:
        drain_margin = _default_drain_margin(envelopes, capacity)
    total = horizon + drain_margin
    n_bins = int(np.ceil(total / dt))
    t_grid = dt * np.arange(n_bins + 1)
    arrivals = [
        np.concatenate(([0.0], np.cumsum(tr.restrict(horizon).binned_arrivals(dt, total))))
        for tr in traces
    ]
    eff_mode, shaped = _regulator_stage(
        arrivals, t_grid, envelopes, mode, capacity, stagger_phase
    )
    per_flow_worst = []
    if discipline == "fifo":
        deps = fluid_mux(shaped, t_grid, capacity, discipline="fifo")
        for a, d in zip(arrivals, deps):
            per_flow_worst.append(_worst_delay(t_grid, a, d))
    elif discipline == "priority":
        for f in range(len(traces)):
            deps = fluid_mux(shaped, t_grid, capacity, discipline="priority", tagged=f)
            per_flow_worst.append(_worst_delay(t_grid, arrivals[f], deps[f]))
    elif discipline == "adversarial":
        agg = np.sum(shaped, axis=0)
        next_empty = fluid_next_empty(t_grid, agg, capacity)
        for f in range(len(traces)):
            per_flow_worst.append(
                _adversarial_worst(t_grid, arrivals[f], shaped[f], next_empty)
            )
    else:
        raise ValueError(f"unknown discipline {discipline!r}")
    return FluidHostResult(
        mode=eff_mode,
        worst_case_delay=max(per_flow_worst),
        per_flow_worst=tuple(per_flow_worst),
        dt=dt,
    )


def _default_drain_margin(
    envelopes: Sequence[ArrivalEnvelope], capacity: float
) -> float:
    """A margin comfortably above any bound so queues fully drain."""
    agg_rho = sum(e.rho for e in envelopes) / capacity
    agg_sigma = sum(e.sigma for e in envelopes) / capacity
    if agg_rho < 1.0:
        base = agg_sigma / (1.0 - agg_rho)
    else:
        base = agg_sigma * 10.0
    # Vacation regulators may also hold a burst for up to ~2 periods.
    periods = max(e.sigma / max(e.rho, 1e-9) for e in envelopes)
    return 4.0 * base + 4.0 * periods + 1.0


# ----------------------------------------------------------------------
# Chain-level simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FluidChainResult:
    """Outcome of a fluid critical-path chain run.

    ``worst_case_delay`` follows the paper's Theorem-7 accounting: the
    sum over hops of the measured per-hop worst-case (general-MUX) delay
    plus the total underlay propagation.  ``fifo_end_to_end`` is the
    physical FIFO horizontal deviation, a lower reference.
    """

    mode: str
    hops: int
    worst_case_delay: float
    per_hop_delay: tuple[float, ...]
    fifo_end_to_end: float
    propagation_total: float
    dt: float


def simulate_fluid_chain(
    tagged_trace: PacketTrace,
    cross_traces_per_hop: Sequence[Sequence[PacketTrace]],
    envelopes: Sequence[ArrivalEnvelope],
    *,
    mode: str = "sigma-rho",
    capacity=1.0,
    discipline: str = "priority",
    stagger_phase: float = 0.0,
    propagation: Optional[Sequence[float]] = None,
    dt: float = 1e-3,
    horizon: Optional[float] = None,
) -> FluidChainResult:
    """Fluid counterpart of :func:`repro.simulation.chain.simulate_regulated_chain`.

    The tagged flow (index 0) traverses every hop; each hop serves K-1
    fresh cross flows.  Worst-case delay is the horizontal deviation
    between the tagged source curve and its arrival curve at the final
    receiver (propagation included).

    ``capacity`` may be a scalar or one value per hop -- the
    capacity-aware scheme divides each host's output capacity by its
    fan-out (every packet is replicated to every child), yielding
    hop-specific effective service rates.
    """
    hops = len(cross_traces_per_hop)
    if hops < 1:
        raise ValueError("at least one hop is required")
    k = len(envelopes)
    if propagation is None:
        propagation = [0.0] * hops
    if len(propagation) != hops:
        raise ValueError("propagation must have one entry per hop")
    if np.ndim(capacity) == 0:
        capacities = [float(capacity)] * hops
    else:
        capacities = [float(c) for c in capacity]
        if len(capacities) != hops:
            raise ValueError("capacity must be scalar or one entry per hop")
    if horizon is None:
        horizon = float(tagged_trace.times[-1]) + dt if len(tagged_trace) else 1.0
    margin = _default_drain_margin(envelopes, min(capacities)) * hops
    total = horizon + margin + float(np.sum(propagation))
    n_bins = int(np.ceil(total / dt))
    t_grid = dt * np.arange(n_bins + 1)

    source_cum = np.concatenate(
        ([0.0], np.cumsum(tagged_trace.restrict(horizon).binned_arrivals(dt, total)))
    )
    current = _shift_cum(source_cum, t_grid, propagation[0])
    per_hop_delay = []
    for h in range(hops):
        cap_h = capacities[h]
        cross = cross_traces_per_hop[h]
        if len(cross) != k - 1:
            raise ValueError(f"hop {h}: expected {k - 1} cross traces, got {len(cross)}")
        arrivals = [current] + [
            np.concatenate(([0.0], np.cumsum(tr.restrict(horizon).binned_arrivals(dt, total))))
            for tr in cross
        ]
        _, shaped = _regulator_stage(
            arrivals, t_grid, envelopes, mode, cap_h,
            stagger_phase=(stagger_phase + h * 0.37) % 1.0,
        )
        # Per-hop worst-case measurement under the requested discipline.
        if discipline == "adversarial":
            agg = np.sum(shaped, axis=0)
            next_empty = fluid_next_empty(t_grid, agg, cap_h)
            per_hop_delay.append(
                _adversarial_worst(t_grid, arrivals[0], shaped[0], next_empty)
            )
        elif discipline == "priority":
            deps_adv = fluid_mux(shaped, t_grid, cap_h, discipline="priority", tagged=0)
            per_hop_delay.append(_worst_delay(t_grid, arrivals[0], deps_adv[0]))
        elif discipline == "fifo":
            deps_f = fluid_mux(shaped, t_grid, cap_h, discipline="fifo")
            per_hop_delay.append(_worst_delay(t_grid, arrivals[0], deps_f[0]))
        else:
            raise ValueError(f"unknown discipline {discipline!r}")
        # Physical forwarding to the next hop is FIFO.
        deps = fluid_mux(shaped, t_grid, cap_h, discipline="fifo")
        nxt = deps[0]
        if h + 1 < hops:
            nxt = _shift_cum(nxt, t_grid, propagation[h + 1])
        current = nxt
    fifo_e2e = _worst_delay(t_grid, source_cum, current)
    prop_total = float(np.sum(propagation))
    worst = float(sum(per_hop_delay)) + prop_total
    return FluidChainResult(
        mode=mode,
        hops=hops,
        worst_case_delay=worst,
        per_hop_delay=tuple(per_hop_delay),
        fifo_end_to_end=fifo_e2e,
        propagation_total=prop_total,
        dt=dt,
    )


def _shift_cum(cum: np.ndarray, t_grid: np.ndarray, delay: float) -> np.ndarray:
    """Cumulative curve delayed by ``delay``: ``A'(t) = A(t - delay)``."""
    if delay == 0.0:
        return cum
    check_non_negative(delay, "delay")
    shifted = np.interp(t_grid - delay, t_grid, cum, left=cum[0])
    return shifted
