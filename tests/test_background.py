"""Co-existing background traffic (conclusion scenario)."""

import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.simulation.background import simulate_host_with_background
from repro.simulation.flow import CBRSource, VBRVideoSource
from repro.simulation.fluid import simulate_fluid_host


def scenario(u_groups=0.6, bg_rate=0.2, horizon=6.0):
    k = 3
    rho = u_groups / k
    stream = VBRVideoSource(rho).generate(horizon, rng=21).fragment(0.002)
    envs = [ArrivalEnvelope(max(stream.empirical_sigma(rho), 1e-6), rho)] * k
    bg = CBRSource(bg_rate, 0.002).generate(horizon)
    return [stream] * k, envs, [bg], [bg_rate]


class TestBackground:
    def test_runs_and_measures(self):
        traces, envs, bg, rates = scenario()
        res = simulate_host_with_background(traces, envs, bg, rates)
        assert res.worst_case_delay > 0
        assert res.background_rate == pytest.approx(0.2)
        assert res.residual_capacity == pytest.approx(0.8)
        assert len(res.per_flow_worst) == 3

    def test_background_increases_group_delays(self):
        traces, envs, bg, rates = scenario()
        with_bg = simulate_host_with_background(
            traces, envs, bg, rates, mode="sigma-rho"
        )
        without = simulate_fluid_host(
            traces, envs, mode="sigma-rho", discipline="adversarial", dt=1e-3
        )
        assert with_bg.worst_case_delay >= without.worst_case_delay - 1e-6

    def test_adaptive_mode_uses_residual_capacity(self):
        """A group load that is light on the full link but heavy on the
        residual capacity must flip the controller to the lambda mode."""
        # Group aggregate 0.55 of C=1 -> rho_bar well below the 0.79
        # threshold on the full link, but 0.55/0.6 ~ 0.92 of the
        # residual once the background takes 0.4.
        traces, envs, bg, rates = scenario(u_groups=0.55, bg_rate=0.4)
        res = simulate_host_with_background(traces, envs, bg, rates)
        assert res.mode == "sigma-rho-lambda"
        light = simulate_fluid_host(
            traces, envs, mode="adaptive", discipline="adversarial", dt=2e-3
        )
        assert light.mode == "sigma-rho"

    def test_saturating_background_rejected(self):
        traces, envs, bg, rates = scenario(bg_rate=1.0)
        with pytest.raises(ValueError, match="saturates"):
            simulate_host_with_background(traces, envs, bg, [1.0])

    def test_misaligned_inputs_rejected(self):
        traces, envs, bg, rates = scenario()
        with pytest.raises(ValueError):
            simulate_host_with_background(traces, envs[:-1], bg, rates)
        with pytest.raises(ValueError):
            simulate_host_with_background(traces, envs, bg, [])
