"""Discrete-event engine: ordering, determinism, cancellation."""

import pytest

from repro.simulation.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(2.0, log.append, "b")
    sim.schedule(1.0, log.append, "a")
    sim.schedule(3.0, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == pytest.approx(3.0)


def test_ties_break_by_priority_then_fifo():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, "third", priority=1)
    sim.schedule(1.0, log.append, "first", priority=0)
    sim.schedule(1.0, log.append, "fourth", priority=1)
    sim.schedule(1.0, log.append, "second", priority=0)
    sim.run()
    assert log == ["first", "second", "third", "fourth"]


def test_run_until_leaves_future_events():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, "a")
    sim.schedule(5.0, log.append, "b")
    sim.run(until=2.0)
    assert log == ["a"]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert log == ["a", "b"]


def test_schedule_in_is_relative():
    sim = Simulator()
    out = []
    sim.schedule(1.0, lambda: sim.schedule_in(0.5, lambda: out.append(sim.now)))
    sim.run()
    assert out == [pytest.approx(1.5)]


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match="past"):
        sim.schedule(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_in(-1.0, lambda: None)


def test_cancellation():
    sim = Simulator()
    log = []
    ev = sim.schedule(1.0, log.append, "cancelled")
    sim.schedule(2.0, log.append, "kept")
    ev.cancel()
    sim.run()
    assert log == ["kept"]


def test_cascading_events():
    """Components schedule from within callbacks (the usual pattern)."""
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 5:
            sim.schedule_in(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    assert ticks == [pytest.approx(i) for i in range(5)]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule_in(1e-9, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=1000)


def test_peek_time_and_pending():
    sim = Simulator()
    assert sim.peek_time() == float("inf")
    ev = sim.schedule(3.0, lambda: None)
    assert sim.peek_time() == pytest.approx(3.0)
    assert sim.pending == 1
    ev.cancel()
    assert sim.peek_time() == float("inf")
    assert sim.pending == 0


def test_determinism_across_runs():
    def run_once():
        sim = Simulator()
        log = []
        for i in range(50):
            sim.schedule((i * 37 % 10) / 10.0, log.append, i)
        sim.run()
        return log

    assert run_once() == run_once()


def test_cancelled_events_counter():
    sim = Simulator()
    events = [sim.schedule(1.0, lambda: None) for _ in range(5)]
    for ev in events[:3]:
        ev.cancel()
    assert sim.cancelled_events == 0  # lazy: nothing popped yet
    sim.run()
    assert sim.cancelled_events == 3
    assert sim.events_processed == 2


def test_peek_time_counts_discarded_residue():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek_time() == pytest.approx(2.0)
    assert sim.cancelled_events == 1


def test_pending_is_a_live_counter():
    """``pending`` must track schedule/cancel/pop without heap scans."""
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(10)]
    assert sim.pending == 10
    events[3].cancel()
    events[7].cancel()
    assert sim.pending == 8  # immediate, before any pop
    events[3].cancel()  # double-cancel must not double-decrement
    assert sim.pending == 8
    sim.run(until=5.0)
    assert sim.pending == 3  # 0,1,2,4,5 ran; 3/7 cancelled; 6,8,9 left
    sim.run()
    assert sim.pending == 0
    # Cancelling an already-executed event is a harmless no-op.
    events[0].cancel()
    assert sim.pending == 0


def test_schedule_batch_orders_and_args():
    sim = Simulator()
    log = []
    sim.schedule_batch(
        [1.0, 2.0, 3.0], log.append, [("a",), ("b",), ("c",)]
    )
    sim.schedule(2.5, log.append, "x")
    sim.run()
    assert log == ["a", "b", "x", "c"]


def test_schedule_batch_sorted_fast_path_matches_heap_path():
    def run(times, prefill):
        sim = Simulator()
        log = []
        if prefill:
            sim.schedule(10.0, log.append, "z")
        sim.schedule_batch(times, log.append, [(t,) for t in times])
        sim.run()
        return log

    times = [0.5, 1.5, 1.5, 2.5]
    # Empty-queue sorted batch (extend path) vs per-event pushes.
    assert run(times, prefill=False) + ["z"] == run(times, prefill=True)


def test_schedule_batch_unsorted_and_counters():
    sim = Simulator()
    log = []
    events = sim.schedule_batch([3.0, 1.0, 2.0], log.append, [(3,), (1,), (2,)])
    assert sim.pending == 3
    events[1].cancel()
    assert sim.pending == 2
    sim.run()
    assert log == [2, 3]
    assert sim.cancelled_events == 1


def test_schedule_batch_rejects_past_and_misaligned_args():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match="past"):
        sim.schedule_batch([0.5], lambda: None)
    with pytest.raises(ValueError, match="one tuple per time"):
        sim.schedule_batch([2.0, 3.0], lambda: None, [(1,)])
    assert sim.schedule_batch([], lambda: None) == []


def test_equal_time_cancel_reschedule_churn_is_deterministic():
    """Regression pin: components that cancel and reschedule at the
    *same* timestamp (the vacation regulator's wakeup pattern) must
    yield an identical execution order and heap-residue count on every
    run -- lazy cancellation may never reorder live events."""

    def run_once():
        sim = Simulator()
        log = []
        pending = {}

        def fire(name):
            log.append((sim.now, name))
            # Cancel a sibling scheduled at this same instant and
            # replace it with a new equal-time event (reschedule churn).
            victim = f"victim-{name}"
            if victim in pending:
                pending[victim].cancel()
                pending[victim] = sim.schedule(sim.now, fire, f"re-{name}")

        for i in range(8):
            t = (i % 3) * 0.5
            sim.schedule(t, fire, f"ev-{i}")
            pending[f"victim-ev-{i}"] = sim.schedule(t, log.append, (t, f"v-{i}"))
        sim.run()
        return log, sim.cancelled_events, sim.events_processed

    first = run_once()
    for _ in range(3):
        assert run_once() == first
    log, cancelled, processed = first
    assert cancelled == 8  # every victim was cancelled and popped
    # Equal-time replacements run after already-queued same-time events
    # (sequence numbers only grow), never before.
    times = [t for t, _ in log]
    assert times == sorted(times)
