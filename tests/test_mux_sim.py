"""The work-conserving MUX component: disciplines and conservation."""

import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.simulation.mux_sim import MuxServer
from repro.simulation.packet import Packet


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def receive(self, pkt):
        self.deliveries.append((self.sim.now, pkt))


def inject(sim, mux, specs):
    """specs: iterable of (time, flow_id, size)."""
    for t, f, s in specs:
        sim.schedule(t, mux.receive, Packet(f, s, t))


class TestFifo:
    def test_serialisation_delay(self):
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(sim, capacity=2.0, sink=sink)
        inject(sim, mux, [(0.0, 0, 1.0)])
        sim.run()
        assert sink.deliveries[0][0] == pytest.approx(0.5)  # size/capacity

    def test_fifo_order_across_flows(self):
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(sim, capacity=1.0, sink=sink)
        inject(sim, mux, [(0.0, 0, 0.1), (0.01, 1, 0.1), (0.02, 0, 0.1)])
        sim.run()
        flows = [p.flow_id for _, p in sink.deliveries]
        assert flows == [0, 1, 0]

    def test_work_conservation(self):
        """Busy period length equals total work / capacity."""
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(sim, capacity=0.5, sink=sink)
        inject(sim, mux, [(0.0, 0, 0.2), (0.0, 1, 0.2), (0.0, 2, 0.2)])
        sim.run()
        assert sink.deliveries[-1][0] == pytest.approx(0.6 / 0.5)
        assert mux.served_data == pytest.approx(0.6)
        assert mux.served_count == 3


class TestPriority:
    def test_low_priority_served_last(self):
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(
            sim, 1.0, sink, discipline="priority", priorities={0: 5, 1: 0}
        )
        # Both queued while the server is busy with an initial packet.
        inject(sim, mux, [(0.0, 1, 0.1), (0.01, 0, 0.1), (0.02, 1, 0.1)])
        sim.run()
        flows = [p.flow_id for _, p in sink.deliveries]
        assert flows == [1, 1, 0]

    def test_non_preemptive(self):
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(
            sim, 1.0, sink, discipline="priority", priorities={0: 5, 1: 0}
        )
        # Low priority in service is not interrupted by a later high one.
        inject(sim, mux, [(0.0, 0, 0.2), (0.05, 1, 0.1)])
        sim.run()
        assert [p.flow_id for _, p in sink.deliveries] == [0, 1]


class TestAdversarial:
    def test_batch_delivery_at_queue_empty(self):
        """Every packet's delivery time is the busy-period end -- the
        general-MUX worst case of Remark 1."""
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(sim, 1.0, sink, discipline="adversarial")
        inject(sim, mux, [(0.0, 0, 0.2), (0.0, 1, 0.2), (0.0, 2, 0.2)])
        sim.run()
        times = [t for t, _ in sink.deliveries]
        assert all(t == pytest.approx(0.6) for t in times)

    def test_separate_busy_periods_batch_separately(self):
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(sim, 1.0, sink, discipline="adversarial")
        inject(sim, mux, [(0.0, 0, 0.1), (5.0, 1, 0.1)])
        sim.run()
        times = sorted(t for t, _ in sink.deliveries)
        assert times[0] == pytest.approx(0.1)
        assert times[1] == pytest.approx(5.1)

    def test_adversarial_dominates_fifo_delay(self):
        """Per-packet worst-case delays >= the FIFO delays on the same input."""
        specs = [(i * 0.05, i % 3, 0.08) for i in range(40)]
        results = {}
        for disc in ("fifo", "adversarial"):
            sim = Simulator()
            sink = Collector(sim)
            mux = MuxServer(sim, 1.0, sink, discipline=disc)
            inject(sim, mux, specs)
            sim.run()
            delays = {p.uid: t - p.t_emit for t, p in sink.deliveries}
            results[disc] = delays
        # Packet identities differ between runs; compare multisets by rank.
        fifo = sorted(results["fifo"].values())
        adv = sorted(results["adversarial"].values())
        assert all(a >= f - 1e-12 for f, a in zip(fifo, adv))


class TestRoutingAndValidation:
    def test_sink_mapping_demultiplexes(self):
        sim = Simulator()
        a, b = Collector(sim), Collector(sim)
        mux = MuxServer(sim, 1.0, {0: a, 1: b})
        inject(sim, mux, [(0.0, 0, 0.1), (0.0, 1, 0.1)])
        sim.run()
        assert len(a.deliveries) == 1
        assert len(b.deliveries) == 1

    def test_unmapped_flow_is_dropped(self):
        sim = Simulator()
        a = Collector(sim)
        mux = MuxServer(sim, 1.0, {0: a})
        inject(sim, mux, [(0.0, 7, 0.1)])
        sim.run()
        assert a.deliveries == []

    def test_unknown_discipline_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MuxServer(sim, 1.0, Collector(sim), discipline="lifo")

    def test_queue_metrics(self):
        sim = Simulator()
        sink = Collector(sim)
        mux = MuxServer(sim, 1.0, sink)
        inject(sim, mux, [(0.0, 0, 0.5), (0.0, 1, 0.3)])
        sim.run(until=0.01)
        assert mux.queue_length == 1      # one in service (popped), one queued
        assert mux.backlog == pytest.approx(0.3)
