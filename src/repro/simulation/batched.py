"""Window-batched DES components: the engine-hot-path overhaul.

The legacy components (:mod:`repro.simulation.regulator_sim`,
:mod:`repro.simulation.mux_sim`) drive one callback chain per packet:
``receive -> schedule finish -> finish -> try-start-next``, with wakeup
cancel/reschedule churn on top.  For the expensive cells -- vacation
regulators and whole-tree runs -- almost all of that per-packet event
traffic is redundant, because the service inside a vacation window (and
a constant-rate MUX drain between arrival epochs) is a *closed-form
drain*: once the head of the queue starts transmitting, every
subsequent departure in the same busy train is determined by a
cumulative sum of serialisation times, and the non-preemptive fit check
is a cumulative-sum threshold against the window end.

This module exploits exactly that structure, at three levels:

:func:`vacation_departures`
    The pure kernel: departure times of a *fully known* arrival train
    through a (sigma, rho, lambda) vacation regulator, computed one
    busy train at a time with ``np.add.accumulate`` -- the float
    operations are sequenced identically to the legacy per-packet
    event chain, so the results are bit-identical to running the
    legacy :class:`~repro.simulation.regulator_sim.VacationComponent`.

:class:`BatchVacationComponent` / :class:`BatchMuxServer`
    Drop-in evented components for pipelines whose arrivals are *not*
    known in advance (chain hops, whole trees).  The vacation component
    commits a whole window's worth of service per wakeup (one
    continuation event per busy train instead of one finish event per
    packet); the MUX commits each packet's departure at arrival time
    (the constant-rate drain is a running ``busy_until`` float, no
    internal heap, no per-packet finish/start-next events) and, under
    the adversarial discipline, delivers each busy period with a single
    lazily-rescheduled release event.

:func:`primed_vacation_host`
    The array fast path for the single-host vacation cell (the dearest
    scenario family): all flows' traces are known up front, so the
    entire cell -- regulators, adversarial MUX, delay recording --
    collapses into NumPy passes over merged departure arrays with *no
    per-packet events at all*.  Used by
    :func:`repro.simulation.host_sim.simulate_regulated_host` when the
    batched engine meets ``mode="sigma-rho-lambda"`` and
    ``discipline="adversarial"``.

Equivalence contract: for every supported configuration the batched
components must reproduce the legacy components' measured delays
bit-for-bit (the float arithmetic is sequenced identically; only event
*counts* differ).  ``tests/test_des_batched_equivalence.py`` enforces
this over the curated corpus and hypothesis-generated traces; the
legacy path stays addressable as ``backend="des_legacy"`` /
``engine="legacy"`` precisely so that suite keeps both implementations
honest.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "vacation_departures",
    "BatchVacationComponent",
    "BatchMuxServer",
    "primed_vacation_host",
    "PrimedHostOutcome",
]

#: Window-boundary tolerance -- identical to the legacy component's
#: ``VacationComponent._TOL`` (the two implementations must agree on
#: every boundary decision to stay bit-identical).
_TOL = 1e-12
#: Fit-check slack, identical to the legacy ``_try_start`` comparison.
_FIT_EPS = 1e-15

_OVERSIZE_MSG = (
    "packet serialisation time exceeds the working period; "
    "decrease packet sizes or increase sigma"
)


# ----------------------------------------------------------------------
# Window arithmetic (kept formula-identical to the legacy component)
# ----------------------------------------------------------------------
def _window_index(t: float, offset: float, period: float) -> int:
    """Index of the cycle containing ``t`` (-1 before the first)."""
    if t < offset - _TOL:
        return -1
    return int((t - offset) // period)


def _service_step(
    t: float, tx_head: float, working: float, period: float, offset: float
) -> tuple[str, float]:
    """One legacy ``_try_start`` decision for a head packet at time ``t``.

    Returns ``("serve", window_end)`` when the head may start now
    (non-preemptive fit check), else ``("wake", wake_time)`` with the
    legacy wake instant (including the ``max(start, now + TOL)``
    nudge).  Both the evented component and the primed kernel route
    every tolerance-critical boundary decision through this single
    helper so the two paths cannot drift.
    """
    m = _window_index(t, offset, period)
    window_end = None
    if m >= 0:
        start = offset + m * period
        end = start + working
        if start - _TOL <= t < end - _TOL:
            window_end = end
    if window_end is not None and t + tx_head <= window_end + _FIT_EPS:
        return "serve", window_end
    if tx_head > working + _FIT_EPS:
        raise ValueError(_OVERSIZE_MSG)
    if window_end is None:
        if m < 0:
            nxt = offset
        else:
            start = offset + m * period
            if t < start + working - _TOL:
                nxt = t if t > start else start
            else:
                nxt = offset + (m + 1) * period
    else:
        # Inside a window the head does not fit into: next cycle.
        nxt = offset + (m + 1) * period
    # The legacy wake never lands at (or before) the current instant --
    # float noise there would spin the event loop.
    return "wake", (nxt if nxt > t + _TOL else t + _TOL)


def _service_base(
    t: float, tx_head: float, working: float, period: float, offset: float
) -> tuple[float, float]:
    """First instant >= ``t`` at which a head packet of serialisation
    time ``tx_head`` may start, plus the end of the window it starts
    in: the legacy ``_try_start`` / ``_wake_up`` loop without events.
    """
    for _ in range(64):
        action, value = _service_step(t, tx_head, working, period, offset)
        if action == "serve":
            return t, value
        t = value
    raise RuntimeError(
        "vacation window search did not converge; degenerate schedule?"
    )  # pragma: no cover - guarded by the oversize check


# ----------------------------------------------------------------------
# The pure kernel
# ----------------------------------------------------------------------
def vacation_departures(
    times: np.ndarray,
    sizes: np.ndarray,
    regulator: SigmaRhoLambdaRegulator,
    *,
    offset: float = 0.0,
    out_rate: float = 1.0,
) -> tuple[np.ndarray, int]:
    """Departure times of a known arrival train through a vacation regulator.

    Parameters
    ----------
    times, sizes:
        Non-decreasing arrival times and packet sizes (capacity-seconds).
    regulator:
        Window schedule source (working period / cycle period).
    offset, out_rate:
        Phase offset of the window cycle and in-window forwarding rate.

    Returns
    -------
    (departures, trains):
        Per-packet departure times, plus the number of busy trains
        processed (the batched path's event-count analogue: the legacy
        component pays one finish event per *packet*, this kernel one
        pass per *train*).

    The float arithmetic reproduces the legacy component exactly: each
    busy train's finish times are ``np.add.accumulate`` over
    ``[base, tx_0, tx_1, ...]`` -- the same left-to-right additions the
    per-packet ``schedule_in`` chain performs -- and every window
    boundary decision uses the legacy tolerances.
    """
    times = np.ascontiguousarray(times, dtype=np.float64)
    sizes = np.ascontiguousarray(sizes, dtype=np.float64)
    n = times.size
    deps = np.empty(n, dtype=np.float64)
    if n == 0:
        return deps, 0
    check_positive(out_rate, "out_rate")
    check_non_negative(offset, "offset")
    tx = sizes / out_rate
    working = float(regulator.working_period)
    period = float(regulator.regulator_period)
    if float(tx.max()) > working + _FIT_EPS:
        raise ValueError(_OVERSIZE_MSG)
    # Monotone cumulative work, used only to bound candidate train
    # lengths (an estimate -- under-estimates merely split a train into
    # two back-to-back passes with identical results).
    cum = np.concatenate(([0.0], np.cumsum(tx)))
    i = 0
    last_fin = -np.inf
    trains = 0
    while i < n:
        t = times[i] if times[i] > last_fin else last_fin
        base, end = _service_base(t, tx[i], working, period, offset)
        hi = int(np.searchsorted(cum, cum[i] + (end - base) + 1e-9, side="right"))
        hi = min(max(hi, i + 1), n)
        seg = np.empty(hi - i + 1, dtype=np.float64)
        seg[0] = base
        seg[1:] = tx[i:hi]
        fin = np.add.accumulate(seg)[1:]
        if hi > i + 1:
            # Non-preemptive continuation, exactly the legacy per-packet
            # checks: the server must still be inside the window when
            # the previous packet finishes (window_at), the next packet
            # must have arrived by then (queue non-empty; equal-time
            # arrivals precede the finish event), and it must fit.
            ok = (
                (times[i + 1 : hi] <= fin[:-1])
                & (fin[:-1] < end - _TOL)
                & (fin[1:] <= end + _FIT_EPS)
            )
            k = (hi - i) if bool(ok.all()) else 1 + int(np.argmin(ok))
        else:
            k = 1
        deps[i : i + k] = fin[:k]
        last_fin = float(fin[k - 1])
        i += k
        trains += 1
    return deps, trains


# ----------------------------------------------------------------------
# Evented batched components
# ----------------------------------------------------------------------
class BatchVacationComponent:
    """(sigma, rho, lambda) vacation regulator with window-batched service.

    Semantics are identical to the legacy
    :class:`~repro.simulation.regulator_sim.VacationComponent`; the
    difference is purely mechanical: when service starts, the whole
    backlog that fits into the current window is committed in one
    cumulative-sum pass -- one delivery event per packet plus a single
    train-end continuation event, instead of a finish/try-start
    callback pair per packet -- and the wakeup logic never reschedules
    an already-correct wake (no cancel churn on bursts).
    """

    def __init__(
        self,
        sim: Simulator,
        regulator: SigmaRhoLambdaRegulator,
        sink,
        *,
        offset: float = 0.0,
        out_rate: float = 1.0,
    ):
        self.sim = sim
        self.regulator = regulator
        self.sink = sink
        self.offset = check_non_negative(offset, "offset")
        self.out_rate = check_positive(out_rate, "out_rate")
        self._queue: deque[Packet] = deque()
        #: A committed busy train is in flight (deliveries scheduled).
        self._committed = False
        self._wake = None

    # -- inspection (parity with the legacy component) -------------------
    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def backlog(self) -> float:
        return sum(p.size for p in self._queue)

    # -- component interface ----------------------------------------------
    def receive(self, packet: Packet) -> None:
        self._queue.append(packet)
        if not self._committed:
            self._try_start()

    def _try_start(self) -> None:
        """Commit the longest head train the current window admits."""
        if self._committed or not self._queue:
            return
        sim = self.sim
        now = sim.now
        head_tx = self._queue[0].size / self.out_rate
        action, value = _service_step(
            now,
            head_tx,
            self.regulator.working_period,
            self.regulator.regulator_period,
            self.offset,
        )
        if action == "serve":
            self._commit_train(now, value)
            return
        start = value
        if self._wake is None or self._wake.cancelled or self._wake.time > start:
            if self._wake is not None:
                self._wake.cancel()
            self._wake = sim.schedule(start, self._wake_up)

    def _wake_up(self) -> None:
        self._wake = None
        self._try_start()

    def _commit_train(self, base: float, end: float) -> None:
        """Serve every queued packet that fits after ``base``; one pass."""
        queue = self._queue
        if len(queue) == 1:
            # Scalar fast path: short queues dominate at low load.
            pkt = queue.popleft()
            fin = base + pkt.size / self.out_rate
            self._committed = True
            self.sim.schedule(fin, self._finish_train, pkt)
            return
        pkts = list(queue)
        tx = np.array([p.size for p in pkts], dtype=np.float64) / self.out_rate
        seg = np.empty(tx.size + 1, dtype=np.float64)
        seg[0] = base
        seg[1:] = tx
        fin = np.add.accumulate(seg)[1:]
        ok = (fin[:-1] < end - _TOL) & (fin[1:] <= end + _FIT_EPS)
        k = tx.size if bool(ok.all()) else 1 + int(np.argmin(ok))
        for _ in range(k):
            queue.popleft()
        self._committed = True
        sim = self.sim
        if k > 1:
            sim.schedule_batch(
                fin[: k - 1], self.sink.receive, ((p,) for p in pkts[: k - 1])
            )
        sim.schedule(float(fin[k - 1]), self._finish_train, pkts[k - 1])

    def _finish_train(self, last_pkt: Packet) -> None:
        """Deliver the train's last packet, then look for more work.

        Mirrors the legacy ``_finish_tx``: the delivery happens before
        the next service decision, at the same timestamp.
        """
        self._committed = False
        self.sink.receive(last_pkt)
        self._try_start()


class BatchMuxServer:
    """Work-conserving MUX with commit-on-receive constant-rate drains.

    Supports the ``"fifo"`` and ``"adversarial"`` disciplines of the
    legacy :class:`~repro.simulation.mux_sim.MuxServer` (for
    ``"priority"`` the builders keep the legacy component -- a strict
    priority order cannot be committed ahead of future arrivals).

    FIFO service order equals arrival order, so each packet's departure
    is fixed the instant it arrives: ``dep = max(now, busy_until) +
    size/C`` -- a running float instead of an internal heap, and one
    delivery event per packet instead of a finish/start-next pair.

    The adversarial discipline (deliver at the end of the busy period;
    the general-MUX worst case the paper bounds) needs no per-packet
    events at all: packets are held, and a single *release check* event
    lazily chases the end of the busy period (rescheduling itself only
    when arrivals extended the period past its horizon -- typically one
    or two events per busy period, never more than one per packet).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        sink,
        *,
        discipline: str = "fifo",
        priorities: Optional[Mapping[int, int]] = None,
    ):
        if discipline not in ("fifo", "adversarial"):
            raise ValueError(
                f"BatchMuxServer supports 'fifo'/'adversarial', got {discipline!r}"
                " (use the legacy MuxServer for 'priority')"
            )
        self.sim = sim
        self.capacity = check_positive(capacity, "capacity")
        self.sink = sink
        self.discipline = discipline
        # Kept for interface parity (chain builders assign priorities
        # unconditionally); unused by these disciplines.
        self.priorities = dict(priorities or {})
        self._busy_until = -np.inf
        self._held: list[Packet] = []
        self._check = None
        self.served_count = 0
        self.served_data = 0.0

    @property
    def queue_length(self) -> int:
        """Committed-but-undelivered packets (adversarial hold depth)."""
        return len(self._held)

    @property
    def backlog(self) -> float:
        return sum(p.size for p in self._held)

    # -- component interface ----------------------------------------------
    def receive(self, packet: Packet) -> None:
        now = self.sim.now
        bu = self._busy_until
        start = now if now > bu else bu
        dep = start + packet.size / self.capacity
        self._busy_until = dep
        if self.discipline == "adversarial":
            self._held.append(packet)
            if self._check is None:
                # priority=-1: the release decision precedes equal-time
                # arrivals, matching the legacy finish-before-delivery
                # event order (an arrival at exactly the completion
                # instant opens a fresh busy period).
                self._check = self.sim.schedule(
                    dep, self._release_check, priority=-1
                )
        else:
            self.sim.schedule(dep, self._route, packet)

    def _release_check(self) -> None:
        if self.sim.now < self._busy_until:
            # Arrivals extended the busy period past this check's
            # horizon: chase the new end (no cancellation residue).
            self._check = self.sim.schedule(
                self._busy_until, self._release_check, priority=-1
            )
            return
        self._check = None
        held, self._held = self._held, []
        for pkt in held:
            self._route(pkt)

    def _route(self, pkt: Packet) -> None:
        # Served accounting happens here -- at delivery, not arrival --
        # so FIFO counters match the legacy completion-time counting
        # under horizon truncation (adversarial counts lag until the
        # busy period's release, equal once drained).
        self.served_count += 1
        self.served_data += pkt.size
        sink = self.sink
        if isinstance(sink, Mapping):
            target = sink.get(pkt.flow_id)
            if target is not None:
                target.receive(pkt)
            return
        sink.receive(pkt)


# ----------------------------------------------------------------------
# The primed single-host fast path
# ----------------------------------------------------------------------
class PrimedHostOutcome:
    """Raw product of :func:`primed_vacation_host` (arrays, no Packets)."""

    __slots__ = ("per_flow_delays", "trains", "busy_periods")

    def __init__(
        self,
        per_flow_delays: list[np.ndarray],
        trains: int,
        busy_periods: int,
    ):
        self.per_flow_delays = per_flow_delays
        self.trains = trains
        self.busy_periods = busy_periods

    @property
    def batch_events(self) -> int:
        """The batched path's event-count analogue: one pass per
        vacation busy train plus one release per MUX busy period."""
        return self.trains + self.busy_periods


def primed_vacation_host(
    traces: Sequence[tuple[np.ndarray, np.ndarray]],
    regulators: Sequence[SigmaRhoLambdaRegulator],
    offsets: Sequence[float],
    *,
    capacity: float = 1.0,
    horizon: Optional[float] = None,
    drain: bool = True,
) -> PrimedHostOutcome:
    """Array fast path for the staggered-vacation single host.

    Every flow's full arrival trace is known up front, so the cell
    needs no event loop at all: per-flow regulator departures come from
    :func:`vacation_departures`, the adversarial general MUX is a
    single merged pass (running ``busy_until`` float recurrence --
    sequenced exactly like the legacy per-packet events -- then a
    vectorised busy-period-end assignment), and per-flow delays are one
    subtraction.  Delivery times equal the end of each packet's MUX
    busy period, which is the legacy adversarial MUX's hold-and-release
    instant.

    Parameters
    ----------
    traces:
        Per-flow ``(times, sizes)`` arrays (already horizon-restricted).
    regulators, offsets:
        The stagger plan realised by the builder (absolute offsets).
    capacity:
        MUX service rate; also the regulators' in-window rate.
    horizon:
        With ``drain=False``, deliveries after this instant are
        discarded (the legacy ``run(until=horizon)`` truncation).
    drain:
        Keep every delivery (the default, like the legacy drain loop).
    """
    check_positive(capacity, "capacity")
    k = len(traces)
    dep_list: list[np.ndarray] = []
    emit_list: list[np.ndarray] = []
    size_list: list[np.ndarray] = []
    flow_list: list[np.ndarray] = []
    trains_total = 0
    for f in range(k):
        times, sizes = traces[f]
        deps, trains = vacation_departures(
            times, sizes, regulators[f], offset=float(offsets[f]),
            out_rate=capacity,
        )
        trains_total += trains
        dep_list.append(deps)
        emit_list.append(np.asarray(times, dtype=np.float64))
        size_list.append(np.asarray(sizes, dtype=np.float64))
        flow_list.append(np.full(deps.size, f, dtype=np.int64))
    arr = np.concatenate(dep_list) if dep_list else np.empty(0)
    emits = np.concatenate(emit_list) if emit_list else np.empty(0)
    sizes_all = np.concatenate(size_list) if size_list else np.empty(0)
    flows = np.concatenate(flow_list) if flow_list else np.empty(0, dtype=np.int64)
    n = arr.size
    if n == 0:
        return PrimedHostOutcome([np.empty(0) for _ in range(k)], 0, 0)
    order = np.argsort(arr, kind="stable")
    arr = arr[order]
    emits = emits[order]
    flows = flows[order]
    tx = sizes_all[order] / capacity
    # The constant-rate drain: busy_until recurrence, float-sequenced
    # exactly like the legacy MUX's schedule_in chain.
    bu = np.empty(n, dtype=np.float64)
    current = -np.inf
    arr_l = arr.tolist()
    tx_l = tx.tolist()
    for i in range(n):
        t = arr_l[i]
        if t > current:
            current = t
        current += tx_l[i]
        bu[i] = current
    # Busy period ends where the next arrival does not precede the
    # completion.  An arrival at *exactly* the completion instant
    # starts a fresh period: in the legacy event chain the MUX finish
    # event was scheduled inside an earlier event than the equal-time
    # delivery, so it pops first, finds the heap empty, and releases
    # (the back-to-back single-flow pattern of mtu-grid traces).
    nxt = np.empty(n, dtype=np.float64)
    nxt[:-1] = arr[1:]
    nxt[-1] = np.inf
    is_end = nxt >= bu
    end_idx = np.nonzero(is_end)[0]
    reps = np.diff(np.concatenate(([-1], end_idx)))
    delivery = np.repeat(bu[end_idx], reps)
    if not drain:
        if horizon is None:
            raise ValueError("drain=False requires a horizon")
        keep = delivery <= horizon
        delivery = delivery[keep]
        emits = emits[keep]
        flows = flows[keep]
    delays = delivery - emits
    per_flow = [delays[flows == f] for f in range(k)]
    return PrimedHostOutcome(per_flow, trains_total, int(end_idx.size))
