"""Dynamic membership: joins, leaves, churn stability (+ hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.dynamics import ChurnSimulator, join_member, leave_member
from repro.overlay.nice import build_nice_tree
from repro.overlay.tree import MulticastTree


def rtt_matrix(n, seed=0):
    gen = np.random.default_rng(seed)
    pos = gen.random((n, 2))
    d = np.sqrt(((pos[:, None] - pos[None, :]) ** 2).sum(-1))
    return d + d.T


@pytest.fixture(scope="module")
def world():
    n = 60
    rtt = rtt_matrix(n)
    tree = build_nice_tree(0, list(range(40)), rtt, rng=1)
    return n, rtt, tree


class TestJoin:
    def test_join_attaches_to_closest(self, world):
        n, rtt, tree = world
        new = 50
        t2 = join_member(tree, new, rtt)
        parent = t2.parent[new]
        members = tree.members()
        closest = min(members, key=lambda m: (rtt[new, m], m))
        assert parent == closest
        assert t2.size == tree.size + 1

    def test_join_respects_fanout_cap(self, world):
        n, rtt, tree = world
        new = 51
        cap = 2
        t2 = join_member(tree, new, rtt, max_fanout=cap)
        fan_before = tree.fanout()
        parent = t2.parent[new]
        assert fan_before.get(parent, 0) < cap

    def test_join_existing_member_rejected(self, world):
        n, rtt, tree = world
        with pytest.raises(ValueError, match="already"):
            join_member(tree, tree.root, rtt)

    def test_join_fails_when_everyone_full(self):
        rtt = rtt_matrix(5)
        # A chain 0 -> 1 with fan-out cap 1: both members saturated
        # (host 1 is a leaf but a cap of 0 forbids any children at all;
        # with cap 1 only host 1 has room, so cap 0 is the full case).
        tree = MulticastTree(root=0, parent={1: 0})
        with pytest.raises(ValueError, match="spare fan-out"):
            join_member(tree, 2, rtt, max_fanout=0)


class TestLeave:
    def test_leaf_leave_costs_nothing(self, world):
        n, rtt, tree = world
        leaf = next(m for m, c in tree.children().items() if not c)
        t2, moves = leave_member(tree, leaf)
        assert moves == 0
        assert leaf not in t2.members()
        assert t2.size == tree.size - 1

    def test_interior_leave_reparents_children(self, world):
        n, rtt, tree = world
        interior = max(tree.children().items(), key=lambda kv: len(kv[1]))[0]
        if interior == tree.root:
            interior = next(
                m for m, c in tree.children().items()
                if c and m != tree.root
            )
        kids = tree.children()[interior]
        gp = tree.parent[interior]
        t2, moves = leave_member(tree, interior)
        assert moves == len(kids)
        for c in kids:
            assert t2.parent[c] == gp

    def test_root_leave_promotes_child(self, world):
        n, rtt, tree = world
        t2, _ = leave_member(tree, tree.root)
        assert t2.root in tree.children()[tree.root]
        assert t2.size == tree.size - 1

    def test_leave_nonmember_rejected(self, world):
        n, rtt, tree = world
        with pytest.raises(ValueError, match="not a member"):
            leave_member(tree, 59)

    def test_cannot_empty_the_tree(self):
        t = MulticastTree(root=0, parent={})
        with pytest.raises(ValueError, match="last member"):
            leave_member(t, 0)


class TestChurn:
    def test_simulator_keeps_invariants(self, world):
        n, rtt, tree = world
        standby = [m for m in range(n) if m not in tree.members()]
        churn = ChurnSimulator(tree, rtt, standby)
        stats = churn.run(100, rng=3)
        assert stats.joins + stats.leaves == 100
        # The surviving tree is still a valid rooted tree over its members.
        t = churn.tree
        assert len(t.critical_path()) == t.height
        assert stats.stability >= 0.0
        assert len(stats.height_trace) == 100

    def test_overlapping_standby_rejected(self, world):
        n, rtt, tree = world
        with pytest.raises(ValueError, match="standby"):
            ChurnSimulator(tree, rtt, [tree.root])

    def test_reproducible(self, world):
        n, rtt, tree = world
        standby = [m for m in range(n) if m not in tree.members()]
        a = ChurnSimulator(tree, rtt, list(standby)).run(50, rng=9)
        b = ChurnSimulator(tree, rtt, list(standby)).run(50, rng=9)
        assert a.height_trace == b.height_trace


@given(
    events=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_churn_never_corrupts_tree(events, seed):
    """Property: any join/leave schedule leaves a valid tree."""
    n = 30
    rtt = rtt_matrix(n, seed=1)
    tree = build_nice_tree(0, list(range(15)), rtt, rng=2)
    standby = list(range(15, 30))
    churn = ChurnSimulator(tree, rtt, standby, max_fanout=6)
    churn.run(events, rng=seed)
    t = churn.tree
    # MulticastTree's constructor re-validates acyclicity/connectivity;
    # additionally: membership bookkeeping must be consistent.
    assert t.members().isdisjoint(churn.standby)
    assert t.size + len(churn.standby) == n
    # Fan-out cap honoured for joined hosts (leaves may have raised it
    # through grandparent promotion, which real protocols also allow).
    assert t.size >= 2
