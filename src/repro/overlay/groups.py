"""Multi-group network bookkeeping.

The paper's setting: ``K`` multicast groups over one host population;
an end host joining ``K_hat`` groups must forward ``K_hat``
simultaneous flows (one per group), which is what makes it a potential
bottleneck.  :class:`MultiGroupNetwork` owns the membership relation,
per-group sources, and builds the per-group trees for any of the
paper's three schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.overlay.capacity_aware import capacity_aware_dsct, capacity_aware_nice
from repro.overlay.dsct import build_dsct_tree
from repro.overlay.nice import build_nice_tree
from repro.overlay.tree import MulticastTree
from repro.topology.attach import AttachedNetwork
from repro.topology.routing import host_latency_matrix, host_rtt_matrix
from repro.utils.rng import RandomSource, derive_seed, ensure_rng

__all__ = ["MultiGroupNetwork"]

#: Tree-construction schemes recognised by :meth:`MultiGroupNetwork.build_tree`.
SCHEMES = ("dsct", "nice", "capacity-aware-dsct", "capacity-aware-nice")


@dataclass
class MultiGroupNetwork:
    """K multicast groups over an attached host population.

    Attributes
    ----------
    network:
        The underlay (backbone + host attachments).
    memberships:
        ``memberships[g]`` -- sorted host indices joined to group ``g``.
    sources:
        ``sources[g]`` -- the source host of group ``g`` (a member).
    host_capacity:
        Per-host output capacity in normalised link units (1.0 = one
        full link); consumed by the capacity-aware schemes.
    """

    network: AttachedNetwork
    memberships: list[np.ndarray]
    sources: list[int]
    host_capacity: np.ndarray
    _rtt: Optional[np.ndarray] = field(default=None, repr=False)
    _lat: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n = self.network.n_hosts
        if len(self.memberships) != len(self.sources):
            raise ValueError("memberships and sources must align")
        if len(self.memberships) == 0:
            raise ValueError("at least one group is required")
        clean = []
        for g, members in enumerate(self.memberships):
            m = np.unique(np.asarray(members, dtype=np.int64))
            if m.size == 0:
                raise ValueError(f"group {g} has no members")
            if m.min() < 0 or m.max() >= n:
                raise ValueError(f"group {g} references unknown hosts")
            if self.sources[g] not in set(m.tolist()):
                raise ValueError(f"group {g}'s source must be a member")
            clean.append(m)
        self.memberships = clean
        cap = np.asarray(self.host_capacity, dtype=np.float64)
        if cap.shape != (n,):
            raise ValueError("host_capacity must have one entry per host")
        if np.any(cap <= 0):
            raise ValueError("host capacities must be > 0")
        self.host_capacity = cap

    # -- constructors ------------------------------------------------------
    @classmethod
    def fully_joined(
        cls,
        network: AttachedNetwork,
        n_groups: int,
        *,
        host_capacity_range: tuple[float, float] = (4.0, 10.0),
        rng: RandomSource = None,
    ) -> "MultiGroupNetwork":
        """The paper's Simulation II population: every host joins every group.

        Sources are distinct random hosts; capacities are uniform in
        ``host_capacity_range`` (heterogeneous end hosts, in units of
        the normalised link capacity).
        """
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        gen = ensure_rng(rng)
        n = network.n_hosts
        all_hosts = np.arange(n, dtype=np.int64)
        sources = gen.choice(n, size=n_groups, replace=False).tolist()
        lo, hi = host_capacity_range
        caps = gen.uniform(lo, hi, size=n)
        return cls(
            network=network,
            memberships=[all_hosts.copy() for _ in range(n_groups)],
            sources=[int(s) for s in sources],
            host_capacity=caps,
        )

    # -- cached matrices -----------------------------------------------------
    @property
    def rtt(self) -> np.ndarray:
        if self._rtt is None:
            self._rtt = host_rtt_matrix(self.network)
        return self._rtt

    @property
    def latency(self) -> np.ndarray:
        if self._lat is None:
            self._lat = host_latency_matrix(self.network)
        return self._lat

    # -- membership queries ----------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.memberships)

    def joined_groups(self, host: int) -> list[int]:
        """Groups the host belongs to (its ``K_hat`` in the paper)."""
        return [
            g for g, members in enumerate(self.memberships)
            if host in set(members.tolist())
        ]

    def k_hat(self, host: int) -> int:
        return len(self.joined_groups(host))

    def max_k_hat(self) -> int:
        """The largest per-host group count (drives the MUX analysis)."""
        counts = np.zeros(self.network.n_hosts, dtype=np.int64)
        for members in self.memberships:
            counts[members] += 1
        return int(counts.max())

    # -- tree construction --------------------------------------------------
    def build_tree(
        self,
        group: int,
        scheme: str,
        *,
        k: int = 3,
        aggregate_rate: Optional[float] = None,
        rng: RandomSource = None,
    ) -> MulticastTree:
        """Build group ``group``'s tree under one of the paper's schemes.

        ``aggregate_rate`` (required by the capacity-aware schemes) is
        the summed flow rate each member forwards per child -- ``K rho``
        in the homogeneous experiments.  The RNG is derived from the
        group index so different groups get independent (but
        reproducible) cluster draws.
        """
        if scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
        members = self.memberships[group].tolist()
        source = self.sources[group]
        group_rng = ensure_rng(derive_seed(rng, "tree", scheme, group))
        if scheme == "dsct":
            return build_dsct_tree(
                source, members, self.rtt, self.network.host_router,
                k=k, rng=group_rng,
            )
        if scheme == "nice":
            return build_nice_tree(source, members, self.rtt, k=k, rng=group_rng)
        if aggregate_rate is None:
            raise ValueError("capacity-aware schemes need aggregate_rate")
        if scheme == "capacity-aware-dsct":
            return capacity_aware_dsct(
                source, members, self.rtt, self.network.host_router,
                self.host_capacity, aggregate_rate, k=k, rng=group_rng,
            )
        return capacity_aware_nice(
            source, members, self.rtt,
            self.host_capacity, aggregate_rate, k=k, rng=group_rng,
        )

    def build_all_trees(
        self,
        scheme: str,
        *,
        k: int = 3,
        aggregate_rate: Optional[float] = None,
        rng: RandomSource = None,
    ) -> list[MulticastTree]:
        """One tree per group under the given scheme."""
        return [
            self.build_tree(
                g, scheme, k=k, aggregate_rate=aggregate_rate, rng=rng
            )
            for g in range(self.n_groups)
        ]
