"""Vectorised batched evaluation of the Section IV/V delay bounds.

The scalar theorem implementations in :mod:`repro.core.delay_bounds`
are the reference; a scenario matrix evaluates *hundreds* of
(sigma_i, rho_i) populations at once, so this module restates
Theorem 1, Theorem 2 and Remark 1 as NumPy kernels over a padded
``(n_scenarios, K_max)`` parameter matrix.  The test suite pins the
batch kernels to the scalar functions element by element.

Padding convention: flows beyond a scenario's ``K`` are ``NaN``; the
kernels reduce with ``nansum``/``nanmin``/``nanmax`` so padded slots
never contribute.  Unstable scenarios (``sum_i rho_i > C``) get
``inf`` bounds, mirroring the scalar code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.calculus.mux import STABILITY_TOL as _STAB_TOL

__all__ = [
    "pack_envelopes",
    "batch_theorem1_wdb",
    "batch_remark1_wdb",
    "batch_bounds",
]


def pack_envelopes(
    envelope_sets: Sequence[Sequence[ArrivalEnvelope]],
) -> tuple[np.ndarray, np.ndarray]:
    """Pack ragged per-scenario envelope lists into NaN-padded matrices.

    Returns ``(sigmas, rhos)`` of shape ``(n_scenarios, K_max)``.
    """
    if not envelope_sets:
        raise ValueError("at least one scenario is required")
    k_max = max(len(envs) for envs in envelope_sets)
    if k_max == 0:
        raise ValueError("every scenario needs at least one flow")
    n = len(envelope_sets)
    sigmas = np.full((n, k_max), np.nan)
    rhos = np.full((n, k_max), np.nan)
    for i, envs in enumerate(envelope_sets):
        sigmas[i, : len(envs)] = [e.sigma for e in envs]
        rhos[i, : len(envs)] = [e.rho for e in envs]
    return sigmas, rhos


def _normalise(
    sigmas: np.ndarray, rhos: np.ndarray, capacity: np.ndarray | float
) -> tuple[np.ndarray, np.ndarray]:
    cap = np.asarray(capacity, dtype=np.float64)
    if cap.ndim == 1:
        cap = cap[:, None]
    return sigmas / cap, rhos / cap


def batch_theorem1_wdb(
    sigmas: np.ndarray,
    rhos: np.ndarray,
    capacity: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Theorem 1 WDB for every row of a padded parameter matrix.

    Row-wise identical to
    :func:`repro.core.delay_bounds.theorem1_wdb_heterogeneous` (which
    also covers Theorem 2's homogeneous case).
    """
    s, r = _normalise(sigmas, rhos, capacity)
    with np.errstate(invalid="ignore", divide="ignore"):
        per_flow_period = s / (r * (1.0 - r))
        common_period = np.nanmin(per_flow_period, axis=1)
        stars = r * (1.0 - r) * common_period[:, None]
        mux_term = np.nansum(stars / (1.0 - r), axis=1)
        stagger_term = 2.0 * common_period
        excess_term = np.nanmax((s - stars) / r, axis=1)
    out = mux_term + stagger_term + np.maximum(excess_term, 0.0)
    unstable = np.nansum(r, axis=1) > 1.0 + _STAB_TOL
    out = np.where(unstable, np.inf, out)
    return out


def batch_remark1_wdb(
    sigmas: np.ndarray,
    rhos: np.ndarray,
    capacity: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Remark 1 baseline ``sum sigma_i / (C - sum rho_i)`` per row.

    Stability uses the same ``_STAB_TOL`` band as
    :func:`batch_theorem1_wdb` (and the scalar bounds): rows whose load
    sits within the tolerance of the critical point stay finite, priced
    at the tolerance-wide slack -- so Theorem 1 and Remark 1 never
    disagree on finiteness for the same row.
    """
    s, r = _normalise(sigmas, rhos, capacity)
    agg_sigma = np.nansum(s, axis=1)
    slack = 1.0 - np.nansum(r, axis=1)
    unstable = slack < -_STAB_TOL
    safe = np.where(slack > 0.0, slack, _STAB_TOL)
    out = np.where(unstable, np.inf, agg_sigma / safe)
    return out


def batch_bounds(
    envelope_sets: Sequence[Sequence[ArrivalEnvelope]],
    modes: Sequence[str],
    *,
    hops: Sequence[int] | None = None,
    propagation_total: Sequence[float] | None = None,
    capacity: Sequence[float] | float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """End-to-end analytic bounds for a batch of scenarios, in one pass.

    Parameters
    ----------
    envelope_sets:
        Per-scenario flow envelopes (ragged).
    modes:
        Effective control mode per scenario (``"sigma-rho"`` cells check
        against Remark 1/2, ``"sigma-rho-lambda"`` against Theorem 1/7).
    hops:
        Number of regulated hosts the tagged flow crosses (1 for the
        single-host topology); multiplies the per-hop bound, the
        Theorem 7 / Remark 2 accounting.
    propagation_total:
        Total underlay propagation added on top (0 for hosts).
    capacity:
        Per-scenario (or shared scalar) output capacity.

    Returns
    -------
    (bounds, baselines):
        ``bounds[i]`` -- the bound matching ``modes[i]``;
        ``baselines[i]`` -- the Remark 1/2 baseline for reference.
    """
    n = len(envelope_sets)
    if len(modes) != n:
        raise ValueError("modes must align with envelope_sets")
    sigmas, rhos = pack_envelopes(envelope_sets)
    cap = np.broadcast_to(np.asarray(capacity, dtype=np.float64), (n,))
    hop_arr = (
        np.ones(n) if hops is None else np.asarray(hops, dtype=np.float64)
    )
    prop_arr = (
        np.zeros(n)
        if propagation_total is None
        else np.asarray(propagation_total, dtype=np.float64)
    )
    if hop_arr.shape != (n,) or prop_arr.shape != (n,):
        raise ValueError("hops and propagation_total must align with scenarios")
    theorem1 = batch_theorem1_wdb(sigmas, rhos, cap)
    remark1 = batch_remark1_wdb(sigmas, rhos, cap)
    is_lambda = np.array(
        [m == "sigma-rho-lambda" for m in modes], dtype=bool
    )
    for m in modes:
        if m not in ("sigma-rho", "sigma-rho-lambda"):
            raise ValueError(
                f"modes must be resolved (sigma-rho / sigma-rho-lambda), got {m!r}"
            )
    per_hop = np.where(is_lambda, theorem1, remark1)
    with np.errstate(invalid="ignore"):
        bounds = hop_arr * per_hop + prop_arr
        baselines = hop_arr * remark1 + prop_arr
    return bounds, baselines
