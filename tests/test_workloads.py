"""Traffic mixes and utilisation scaling."""

import numpy as np
import pytest

from repro.workloads.profiles import (
    AUDIO_MIX,
    HETEROGENEOUS_MIX,
    VIDEO_MIX,
    make_mix,
)


class TestMixDefinitions:
    def test_paper_mixes(self):
        assert AUDIO_MIX.k == 3 and AUDIO_MIX.is_homogeneous
        assert VIDEO_MIX.k == 3 and VIDEO_MIX.is_homogeneous
        assert HETEROGENEOUS_MIX.k == 3 and not HETEROGENEOUS_MIX.is_homogeneous

    def test_natural_rate_ratio(self):
        """Video : audio = 1.5 Mbps : 64 kbps."""
        v = HETEROGENEOUS_MIX.sources[0].rate
        a = HETEROGENEOUS_MIX.sources[1].rate
        assert v / a == pytest.approx(1.5e6 / 64e3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_mix("bad", ("audio", "midi"))


class TestScaling:
    @pytest.mark.parametrize("mix", [AUDIO_MIX, VIDEO_MIX, HETEROGENEOUS_MIX])
    def test_at_utilization_sums_to_u(self, mix):
        scaled = mix.at_utilization(0.8)
        assert scaled.total_rate == pytest.approx(0.8)

    def test_relative_weights_preserved(self):
        scaled = HETEROGENEOUS_MIX.at_utilization(0.6)
        v, a, _ = (s.rate for s in scaled.sources)
        assert v / a == pytest.approx(1.5e6 / 64e3)

    def test_generated_rate_matches(self):
        scaled = VIDEO_MIX.at_utilization(0.6)
        traces = scaled.generate_traces(30.0, rng=1)
        for tr, src in zip(traces, scaled.sources):
            assert tr.mean_rate() == pytest.approx(src.rate, rel=0.1)


class TestTraceGeneration:
    def test_shared_streams_are_identical(self):
        """The paper feeds 'the same stream' to every group."""
        scaled = VIDEO_MIX.at_utilization(0.6)
        traces = scaled.generate_traces(5.0, rng=2, shared=True)
        assert traces[0] is traces[1] is traces[2]

    def test_independent_streams_differ(self):
        scaled = VIDEO_MIX.at_utilization(0.6)
        traces = scaled.generate_traces(5.0, rng=2, shared=False)
        assert not np.array_equal(traces[0].sizes, traces[1].sizes)

    def test_heterogeneous_sharing_by_kind(self):
        scaled = HETEROGENEOUS_MIX.at_utilization(0.6)
        traces = scaled.generate_traces(5.0, rng=3, shared=True)
        # The two audio groups share; the video group does not.
        assert traces[1] is traces[2]
        assert traces[0] is not traces[1]

    def test_mtu_fragmentation_applied(self):
        scaled = VIDEO_MIX.at_utilization(0.9)
        traces = scaled.generate_traces(5.0, rng=4, mtu=1e-3)
        assert traces[0].sizes.max() <= 1e-3 + 1e-12

    def test_reproducible(self):
        scaled = VIDEO_MIX.at_utilization(0.5)
        a = scaled.generate_traces(3.0, rng=9)
        b = scaled.generate_traces(3.0, rng=9)
        assert np.array_equal(a[0].sizes, b[0].sizes)


class TestEnvelopes:
    def test_envelopes_conform_to_traces(self):
        scaled = HETEROGENEOUS_MIX.at_utilization(0.7)
        traces = scaled.generate_traces(5.0, rng=5)
        envs = scaled.envelopes(5.0, rng=5)
        for tr, env in zip(traces, envs):
            assert env.conforms(tr.to_curve(), tol=1e-6)

    def test_envelope_rho_is_nominal_rate(self):
        scaled = VIDEO_MIX.at_utilization(0.6)
        envs = scaled.envelopes(3.0, rng=6)
        for env, src in zip(envs, scaled.sources):
            assert env.rho == pytest.approx(src.rate)
