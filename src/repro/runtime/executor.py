"""Pluggable execution backends for embarrassingly parallel cell work.

An :class:`Executor` maps a picklable, module-level function over a
sequence of picklable payloads and returns one :class:`TaskResult` per
payload, **in payload order**, regardless of completion order.  Three
backends share the contract:

``SerialExecutor``
    In-process loop; the reference semantics every other backend must
    reproduce bit-for-bit (results may only differ by wall time).
``ThreadExecutor``
    ``concurrent.futures.ThreadPoolExecutor``; useful when the payload
    releases the GIL (NumPy-heavy cells) or for I/O-bound stages.
``ProcessExecutor``
    ``concurrent.futures.ProcessPoolExecutor``; the scale backend for
    CPU-bound DES cells.  Payloads are submitted in contiguous chunks
    (amortising pickling and task dispatch), and the worker function
    plus payloads must be picklable.

Failure containment: a payload that raises is captured **inside the
worker** and returned as ``TaskResult(error=<traceback>)`` -- one
crashing cell never takes down its chunk, let alone the campaign.

Fault tolerance (opt-in, zero-overhead default):

* :class:`RetryPolicy` -- bounded per-cell retries with exponential
  backoff and *deterministic* jitter (derived from the policy seed and
  the cell index, never from a shared RNG stream), so retry schedules
  are replayable.  Retries happen inside the worker, next to the cell.
* ``cell_timeout`` -- a per-attempt wall-clock cap enforced with
  ``SIGALRM`` inside the executing process (serial backend and process
  workers; thread workers cannot use signals), surfaced as a
  :class:`CellTimeout` error and therefore retryable.
* Pool resurrection -- a hard worker death (``BrokenProcessPool``)
  breaks *every* in-flight future and cannot name the culprit cell.
  The process backend responds by killing the pool, re-submitting all
  outstanding cells **individually** to a fresh pool (so the next
  death isolates its culprit to one cell), and counting per-cell
  *exposures*: a cell in flight during ``max(2, max_attempts)`` deaths
  is declared poison and failed with its own disposition, while
  collateral cells complete normally.  After :data:`MAX_POOL_DEATHS`
  the backend degrades to in-parent serial execution rather than fail
  the campaign.  A watchdog (armed only when ``cell_timeout`` is set)
  additionally treats a chunk that overstays its worst-case attempt
  budget as a pool death, which unsticks cells hung in C code where
  ``SIGALRM`` cannot fire.

Determinism under retry: attempt numbers are visible only to the fault
injection layer (:mod:`repro.runtime.faults`) and the attempt ledger
-- never to cell seeds -- so a retried cell returns bit-identical
results to an undisturbed one.
"""

from __future__ import annotations

import dataclasses
import signal
import threading
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, Executor as _FuturesExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Optional, Sequence

from repro.runtime import faults
from repro.runtime.telemetry import (
    CellTelemetry,
    begin_cell,
    end_cell,
    enabled as telemetry_enabled,
)
from repro.utils.rng import derive_seed

__all__ = [
    "TaskResult",
    "RetryPolicy",
    "CellTimeout",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_KINDS",
    "make_executor",
    "auto_chunksize",
    "run_one_with_retry",
]

#: Executor kinds :func:`make_executor` accepts.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Upper bound on the automatic chunk size (keeps progress granular).
MAX_AUTO_CHUNK = 16
#: Chunks-per-worker target of the automatic chunk size (load balance:
#: several chunks per worker absorb cell-cost variance).
CHUNKS_PER_WORKER = 4

#: Pool deaths tolerated before the process backend stops resurrecting
#: pools and degrades to in-parent serial execution for the remainder.
MAX_POOL_DEATHS = 4
#: Without a retry policy, a cell in flight during this many pool
#: deaths is declared the culprit and failed (with retries the budget
#: is ``max_attempts``); one exposure must stay survivable because a
#: chunk death always exposes innocent chunk-mates.
MIN_DEATH_EXPOSURES = 2
#: Watchdog poll interval (seconds) while a cell timeout is armed.
WATCHDOG_TICK_S = 0.1
#: Watchdog slack on top of a chunk's worst-case attempt budget
#: (dispatch, pickling, scheduler noise).
WATCHDOG_GRACE_S = 2.0


class CellTimeout(Exception):
    """A cell attempt exceeded its wall-clock budget (retryable)."""


@dataclass(frozen=True)
class TaskResult:
    """One payload's outcome: a value or a captured worker traceback."""

    index: int
    value: Any = None
    error: Optional[str] = None
    wall_time: float = 0.0
    #: Worker-side telemetry for this payload (``None`` when collection
    #: is disabled); excluded from equality so the determinism gates
    #: keep comparing values, not timings.
    telemetry: Optional[CellTelemetry] = dataclass_field(
        default=None, compare=False, repr=False
    )
    #: Attempts this payload consumed (1 = first try succeeded); like
    #: telemetry, ledger fields never participate in equality -- retry
    #: history must stay invisible to the determinism surface.
    attempts: int = dataclass_field(default=1, compare=False)
    #: One-line error heads of the failed attempts (oldest first; on a
    #: final failure the last entry describes the terminal error).
    attempt_errors: tuple = dataclass_field(default=(), compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-cell retries with replayable backoff.

    ``max_attempts`` counts total tries (1 = no retry).  Sleeps grow as
    ``backoff_base * backoff_factor**(attempt-1)`` capped at
    ``backoff_max``, stretched by a jitter factor in ``[1, 1+jitter]``
    drawn deterministically from ``(seed, token, attempt)`` -- never
    from a shared RNG -- so two runs sleep the same schedule and
    concurrent workers never contend for random state.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay(self, attempt: int, token: Any = 0) -> float:
        """Sleep before the attempt *after* ``attempt`` failed."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if base <= 0 or self.jitter <= 0:
            return base
        import numpy as np

        rng = np.random.default_rng(
            derive_seed(self.seed, "retry-jitter", str(token), int(attempt))
        )
        return base * (1.0 + self.jitter * float(rng.random()))

    def sleep_budget(self) -> float:
        """Worst-case total backoff across a cell's full retry budget."""
        return sum(
            min(
                self.backoff_max,
                self.backoff_base * self.backoff_factor ** max(0, a - 1),
            )
            * (1.0 + self.jitter)
            for a in range(1, self.max_attempts)
        )


def auto_chunksize(n_tasks: int, jobs: int) -> int:
    """Contiguous chunk size balancing dispatch overhead vs. skew."""
    if n_tasks <= 0:
        return 1
    per_worker = -(-n_tasks // max(1, jobs * CHUNKS_PER_WORKER))  # ceil div
    return max(1, min(MAX_AUTO_CHUNK, per_worker))


def _check_plan(chunk_plan: Sequence[Sequence[int]], n: int) -> None:
    """A chunk plan must cover every payload index exactly once."""
    seen: set[int] = set()
    count = 0
    for chunk in chunk_plan:
        for i in chunk:
            i = int(i)
            if not 0 <= i < n:
                raise ValueError(f"chunk plan index {i} out of range [0, {n})")
            seen.add(i)
            count += 1
    if count != n or len(seen) != n:
        raise ValueError(
            f"chunk plan must cover all {n} payloads exactly once "
            f"(got {count} entries, {len(seen)} distinct)"
        )


def _error_head(err: Optional[str]) -> str:
    """The last non-empty line of a traceback (ledger-sized)."""
    if not err:
        return ""
    lines = [ln.strip() for ln in str(err).strip().splitlines() if ln.strip()]
    return lines[-1][:200] if lines else ""


@contextmanager
def _alarm(seconds: Optional[float]):
    """Arm a ``SIGALRM``-based wall-clock cap around one cell attempt.

    Signals only work on the main thread of a process -- which is where
    serial cells and process-pool worker cells run.  Elsewhere (thread
    workers) this is a no-op and the parent-side watchdog, if armed, is
    the only enforcement.
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout(
            f"cell attempt exceeded its wall-clock budget of {seconds:g} s"
        )

    prev = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev)


def _run_one(
    fn: Callable[[Any], Any],
    index: int,
    payload: Any,
    collect: bool = True,
    attempt: int = 1,
    cell_timeout: Optional[float] = None,
) -> TaskResult:
    """Worker-side unit of execution with exception capture.

    ``collect`` carries the parent's telemetry switch across the
    process boundary (spawned workers re-import modules, so the global
    flag alone cannot be trusted there); :func:`begin_cell` still
    honours the local global, so both ends must agree to collect.

    ``attempt`` is published thread-locally for the fault-injection
    layer and the ledger only -- the payload itself never sees it, so
    retried evaluations stay bit-identical.
    """
    tel = (
        begin_cell(str(getattr(payload, "name", index))) if collect else None
    )
    t0 = time.perf_counter()
    try:
        with faults.attempt_scope(attempt):
            with _alarm(cell_timeout):
                value = fn(payload)
    except Exception:
        end_cell(tel)
        return TaskResult(
            index=index,
            error=traceback.format_exc(limit=20),
            wall_time=time.perf_counter() - t0,
            telemetry=tel,
            attempts=attempt,
        )
    end_cell(tel)
    return TaskResult(
        index=index,
        value=value,
        wall_time=time.perf_counter() - t0,
        telemetry=tel,
        attempts=attempt,
    )


def run_one_with_retry(
    fn: Callable[[Any], Any],
    index: int,
    payload: Any,
    collect: bool = True,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    start_attempt: int = 1,
    prior_errors: Sequence[str] = (),
) -> TaskResult:
    """Run one payload through its (remaining) retry budget.

    ``start_attempt`` > 1 accounts for attempts already consumed
    elsewhere -- e.g. exposures to pool deaths, the grouped evaluator's
    first pass, or a reclaimed lease's worker deaths
    (:mod:`repro.runtime.coordinator`) -- so the total budget stays
    bounded no matter which layer spent it.  ``prior_errors`` seeds the
    ledger with those earlier failures.
    """
    budget = retry.max_attempts if retry is not None else 1
    log = list(prior_errors)
    attempt = max(1, start_attempt)
    while True:
        tr = _run_one(fn, index, payload, collect, attempt, cell_timeout)
        if tr.ok or attempt >= budget:
            if tr.error is not None:
                log.append(_error_head(tr.error))
            if log:
                tr = dataclasses.replace(tr, attempt_errors=tuple(log))
            return tr
        log.append(_error_head(tr.error))
        time.sleep(retry.delay(attempt, token=index))
        attempt += 1


#: Backwards-compatible private alias (pre-PR-10 internal name).
_run_one_with_retry = run_one_with_retry


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[tuple[int, Any]],
    submit_t: Optional[float] = None,
    collect: bool = True,
    retry: Optional[RetryPolicy] = None,
    cell_timeout: Optional[float] = None,
    start_attempts: Optional[Sequence[int]] = None,
) -> list[TaskResult]:
    """Worker-side chunk loop (module-level, hence picklable).

    ``submit_t`` is the parent's ``time.perf_counter()`` at submission
    -- CLOCK_MONOTONIC is process-shared on Linux, so the difference to
    the worker's first instruction is this chunk's queue latency.
    """
    t_start = time.perf_counter()
    queue_s = t_start - submit_t if submit_t is not None else None
    results = []
    for pos, (index, payload) in enumerate(chunk):
        start = start_attempts[pos] if start_attempts is not None else 1
        tr = _run_one_with_retry(
            fn,
            index,
            payload,
            collect,
            retry,
            cell_timeout,
            start_attempt=start,
        )
        if tr.telemetry is not None:
            tr.telemetry.extra["chunk_size"] = len(chunk)
            if queue_s is not None:
                tr.telemetry.extra["chunk_queue_s"] = queue_s
        results.append(tr)
    return results


class Executor(ABC):
    """The execution contract: ordered results, captured failures."""

    #: Human-readable backend name (CLI/report labels).
    kind: str = "abstract"
    #: Degree of parallelism (1 for the serial backend).
    jobs: int = 1
    #: Whether callers may replace the per-payload worker stage with an
    #: in-process batch-of-cells pass (the structure-of-arrays grouped
    #: evaluator).  Only sound for in-process execution: pool backends
    #: ship payloads to workers one chunk at a time, so grouping there
    #: would serialise the batch through the parent instead.
    supports_cell_grouping: bool = False

    @abstractmethod
    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        chunk_plan: Optional[Sequence[Sequence[int]]] = None,
        retry: Optional[RetryPolicy] = None,
        cell_timeout: Optional[float] = None,
    ) -> list[TaskResult]:
        """Evaluate ``fn`` over ``payloads``; results in payload order.

        ``progress`` (optional) is called as ``progress(done, total)``
        whenever the completed-task count advances.  ``chunk_plan``
        (optional, pool backends) prescribes the submission chunks as
        payload-index lists -- the cost-aware scheduler's hook (see
        :func:`repro.runtime.cost.plan_chunks`).  Every index must
        appear exactly once; results stay in payload order regardless.
        ``retry`` and ``cell_timeout`` opt into the fault-tolerant
        path; both default to off with zero overhead.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """The in-process reference backend.

    A ``chunk_plan`` is validated but otherwise ignored: serial
    execution has no dispatch skew to schedule around, and running in
    payload order keeps the reference semantics trivially ordered.
    """

    kind = "serial"
    supports_cell_grouping = True

    def map_tasks(
        self,
        fn,
        payloads,
        *,
        progress=None,
        chunk_plan=None,
        retry=None,
        cell_timeout=None,
    ):
        if chunk_plan is not None:
            _check_plan(chunk_plan, len(payloads))
        results = []
        for i, payload in enumerate(payloads):
            if retry is None and cell_timeout is None:
                results.append(_run_one(fn, i, payload))
            else:
                results.append(
                    _run_one_with_retry(
                        fn, i, payload, True, retry, cell_timeout
                    )
                )
            if progress is not None:
                progress(i + 1, len(payloads))
        return results


class _PoolExecutor(Executor):
    """Shared chunked-submission driver for the futures-based backends."""

    #: Whether a dead pool can be rebuilt with the culprit isolated
    #: (process workers can be killed and replaced; threads cannot).
    resilient = False

    def __init__(self, jobs: int = 2, chunksize: Optional[int] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs
        self.chunksize = chunksize

    def _make_pool(self) -> _FuturesExecutor:  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def _kill_pool(pool: _FuturesExecutor) -> None:
        """Tear a (possibly broken, possibly hung) pool down hard."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        procs = getattr(pool, "_processes", None)
        if procs:
            for proc in list(procs.values()):
                try:
                    proc.terminate()
                except Exception:
                    pass

    def map_tasks(
        self,
        fn,
        payloads,
        *,
        progress=None,
        chunk_plan=None,
        retry=None,
        cell_timeout=None,
    ):
        n = len(payloads)
        if n == 0:
            return []
        if chunk_plan is not None:
            _check_plan(chunk_plan, n)
            chunk_indices = [
                [int(i) for i in chunk] for chunk in chunk_plan if len(chunk)
            ]
        else:
            size = self.chunksize or auto_chunksize(n, self.jobs)
            chunk_indices = [
                list(range(lo, min(lo + size, n))) for lo in range(0, n, size)
            ]

        results: dict[int, TaskResult] = {}
        done = 0
        collect = telemetry_enabled()
        #: Times each cell was in flight during a pool death (each
        #: exposure consumes one attempt of its budget).
        exposures = [0] * n
        prior_errors: list[list[str]] = [[] for _ in range(n)]
        allowed_exposures = max(
            MIN_DEATH_EXPOSURES, retry.max_attempts if retry else 0
        )
        pool_deaths = 0
        # Watchdog budget: worst-case wall clock of one cell's full
        # attempt budget (attempts x timeout + backoff sleeps).
        per_cell_budget = None
        if cell_timeout is not None:
            attempts = retry.max_attempts if retry is not None else 1
            sleeps = retry.sleep_budget() if retry is not None else 0.0
            per_cell_budget = attempts * float(cell_timeout) + sleeps

        def finish(tr: TaskResult) -> None:
            nonlocal done
            if prior_errors[tr.index]:
                tr = dataclasses.replace(
                    tr,
                    attempt_errors=tuple(prior_errors[tr.index])
                    + tuple(tr.attempt_errors),
                )
            results[tr.index] = tr
            done += 1
            if progress is not None:
                progress(done, n)

        pool = self._make_pool()
        pending: dict[Any, list[int]] = {}
        first_running: dict[Any, float] = {}

        def submit(idxs: list[int]) -> None:
            chunk = [(i, payloads[i]) for i in idxs]
            starts = [exposures[i] + 1 for i in idxs]
            fut = pool.submit(
                _run_chunk,
                fn,
                chunk,
                time.perf_counter(),
                collect,
                retry,
                cell_timeout,
                starts,
            )
            pending[fut] = idxs

        for idxs in chunk_indices:
            submit(idxs)

        watchdog = self.resilient and per_cell_budget is not None
        try:
            while pending:
                finished, _ = wait(
                    list(pending),
                    timeout=WATCHDOG_TICK_S if watchdog else None,
                    return_when=FIRST_COMPLETED,
                )
                now = time.perf_counter()
                expired = None
                if watchdog:
                    for fut in pending:
                        if fut not in first_running and fut.running():
                            first_running[fut] = now
                    for fut, t_run in first_running.items():
                        if fut in finished or fut not in pending:
                            continue
                        deadline = (
                            per_cell_budget * len(pending[fut])
                            + WATCHDOG_GRACE_S
                        )
                        if now - t_run > deadline:
                            expired = fut
                            break

                death = None  # (chunk_idxs, was_running, error_text)
                for fut in finished:
                    idxs = pending.pop(fut)
                    was_running = first_running.pop(fut, None) is not None
                    try:
                        for tr in fut.result():
                            finish(tr)
                    except Exception:
                        death = (
                            idxs,
                            True if self.resilient else was_running,
                            traceback.format_exc(limit=10),
                        )
                        break
                if death is None and expired is not None and expired in pending:
                    idxs = pending.pop(expired)
                    first_running.pop(expired, None)
                    death = (
                        idxs,
                        True,
                        f"watchdog: chunk of {len(idxs)} cell(s) exceeded "
                        f"its worst-case attempt budget "
                        f"({per_cell_budget * len(idxs) + WATCHDOG_GRACE_S:.1f} s); "
                        f"pool torn down",
                    )
                if death is None:
                    continue

                dead_idxs, dead_running, err = death
                if not self.resilient:
                    # Threads cannot be killed or replaced: fail the
                    # chunk (a raise here means the runner machinery
                    # itself broke, not the payload) and keep going.
                    for i in dead_idxs:
                        finish(TaskResult(index=i, error=err))
                    continue

                # --- pool death: resurrect, isolate, degrade ---------
                pool_deaths += 1
                head = _error_head(err) or f"worker pool death #{pool_deaths}"
                survivors: list[tuple[list[int], bool]] = [
                    (dead_idxs, dead_running)
                ]
                for fut, idxs in list(pending.items()):
                    if fut.done():
                        try:
                            for tr in fut.result():
                                finish(tr)
                            continue  # completed before the death hit it
                        except Exception:
                            pass
                    running = (
                        first_running.get(fut) is not None or fut.running()
                    )
                    fut.cancel()
                    survivors.append((idxs, running))
                pending.clear()
                first_running.clear()
                self._kill_pool(pool)
                pool = None

                resubmit: list[int] = []
                for idxs, running in survivors:
                    for i in idxs:
                        if i in results:
                            continue
                        if running:
                            # In flight during the death: possibly the
                            # culprit, certainly one attempt spent.
                            exposures[i] += 1
                            prior_errors[i].append(
                                f"pool death #{pool_deaths} while in flight "
                                f"({head})"
                            )
                        if exposures[i] > allowed_exposures:
                            finish(
                                TaskResult(
                                    index=i,
                                    error=(
                                        f"cell was in flight during "
                                        f"{exposures[i]} worker-pool deaths "
                                        f"(budget {allowed_exposures}); "
                                        f"declared poison. Last pool error:\n"
                                        f"{err}"
                                    ),
                                    attempts=exposures[i],
                                )
                            )
                        else:
                            resubmit.append(i)

                if not resubmit:
                    continue
                if pool_deaths >= MAX_POOL_DEATHS:
                    # Enough resurrection: finish in-parent, serially.
                    # Injected worker kills degrade to raises here, so
                    # chaos campaigns still converge.
                    for i in resubmit:
                        finish(
                            _run_one_with_retry(
                                fn,
                                i,
                                payloads[i],
                                collect,
                                retry,
                                cell_timeout,
                                start_attempt=exposures[i] + 1,
                            )
                        )
                    continue
                # Fresh pool; one cell per chunk so the next death
                # isolates its culprit.
                pool = self._make_pool()
                for i in resubmit:
                    submit([i])
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return [results[i] for i in range(n)]


class ThreadExecutor(_PoolExecutor):
    """GIL-sharing pool; cheap dispatch, no pickling."""

    kind = "thread"

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.jobs)


class ProcessExecutor(_PoolExecutor):
    """Multiprocessing pool; the scale backend for CPU-bound cells."""

    kind = "process"
    resilient = True

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=self.jobs)


def make_executor(
    kind: Optional[str] = None,
    jobs: int = 1,
    *,
    chunksize: Optional[int] = None,
) -> Executor:
    """Build an executor from CLI-ish knobs.

    ``kind=None`` picks ``serial`` for ``jobs == 1`` and ``process``
    otherwise (the right default for CPU-bound cells).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if kind is None:
        kind = "serial" if jobs == 1 else "process"
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"executor kind must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    if kind == "serial":
        return SerialExecutor()
    cls = ThreadExecutor if kind == "thread" else ProcessExecutor
    return cls(jobs=jobs, chunksize=chunksize)
