#!/bin/sh
# Sharded thousand-cell campaign: two concurrent shard processes fill
# one WAL-mode SQLite store, then the summary is refreshed over the
# union and the result is gated against a pinned baseline store.
#
# The shard assignment is a pure function of each cell's content
# fingerprint, and every cell's RNG stream derives from
# (campaign seed, fingerprint), so this sharded run is bit-identical
# to `scenarios run --campaign examples/campaign_thousand.json` in one
# process: same records, byte-identical summary.json, clean diff.
#
# Usage: examples/campaign_sharded.sh [STORE_DIR] [BASELINE_STORE]
set -e

STORE="sqlite:${1:-campaigns/shared}"
BASELINE="${2:-}"
CAMPAIGN="$(dirname "$0")/campaign_thousand.json"

run_shard() {
    python -m repro.experiments.cli scenarios run \
        --campaign "$CAMPAIGN" \
        --store "$STORE" --resume --shard "$1"
}

run_shard 1/2 &
PID1=$!
run_shard 2/2 &
PID2=$!
wait "$PID1" "$PID2"

# Concurrent shards each rewrote summary.json over the records they
# saw; refresh it once over the completed union.
python -m repro.experiments.cli scenarios merge "$STORE"

if [ -n "$BASELINE" ]; then
    # CI gate: exit 1 on any soundness/perf-budget regression (and,
    # with --strict, on baseline cells missing from this run).
    python -m repro.experiments.cli scenarios diff --strict \
        "$BASELINE" "$STORE"
fi
