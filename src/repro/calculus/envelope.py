"""(sigma, rho) arrival envelopes.

The paper's traffic model is Cruz's burstiness constraint: a flow with
instantaneous rate function ``R`` satisfies ``R ~ (sigma, rho)`` when

.. math::

    \\int_{t_1}^{t_2} R \\, dt \\le \\sigma + \\rho (t_2 - t_1)
    \\qquad \\forall\\, t_2 \\ge t_1 .

``sigma`` is the *burst data amount* and ``rho`` the *long-term average
input rate* (Section III of the paper).  :class:`ArrivalEnvelope`
represents one such constraint; it supports the arithmetic used in the
theorems (aggregation of independent flows, scaling by link capacity)
and conformance checks against measured cumulative curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.utils.piecewise import PiecewiseLinearCurve
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ArrivalEnvelope", "empirical_envelope", "aggregate_envelope"]


@dataclass(frozen=True)
class ArrivalEnvelope:
    """The burstiness constraint ``R ~ (sigma, rho)``.

    Attributes
    ----------
    sigma:
        Maximum burst size, in units of data (capacity-seconds when the
        link is normalised to ``C = 1``).
    rho:
        Long-term average rate (dimensionless utilisation under the
        ``C = 1`` convention).
    """

    sigma: float
    rho: float

    def __post_init__(self) -> None:
        check_non_negative(self.sigma, "sigma")
        check_non_negative(self.rho, "rho")

    # -- queries -------------------------------------------------------
    def bound(self, interval: float) -> float:
        """Maximum data admitted in any window of length ``interval``."""
        check_non_negative(interval, "interval")
        return self.sigma + self.rho * interval

    def conforms(
        self, curve: PiecewiseLinearCurve, tol: float = 1e-9
    ) -> bool:
        """Whether a measured cumulative curve satisfies this envelope."""
        return curve.conforms(self.sigma, self.rho, tol=tol)

    def violation(self, curve: PiecewiseLinearCurve) -> float:
        """How far (in data units) the curve exceeds the envelope (0 if conformant)."""
        return max(curve.min_sigma(self.rho) - self.sigma, 0.0)

    def as_curve(self, horizon: float) -> PiecewiseLinearCurve:
        """The envelope function ``gamma(t) = sigma + rho t`` on ``[0, horizon]``."""
        return PiecewiseLinearCurve.affine(self.sigma, self.rho, horizon)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "ArrivalEnvelope") -> "ArrivalEnvelope":
        """Envelope of the superposition of two independently constrained flows."""
        if not isinstance(other, ArrivalEnvelope):
            return NotImplemented
        return ArrivalEnvelope(self.sigma + other.sigma, self.rho + other.rho)

    def scaled(self, factor: float) -> "ArrivalEnvelope":
        """Scale both parameters (e.g. de-normalising by a capacity ``C``)."""
        check_positive(factor, "factor")
        return ArrivalEnvelope(self.sigma * factor, self.rho * factor)

    # -- convenience ---------------------------------------------------
    def burst_duration(self) -> float:
        """Time for a full burst to drain at rate ``rho`` (``sigma / rho``).

        This is the *vacation period* ``V`` of the paper's
        (sigma, rho, lambda) regulator, see
        :class:`repro.core.regulator.SigmaRhoLambdaRegulator`.
        """
        if self.rho <= 0:
            raise ValueError("burst_duration undefined for rho == 0")
        return self.sigma / self.rho


def aggregate_envelope(envelopes: Iterable[ArrivalEnvelope]) -> ArrivalEnvelope:
    """Envelope of the superposition of independently constrained flows.

    Used in Theorem 1 / Remark 1, where the multiplexer input is the sum
    of ``K`` flows each constrained by ``(sigma_i, rho_i)``.
    """
    total_sigma = 0.0
    total_rho = 0.0
    count = 0
    for env in envelopes:
        total_sigma += env.sigma
        total_rho += env.rho
        count += 1
    if count == 0:
        raise ValueError("aggregate_envelope needs at least one envelope")
    return ArrivalEnvelope(total_sigma, total_rho)


def empirical_envelope(
    curve: PiecewiseLinearCurve, rhos: Sequence[float]
) -> list[ArrivalEnvelope]:
    """Tightest (sigma, rho) envelopes of a measured curve for given rates.

    For each candidate ``rho`` the minimal conformant ``sigma`` is
    ``sup_{t1<=t2} [F(t2)-F(t1) - rho (t2-t1)]``
    (:meth:`PiecewiseLinearCurve.min_sigma`).  Useful for characterising
    the VBR video sources, whose (sigma, rho) description is what the
    regulators consume.
    """
    result = []
    for rho in rhos:
        check_non_negative(rho, "rho")
        result.append(ArrivalEnvelope(curve.min_sigma(rho), rho))
    return result
