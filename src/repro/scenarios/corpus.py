"""The curated adversarial scenario corpus.

Hand-picked configurations that historically stress worst-case-bound
reproductions the hardest:

* **synchronised bursts** -- every group fed the same realisation (the
  paper's own evaluation setup), which aligns burst arrivals and pushes
  the measured worst case towards the analytic bound;
* **worst-phase regulator staggering** -- the vacation schedule shifted
  through the cycle, including the half-period phase where a burst
  lands just after its window closes (the ``2 lambda sigma / rho``
  term of Lemma 1 is exactly this wait);
* **heavy-load band** -- aggregate rates at the top of the Theorem 5
  band ``rho_bar in [1/K - 1/K^(n+1), 1/K)``, the regime the paper's
  ``O(K^n)`` improvement claim lives in;
* **staggered starts** -- synchronised streams skewed per flow so
  cross-traffic bursts collide with the tagged flow mid-chain;
* **multi-hop** -- Theorem-7 critical-path chains and a DSCT tree over
  a transit-stub underlay, in both backends;
* **an unstable cell** -- ``sum rho_i > C`` with infinite bounds, kept
  to pin the vacuous-soundness path of the batch runner.

Importing :mod:`repro.scenarios` registers the corpus.

Store-driven curation
---------------------
The hand-picked corpus above is static; campaigns generate thousands
of cells and record each one's *tightness* (measured / bound).  Cells
with tightness near 1 are exactly the adversarial configurations worth
keeping, so :func:`curate_records` promotes them from any result store
(v2 records carry the full spec), :func:`save_curated` /
:func:`load_curated` round-trip the promoted set through a JSON corpus
file, and ``scenarios curate`` / ``scenarios run --corpus FILE`` drive
the loop from the shell: sweep, promote, and re-run the promoted cells
as a standing regression corpus.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.core.delay_bounds import theorem5_band
from repro.scenarios.spec import Scenario, scenario_from_dict

__all__ = [
    "adversarial_corpus",
    "curate_records",
    "save_curated",
    "load_curated",
]


def _heavy_band_utilization(k: int, n: int) -> float:
    """An aggregate utilisation at the top of the Theorem 5 band."""
    lo, hi = theorem5_band(k, n)
    return min(k * (lo + 0.8 * (hi - lo)), 0.96)


def adversarial_corpus() -> tuple[Scenario, ...]:
    """The curated corpus (fresh tuple; registration happens on import)."""
    scenarios = [
        # -- synchronised bursts (the paper's own setup) ----------------
        Scenario(
            name="sync-burst-video",
            kinds=("video",) * 3,
            utilization=0.9,
            mode="sigma-rho-lambda",
            seed=101,
            tags=("corpus", "sync-burst"),
        ),
        Scenario(
            name="sync-burst-audio",
            kinds=("audio",) * 3,
            utilization=0.85,
            mode="sigma-rho",
            seed=102,
            tags=("corpus", "sync-burst"),
        ),
        # -- worst-phase vacation staggering ----------------------------
        *(
            Scenario(
                name=f"worst-phase-{int(phase * 100):02d}",
                kinds=("video",) * 3,
                utilization=0.88,
                mode="sigma-rho-lambda",
                stagger_phase=phase,
                seed=103,
                tags=("corpus", "worst-phase"),
            )
            for phase in (0.25, 0.5, 0.75)
        ),
        # -- Theorem 5 heavy-load band ----------------------------------
        Scenario(
            name="heavy-band-k2-n2",
            kinds=("onoff",) * 2,
            utilization=_heavy_band_utilization(2, 2),
            mode="sigma-rho-lambda",
            seed=104,
            tags=("corpus", "heavy-band"),
        ),
        Scenario(
            name="heavy-band-k3-n2",
            kinds=("video",) * 3,
            utilization=_heavy_band_utilization(3, 2),
            mode="sigma-rho-lambda",
            seed=105,
            tags=("corpus", "heavy-band"),
        ),
        Scenario(
            name="heavy-band-k4-n1",
            kinds=("audio",) * 4,
            utilization=_heavy_band_utilization(4, 1),
            mode="sigma-rho-lambda",
            seed=106,
            tags=("corpus", "heavy-band"),
        ),
        # -- adversarial staggered starts -------------------------------
        Scenario(
            name="staggered-start-skew",
            kinds=("onoff",) * 4,
            utilization=0.8,
            mode="sigma-rho-lambda",
            start_offsets=(0.0, 0.05, 0.1, 0.15),
            seed=107,
            tags=("corpus", "staggered-start"),
        ),
        Scenario(
            name="staggered-start-video",
            kinds=("video",) * 3,
            utilization=0.75,
            mode="sigma-rho",
            start_offsets=(0.0, 0.02, 0.11),
            seed=108,
            tags=("corpus", "staggered-start"),
        ),
        # -- adaptive controller on both sides of the threshold ---------
        Scenario(
            name="adaptive-light",
            kinds=("video", "audio", "audio"),
            utilization=0.4,
            mode="adaptive",
            seed=109,
            tags=("corpus", "adaptive"),
        ),
        Scenario(
            name="adaptive-heavy",
            kinds=("video", "audio", "audio"),
            utilization=0.92,
            mode="adaptive",
            seed=110,
            tags=("corpus", "adaptive"),
        ),
        # -- multi-hop: Theorem-7 chains and a DSCT tree ----------------
        Scenario(
            name="chain-3hop-video",
            kinds=("video",) * 3,
            utilization=0.85,
            mode="sigma-rho-lambda",
            topology="chain",
            hops=3,
            propagation=0.005,
            seed=111,
            tags=("corpus", "chain"),
        ),
        Scenario(
            name="chain-2hop-hetero",
            kinds=("video", "onoff", "audio"),
            utilization=0.8,
            mode="sigma-rho",
            topology="chain",
            hops=2,
            seed=112,
            tags=("corpus", "chain"),
        ),
        Scenario(
            name="tree-dsct-16",
            kinds=("video",) * 3,
            utilization=0.8,
            mode="sigma-rho-lambda",
            topology="tree",
            tree_members=16,
            seed=113,
            tags=("corpus", "tree"),
        ),
        # -- whole-tree packet DES (no critical-path reduction) ---------
        Scenario(
            name="tree-des-full-12",
            kinds=("video", "audio", "audio"),
            utilization=0.75,
            mode="sigma-rho",
            topology="tree",
            tree_members=12,
            backend="tree_des",
            horizon=1.0,
            seed=118,
            tags=("corpus", "tree", "tree-des"),
        ),
        # -- packet-exact DES slice -------------------------------------
        Scenario(
            name="des-host-lambda",
            kinds=("video",) * 3,
            utilization=0.9,
            mode="sigma-rho-lambda",
            backend="des",
            seed=114,
            tags=("corpus", "des"),
        ),
        Scenario(
            name="des-host-sigma-rho",
            kinds=("audio",) * 3,
            utilization=0.8,
            mode="sigma-rho",
            backend="des",
            seed=115,
            tags=("corpus", "des"),
        ),
        Scenario(
            name="des-chain-2hop",
            kinds=("video",) * 3,
            utilization=0.8,
            mode="sigma-rho",
            topology="chain",
            hops=2,
            backend="des",
            seed=116,
            tags=("corpus", "des", "chain"),
        ),
        # -- unstable cell: infinite bounds, vacuously sound ------------
        Scenario(
            name="unstable-sigma-rho",
            kinds=("cbr",) * 3,
            utilization=1.05,
            mode="sigma-rho",
            horizon=1.0,
            seed=117,
            tags=("corpus", "unstable"),
        ),
    ]
    return tuple(scenarios)


# ----------------------------------------------------------------------
# Store-driven curation
# ----------------------------------------------------------------------
def curate_records(
    records: Iterable[Mapping[str, Any]],
    *,
    min_tightness: float = 0.9,
    limit: Optional[int] = None,
) -> list[Scenario]:
    """Promote store records with tightness close to 1 into scenarios.

    Selects sound, error-free records whose finite tightness
    (measured / bound) reaches ``min_tightness``, rebuilds their specs
    (v2 records carry the full spec; v1 records without one are
    skipped), and returns them sorted tightest-first, deduplicated by
    name, capped at ``limit``.

    Promoted specs are returned **unchanged**: every spec field (tags
    included) enters ``cell_key``/``spec_fingerprint``, so any
    decoration would re-key the cell -- re-running a curated corpus
    against the store it came from must resume/diff/shard in perfect
    alignment with the original records.

    Unstable and error cells can never be promoted: their tightness is
    recorded as 0, and a malformed spec is skipped rather than raised
    (curation runs over real, possibly hand-edited stores).
    """
    if not 0.0 < min_tightness:
        raise ValueError(f"min_tightness must be > 0, got {min_tightness}")
    if limit is not None and limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    candidates: list[tuple[float, Mapping[str, Any]]] = []
    for rec in records:
        if not isinstance(rec, Mapping) or rec.get("error"):
            continue
        if not rec.get("sound"):
            continue
        tightness = rec.get("tightness")
        if not isinstance(tightness, (int, float)):
            continue
        tightness = float(tightness)
        if not (tightness == tightness and tightness >= min_tightness):
            continue
        if not isinstance(rec.get("spec"), Mapping):
            continue  # v1 record: no spec to re-materialise
        candidates.append((tightness, rec))
    candidates.sort(key=lambda pair: -pair[0])
    promoted: list[Scenario] = []
    seen: set[str] = set()
    for tightness, rec in candidates:
        try:
            sc = scenario_from_dict(dict(rec["spec"]))
        except (TypeError, ValueError):
            continue  # drifted or hand-edited spec: skip, never raise
        if sc.name in seen:
            continue
        seen.add(sc.name)
        promoted.append(sc)
        if limit is not None and len(promoted) >= limit:
            break
    return promoted


def save_curated(
    scenarios: Sequence[Scenario], path: Union[str, Path]
) -> Path:
    """Write a curated corpus file (JSON, one spec per scenario)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "v": 1,
        "scenarios": [dataclasses.asdict(sc) for sc in scenarios],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_curated(path: Union[str, Path]) -> tuple[Scenario, ...]:
    """Load a curated corpus file back into validated scenarios."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "scenarios" not in payload:
        raise ValueError(
            f"curated corpus {path} must be a JSON object with 'scenarios'"
        )
    return tuple(
        scenario_from_dict(spec) for spec in payload["scenarios"]
    )
