"""SQLite result-store backend: safe concurrent writers for campaigns.

The JSONL backend is single-writer: two processes appending to one
``results.jsonl`` can interleave mid-line and tear records.  This
backend keeps the exact store contract (records, last-write-wins keys,
quarantine, deterministic ``summary.json``) on an SQLite file instead:

* **WAL journal + busy timeout** -- readers never block writers and
  concurrent writers serialise at commit granularity, so N campaign
  shard processes (or hosts sharing a filesystem) fill one store
  safely; ``append_many`` commits a whole batch of cells in one
  transaction, which is also what makes ingest fast.
* **content-hashed cell keys as primary keys** -- ``INSERT OR
  REPLACE`` gives the JSONL backend's duplicate-key semantics (the
  last record for a key wins) directly in the schema.
* **corrupt-row quarantine parity** -- record payloads are stored as
  canonical JSON text; a row whose payload no longer parses (manual
  edits, partial restores) is moved to a ``quarantine`` table on
  :meth:`load`, counted, and never raised -- the same recovery story
  as ``quarantine.jsonl``.

The JSON-text payload keeps the two backends bit-compatible: a record
round-trips through either backend to the identical Python dict
(non-finite floats included), so summaries, diffs, and merges never
see which backend held the data.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Union

from repro.runtime.faults import InjectedFault, active_plan
from repro.runtime.store import ResultStore, _canonical_json, _coerce_root

__all__ = ["SqliteResultStore"]

#: Milliseconds a writer waits on a locked database before erroring;
#: generous because shard processes commit whole campaign batches.
BUSY_TIMEOUT_MS = 30_000

#: Bounded busy-retry on top of SQLite's own busy timeout: attempts of
#: the whole transaction after a ``database is locked/busy`` error.
BUSY_RETRIES = 4
#: First busy-retry backoff (seconds); doubles per retry, capped below.
BUSY_BACKOFF_S = 0.05
BUSY_BACKOFF_MAX_S = 1.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key    TEXT PRIMARY KEY,
    v      INTEGER NOT NULL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    line TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS telemetry (
    id     INTEGER PRIMARY KEY,
    kind   TEXT NOT NULL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS poison (
    id     INTEGER PRIMARY KEY,
    key    TEXT NOT NULL,
    record TEXT NOT NULL
);
"""


def _is_busy_error(exc: sqlite3.OperationalError) -> bool:
    msg = str(exc).lower()
    return "locked" in msg or "busy" in msg


class SqliteResultStore(ResultStore):
    """WAL-mode SQLite store under one campaign directory.

    Two files: ``results.sqlite`` (records + quarantine tables) and the
    shared ``summary.json``.  Open one instance per process; SQLite's
    locking makes cross-process writes safe, and every operation here
    is a single transaction.
    """

    RESULTS = "results.sqlite"

    kind = "sqlite"

    def __init__(self, root: Union[str, Path]):
        self.root = _coerce_root(root, "sqlite")
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantined = 0
        #: Busy-retry accounting: transactions re-run after a
        #: ``database is locked/busy`` error (surfaced as a
        #: ``store_retries`` telemetry record by campaign and merge).
        self.busy_retries = 0
        self._conn: sqlite3.Connection | None = None

    def _with_busy_retry(self, op: Callable[[], Any]) -> Any:
        """Run one whole transaction with bounded backoff on lock
        contention (on top of SQLite's own ``busy_timeout``, which a
        writer-starved WAL checkpoint can still exhaust)."""
        delay = BUSY_BACKOFF_S
        for attempt in range(BUSY_RETRIES + 1):
            try:
                return op()
            except sqlite3.OperationalError as exc:
                if not _is_busy_error(exc) or attempt >= BUSY_RETRIES:
                    raise
                self.busy_retries += 1
                time.sleep(delay)
                delay = min(delay * 2.0, BUSY_BACKOFF_MAX_S)

    @property
    def db_path(self) -> Path:
        return self.root / self.RESULTS

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(self.db_path, timeout=BUSY_TIMEOUT_MS / 1000)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- writing ---------------------------------------------------------
    @staticmethod
    def _row(record: Mapping[str, Any]) -> tuple[str, int, str]:
        rec = ResultStore._stamp(record)
        return (str(rec["key"]), int(rec["v"]), _canonical_json(rec))

    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [self._row(rec) for rec in records]
        if not rows:
            return
        plan = active_plan()
        torn_exc = None
        if plan is not None:
            # Chaos-harness path: an injected "fail" drops the whole
            # uncommitted transaction (what a crash mid-commit does);
            # an injected "torn" commits the batch with the victim's
            # payload truncated (what a corrupted page recovers to) --
            # a retry's INSERT OR REPLACE heals it, an abandoned store
            # quarantines it on the next load.
            for i, (key, v, raw) in enumerate(rows):
                kind = plan.store_fault(key)
                if kind == "fail":
                    raise InjectedFault(
                        f"injected store failure before record {key!r}"
                    )
                if kind == "torn":
                    rows[i] = (key, v, raw[: max(1, len(raw) // 2)])
                    torn_exc = InjectedFault(
                        f"injected torn payload at record {key!r}"
                    )
                    break

        def _commit():
            conn = self._connect()
            with conn:  # one transaction per batch, however large
                conn.executemany(
                    "INSERT OR REPLACE INTO results (key, v, record) "
                    "VALUES (?, ?, ?)",
                    rows,
                )

        self._with_busy_retry(_commit)
        if torn_exc is not None:
            raise torn_exc

    def append_telemetry(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [
            (str(rec.get("kind", "cell")), _canonical_json(dict(rec)))
            for rec in records
        ]
        if not rows:
            return

        def _commit():
            conn = self._connect()
            with conn:
                conn.executemany(
                    "INSERT INTO telemetry (kind, record) VALUES (?, ?)",
                    rows,
                )

        self._with_busy_retry(_commit)

    def load_telemetry(self) -> list[dict[str, Any]]:
        if not self.db_path.exists():
            return []
        out: list[dict[str, Any]] = []
        for (raw,) in self._connect().execute(
            "SELECT record FROM telemetry ORDER BY id"
        ):
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError:
                continue  # telemetry is best-effort: skip bad rows
            if isinstance(rec, dict):
                out.append(rec)
        return out

    def append_poison(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [
            (str(rec.get("key", "")), _canonical_json(dict(rec)))
            for rec in records
        ]
        if not rows:
            return

        def _commit():
            conn = self._connect()
            with conn:
                conn.executemany(
                    "INSERT INTO poison (key, record) VALUES (?, ?)",
                    rows,
                )

        self._with_busy_retry(_commit)

    def load_poison(self) -> list[dict[str, Any]]:
        if not self.db_path.exists():
            return []
        out: list[dict[str, Any]] = []
        for (raw,) in self._connect().execute(
            "SELECT record FROM poison ORDER BY id"
        ):
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError:
                continue  # diagnosis channel: best-effort like telemetry
            if isinstance(rec, dict):
                out.append(rec)
        return out

    # -- reading ---------------------------------------------------------
    def load(self) -> dict[str, dict[str, Any]]:
        self.quarantined = 0
        if not self.db_path.exists():
            return {}
        conn = self._connect()
        records: dict[str, dict[str, Any]] = {}
        bad: list[tuple[str, str]] = []  # (key, raw payload)
        for key, raw in conn.execute(
            "SELECT key, record FROM results ORDER BY rowid"
        ):
            try:
                rec = json.loads(raw)
                rec_key = rec["key"]
            except (json.JSONDecodeError, TypeError, KeyError):
                bad.append((key, raw))
                continue
            records[str(rec_key)] = rec
        if bad:
            self.quarantined = len(bad)

            def _commit():
                with conn:
                    conn.executemany(
                        "INSERT INTO quarantine (line) VALUES (?)",
                        [(raw,) for _, raw in bad],
                    )
                    conn.executemany(
                        "DELETE FROM results WHERE key = ?",
                        [(key,) for key, _ in bad],
                    )

            self._with_busy_retry(_commit)
        return records

    def quarantine_lines(self) -> list[str]:
        """Raw payloads moved aside so far (parity with ``quarantine.jsonl``)."""
        if not self.db_path.exists():
            return []
        return [
            line
            for (line,) in self._connect().execute(
                "SELECT line FROM quarantine ORDER BY rowid"
            )
        ]
