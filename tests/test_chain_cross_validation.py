"""DES chain vs fluid chain on identical inputs (backend agreement)."""

import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.simulation.chain import simulate_regulated_chain
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_chain
from tests.tolerances import (
    BACKEND_FIFO_ABS,
    BACKEND_FIFO_REL,
    DES_OVER_FLUID_ABS,
    DES_OVER_FLUID_FACTOR,
    TIE_EPS,
)


@pytest.fixture(scope="module")
def scenario():
    u, k = 0.8, 3
    rho = u / k
    stream = VBRVideoSource(rho).generate(4.0, rng=33).fragment(0.002)
    sigma = max(stream.empirical_sigma(rho), 1e-6)
    envs = [ArrivalEnvelope(sigma, rho)] * k
    return stream, envs


@pytest.mark.parametrize("mode", ["sigma-rho", "sigma-rho-lambda"])
def test_backends_agree_on_chains(scenario, mode):
    """The DES chain's physical end-to-end delay must sit between the
    fluid FIFO end-to-end and the Theorem-7 adversarial accounting."""
    stream, envs = scenario
    hops = 3
    cross = [[stream, stream]] * hops
    fluid = simulate_fluid_chain(
        stream, cross, envs, mode=mode, discipline="adversarial", dt=1e-3,
    )
    des = simulate_regulated_chain(
        stream, cross, envs, mode=mode, discipline="fifo",
    )
    # Same order of magnitude: the DES sees discrete packets and
    # non-preemptive windows (each hop can add up to a packet+window
    # slack over the fluid continuum); see tests/tolerances.py for the
    # measured margins behind these limits.
    assert des.worst_case_delay <= (
        fluid.worst_case_delay * DES_OVER_FLUID_FACTOR + DES_OVER_FLUID_ABS
    )
    # And the two FIFO measurements agree within backend tolerance.
    assert des.worst_case_delay == pytest.approx(
        fluid.fifo_end_to_end, rel=BACKEND_FIFO_REL, abs=BACKEND_FIFO_ABS
    )


def test_des_adversarial_chain_dominates_fifo(scenario):
    stream, envs = scenario
    cross = [[stream, stream]] * 2
    fifo = simulate_regulated_chain(
        stream, cross, envs, mode="sigma-rho", discipline="fifo",
    )
    adv = simulate_regulated_chain(
        stream, cross, envs, mode="sigma-rho", discipline="adversarial",
    )
    assert adv.worst_case_delay >= fifo.worst_case_delay - TIE_EPS
