"""Priority-extended (sigma, rho, lambda, w) regulation (paper's future work)."""

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.priority import (
    PriorityStaggerPlan,
    build_priority_stagger_plan,
    fluid_priority_vacation_regulator,
    priority_delay_bound,
)
from repro.simulation.flow import VBRVideoSource
from repro.utils.piecewise import PiecewiseLinearCurve as PLC


def hom_envs(k=3, sigma=0.06, rho=0.3):
    return [ArrivalEnvelope(sigma, rho)] * k


class TestPlanConstruction:
    def test_unit_weights_reduce_to_plain_stagger(self):
        plan = build_priority_stagger_plan(hom_envs(), [1, 1, 1])
        assert plan.weights == (1, 1, 1)
        assert all(len(o) == 1 for o in plan.sub_offsets)
        assert not plan.windows_overlap()

    def test_weighted_flow_gets_w_subwindows(self):
        plan = build_priority_stagger_plan(hom_envs(), [3, 1, 1])
        assert len(plan.sub_offsets[0]) == 3
        assert plan.sub_window_length(0) == pytest.approx(
            plan.regulators[0].working_period / 3
        )
        assert not plan.windows_overlap()

    def test_throughput_share_preserved(self):
        """Splitting windows must not change the flow's service share."""
        plan = build_priority_stagger_plan(hom_envs(), [4, 1, 2])
        for i, reg in enumerate(plan.regulators):
            total = plan.sub_window_length(i) * plan.weights[i]
            assert total == pytest.approx(reg.working_period)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="stability"):
            build_priority_stagger_plan(hom_envs(rho=0.4), [1, 1, 1])

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            build_priority_stagger_plan(hom_envs(), [1, 1])
        with pytest.raises(ValueError):
            build_priority_stagger_plan(hom_envs(), [0, 1, 1])

    def test_plan_validation(self):
        plan = build_priority_stagger_plan(hom_envs(), [2, 1, 1])
        with pytest.raises(ValueError, match="sub-offsets"):
            PriorityStaggerPlan(
                regulators=plan.regulators,
                weights=(2, 1, 1),
                sub_offsets=((0.0,), plan.sub_offsets[1], plan.sub_offsets[2]),
                period=plan.period,
            )


class TestDelayBound:
    def test_bound_decreases_with_weight(self):
        envs = hom_envs()
        bounds = [
            priority_delay_bound(build_priority_stagger_plan(envs, [w, 1, 1]), 0)
            for w in (1, 2, 4)
        ]
        assert bounds[0] > bounds[1] > bounds[2]
        # Never below the fluid-rate limit sigma/rho.
        reg = build_priority_stagger_plan(envs, [4, 1, 1]).regulators[0]
        assert bounds[-1] >= reg.sigma / reg.rho

    def test_unit_weight_matches_lemma1_invariant(self):
        """w = 1: the bound is the (1 + lambda) sigma / rho invariant."""
        plan = build_priority_stagger_plan(hom_envs(), [1, 1, 1])
        reg = plan.regulators[0]
        expected = (1 + reg.lam) * reg.sigma / reg.rho
        assert priority_delay_bound(plan, 0) == pytest.approx(expected)

    def test_excess_burst_term(self):
        plan = build_priority_stagger_plan(hom_envs(sigma=0.05), [1, 1, 1])
        reg = plan.regulators[0]
        base = priority_delay_bound(plan, 0)
        with_excess = priority_delay_bound(plan, 0, sigma_input=reg.sigma + 0.02)
        assert with_excess == pytest.approx(base + 0.02 / reg.rho)


class TestFluidRealisation:
    @pytest.fixture(scope="class")
    def scenario(self):
        rho = 0.3
        trace = VBRVideoSource(rho).generate(10.0, rng=3).fragment(0.002)
        sigma = max(trace.empirical_sigma(rho), 1e-6)
        envs = [ArrivalEnvelope(sigma, rho)] * 3
        dt = 1e-3
        total = 40.0
        n = int(total / dt)
        t = dt * np.arange(n + 1)
        arr = np.concatenate(([0.0], np.cumsum(trace.binned_arrivals(dt, total))))
        return envs, t, arr, trace

    def test_conservation(self, scenario):
        envs, t, arr, trace = scenario
        plan = build_priority_stagger_plan(envs, [2, 1, 1])
        out = fluid_priority_vacation_regulator(arr, t, plan, 0)
        assert out[-1] == pytest.approx(arr[-1], rel=1e-9)
        assert np.all(out <= arr + 1e-12)

    def test_high_priority_flow_has_smaller_measured_delay(self, scenario):
        """The point of the extension: weight w shrinks the worst wait."""
        envs, t, arr, trace = scenario
        delays = {}
        for w in (1, 4):
            plan = build_priority_stagger_plan(envs, [w, 1, 1])
            out = fluid_priority_vacation_regulator(arr, t, plan, 0)
            a = PLC(t, arr)
            d = PLC(t, np.minimum(out, arr[-1]))
            delays[w] = a.max_horizontal_deviation(d)
        assert delays[4] < delays[1]

    def test_measured_below_priority_bound(self, scenario):
        envs, t, arr, trace = scenario
        for w in (1, 2, 4):
            plan = build_priority_stagger_plan(envs, [w, 1, 1])
            out = fluid_priority_vacation_regulator(arr, t, plan, 0)
            a = PLC(t, arr)
            d = PLC(t, np.minimum(out, arr[-1]))
            measured = a.max_horizontal_deviation(d)
            bound = priority_delay_bound(
                plan, 0, sigma_input=envs[0].sigma
            )
            # The regulator-only wait is bounded by the Lemma-1-style
            # term (allow the O(dt) grid quantisation).
            assert measured <= bound * 1.05 + 5e-3, w
