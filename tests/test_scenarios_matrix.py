"""The scenario-matrix regression net: every cell must be sound.

Tier-1 runs a parametrized *smoke slice* -- the full curated corpus
plus a deterministic slab of generated scenarios (>= 40 cells total) --
with one test per scenario so a violation names its cell directly.
The full matrix (hundreds of generated cells across several seeds) is
registered behind the ``scenario`` marker: ``pytest -m scenario``.
"""

import pytest

from repro.scenarios import (
    adversarial_corpus,
    generate_scenarios,
    run_batch,
    run_scenario,
)

SMOKE_GENERATED = 32
CORPUS = adversarial_corpus()
SMOKE = list(CORPUS) + generate_scenarios(SMOKE_GENERATED, seed=2006)


def _assert_sound(outcome):
    sc = outcome.scenario
    assert outcome.height_ok, f"{sc.name}: constructed tree exceeds Lemma 2"
    assert outcome.sound, (
        f"{sc.name} ({outcome.eff_mode}, {outcome.eff_backend}, "
        f"hops={outcome.hops}): measured={outcome.measured:.6g} exceeds "
        f"bound={outcome.bound:.6g} + eps={outcome.eps:.3g}"
    )


@pytest.mark.parametrize("scenario", SMOKE, ids=lambda sc: sc.name)
def test_smoke_slice_is_sound(scenario):
    """>= 40 scenarios spanning every topology/workload/mode axis."""
    _assert_sound(run_scenario(scenario))


def test_smoke_slice_is_large_enough():
    assert len(SMOKE) >= 40


def test_smoke_slice_covers_the_axes():
    """The tier-1 slice must exercise every axis, not just the default."""
    assert {sc.topology for sc in SMOKE} == {"host", "chain", "tree"}
    assert {sc.backend for sc in SMOKE} == {"fluid", "des", "tree_des"}
    assert {sc.mode for sc in SMOKE} == {
        "sigma-rho", "sigma-rho-lambda", "adaptive"
    }


def test_batch_and_single_agree():
    """run_batch's vectorised bounds equal the one-off path."""
    batch = run_batch(SMOKE[:6])
    for outcome, sc in zip(batch.outcomes, SMOKE[:6]):
        single = run_scenario(sc)
        assert single.bound == pytest.approx(outcome.bound)
        assert single.measured == pytest.approx(outcome.measured)


def test_batch_report_accounting():
    rep = run_batch(SMOKE[:8])
    assert rep.n_scenarios == 8
    assert rep.elapsed > 0
    assert rep.scenarios_per_sec > 0
    assert not rep.violations
    lines = rep.summary_lines()
    assert any("soundness violations: 0" in ln for ln in lines)


@pytest.mark.slow
@pytest.mark.scenario
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_full_matrix_is_sound(seed):
    """The opt-in full sweep: hundreds of generated cells per seed."""
    report = run_batch(generate_scenarios(200, seed=seed))
    assert report.violations == (), [
        (o.scenario.name, o.measured, o.bound) for o in report.violations
    ]
    # The matrix is not vacuous: some cell must approach its bound.
    assert report.max_tightness > 0.5
