"""Figure 4(a)-(c): single regulated end host, WDB vs average input rate.

Paper criteria checked per panel:

* the (sigma, rho) curve increases with the rate and is largest at 0.95;
* the (sigma, rho, lambda) curve stays flat (bounded variation) and wins
  at heavy load;
* the curves cross within +-0.15 of the theoretical aggregate threshold
  (0.79 for the homogeneous video/audio panels' K=3 value; the paper
  observed crossings slightly below theory);
* the maximum improvement factor is at least 2x (paper: 2.8-3.2x).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.config import Fig4Config
from repro.experiments.report import format_series
from repro.experiments.single_host import run_fig4
from repro.workloads.profiles import AUDIO_MIX, HETEROGENEOUS_MIX, VIDEO_MIX

#: Full sweep at paper scale, fluid backend (cross-validated vs DES in tests).
CONFIG = Fig4Config(horizon=20.0, dt=5e-4)

PANELS = {
    "a": (AUDIO_MIX, "three 64 kbps audio streams"),
    "b": (VIDEO_MIX, "three 1.5 Mbps MPEG-1 video streams"),
    "c": (HETEROGENEOUS_MIX, "one video + two audio streams"),
}


def _render(panel: str, res) -> str:
    lines = [
        f"== Figure 4({panel}) -- {PANELS[panel][1]} ==",
        "utilization:  " + " ".join(f"{u:7.2f}" for u in res.utilizations),
        format_series("(sigma,rho) WDB [s]", res.utilizations, res.sigma_rho_series),
        format_series(
            "(sigma,rho,lambda) WDB [s]", res.utilizations, res.sigma_rho_lambda_series
        ),
        f"simulated crossover: {res.crossover}",
        f"theoretical aggregate threshold: {res.theoretical_threshold_aggregate:.3f}",
        f"max improvement: {res.max_improvement:.2f}x at u={res.max_improvement_at}",
    ]
    return "\n".join(lines)


def _check_shape(res) -> None:
    sr = res.sigma_rho_series
    srl = res.sigma_rho_lambda_series
    # (sigma, rho) grows and peaks at the heaviest load.
    assert sr[-1] == max(sr)
    assert sr[-1] > 3 * sr[0]
    # (sigma, rho, lambda) wins at heavy load by a solid factor.
    assert srl[-1] < sr[-1]
    assert res.max_improvement >= 2.0
    # The cross sits near the theoretical threshold.
    assert res.crossover is not None
    assert abs(res.crossover - res.theoretical_threshold_aggregate) <= 0.15
    # Below the cross the baseline is no worse (light-load regime).
    assert sr[0] < srl[0]


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig4(panel, benchmark, artifact_report):
    mix, _ = PANELS[panel]
    res = run_once(benchmark, run_fig4, mix, CONFIG)
    artifact_report.append(_render(panel, res))
    _check_shape(res)
