"""Multi-hop chain simulations (DES and fluid)."""

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.multicast_bounds import (
    remark2_multicast_wdb_homogeneous,
    theorem8_multicast_wdb_homogeneous,
)
from repro.simulation.chain import simulate_regulated_chain
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_chain


def chain_scenario(u, k=3, horizon=4.0, seed=21):
    rho = u / k
    src = VBRVideoSource(rho, scene_strength=0.15, scene_persistence=0.9)
    trace = src.generate(horizon, rng=seed).fragment(0.002)
    sigma = max(trace.empirical_sigma(rho), 1e-6)
    envs = [ArrivalEnvelope(sigma, rho)] * k
    return trace, envs, sigma, rho


class TestFluidChain:
    def test_delay_grows_with_hops(self):
        trace, envs, *_ = chain_scenario(0.8)
        results = []
        for hops in (1, 3, 5):
            res = simulate_fluid_chain(
                trace, [[trace, trace]] * hops, envs,
                mode="sigma-rho", discipline="adversarial", dt=2e-3,
            )
            results.append(res.worst_case_delay)
        assert results[0] < results[1] < results[2]

    def test_theorem8_accounting(self):
        """Sum of per-hop worsts stays below (H-1) x per-hop bound."""
        trace, envs, sigma, rho = chain_scenario(0.8)
        hops = 4
        res = simulate_fluid_chain(
            trace, [[trace, trace]] * hops, envs,
            mode="sigma-rho-lambda", discipline="adversarial", dt=2e-3,
        )
        bound = theorem8_multicast_wdb_homogeneous(hops + 1, 3, sigma, rho)
        assert res.worst_case_delay <= bound * 1.01 + 5 * res.dt * hops

    def test_remark2_accounting(self):
        trace, envs, sigma, rho = chain_scenario(0.8)
        hops = 4
        res = simulate_fluid_chain(
            trace, [[trace, trace]] * hops, envs,
            mode="sigma-rho", discipline="adversarial", dt=2e-3,
        )
        bound = remark2_multicast_wdb_homogeneous(hops + 1, 3, sigma, rho)
        assert res.worst_case_delay <= bound * 1.01 + 5 * res.dt * hops

    def test_propagation_added(self):
        # Single flow, no cross traffic: shifting the stream cannot
        # change queueing, so propagation adds exactly.
        trace, envs, *_ = chain_scenario(0.5)
        env = [envs[0]]
        base = simulate_fluid_chain(
            trace, [[], []], env, mode="sigma-rho", dt=2e-3,
        )
        with_prop = simulate_fluid_chain(
            trace, [[], []], env,
            mode="sigma-rho", dt=2e-3, propagation=[0.05, 0.05],
        )
        assert with_prop.worst_case_delay == pytest.approx(
            base.worst_case_delay + 0.1, abs=0.02
        )
        assert with_prop.propagation_total == pytest.approx(0.1)

    def test_propagation_total_recorded(self):
        trace, envs, *_ = chain_scenario(0.5)
        res = simulate_fluid_chain(
            trace, [[trace, trace]] * 2, envs,
            mode="sigma-rho", dt=2e-3, propagation=[0.03, 0.07],
        )
        assert res.propagation_total == pytest.approx(0.1)

    def test_fifo_e2e_below_theorem_accounting(self):
        trace, envs, *_ = chain_scenario(0.8)
        res = simulate_fluid_chain(
            trace, [[trace, trace]] * 3, envs,
            mode="sigma-rho", discipline="adversarial", dt=2e-3,
        )
        assert res.fifo_end_to_end <= res.worst_case_delay + 1e-6

    def test_per_hop_capacities(self):
        trace, envs, *_ = chain_scenario(0.5)
        res = simulate_fluid_chain(
            trace, [[trace, trace]] * 2, envs,
            mode="none", dt=2e-3, capacity=[2.0, 1.0],
        )
        assert res.worst_case_delay >= 0
        with pytest.raises(ValueError):
            simulate_fluid_chain(
                trace, [[trace, trace]] * 2, envs,
                mode="none", dt=2e-3, capacity=[2.0],
            )

    def test_input_validation(self):
        trace, envs, *_ = chain_scenario(0.5)
        with pytest.raises(ValueError):
            simulate_fluid_chain(trace, [], envs)
        with pytest.raises(ValueError):
            simulate_fluid_chain(trace, [[trace]], envs)  # needs K-1 cross


class TestDesChain:
    def test_runs_and_measures(self):
        trace, envs, *_ = chain_scenario(0.7, horizon=2.0)
        res = simulate_regulated_chain(
            trace, [[trace, trace]] * 2, envs,
            mode="sigma-rho", discipline="adversarial",
        )
        assert res.hops == 2
        assert res.worst_case_delay > 0
        assert res.tagged_stats.count == len(trace)

    def test_delay_grows_with_hops(self):
        trace, envs, *_ = chain_scenario(0.7, horizon=2.0)
        r1 = simulate_regulated_chain(
            trace, [[trace, trace]], envs, mode="sigma-rho",
        )
        r3 = simulate_regulated_chain(
            trace, [[trace, trace]] * 3, envs, mode="sigma-rho",
        )
        assert r3.worst_case_delay > r1.worst_case_delay

    def test_vacation_mode_runs_multi_hop(self):
        trace, envs, *_ = chain_scenario(0.85, horizon=2.0)
        res = simulate_regulated_chain(
            trace, [[trace, trace]] * 2, envs,
            mode="sigma-rho-lambda", discipline="fifo",
        )
        assert res.tagged_stats.count == len(trace)

    def test_propagation_validation(self):
        trace, envs, *_ = chain_scenario(0.5, horizon=1.0)
        with pytest.raises(ValueError):
            simulate_regulated_chain(
                trace, [[trace, trace]] * 2, envs, propagation=[0.0],
            )
