"""Whole-tree DES scenarios: Theorem 7 hop scaling on full DSCT trees.

The critical-path reduction validates the worst *path*; the
``tree_des`` backend replicates packets at every member and so
cross-checks the hop-scaling construction network-wide -- every
receiver at depth ``d`` crosses ``d + 1`` regulated pipelines, and the
height-scaled bound must dominate all of them at once.  Tier-1 keeps a
mid-size tree; the 100+ member cross-check (the ROADMAP open item)
rides the opt-in ``scenario`` marker.
"""

import pytest

from repro.scenarios import Scenario, get_scenario, run_scenario

pytestmark = pytest.mark.runtime


def _tree_des(members, *, seed, horizon=1.0, utilization=0.75):
    return Scenario(
        name=f"tree-des-{members}-{seed}",
        kinds=("video", "audio", "audio"),
        utilization=utilization,
        mode="sigma-rho",
        topology="tree",
        tree_members=members,
        backend="tree_des",
        horizon=horizon,
        seed=seed,
    )


class TestSpecValidation:
    def test_requires_tree_topology(self):
        with pytest.raises(ValueError, match="topology 'tree'"):
            Scenario(
                name="bad", kinds=("audio",) * 2, utilization=0.5,
                mode="sigma-rho", backend="tree_des",
            )

    def test_requires_sigma_rho_mode(self):
        with pytest.raises(ValueError, match="mode 'sigma-rho'"):
            Scenario(
                name="bad", kinds=("audio",) * 2, utilization=0.5,
                mode="sigma-rho-lambda", topology="tree",
                tree_members=8, backend="tree_des",
            )


class TestWholeTreeSoundness:
    def test_corpus_cell_runs_the_full_tree(self):
        outcome = run_scenario(get_scenario("tree-des-full-12"))
        assert outcome.eff_backend == "tree_des"
        assert outcome.sound
        # Whole-tree replication processes far more events than any
        # critical-path chain of the same height would.
        assert outcome.events > 1000

    @pytest.mark.parametrize("seed", [21, 22])
    def test_mid_size_trees_are_sound(self, seed):
        outcome = run_scenario(_tree_des(20, seed=seed))
        assert outcome.sound, (
            f"seed {seed}: measured={outcome.measured:.6g} > "
            f"bound={outcome.bound:.6g} + eps={outcome.eps:.3g}"
        )
        assert outcome.height_ok
        # The hop count charged is the tree height (layers), which for
        # 20 members under Lemma 2 is a multi-layer tree.
        assert outcome.hops >= 2

    def test_bound_uses_height_not_critical_path(self):
        """The whole-tree verdict charges one more pipeline (the leaf's
        own) than the critical-path reduction of the same topology.

        Both specs share name and seed, so ``_build_tree`` constructs
        the identical tree (the topology stream is derived from both).
        """
        common = dict(
            name="tree-hop-cmp-33",
            kinds=("video", "audio", "audio"),
            utilization=0.75,
            mode="sigma-rho",
            topology="tree",
            tree_members=16,
            horizon=1.0,
            seed=33,
        )
        full = run_scenario(Scenario(backend="tree_des", **common))
        reduced = run_scenario(Scenario(backend="fluid", **common))
        assert full.hops == reduced.hops + 1
        assert full.sound and reduced.sound


@pytest.mark.slow
@pytest.mark.scenario
@pytest.mark.parametrize("seed", [42, 43])
def test_hundred_member_tree_is_sound(seed):
    """The ROADMAP open item: 100+ member DSCT trees, packet-exact.

    The magnitude guard is engine-aware since PR 5: the batched tree
    is busy-period bound (cross traffic folds into the MUXes with no
    events, replication commits one event per busy period per child),
    so the same 108-member cell that cost the legacy chain > 50k
    events now runs primed in a few thousand -- still far above any
    trivially truncated run.
    """
    outcome = run_scenario(_tree_des(108, seed=seed, horizon=0.8))
    assert outcome.sound, (
        f"measured={outcome.measured:.6g} > bound={outcome.bound:.6g}"
    )
    assert outcome.primed
    assert outcome.events > 5_000
    assert outcome.height_ok
