"""Generic rooted multicast trees.

A :class:`MulticastTree` is a parent map over host indices plus the
queries every experiment needs: layer count (the paper's "tree layer
numbers", Tables I-III), longest root-to-leaf path (the critical path
whose regulated chain realises the worst-case multicast delay of
Theorem 7), per-host fan-out, and propagation along overlay paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["MulticastTree"]


@dataclass(frozen=True)
class MulticastTree:
    """A rooted tree over member host indices.

    Attributes
    ----------
    root:
        Host index of the source/root.
    parent:
        Mapping ``member -> parent member``; the root is absent (or maps
        to itself).  Members are arbitrary hashable host indices.
    """

    root: int
    parent: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        parent = {m: p for m, p in self.parent.items() if m != p}
        object.__setattr__(self, "parent", parent)
        if self.root in parent:
            raise ValueError("the root cannot have a parent")
        # Validate: every chain reaches the root without cycles.
        members = self.members()
        for m in parent:
            seen = set()
            cur = m
            while cur != self.root:
                if cur in seen:
                    raise ValueError(f"cycle detected at member {cur}")
                seen.add(cur)
                if cur not in parent:
                    raise ValueError(
                        f"member {cur} is disconnected from the root {self.root}"
                    )
                cur = parent[cur]
        object.__setattr__(self, "_children_cache", None)

    # -- basic queries ---------------------------------------------------
    def members(self) -> set[int]:
        """All member indices (root included)."""
        out = set(self.parent)
        out.update(self.parent.values())
        out.add(self.root)
        return out

    @property
    def size(self) -> int:
        return len(self.members())

    def children(self) -> dict[int, list[int]]:
        """Mapping member -> ordered list of children."""
        cached = getattr(self, "_children_cache", None)
        if cached is not None:
            return cached
        ch: dict[int, list[int]] = {m: [] for m in self.members()}
        for m, p in sorted(self.parent.items()):
            ch[p].append(m)
        object.__setattr__(self, "_children_cache", ch)
        return ch

    def depth(self, member: int) -> int:
        """Number of overlay hops from the root (root depth 0)."""
        d = 0
        cur = member
        while cur != self.root:
            cur = self.parent[cur]
            d += 1
        return d

    def path_from_root(self, member: int) -> list[int]:
        """Hosts along the root -> member path, inclusive."""
        rev = [member]
        cur = member
        while cur != self.root:
            cur = self.parent[cur]
            rev.append(cur)
        return rev[::-1]

    # -- paper metrics -----------------------------------------------------
    @property
    def height(self) -> int:
        """Number of layers: 1 + max depth (a lone root has height 1).

        This is the "tree layer number" of Tables I-III and the ``H`` of
        Lemma 2 / Theorems 7-8.
        """
        if not self.parent:
            return 1
        return 1 + max(self.depth(m) for m in self.parent)

    def critical_path(self) -> list[int]:
        """The longest root-to-leaf path (most overlay hops).

        Ties break towards the smaller leaf index for determinism.  The
        worst-case multicast delay is attained along this path
        (Theorem 7's proof construction), so the chain simulators run it.
        """
        best: Optional[list[int]] = None
        ch = self.children()
        leaves = sorted(m for m, c in ch.items() if not c)
        for leaf in leaves:
            p = self.path_from_root(leaf)
            if best is None or len(p) > len(best):
                best = p
        return best if best is not None else [self.root]

    def fanout(self) -> dict[int, int]:
        """Number of children per member (the forwarding load)."""
        return {m: len(c) for m, c in self.children().items()}

    def max_fanout(self) -> int:
        f = self.fanout()
        return max(f.values()) if f else 0

    def link_stress(self, host_router: Sequence[int]) -> float:
        """Mean number of overlay edges crossing each backbone router pair.

        A classic EMcast metric: overlay edges whose endpoints attach to
        the same router pair duplicate packets on the same underlay
        links.  ``host_router[h]`` gives each host's attachment.
        """
        if not self.parent:
            return 0.0
        pair_count: dict[tuple[int, int], int] = {}
        for m, p in self.parent.items():
            a, b = host_router[m], host_router[p]
            key = (min(a, b), max(a, b))
            pair_count[key] = pair_count.get(key, 0) + 1
        return float(np.mean(list(pair_count.values())))

    def path_propagation(
        self, path: Iterable[int], latency_matrix: np.ndarray
    ) -> float:
        """Sum of one-way underlay latencies along consecutive overlay hops."""
        path = list(path)
        return float(
            sum(latency_matrix[a, b] for a, b in zip(path, path[1:]))
        )

    def total_propagation_to(self, member: int, latency_matrix: np.ndarray) -> float:
        """Propagation along the root -> member overlay path."""
        return self.path_propagation(self.path_from_root(member), latency_matrix)

    def stretch(self, latency_matrix: np.ndarray) -> float:
        """Mean ratio of overlay path latency to direct unicast latency."""
        ratios = []
        for m in self.parent:
            direct = latency_matrix[self.root, m]
            if direct <= 0:
                continue
            ratios.append(self.total_propagation_to(m, latency_matrix) / direct)
        return float(np.mean(ratios)) if ratios else 1.0

    # -- transforms --------------------------------------------------------
    def relabel(self, mapping: dict[int, int]) -> "MulticastTree":
        """Apply a member relabelling (e.g. local indices -> host ids)."""
        return MulticastTree(
            root=mapping[self.root],
            parent={mapping[m]: mapping[p] for m, p in self.parent.items()},
        )
