"""Worst-case delay bounds for the single regulated end host (Section IV).

Every closed-form result of Section IV is implemented here:

* **Lemma 1** -- delay through one (sigma, rho, lambda) regulator fed a
  ``(sigma*, rho)``-constrained flow.
* **Theorem 1** -- WDB of a general MUX whose K heterogeneous inputs are
  shaped by ``(sigma_i*, rho_i, lambda_i)`` regulators, where
  ``sigma_i* = rho_i (1 - rho_i) min_j sigma_j / (rho_j (1 - rho_j))``
  equalises the regulator periods so the round-robin stagger tiles.
* **Theorem 2** -- the homogeneous special case.
* **Remark 1** -- the (sigma, rho)-regulated baselines (Cruz eq. (13)),
  re-exported from :mod:`repro.calculus.mux`.
* **Theorems 5/6** -- the ``O(K^n)`` improvement ratio of the new
  regulator over the baseline in the heavy-load band
  ``rho_bar in [1/K - 1/K^(n+1), 1/K)``.

All rates are utilisations of the normalised capacity ``C = 1``; pass
``capacity=`` to de-normalise.
"""

from __future__ import annotations

from typing import Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.calculus.mux import (
    STABILITY_TOL,
    mux_delay_bound_heterogeneous,
    mux_delay_bound_homogeneous,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_same_length,
)

__all__ = [
    "lemma1_regulator_delay",
    "reduced_sigma_star",
    "theorem1_wdb_heterogeneous",
    "theorem2_wdb_homogeneous",
    "remark1_wdb_heterogeneous",
    "remark1_wdb_homogeneous",
    "improvement_ratio_heterogeneous",
    "improvement_ratio_homogeneous",
    "theorem5_ratio_lower_bound",
    "theorem5_band",
]


# ----------------------------------------------------------------------
# Lemma 1
# ----------------------------------------------------------------------
def lemma1_regulator_delay(
    sigma_star: float, sigma: float, rho: float, lam: float | None = None
) -> float:
    """Lemma 1: ``D = (sigma* - sigma)+ / rho + 2 lambda sigma / rho``.

    Delay incurred by a ``(sigma*, rho)``-constrained input crossing a
    ``(sigma, rho, lambda)`` regulator.  ``lam`` defaults to the minimum
    feasible ``1/(1-rho)``.
    """
    check_non_negative(sigma_star, "sigma_star")
    check_positive(sigma, "sigma")
    check_in_range(rho, "rho", 0.0, 1.0, inclusive_low=False, inclusive_high=False)
    if lam is None:
        lam = 1.0 / (1.0 - rho)
    check_positive(lam, "lam")
    excess = max(sigma_star - sigma, 0.0)
    return excess / rho + 2.0 * lam * sigma / rho


# ----------------------------------------------------------------------
# Theorem 1 (heterogeneous MUX)
# ----------------------------------------------------------------------
def reduced_sigma_star(
    sigmas: Sequence[float], rhos: Sequence[float]
) -> list[float]:
    """The reduced bursts ``sigma_i*`` of Theorem 1.

    ``sigma_i* = rho_i (1 - rho_i) * min_j [ sigma_j / (rho_j (1 - rho_j)) ]``.

    These are the burst budgets the adaptive controller assigns to each
    flow's (sigma, rho, lambda) regulator.  They make every regulator's
    period ``sigma_i* lambda_i / rho_i = min_j sigma_j/(rho_j(1-rho_j))``
    identical, which is what lets the controller stagger the working
    periods round-robin without overlap.
    """
    check_same_length("sigmas", sigmas, "rhos", rhos)
    if not sigmas:
        raise ValueError("at least one flow is required")
    for s, r in zip(sigmas, rhos):
        check_positive(s, "sigma_i")
        check_in_range(r, "rho_i", 0.0, 1.0, inclusive_low=False, inclusive_high=False)
    common_period = min(s / (r * (1.0 - r)) for s, r in zip(sigmas, rhos))
    return [r * (1.0 - r) * common_period for r in rhos]


def theorem1_wdb_heterogeneous(
    sigmas: Sequence[float],
    rhos: Sequence[float],
    capacity: float = 1.0,
) -> float:
    """Theorem 1: WDB of the (sigma_i*, rho_i, lambda_i)-regulated MUX.

    ``D_hat_g = sum_i sigma_i*/(1 - rho_i)
    + 2 min_i sigma_i / (rho_i (1 - rho_i))
    + max_i (sigma_i - sigma_i*) / rho_i``.

    Requires the stability condition ``sum rho_i <= C``; the bound holds
    for any work-conserving ("general") service discipline.
    """
    check_positive(capacity, "capacity")
    check_same_length("sigmas", sigmas, "rhos", rhos)
    if not sigmas:
        raise ValueError("at least one flow is required")
    # Normalise to C = 1 (Section III: release the assumption by scaling).
    sig = [s / capacity for s in sigmas]
    rho = [r / capacity for r in rhos]
    if sum(rho) > 1.0 + STABILITY_TOL:
        return float("inf")
    stars = reduced_sigma_star(sig, rho)
    mux_term = sum(s_star / (1.0 - r) for s_star, r in zip(stars, rho))
    stagger_term = 2.0 * min(s / (r * (1.0 - r)) for s, r in zip(sig, rho))
    excess_term = max(
        (s - s_star) / r for s, s_star, r in zip(sig, stars, rho)
    )
    return mux_term + stagger_term + max(excess_term, 0.0)


# ----------------------------------------------------------------------
# Theorem 2 (homogeneous MUX)
# ----------------------------------------------------------------------
def theorem2_wdb_homogeneous(
    k: int,
    sigma: float,
    rho: float,
    sigma0: float | None = None,
    capacity: float = 1.0,
) -> float:
    """Theorem 2: ``D_hat_g = K sigma/(1-rho) + (sigma0-sigma)+/rho + 2 lambda sigma/rho``.

    ``sigma`` is the regulator burst budget, ``sigma0`` the input flows'
    actual burst (defaults to ``sigma``); ``rho <= 1/K`` is required.
    """
    check_positive_int(k, "k")
    check_positive(capacity, "capacity")
    sigma = check_positive(sigma, "sigma") / capacity
    rho = check_positive(rho, "rho") / capacity
    check_in_range(rho, "rho/C", 0.0, 1.0, inclusive_low=False, inclusive_high=False)
    if sigma0 is None:
        sigma0 = sigma
    else:
        sigma0 = check_positive(sigma0, "sigma0") / capacity
    if k * rho > 1.0 + STABILITY_TOL:
        return float("inf")
    lam = 1.0 / (1.0 - rho)
    mux_term = k * sigma / (1.0 - rho)
    excess_term = max(sigma0 - sigma, 0.0) / rho
    regulator_term = 2.0 * lam * sigma / rho
    return mux_term + excess_term + regulator_term


# ----------------------------------------------------------------------
# Remark 1 (baselines)
# ----------------------------------------------------------------------
def remark1_wdb_heterogeneous(
    sigmas: Sequence[float], rhos: Sequence[float], capacity: float = 1.0
) -> float:
    """Remark 1 baseline: ``D_g = sum sigma_i / (C - sum rho_i)``."""
    check_same_length("sigmas", sigmas, "rhos", rhos)
    envs = [ArrivalEnvelope(s, r) for s, r in zip(sigmas, rhos)]
    return mux_delay_bound_heterogeneous(envs, capacity)


def remark1_wdb_homogeneous(
    k: int, sigma: float, rho: float, capacity: float = 1.0
) -> float:
    """Remark 1 baseline: ``D_g = K sigma0 / (C - K rho)``."""
    return mux_delay_bound_homogeneous(k, sigma, rho, capacity)


# ----------------------------------------------------------------------
# Theorems 5/6 (improvement ratio)
# ----------------------------------------------------------------------
def improvement_ratio_homogeneous(
    k: int, sigma: float, rho: float, capacity: float = 1.0
) -> float:
    """``D_g / D_hat_g`` for K homogeneous flows at per-flow rate ``rho``.

    Values above 1 mean the (sigma, rho, lambda) regulator achieves the
    smaller worst-case delay bound (the heavy-load regime of Theorem 6).
    """
    d_baseline = remark1_wdb_homogeneous(k, sigma, rho, capacity)
    d_new = theorem2_wdb_homogeneous(k, sigma, rho, capacity=capacity)
    if d_new == 0.0:
        return float("inf")
    return d_baseline / d_new


def improvement_ratio_heterogeneous(
    sigmas: Sequence[float], rhos: Sequence[float], capacity: float = 1.0
) -> float:
    """``D_g / D_hat_g`` for heterogeneous flows (Theorem 5's ratio)."""
    d_baseline = remark1_wdb_heterogeneous(sigmas, rhos, capacity)
    d_new = theorem1_wdb_heterogeneous(sigmas, rhos, capacity)
    if d_new == 0.0:
        return float("inf")
    return d_baseline / d_new


def theorem5_band(k: int, n: int) -> tuple[float, float]:
    """The heavy-load band ``[1/K - 1/K^(n+1), 1/K)`` of Theorems 5/6."""
    check_positive_int(k, "k")
    check_positive_int(n, "n")
    return (1.0 / k - 1.0 / k ** (n + 1), 1.0 / k)


def theorem5_ratio_lower_bound(k: int, n: int) -> float:
    """The explicit lower bound from Theorem 5's proof.

    For any ``rho_bar`` in the band of :func:`theorem5_band`,
    ``D_g / D_hat_g >= (1 - 1/K^n)(1 - 1/K) K^n / 4 = O(K^n)``.
    """
    check_positive_int(k, "k")
    check_positive_int(n, "n")
    if k < 2:
        raise ValueError("Theorem 5 requires K >= 2")
    return (1.0 - k ** (-n)) * (1.0 - 1.0 / k) * (k**n) / 4.0


def theorem5_ratio_intermediate(k: int, rho_bar: float) -> float:
    """The intermediate ratio bound from Theorem 5's proof.

    ``D_g/D_hat_g >= K rho_bar (1 - rho_bar) /
    [(1 - K rho_bar)(3 + (K-1) rho_bar)]`` -- useful for checking the
    proof chain numerically at any ``rho_bar`` in ``(0, 1/K)``.
    """
    check_positive_int(k, "k")
    check_in_range(
        rho_bar, "rho_bar", 0.0, 1.0 / k, inclusive_low=False, inclusive_high=False
    )
    num = k * rho_bar * (1.0 - rho_bar)
    den = (1.0 - k * rho_bar) * (3.0 + (k - 1.0) * rho_bar)
    return num / den
