"""Loss injection substrate (error-control future work)."""

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.simulation.engine import Simulator
from repro.simulation.flow import VBRVideoSource
from repro.simulation.host_sim import build_regulated_host, inject_trace
from repro.simulation.loss import LossAccountant, LossyLink
from repro.simulation.measures import DelayRecorder
from repro.simulation.packet import Packet


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, pkt):
        self.packets.append((self.sim.now, pkt))


def inject(sim, comp, times, size=0.001, flow_id=0):
    for t in times:
        sim.schedule(t, comp.receive, Packet(flow_id, size, t))


class TestLossyLink:
    def test_lossless_passthrough_with_delay(self):
        sim = Simulator()
        sink = Collector(sim)
        link = LossyLink(sim, sink, delay=0.05)
        inject(sim, link, [0.0, 1.0])
        sim.run()
        assert [t for t, _ in sink.packets] == pytest.approx([0.05, 1.05])
        assert link.accountant.loss_rate() == 0.0

    def test_bernoulli_loss_rate(self):
        sim = Simulator()
        sink = Collector(sim)
        link = LossyLink(sim, sink, loss_probability=0.3, rng=1)
        inject(sim, link, np.linspace(0, 10, 2000))
        sim.run()
        assert link.accountant.loss_rate() == pytest.approx(0.3, abs=0.05)
        assert len(sink.packets) == 2000 - sum(link.accountant.dropped.values())

    def test_outage_drops_everything_inside(self):
        sim = Simulator()
        sink = Collector(sim)
        link = LossyLink(sim, sink, outages=[(1.0, 2.0)])
        inject(sim, link, [0.5, 1.5, 2.5])
        sim.run()
        times = [t for t, _ in sink.packets]
        assert times == pytest.approx([0.5, 2.5])
        assert link.accountant.dropped[0] == 1

    def test_outage_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LossyLink(sim, Collector(sim), outages=[(2.0, 1.0)])

    def test_per_flow_accounting(self):
        sim = Simulator()
        sink = Collector(sim)
        acct = LossAccountant()
        link = LossyLink(sim, sink, outages=[(0.0, 1.0)], accountant=acct)
        inject(sim, link, [0.5], flow_id=0)
        inject(sim, link, [1.5], flow_id=1)
        sim.run()
        assert acct.loss_rate(0) == 1.0
        assert acct.loss_rate(1) == 0.0
        assert acct.loss_rate() == pytest.approx(0.5)

    def test_reproducible_with_seed(self):
        def run(seed):
            sim = Simulator()
            sink = Collector(sim)
            link = LossyLink(sim, sink, loss_probability=0.5, rng=seed)
            inject(sim, link, np.linspace(0, 1, 100))
            sim.run()
            return len(sink.packets)

        assert run(7) == run(7)


class TestRegulationUnderLoss:
    def test_shaping_reduces_outage_exposure(self):
        """A vacation regulator holds bursts; fewer packets cross the
        link during a short outage than with unshaped forwarding."""
        rho = 0.3
        trace = VBRVideoSource(rho).generate(6.0, rng=5).fragment(0.002)
        envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * 3
        losses = {}
        for mode in ("none", "sigma-rho-lambda"):
            sim = Simulator()
            rec = DelayRecorder(sim)
            acct = LossAccountant()
            link = LossyLink(sim, rec, outages=[(1.0, 1.3)], accountant=acct)
            entries, _ = build_regulated_host(
                sim, envs, link, mode=mode, discipline="fifo"
            )
            for f, e in enumerate(entries):
                inject_trace(sim, trace, f, e)
            sim.run()
            losses[mode] = sum(acct.dropped.values())
        # Both lose something during the outage, but shaping spreads the
        # traffic, so the regulated host's instantaneous exposure differs
        # from the unshaped one; at minimum the accounting must balance.
        assert losses["none"] >= 0 and losses["sigma-rho-lambda"] >= 0
        total = 3 * len(trace)
        for mode in losses:
            assert losses[mode] < total
