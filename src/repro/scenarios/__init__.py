"""Scenario-matrix cross-validation at scale.

The paper's central claim is that the (sigma, rho, lambda) regulator's
analytic worst-case delay bounds (Theorems 1/2, Remark 1, and their
multicast forms in Theorems 7/8) hold under *any* admissible arrival
pattern and overlay configuration.  This package turns that claim into
a permanently enforced, large-surface invariant: hundreds of declarative
scenarios, each cross-validated analytic-vs-simulated with a per-cell
soundness verdict ``sim_delay <= analytic_bound + eps``.

Quick tour
----------
``Scenario`` (:mod:`repro.scenarios.spec`)
    One frozen record composing topology (single host / Theorem-7
    critical-path chain / DSCT tree over a transit-stub underlay),
    workload (homogeneous, heterogeneous, bursty, adversarial
    staggered-start), regulator configuration (mode, vacation stagger
    phase) and execution knobs (backend, horizon, dt, seed).  A
    process-wide registry makes curated scenarios addressable by name.

``analytic`` (:mod:`repro.scenarios.analytic`)
    Theorem 1/2 and Remark 1 restated as vectorised NumPy kernels over
    a NaN-padded ``(n_scenarios, K_max)`` parameter matrix, so the
    analytic side of a whole batch is one pass; pinned element-wise to
    the scalar reference implementations by the test suite.

``generator`` (:mod:`repro.scenarios.generator`)
    Seeded random scenario matrices -- every scenario a stable function
    of ``(seed, index)`` -- including a slice inside the Theorem 5
    heavy-load band ``rho_bar in [1/K - 1/K^(n+1), 1/K)``.

``corpus`` (:mod:`repro.scenarios.corpus`)
    The curated adversarial corpus: synchronised bursts, worst-phase
    vacation staggering, heavy-load band cells, staggered starts,
    multi-hop chains/trees, a DES slice, and one unstable (vacuously
    sound) cell.  Registered on package import.

``runner`` (:mod:`repro.scenarios.runner`)
    The batched driver, split into picklable stages: a worker stage
    (``evaluate_cell``: realise + simulate one cell) that any
    :mod:`repro.runtime` executor parallelises, then the vectorised
    analytic pass and per-cell verdicts on the parent; reported with
    throughput (scenarios/sec, DES event rates including
    cancelled-event heap residue).  Campaign-scale runs -- persistent
    stores, resume, diffing, perf budgets -- layer on top in
    :mod:`repro.runtime.campaign`.

Usage::

    from repro.scenarios import generate_scenarios, run_batch

    report = run_batch(generate_scenarios(200, seed=0))
    assert not report.violations

or from the shell::

    python -m repro.experiments.cli scenarios run --count 200 --seed 0
    python -m repro.experiments.cli scenarios list

The parametrized ``tests/test_scenarios_*`` family keeps a smoke slice
of the matrix in tier-1; the full matrix runs opt-in via
``pytest -m scenario``.
"""

from repro.scenarios.corpus import (
    adversarial_corpus,
    curate_records,
    load_curated,
    save_curated,
)
from repro.scenarios.generator import generate_scenarios
from repro.scenarios.runner import (
    BatchReport,
    ScenarioOutcome,
    run_batch,
    run_scenario,
)
from repro.scenarios.spec import (
    Scenario,
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_from_dict,
    scenario_names,
)

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "BatchReport",
    "adversarial_corpus",
    "curate_records",
    "generate_scenarios",
    "load_curated",
    "run_batch",
    "run_scenario",
    "register_scenario",
    "get_scenario",
    "registered_scenarios",
    "save_curated",
    "scenario_from_dict",
    "scenario_names",
]

# Importing the package makes the curated corpus addressable by name
# (idempotent: re-imports leave the registry unchanged).
for _sc in adversarial_corpus():
    register_scenario(_sc, replace=True)
del _sc
