"""Figures 4(a)-(c): worst-case delay of a single regulated end host.

The paper's Simulation I (Fig. 3 topology): K real-time flows traverse
one (sigma, rho)/(sigma, rho, lambda)-regulated end host; the measured
worst-case delay is plotted against the flows' average input rate.
Expected shape (Fig. 4): the (sigma, rho) curve grows steeply with the
rate and diverges towards full load; the (sigma, rho, lambda) curve
stays flat/decreasing; they cross a little below the theoretical
aggregate threshold (0.73 C homogeneous, 0.79 C heterogeneous), and the
improvement factor beyond the cross reaches ~2.8-3.2x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.threshold import (
    heterogeneous_threshold,
    homogeneous_threshold,
)
from repro.experiments.config import Fig4Config
from repro.experiments.report import find_crossover, max_improvement
from repro.simulation.fluid import simulate_fluid_host
from repro.simulation.host_sim import simulate_regulated_host
from repro.utils.rng import derive_seed
from repro.workloads.profiles import TrafficMix

__all__ = ["Fig4Point", "Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class Fig4Point:
    """One sweep point of a Figure-4 curve pair."""

    utilization: float
    wdb_sigma_rho: float
    wdb_sigma_rho_lambda: float
    mean_sigma: float


@dataclass(frozen=True)
class Fig4Result:
    """A full Figure-4 panel (one traffic mix)."""

    mix_name: str
    homogeneous: bool
    points: tuple[Fig4Point, ...]
    crossover: float | None
    max_improvement_at: float | None
    max_improvement: float
    theoretical_threshold_aggregate: float

    @property
    def utilizations(self) -> list[float]:
        return [p.utilization for p in self.points]

    @property
    def sigma_rho_series(self) -> list[float]:
        return [p.wdb_sigma_rho for p in self.points]

    @property
    def sigma_rho_lambda_series(self) -> list[float]:
        return [p.wdb_sigma_rho_lambda for p in self.points]


def _measure_point(
    mix: TrafficMix, u: float, config: Fig4Config
) -> Fig4Point:
    scaled = mix.at_utilization(u, config.capacity)
    # One stream pattern for the whole sweep ("each of the three groups
    # is fed with the same ... stream"): the seed is rate-independent,
    # so every sweep point rescales the same realisation and the curves
    # vary smoothly in u, as in the paper's figures.
    seed = derive_seed(config.seed, "fig4", mix.name)
    traces = scaled.generate_traces(
        config.horizon, seed, shared=config.shared_streams, mtu=config.mtu
    )
    envelopes = [
        ArrivalEnvelope(max(tr.empirical_sigma(src.rate), 1e-9), src.rate)
        for tr, src in zip(traces, scaled.sources)
    ]
    mean_sigma = sum(e.sigma for e in envelopes) / len(envelopes)
    results = {}
    for mode in ("sigma-rho", "sigma-rho-lambda"):
        if config.backend == "fluid":
            res = simulate_fluid_host(
                traces, envelopes,
                mode=mode, capacity=config.capacity,
                discipline=config.discipline, dt=config.dt,
            )
            results[mode] = res.worst_case_delay
        elif config.backend == "des":
            res = simulate_regulated_host(
                traces, envelopes,
                mode=mode, capacity=config.capacity,
                discipline=config.discipline,
            )
            results[mode] = res.worst_case_delay
        else:
            raise ValueError(f"unknown backend {config.backend!r}")
    return Fig4Point(
        utilization=u,
        wdb_sigma_rho=results["sigma-rho"],
        wdb_sigma_rho_lambda=results["sigma-rho-lambda"],
        mean_sigma=mean_sigma,
    )


def run_fig4(mix: TrafficMix, config: Fig4Config | None = None) -> Fig4Result:
    """Sweep one traffic mix over the rate axis (one Figure-4 panel).

    Parameters
    ----------
    mix:
        One of the paper's mixes
        (:data:`~repro.workloads.profiles.AUDIO_MIX` for 4(a),
        :data:`~repro.workloads.profiles.VIDEO_MIX` for 4(b),
        :data:`~repro.workloads.profiles.HETEROGENEOUS_MIX` for 4(c)).
    config:
        Sweep parameters; defaults to the paper-scale setup.
    """
    config = config or Fig4Config()
    points = tuple(
        _measure_point(mix, float(u), config) for u in config.utilizations
    )
    us = [p.utilization for p in points]
    sr = [p.wdb_sigma_rho for p in points]
    srl = [p.wdb_sigma_rho_lambda for p in points]
    cross = find_crossover(us, sr, srl)
    at, ratio = max_improvement(us, sr, srl)
    k = mix.k
    if mix.is_homogeneous:
        theo = homogeneous_threshold(k, config.capacity, aggregate=True)
    else:
        theo = heterogeneous_threshold(k, config.capacity, aggregate=True)
    return Fig4Result(
        mix_name=mix.name,
        homogeneous=mix.is_homogeneous,
        points=points,
        crossover=cross,
        max_improvement_at=at,
        max_improvement=ratio,
        theoretical_threshold_aggregate=theo,
    )
