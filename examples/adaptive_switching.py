#!/usr/bin/env python3
"""The Adaptive Control Algorithm switching live as load rises.

Ramps the average input rate of a 3-group end host across the rate
threshold and shows the algorithm's decision at every step, together
with the measured worst-case delay of the model it picked versus the
model it rejected -- i.e. what adaptivity buys over either fixed policy.

Run:  python examples/adaptive_switching.py
"""

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.core.threshold import homogeneous_threshold
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_host

K = 3
HORIZON = 10.0


def main() -> None:
    threshold = homogeneous_threshold(K, aggregate=True)
    print(f"K = {K} groups; aggregate threshold K*rho* = {threshold:.3f}\n")
    print(f"{'u':>5s}  {'mode chosen':>18s}  {'chosen WDB':>10s}  "
          f"{'rejected WDB':>12s}  {'adaptivity gain':>15s}")

    for u in np.round(np.arange(0.35, 0.96, 0.1), 2):
        rho = float(u) / K
        stream = VBRVideoSource(rho).generate(HORIZON, rng=5).fragment(0.002)
        sigma = max(stream.empirical_sigma(rho), 1e-9)
        flows = [ArrivalEnvelope(sigma, rho)] * K
        ctrl = AdaptiveController(flows)
        chosen = ctrl.select_mode().value
        other = (
            "sigma-rho-lambda" if chosen == "sigma-rho" else "sigma-rho"
        )
        results = {
            mode: simulate_fluid_host(
                [stream] * K, flows, mode=mode,
                discipline="adversarial", dt=1e-3,
            ).worst_case_delay
            for mode in (chosen, other)
        }
        gain = results[other] / results[chosen] if results[chosen] > 0 else 1.0
        print(f"{u:5.2f}  {chosen:>18s}  {results[chosen]:10.3f}  "
              f"{results[other]:12.3f}  {gain:14.2f}x")

    print("\nthe algorithm tracks whichever regulator family is better "
          "on each side of the threshold -- the point of Section III.")


if __name__ == "__main__":
    main()
