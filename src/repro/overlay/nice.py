"""NICE-style layered clustering (Banerjee et al., SIGCOMM'02).

The paper's baseline tree.  NICE arranges all members in layers:
layer ``L0`` holds everyone, partitioned into clusters of size
``[k, 3k-1]`` by proximity; each cluster elects its centre as leader,
the leaders populate ``L1`` and cluster again; and so on until a single
host tops the hierarchy.  Data flows from a cluster leader to its
cluster members.

Structurally this is DSCT *without the local-domain partition*: NICE
has no knowledge of the underlay attachment, so its bottom-layer
clusters may straddle backbone routers, which is exactly why the paper
measures longer worst-case delays for NICE than for DSCT under every
control scheme ("DSCT employs the hosts' location knowledge to build up
the multicast architecture").
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.overlay.dsct import layer_once
from repro.overlay.tree import MulticastTree
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["build_nice_tree"]


def build_nice_tree(
    source: int,
    members: Sequence[int],
    rtt: np.ndarray,
    *,
    k: int = 3,
    rng: RandomSource = None,
    core_policy: str = "medoid",
    size_cap_per_seed: Optional[Callable[[int], int]] = None,
    fill_to_capacity: bool = False,
) -> MulticastTree:
    """Build a NICE-style layered cluster tree rooted at ``source``.

    Parameters mirror :func:`repro.overlay.dsct.build_dsct_tree` minus
    ``host_router`` -- NICE is location-unaware by design.
    """
    members = list(dict.fromkeys(members))
    if source not in members:
        raise ValueError("the source must be one of the members")
    if len(members) == 1:
        return MulticastTree(root=source, parent={})
    gen = ensure_rng(rng)
    parent: dict[int, int] = {}
    layer = members
    while len(layer) > 1:
        layer = layer_once(
            layer, rtt, k, gen, parent,
            source if source in layer else None,
            core_policy=core_policy, size_cap_per_seed=size_cap_per_seed,
            fill_to_capacity=fill_to_capacity,
        )
    top = layer[0]
    if top != source:
        parent[top] = source
        if source in parent:
            del parent[source]
    return MulticastTree(root=source, parent=parent)
