"""The paper's primary contribution.

* :mod:`repro.core.regulator` -- the classical (sigma, rho) regulator
  and the novel (sigma, rho, lambda) *vacation* regulator of Section III
  (working period ``W = sigma/(1-rho)``, vacation ``V = sigma/rho``,
  control factor ``lambda = 1/(1-rho)``).
* :mod:`repro.core.adaptive` -- the Adaptive Control Algorithm: measure
  the average input rate of the flows entering a host, compare with the
  rate threshold ``rho*`` and switch between the two regulator families;
  build the staggered (round-robin) vacation schedule.
* :mod:`repro.core.threshold` -- existence/value of ``rho*``
  (Theorems 3 & 4): exact numerical solutions, the paper's closed-form
  quadratic, and the asymptotic control ranges ``2 - sqrt(3)`` and
  ``(5 - sqrt(21))/2``.
* :mod:`repro.core.delay_bounds` -- Lemma 1, Theorems 1/2/5/6, Remark 1.
* :mod:`repro.core.multicast_bounds` -- Lemma 2 (DSCT height bound),
  Theorems 7/8, Remark 2.
"""

from repro.core.adaptive import AdaptiveController, ControlMode, StaggerPlan
from repro.core.delay_bounds import (
    improvement_ratio_heterogeneous,
    improvement_ratio_homogeneous,
    lemma1_regulator_delay,
    reduced_sigma_star,
    remark1_wdb_heterogeneous,
    remark1_wdb_homogeneous,
    theorem1_wdb_heterogeneous,
    theorem2_wdb_homogeneous,
    theorem5_ratio_lower_bound,
)
from repro.core.priority import (
    PriorityStaggerPlan,
    build_priority_stagger_plan,
    priority_delay_bound,
)
from repro.core.multicast_bounds import (
    dsct_height_bound,
    remark2_multicast_wdb_heterogeneous,
    remark2_multicast_wdb_homogeneous,
    theorem7_multicast_wdb_heterogeneous,
    theorem8_multicast_wdb_homogeneous,
)
from repro.core.regulator import (
    Regulator,
    SigmaRhoLambdaRegulator,
    SigmaRhoRegulator,
    control_factor,
)
from repro.core.threshold import (
    control_range_heterogeneous_limit,
    control_range_homogeneous_limit,
    heterogeneous_threshold,
    heterogeneous_threshold_quadratic,
    homogeneous_threshold,
)

__all__ = [
    "AdaptiveController",
    "ControlMode",
    "StaggerPlan",
    "Regulator",
    "SigmaRhoRegulator",
    "SigmaRhoLambdaRegulator",
    "control_factor",
    "lemma1_regulator_delay",
    "reduced_sigma_star",
    "theorem1_wdb_heterogeneous",
    "theorem2_wdb_homogeneous",
    "remark1_wdb_heterogeneous",
    "remark1_wdb_homogeneous",
    "improvement_ratio_heterogeneous",
    "improvement_ratio_homogeneous",
    "theorem5_ratio_lower_bound",
    "homogeneous_threshold",
    "heterogeneous_threshold",
    "heterogeneous_threshold_quadratic",
    "control_range_homogeneous_limit",
    "control_range_heterogeneous_limit",
    "dsct_height_bound",
    "PriorityStaggerPlan",
    "build_priority_stagger_plan",
    "priority_delay_bound",
    "theorem7_multicast_wdb_heterogeneous",
    "theorem8_multicast_wdb_homogeneous",
    "remark2_multicast_wdb_heterogeneous",
    "remark2_multicast_wdb_homogeneous",
]
