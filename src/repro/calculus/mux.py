"""Analytic bounds for the work-conserving general multiplexer (MUX).

The paper equips every end host with a *general MUX*: a work-conserving
server of rate ``C`` that merges the flows arriving on its input links
into the single output link, with an arbitrary (possibly priority)
service discipline.  Remark 1 of the paper quotes the classic bound
(eq. (13) of Cruz part I): with ``K`` inputs each constrained by
``(sigma_i, rho_i)`` and ``sum rho_i <= C``, every bit leaves within

.. math::

    D_g = \\frac{\\sum_i \\sigma_i}{C - \\sum_i \\rho_i}

of its arrival.  These functions implement that baseline (the
``(sigma, rho)``-regulated system the paper improves upon) in both the
heterogeneous and homogeneous forms, plus the matching backlog bound.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.calculus.envelope import ArrivalEnvelope, aggregate_envelope
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "STABILITY_TOL",
    "mux_is_stable",
    "mux_delay_bound_heterogeneous",
    "mux_delay_bound_homogeneous",
    "mux_backlog_bound",
]

#: Relative tolerance of the stability condition ``sum rho_i <= C``:
#: loads within ``C * STABILITY_TOL`` of the critical point still count
#: as stable.  Shared by every bound implementation (scalar and batch)
#: so a cell at the exact critical load gets the same finite/infinite
#: classification from Remark 1 and Theorem 1 alike.
STABILITY_TOL = 1e-12


def mux_is_stable(
    envelopes: Iterable[ArrivalEnvelope], capacity: float = 1.0
) -> bool:
    """The paper's stability condition ``sum_i rho_i <= C``."""
    check_positive(capacity, "capacity")
    return sum(e.rho for e in envelopes) <= capacity * (1.0 + STABILITY_TOL)


def mux_delay_bound_heterogeneous(
    envelopes: Sequence[ArrivalEnvelope], capacity: float = 1.0
) -> float:
    """Remark 1, heterogeneous form: ``D_g = sum(sigma_i) / (C - sum(rho_i))``.

    Returns ``inf`` when the stability condition fails (the backlog, and
    hence the worst-case delay, is unbounded).  Loads within
    ``C * STABILITY_TOL`` of the critical point count as stable --
    matching :func:`repro.core.delay_bounds.theorem1_wdb_heterogeneous`,
    so the two bounds never disagree on finiteness at the boundary --
    and are priced at the tolerance-wide slack.
    """
    check_positive(capacity, "capacity")
    if not envelopes:
        raise ValueError("at least one input envelope is required")
    agg = aggregate_envelope(envelopes)
    slack = capacity - agg.rho
    if slack < -STABILITY_TOL * capacity:
        return float("inf")
    if slack <= 0.0:
        slack = STABILITY_TOL * capacity
    return agg.sigma / slack


def mux_delay_bound_homogeneous(
    k: int, sigma: float, rho: float, capacity: float = 1.0
) -> float:
    """Remark 1, homogeneous form: ``D_g = K sigma0 / (C - K rho)``."""
    check_positive_int(k, "k")
    return mux_delay_bound_heterogeneous(
        [ArrivalEnvelope(sigma, rho)] * k, capacity
    )


def mux_backlog_bound(
    envelopes: Sequence[ArrivalEnvelope], capacity: float = 1.0
) -> float:
    """Worst-case backlog of the general MUX.

    For a work-conserving server of rate ``C`` fed by the aggregate
    ``(sum sigma_i, sum rho_i)`` envelope the backlog never exceeds the
    aggregate burst ``sum sigma_i`` (with strictly positive slack the
    server drains faster than the worst burst accumulates); without
    stability it is unbounded.
    """
    check_positive(capacity, "capacity")
    if not envelopes:
        raise ValueError("at least one input envelope is required")
    agg = aggregate_envelope(envelopes)
    if agg.rho > capacity:
        return float("inf")
    return agg.sigma
