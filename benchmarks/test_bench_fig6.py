"""Figure 6(a)-(c): worst-case multicast delay, 665 hosts, 3 groups.

Paper criteria checked per panel:

* DSCT + (sigma, rho) degrades steeply with the rate;
* DSCT + (sigma, rho, lambda) is flat and achieves the best delay of the
  three DSCT schemes at heavy load ("when rho_bar >= 0.7, DSCT with
  (sigma, rho, lambda) regulator achieves the best delay performances");
* capacity-aware DSCT sits between the two at heavy load;
* the DSCT (sigma, rho)/(sigma, rho, lambda) crossover lies near the
  theoretical threshold;
* NICE counterparts show the same control-scheme ordering, and DSCT is
  no worse than NICE under the lambda scheme at heavy load on average
  (location awareness shortens overlay hops).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.config import Fig6Config
from repro.experiments.multigroup import run_fig6
from repro.experiments.report import format_series
from repro.workloads.profiles import AUDIO_MIX, HETEROGENEOUS_MIX, VIDEO_MIX

CONFIG = Fig6Config(horizon=15.0, dt=1e-3)

PANELS = {
    "a": (AUDIO_MIX, "three groups fed the same 64 kbps audio stream"),
    "b": (VIDEO_MIX, "three groups fed the same 1.5 Mbps video stream"),
    "c": (HETEROGENEOUS_MIX, "one video group + two audio groups"),
}


def _render(panel: str, res) -> str:
    lines = [
        f"== Figure 6({panel}) -- {PANELS[panel][1]} ==",
        "utilization:  " + " ".join(f"{u:7.2f}" for u in res.utilizations),
    ]
    for scheme in res.schemes:
        lines.append(format_series(scheme, res.utilizations, res.series(scheme)))
    lines += [
        f"DSCT simulated crossover: {res.crossover_dsct}",
        f"theoretical aggregate threshold: {res.theoretical_threshold_aggregate:.3f}",
        f"max DSCT improvement: {res.max_improvement_dsct:.2f}x",
    ]
    return "\n".join(lines)


def _check_shape(res) -> None:
    sr = res.series("dsct+sigma-rho")
    srl = res.series("dsct+sigma-rho-lambda")
    ca = res.series("capacity-aware-dsct")
    # (sigma, rho) explodes with load.
    assert sr[-1] > 3 * sr[0]
    # Heavy-load ordering of the paper: lambda < capacity-aware < sigma-rho.
    assert srl[-1] < ca[-1] < sr[-1]
    # Light-load ordering: sigma-rho is fine, lambda pays its vacations.
    assert sr[0] < srl[0]
    # Crossover near the theoretical threshold.
    assert res.crossover_dsct is not None
    assert abs(res.crossover_dsct - res.theoretical_threshold_aggregate) <= 0.2
    # Improvement factor at heavy load (paper: 3.5-4.3x).
    assert res.max_improvement_dsct >= 2.0
    # NICE shows the same control ordering at the heaviest point.
    last = res.points[-1].wdb
    assert last["nice+sigma-rho-lambda"] < last["nice+sigma-rho"]
    # Regulated tree heights are rate-independent.
    hs = res.tree_heights["dsct+sigma-rho-lambda"]
    assert len({tuple(v) for v in hs.values()}) == 1


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig6(panel, benchmark, artifact_report):
    mix, _ = PANELS[panel]
    res = run_once(benchmark, run_fig6, mix, CONFIG)
    artifact_report.append(_render(panel, res))
    _check_shape(res)
