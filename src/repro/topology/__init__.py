"""Underlay topology substrate.

The paper's Simulation II runs 665 end hosts attached to the 19-router
backbone of its Fig. 5.  This subpackage builds that world:

* :mod:`repro.topology.backbone` -- the Fig.-5-like backbone (hand-coded
  adjacency approximating the figure) plus parameterised generators
  (Waxman random graphs) for scaling studies;
* :mod:`repro.topology.attach` -- attaching end hosts to backbone
  routers with access-link latencies;
* :mod:`repro.topology.routing` -- all-pairs shortest-path latencies and
  host-to-host RTT matrices (the distance oracle DSCT/NICE cluster by).
"""

from repro.topology.attach import AttachedNetwork, attach_hosts
from repro.topology.backbone import fig5_backbone, waxman_backbone
from repro.topology.transit_stub import transit_stub_backbone
from repro.topology.routing import host_rtt_matrix, router_distance_matrix

__all__ = [
    "fig5_backbone",
    "waxman_backbone",
    "transit_stub_backbone",
    "attach_hosts",
    "AttachedNetwork",
    "router_distance_matrix",
    "host_rtt_matrix",
]
