#!/usr/bin/env python3
"""Overlay tree construction: DSCT vs NICE vs capacity-aware.

Shows the overlay substrate on its own: builds each tree type over the
same host population and compares the structural metrics the EMcast
literature cares about -- height (tree layers), maximum fan-out, link
stress, and latency stretch -- plus Lemma 2's height bound.

Run:  python examples/tree_construction.py
"""

import numpy as np

from repro.core.multicast_bounds import dsct_height_bound
from repro.overlay.capacity_aware import capacity_aware_dsct
from repro.overlay.dsct import build_dsct_tree
from repro.overlay.nice import build_nice_tree
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.topology.routing import host_latency_matrix, host_rtt_matrix

N_HOSTS = 300
K = 3  # cluster size base, as in the paper


def describe(name, tree, latency, host_router):
    print(f"{name:>22s}: height={tree.height}  "
          f"max fan-out={tree.max_fanout():2d}  "
          f"link stress={tree.link_stress(host_router):5.2f}  "
          f"stretch={tree.stretch(latency):5.2f}  "
          f"critical path={len(tree.critical_path())} hosts")


def main() -> None:
    backbone = fig5_backbone()
    network = attach_hosts(backbone, N_HOSTS, rng=11)
    rtt = host_rtt_matrix(network)
    latency = host_latency_matrix(network)
    gen = np.random.default_rng(11)
    capacities = gen.uniform(4.0, 10.0, size=N_HOSTS)
    source = 0

    print(f"{N_HOSTS} hosts on the Fig.-5 backbone, "
          f"{len(network.domains())} local domains")
    print(f"Lemma 2 height bound for n={N_HOSTS}, k={K}: "
          f"{dsct_height_bound(N_HOSTS, K)}\n")

    dsct = build_dsct_tree(
        source, range(N_HOSTS), rtt, network.host_router, k=K, rng=1
    )
    describe("DSCT", dsct, latency, network.host_router)

    nice = build_nice_tree(source, range(N_HOSTS), rtt, k=K, rng=1)
    describe("NICE", nice, latency, network.host_router)

    for u in (0.4, 0.9):
        ca = capacity_aware_dsct(
            source, range(N_HOSTS), rtt, network.host_router,
            capacities, aggregate_rate=u, rng=1,
        )
        describe(f"capacity-aware (u={u})", ca, latency, network.host_router)

    print("\nnote how the capacity-aware tree deepens as the traffic "
          "rate grows (Tables I-III), while DSCT/NICE are rate-blind; "
          "DSCT's location awareness gives it the lowest stretch.")


if __name__ == "__main__":
    main()
