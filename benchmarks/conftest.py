"""Shared fixtures and artefact reporting for the benchmark harness.

Every benchmark regenerates one paper artefact (figure panel, table, or
theory result) at full paper scale, prints it in the paper's layout,
and asserts the qualitative *shape* criteria from DESIGN.md.  Absolute
delays differ from the paper's ns-2/SPARC numbers by construction; the
shapes (who wins, crossover position, growth trends) must hold.

Benchmarks run once per artefact (``benchmark.pedantic`` with a single
round) -- they are measurements of the reproduction pipeline, not
micro-benchmarks; kernel-level micro-benchmarks live in
``test_bench_kernels.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Machine-readable benchmark trajectory files, written at the repo
#: root so successive PRs accumulate comparable first-class numbers
#: (one ``BENCH_prN.json`` per PR that shipped a perf surface).
_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PR3_PATH = _REPO_ROOT / "BENCH_pr3.json"
BENCH_PR4_PATH = _REPO_ROOT / "BENCH_pr4.json"
BENCH_PR5_PATH = _REPO_ROOT / "BENCH_pr5.json"
BENCH_PR6_PATH = _REPO_ROOT / "BENCH_pr6.json"
BENCH_PR7_PATH = _REPO_ROOT / "BENCH_pr7.json"
BENCH_PR8_PATH = _REPO_ROOT / "BENCH_pr8.json"
BENCH_PR9_PATH = _REPO_ROOT / "BENCH_pr9.json"


@pytest.fixture(scope="session")
def artifact_report():
    """Collects rendered artefacts and prints them at session end."""
    chunks: list[str] = []
    yield chunks
    if chunks:
        print("\n" + "\n\n".join(chunks))


#: Worker count of the parallel-speedup benchmarks; floors are
#: asserted only on boxes with at least this many cores (mirrored by
#: the per-file PARALLEL_JOBS constants in the benchmark modules).
PARALLEL_JOBS = 4


def _merge_bench_file(path: Path, pr: int, data: dict) -> None:
    """Merge collected metrics into a trajectory file (sections merge,
    not replace, so opt-in ``-m scenario`` runs can add their numbers
    to a file produced by a default run).

    Every file carries a prominent top-level ``context`` block
    describing **the box that last wrote the file** (cross-machine
    merges keep each section's own ``cpu_count`` where recorded):
    parallel-speedup sections are meaningless without it -- a 4-job
    campaign on a 1-core container is *expected* to run below 1x, and
    the speedup floors are asserted only on >= ``PARALLEL_JOBS``
    cores.
    """
    if not data:
        return
    existing: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(data)
    existing["pr"] = pr
    cores = os.cpu_count() or 1
    existing["context"] = {
        "cpu_count": cores,
        "parallel_floors_asserted": cores >= PARALLEL_JOBS,
        "describes": "the machine that last regenerated this file",
    }
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    print(f"\n{path.name} updated: {sorted(data)}")


@pytest.fixture(scope="session")
def bench_pr3():
    """Collects PR-3 perf metrics; merged into ``BENCH_pr3.json``."""
    data: dict = {}
    yield data
    _merge_bench_file(BENCH_PR3_PATH, 3, data)


@pytest.fixture(scope="session")
def bench_pr4():
    """Collects PR-4 store metrics; merged into ``BENCH_pr4.json``."""
    data: dict = {}
    yield data
    _merge_bench_file(BENCH_PR4_PATH, 4, data)


@pytest.fixture(scope="session")
def bench_pr5():
    """Collects PR-5 fast-path metrics; merged into ``BENCH_pr5.json``."""
    data: dict = {}
    yield data
    _merge_bench_file(BENCH_PR5_PATH, 5, data)


@pytest.fixture(scope="session")
def bench_pr6():
    """Collects PR-6 cell-matrix metrics; merged into ``BENCH_pr6.json``."""
    data: dict = {}
    yield data
    _merge_bench_file(BENCH_PR6_PATH, 6, data)


@pytest.fixture(scope="session")
def bench_pr7():
    """Collects PR-7 telemetry-overhead metrics; merged into ``BENCH_pr7.json``."""
    data: dict = {}
    yield data
    _merge_bench_file(BENCH_PR7_PATH, 7, data)


@pytest.fixture(scope="session")
def bench_pr8():
    """Collects PR-8 fault-tolerance metrics; merged into ``BENCH_pr8.json``."""
    data: dict = {}
    yield data
    _merge_bench_file(BENCH_PR8_PATH, 8, data)


@pytest.fixture(scope="session")
def bench_pr9():
    """Collects PR-9 batched-realisation metrics; merged into ``BENCH_pr9.json``."""
    data: dict = {}
    yield data
    _merge_bench_file(BENCH_PR9_PATH, 9, data)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
