"""Micro-benchmarks of the substrate kernels.

Performance regressions here do not change any result but make the
figure sweeps impractically slow; the thresholds assert generous
ceilings so CI noise does not flake.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.overlay.groups import MultiGroupNetwork
from repro.simulation.engine import Simulator
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import (
    fluid_mux,
    fluid_token_bucket,
    fluid_work_conserving,
)
from repro.simulation.host_sim import simulate_regulated_host
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.topology.routing import host_rtt_matrix


@pytest.fixture(scope="module")
def big_grid():
    n = 1_000_000
    t = 1e-3 * np.arange(n + 1)
    rng = np.random.default_rng(0)
    arr = np.cumsum(rng.random(n + 1)) * 1e-3
    return t, arr


def test_fluid_work_conserving_1m_points(benchmark, big_grid):
    t, arr = big_grid
    out = benchmark(fluid_work_conserving, arr, 0.9 * t)
    assert out.shape == arr.shape


def test_fluid_token_bucket_1m_points(benchmark, big_grid):
    t, arr = big_grid
    out = benchmark(fluid_token_bucket, arr, t, 0.05, 0.4)
    assert out.shape == arr.shape


def test_fluid_mux_priority_1m_points(benchmark, big_grid):
    t, arr = big_grid
    flows = [arr * 0.3, arr * 0.3, arr * 0.4]
    deps = benchmark(
        fluid_mux, flows, t, 1.0, discipline="priority", tagged=0
    )
    assert len(deps) == 3


def test_des_event_throughput(benchmark):
    """The DES core should sustain > 100k events/s."""

    def run():
        sim = Simulator()
        count = 1000

        def tick():
            nonlocal count
            count -= 1
            if count > 0:
                sim.schedule_in(1e-4, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 1000


def test_des_regulated_host_throughput(benchmark):
    """Full host pipeline (3 flows, regulators + MUX) at paper scale."""
    rho = 0.3
    src = VBRVideoSource(rho)
    trace = src.generate(10.0, rng=1).fragment(0.002)
    envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * 3
    res = benchmark.pedantic(
        simulate_regulated_host,
        args=([trace] * 3, envs),
        kwargs=dict(mode="sigma-rho-lambda", discipline="adversarial"),
        rounds=1, iterations=1,
    )
    assert res.worst_case_delay > 0


def test_rtt_matrix_665_hosts(benchmark):
    bb = fig5_backbone()
    net = attach_hosts(bb, 665, rng=1)
    rtt = benchmark(host_rtt_matrix, net)
    assert rtt.shape == (665, 665)


def test_dsct_construction_665_hosts(benchmark):
    bb = fig5_backbone()
    net = attach_hosts(bb, 665, rng=1)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=1)
    trees = benchmark.pedantic(
        mgn.build_all_trees, args=("dsct",), kwargs=dict(rng=3),
        rounds=1, iterations=1,
    )
    assert all(t.size == 665 for t in trees)
