"""Traffic sources and packet traces (+ hypothesis conservation laws)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.flow import (
    AudioSource,
    CBRSource,
    OnOffSource,
    PacketTrace,
    PoissonSource,
    VBRVideoSource,
)


class TestPacketTrace:
    def test_basic_properties(self):
        tr = PacketTrace(np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        assert len(tr) == 3
        assert tr.total == pytest.approx(6.0)
        assert tr.duration == pytest.approx(2.0)
        assert tr.mean_rate() == pytest.approx(3.0)

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PacketTrace(np.array([1.0, 0.5]), np.array([1.0, 1.0]))

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            PacketTrace(np.array([0.0]), np.array([0.0]))

    def test_to_curve_total(self):
        tr = PacketTrace(np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        assert tr.to_curve().total == pytest.approx(5.0)

    def test_binned_arrivals_conserves_data(self):
        tr = PacketTrace(np.linspace(0, 0.99, 37), np.full(37, 0.5))
        bins = tr.binned_arrivals(0.1, 1.0)
        assert bins.sum() == pytest.approx(tr.total)

    def test_binned_arrivals_drops_beyond_horizon(self):
        tr = PacketTrace(np.array([0.5, 5.0]), np.array([1.0, 1.0]))
        bins = tr.binned_arrivals(0.1, 1.0)
        assert bins.sum() == pytest.approx(1.0)

    def test_restrict(self):
        tr = PacketTrace(np.array([0.0, 1.0, 2.0]), np.ones(3))
        assert len(tr.restrict(1.5)) == 2

    def test_fragment_conserves_and_caps(self):
        tr = PacketTrace(np.array([0.0, 1.0]), np.array([0.55, 0.1]))
        frag = tr.fragment(0.2)
        assert frag.total == pytest.approx(tr.total)
        assert frag.sizes.max() <= 0.2 + 1e-12
        # 0.55 -> 3 fragments (0.2, 0.2, 0.15); 0.1 -> 1 fragment.
        assert len(frag) == 4

    def test_fragment_noop_when_small(self):
        tr = PacketTrace(np.array([0.0]), np.array([0.1]))
        assert tr.fragment(0.2) is tr


class TestCBRSource:
    def test_rate_is_exact(self):
        src = CBRSource(rate=0.25, packet_size=0.005)
        tr = src.generate(10.0)
        assert tr.mean_rate() == pytest.approx(0.25, rel=0.01)

    def test_deterministic(self):
        a = CBRSource(0.2, 0.01).generate(5.0)
        b = CBRSource(0.2, 0.01).generate(5.0)
        assert np.array_equal(a.times, b.times)

    def test_scaled_to(self):
        src = CBRSource(0.2, 0.01).scaled_to(0.4)
        assert src.rate == pytest.approx(0.4)
        tr = src.generate(10.0)
        assert tr.mean_rate() == pytest.approx(0.4, rel=0.01)


class TestPoissonSource:
    def test_mean_rate_converges(self):
        src = PoissonSource(rate=0.3, packet_size=0.003)
        tr = src.generate(200.0, rng=42)
        assert tr.mean_rate() == pytest.approx(0.3, rel=0.05)

    def test_reproducible(self):
        a = PoissonSource(0.3, 0.01).generate(10.0, rng=1)
        b = PoissonSource(0.3, 0.01).generate(10.0, rng=1)
        assert np.array_equal(a.times, b.times)


class TestOnOffSource:
    def test_sustained_rate(self):
        src = OnOffSource(peak_rate=1.0, mean_on=0.1, mean_off=0.3, packet_size=0.002)
        assert src.rate == pytest.approx(0.25)
        tr = src.generate(500.0, rng=3)
        assert tr.mean_rate() == pytest.approx(0.25, rel=0.1)

    def test_scaled_to_preserves_duty_cycle(self):
        src = OnOffSource(1.0, 0.1, 0.3, 0.002).scaled_to(0.5)
        assert src.rate == pytest.approx(0.5)
        assert src.peak_rate == pytest.approx(2.0)


class TestAudioSource:
    def test_rate_calibrated(self):
        src = AudioSource(rate=0.064)
        tr = src.generate(60.0, rng=5)
        assert tr.mean_rate() == pytest.approx(0.064, rel=0.05)

    def test_frame_spacing(self):
        src = AudioSource(rate=0.1, frame_interval=0.02, variability=0.0)
        tr = src.generate(1.0)
        assert np.allclose(np.diff(tr.times), 0.02)

    def test_zero_variability_is_cbr(self):
        src = AudioSource(rate=0.1, variability=0.0)
        tr = src.generate(1.0)
        assert np.allclose(tr.sizes, tr.sizes[0])

    def test_vbr_when_variability_positive(self):
        tr = AudioSource(rate=0.1, variability=0.3).generate(5.0, rng=1)
        assert tr.sizes.std() > 0


class TestVBRVideoSource:
    def test_rate_calibrated(self):
        src = VBRVideoSource(rate=0.4)
        tr = src.generate(60.0, rng=9)
        assert tr.mean_rate() == pytest.approx(0.4, rel=0.1)

    def test_gop_structure_visible(self):
        """I frames (every 12th) are larger than B frames without noise."""
        src = VBRVideoSource(rate=0.4, variability=0.0, scene_strength=0.0)
        tr = src.generate(2.0)
        i_frames = tr.sizes[::12]
        b_frames = tr.sizes[1::12]
        assert i_frames.mean() > 2 * b_frames.mean()

    def test_reproducible(self):
        a = VBRVideoSource(0.3).generate(5.0, rng=11)
        b = VBRVideoSource(0.3).generate(5.0, rng=11)
        assert np.array_equal(a.sizes, b.sizes)

    def test_envelope_is_conformant(self):
        src = VBRVideoSource(rate=0.3)
        env = src.envelope(10.0, rng=13)
        tr = src.generate(10.0, rng=13)
        assert env.conforms(tr.to_curve())

    def test_scene_persistence_bounds(self):
        with pytest.raises(ValueError):
            VBRVideoSource(0.3, scene_persistence=1.0)


@given(
    rate=st.floats(min_value=0.05, max_value=0.9),
    horizon=st.floats(min_value=1.0, max_value=20.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_sources_respect_horizon_and_positivity(rate, horizon, seed):
    for src in (
        CBRSource(rate, 0.005),
        AudioSource(rate),
        VBRVideoSource(rate),
    ):
        tr = src.generate(horizon, rng=seed)
        assert len(tr) > 0
        assert tr.times[-1] < horizon
        assert np.all(tr.sizes > 0)


@given(
    mtu=st.floats(min_value=1e-4, max_value=0.05),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_fragmentation_preserves_cumulative_curve(mtu, seed):
    tr = VBRVideoSource(0.5).generate(3.0, rng=seed)
    frag = tr.fragment(mtu)
    assert frag.total == pytest.approx(tr.total)
    # Same cumulative curve => identical delay semantics.
    grid = np.linspace(0, 3.0, 257)
    a = tr.to_curve().evaluate(grid)
    b = frag.to_curve().evaluate(grid)
    assert np.allclose(a, b)
