#!/usr/bin/env python3
"""Simulation II of the paper (Fig. 5 / Fig. 6): the multi-group network.

Builds the full world -- the Fig.-5 19-router backbone, 665 end hosts,
3 multicast groups all hosts join -- then, at one heavy-load sweep
point, constructs the six scheme combinations the paper compares and
measures each one's worst-case multicast delay along its critical path.

Run:  python examples/multigroup_streaming.py  [--hosts N] [--u U]
"""

import argparse

from repro.calculus.envelope import ArrivalEnvelope
from repro.experiments.config import Fig6Config
from repro.experiments.multigroup import measure_tree_wdb, _parse_scheme
from repro.overlay.groups import MultiGroupNetwork
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.workloads.profiles import VIDEO_MIX


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--hosts", type=int, default=665)
    ap.add_argument("--u", type=float, default=0.85,
                    help="aggregate utilisation (x-axis of Fig. 6)")
    args = ap.parse_args()

    # ------------------------------------------------------------------
    # The underlay: Fig.-5 backbone + host attachment.
    # ------------------------------------------------------------------
    backbone = fig5_backbone()
    network = attach_hosts(backbone, args.hosts, rng=2006)
    mgn = MultiGroupNetwork.fully_joined(network, VIDEO_MIX.k, rng=2006)
    print(f"underlay: {backbone.number_of_nodes()} routers, "
          f"{network.n_hosts} hosts over {len(network.domains())} domains")
    print(f"groups: {mgn.n_groups}, sources {mgn.sources}; every host "
          f"forwards K_hat = {mgn.max_k_hat()} flows")

    # ------------------------------------------------------------------
    # The workload: three groups fed the same video stream, scaled so
    # the per-host aggregate input rate is u.
    # ------------------------------------------------------------------
    config = Fig6Config(n_hosts=args.hosts, horizon=10.0, dt=1e-3)
    scaled = VIDEO_MIX.at_utilization(args.u)
    traces = scaled.generate_traces(config.horizon, rng=7, mtu=config.mtu)
    envelopes = [
        ArrivalEnvelope(max(tr.empirical_sigma(src.rate), 1e-9), src.rate)
        for tr, src in zip(traces, scaled.sources)
    ]
    print(f"\nworkload: u = {args.u} -> per-flow rho = "
          f"{[round(s.rate, 3) for s in scaled.sources]}")

    # ------------------------------------------------------------------
    # Six schemes: {capacity-aware, (s,r), (s,r,l)} x {DSCT, NICE}.
    # ------------------------------------------------------------------
    print(f"\n{'scheme':>26s}  {'height':>6s}  {'critical path':>13s}  "
          f"{'WDB [s]':>8s}")
    for scheme in config.schemes:
        tree_kind, control = _parse_scheme(scheme)
        trees = mgn.build_all_trees(
            tree_kind, k=config.cluster_k,
            aggregate_rate=args.u if control == "none" else None,
            rng=config.seed,
        )
        worst, worst_tree = 0.0, None
        for g, tree in enumerate(trees):
            if control == "none":
                fanout = tree.fanout()
                caps = [
                    float(mgn.host_capacity[h]) / max(fanout.get(h, 1), 1)
                    for h in tree.critical_path()[:-1]
                ]
                mode = "none"
            else:
                caps, mode = 1.0, control
            wdb = measure_tree_wdb(
                tree, g, traces, envelopes, mgn.latency,
                mode=mode, capacities=caps, config=config,
            )
            if wdb > worst:
                worst, worst_tree = wdb, tree
        height = max(t.height for t in trees)
        cp = len(worst_tree.critical_path()) if worst_tree else 0
        print(f"{scheme:>26s}  {height:6d}  {cp:13d}  {worst:8.3f}")

    print("\nexpected ordering at heavy load (paper Fig. 6): "
          "(s,r,l)-DSCT < capacity-aware-DSCT < (s,r)-DSCT, "
          "and DSCT <= NICE per control scheme")


if __name__ == "__main__":
    main()
