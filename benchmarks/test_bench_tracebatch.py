"""Batched trace-synthesis benchmarks (the PR-9 tentpole numbers).

PR 6 collapsed the *evaluation* of coherent cell groups into
structure-of-arrays kernels; what remained of the grouped campaign hot
path was per-cell, per-flow realisation Python -- seed derivation, one
``generate`` call per lane, one empirical-sigma pass per unique trace.
PR 9 realises the whole candidate batch in flat passes
(:mod:`repro.scenarios.tracebatch`): deterministic lanes ride shared
grids and shared trace objects across cells, stochastic lanes keep
their bit-identical per-lane RNG streams, and sigma is measured over
packed padded matrices.  Results stay bit-identical to the per-cell
realisation (``tests/test_tracebatch.py`` enforces it); these
benchmarks measure the throughput side and emit ``BENCH_pr9.json``.

The realisation-bound campaign (unshared k = 12 CBR flows per cell: the
per-cell path generates and measures 12 lanes per cell, the batched
path shares one trace and one sigma pass per parameter point across the
whole matrix) is where batching pays most; observed on the reference
container ~10x end-to-end through grouped ``run_batch``, past the
5k cells/s mark.  Floors keep headroom so CI noise does not flake:

* batched vs per-cell realisation on the realisation-bound grouped
  campaign >= 3x cells/s, with the realise phase share of cell time
  measurably reduced;
* the mixed generated matrix must never regress below 0.7x -- batched
  realisation is default-on for grouped runs, so near-parity on
  unfavourable matrices is part of the contract.
"""

from __future__ import annotations

import time

from repro.runtime.executor import SerialExecutor
from repro.scenarios import generate_scenarios, run_batch
from repro.scenarios.spec import Scenario

#: Asserted floor: batched vs per-cell realisation, grouped campaign.
BATCH_REALISE_FLOOR = 3.0
#: Asserted floor: batch-realise on vs off on the mixed generated matrix.
MIXED_PARITY_FLOOR = 0.7

N_CELLS = 1024


def _realisation_bound_matrix(n: int = N_CELLS, k: int = 12):
    """Unshared homogeneous CBR hosts over 8 parameter points: the
    per-cell path realises ``k`` lanes per cell, the batched path one
    trace and one sigma pass per parameter point for the whole matrix."""
    return [
        Scenario(
            name=f"tb-{i}",
            kinds=("cbr",) * k,
            utilization=0.55 + 0.005 * (i % 8),
            mode="sigma-rho",
            backend="fluid",
            horizon=0.5,
            dt=4e-3,
            seed=i,
            shared=False,
        )
        for i in range(n)
    ]


def _best_of(n: int, fn, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _realise_share(report) -> float:
    """Fraction of accounted cell time spent in the realise phase."""
    realise = total = 0.0
    for o in report.outcomes:
        if o.telemetry is None:
            continue
        realise += o.telemetry.phases.get("realise", 0.0)
        total += sum(o.telemetry.phases.values())
    return realise / total if total else 0.0


def _batched_vs_percell(cells):
    t_per, per = _best_of(
        2, run_batch, cells,
        executor=SerialExecutor(), group_cells=True, batch_realise=False,
    )
    t_bat, bat = _best_of(
        2, run_batch, cells,
        executor=SerialExecutor(), group_cells=True, batch_realise=True,
    )
    for p, b in zip(per.outcomes, bat.outcomes):
        assert b.measured == p.measured and b.bound == p.bound
        assert b.events == p.events and b.sound == p.sound
    return (t_per, per), (t_bat, bat)


def test_realisation_bound_campaign_batched_speedup(
    bench_pr9, artifact_report
):
    cells = _realisation_bound_matrix()
    (t_per, per), (t_bat, bat) = _batched_vs_percell(cells)
    speedup = t_per / t_bat
    share_per = _realise_share(per)
    share_bat = _realise_share(bat)
    bench_pr9["realisation_bound"] = {
        "cells": len(cells),
        "flows_per_cell": 12,
        "percell_seconds": round(t_per, 3),
        "percell_cells_per_sec": round(len(cells) / t_per, 1),
        "percell_realise_share": round(share_per, 3),
        "batched_seconds": round(t_bat, 3),
        "batched_cells_per_sec": round(len(cells) / t_bat, 1),
        "batched_realise_share": round(share_bat, 3),
        "speedup_x": round(speedup, 2),
    }
    artifact_report.append(
        "== Batched realisation: unshared-CBR realisation-bound campaign ==\n"
        f"cells:          {len(cells)} (12 unshared CBR flows each)\n"
        f"per-cell:       {len(cells) / t_per:.0f} cells/s "
        f"({t_per:.2f}s, realise share {share_per:.0%})\n"
        f"batch realise:  {len(cells) / t_bat:.0f} cells/s "
        f"({t_bat:.2f}s, realise share {share_bat:.0%})\n"
        f"speedup:        {speedup:.1f}x"
    )
    assert speedup >= BATCH_REALISE_FLOOR, (
        f"batched realisation only {speedup:.2f}x over per-cell"
    )
    assert share_bat < share_per, (
        f"realise share did not drop ({share_per:.3f} -> {share_bat:.3f})"
    )


def test_mixed_matrix_batched_never_regresses(bench_pr9, artifact_report):
    """Batched realisation is default-on for grouped runs, so the
    unfavourable case -- a generated matrix full of stochastic lanes
    and fallback cells -- must stay at near-parity."""
    cells = generate_scenarios(192, seed=23)
    (t_per, _), (t_bat, _) = _batched_vs_percell(cells)
    ratio = t_per / t_bat
    bench_pr9["mixed_generated"] = {
        "cells": len(cells),
        "percell_cells_per_sec": round(len(cells) / t_per, 1),
        "batched_cells_per_sec": round(len(cells) / t_bat, 1),
        "batched_over_percell_x": round(ratio, 2),
    }
    artifact_report.append(
        "== Batched realisation: mixed generated matrix ==\n"
        f"cells:         {len(cells)} (stochastic lanes + fallback cells)\n"
        f"per-cell:      {len(cells) / t_per:.0f} cells/s\n"
        f"batch realise: {len(cells) / t_bat:.0f} cells/s ({ratio:.2f}x)"
    )
    assert ratio >= MIXED_PARITY_FLOOR, (
        f"batched realisation regressed the mixed matrix to {ratio:.2f}x"
    )
