"""The paper's traffic workloads.

Section VI uses two stream types -- **64 kbps audio** and **1.5 Mbps
MPEG-1 video** -- in three mixes: three audio streams, three video
streams, and one video plus two audio ("heterogeneous").  This package
provides those presets plus the utilisation scaling that sweeps the
x-axis of Figures 4 and 6.
"""

from repro.workloads.profiles import (
    AUDIO_MIX,
    HETEROGENEOUS_MIX,
    VIDEO_MIX,
    TrafficMix,
    make_mix,
)

__all__ = [
    "TrafficMix",
    "make_mix",
    "AUDIO_MIX",
    "VIDEO_MIX",
    "HETEROGENEOUS_MIX",
]
