"""Figures 1 and 2 (the paper's illustrative figures) as artefacts."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.illustrations import fig1_example, fig2_regulator_operation
from repro.experiments.report import render_table


def test_fig1(benchmark, artifact_report):
    res = run_once(benchmark, fig1_example, 5.0)
    rows = [
        ["one group", res.degree_bound_one_group,
         res.one_group_tree.height, res.one_group_tree.fanout()[0]],
        ["two groups", res.degree_bound_two_groups,
         res.two_group_tree.height, res.two_group_tree.fanout()[0]],
    ]
    artifact_report.append(
        render_table(
            ["scenario", "degree bound", "tree height", "root fan-out"],
            rows,
            title="== Figure 1 -- capacity-aware reconstruction (C = 5 rho) ==",
        )
    )
    assert res.one_group_tree.height == 2
    assert res.two_group_tree.height == 3


def test_fig2(benchmark, artifact_report):
    res = run_once(benchmark, fig2_regulator_operation, 0.1, 0.25, 4)
    w, v, p = res.working_period, res.vacation, res.period
    artifact_report.append(
        render_table(
            ["W [s]", "V [s]", "period [s]", "touch points [s]"],
            [[w, v, p, ", ".join(f"{x:.3f}" for x in res.touch_times[:5])]],
            title="== Figure 2 -- (sigma, rho, lambda) regulator operation ==",
        )
    )
    # The zig-zag touches the trend line once per period, at m P + W.
    meaningful = [t for t in res.touch_times if t > w / 2]
    assert len(meaningful) >= 3
    assert np.all(res.output_cum <= res.trend + 1e-9)
