"""Scenario spec, registry, generator and vectorised-bound unit tests."""

import numpy as np
import pytest

import repro.scenarios  # noqa: F401  (registers the corpus)
from repro.calculus.envelope import ArrivalEnvelope
from repro.core.delay_bounds import (
    remark1_wdb_heterogeneous,
    theorem1_wdb_heterogeneous,
    theorem2_wdb_homogeneous,
)
from repro.scenarios import (
    Scenario,
    adversarial_corpus,
    generate_scenarios,
    get_scenario,
    registered_scenarios,
    scenario_names,
)
from repro.scenarios.analytic import (
    batch_bounds,
    batch_remark1_wdb,
    batch_theorem1_wdb,
    pack_envelopes,
)


class TestScenarioSpec:
    def test_validation_rejects_bad_fields(self):
        ok = dict(name="x", kinds=("video",) * 2, utilization=0.5)
        Scenario(**ok)
        with pytest.raises(ValueError):
            Scenario(**{**ok, "kinds": ("warez",)})
        with pytest.raises(ValueError):
            Scenario(**{**ok, "mode": "psychic"})
        with pytest.raises(ValueError):
            Scenario(**{**ok, "topology": "torus"})
        with pytest.raises(ValueError):
            Scenario(**{**ok, "backend": "quantum"})
        with pytest.raises(ValueError):
            Scenario(**{**ok, "stagger_phase": 1.5})
        with pytest.raises(ValueError):
            Scenario(**{**ok, "start_offsets": (0.1,)})  # wrong arity
        with pytest.raises(ValueError):
            Scenario(**{**ok, "topology": "tree"})  # needs tree_members

    def test_realise_is_deterministic(self):
        sc = Scenario(name="det", kinds=("video", "audio"), utilization=0.6, seed=5)
        t1 = sc.realise_traces()
        t2 = sc.realise_traces()
        for a, b in zip(t1, t2):
            np.testing.assert_array_equal(a.times, b.times)
            np.testing.assert_array_equal(a.sizes, b.sizes)

    def test_start_offsets_shift_traces_not_envelopes(self):
        base = Scenario(name="p", kinds=("cbr",) * 2, utilization=0.5, seed=3)
        skew = Scenario(
            name="p", kinds=("cbr",) * 2, utilization=0.5, seed=3,
            start_offsets=(0.0, 0.25),
        )
        t_base, t_skew = base.realise_traces(), skew.realise_traces()
        assert t_skew[1].times[0] == pytest.approx(t_base[1].times[0] + 0.25)
        e_base = base.realise_envelopes(t_base)
        e_skew = skew.realise_envelopes(t_skew)
        assert e_base[1].sigma == pytest.approx(e_skew[1].sigma)

    def test_effective_mode_resolves_adaptive(self):
        sc = Scenario(name="a", kinds=("cbr",) * 3, utilization=0.9, mode="adaptive")
        envs = [ArrivalEnvelope(0.05, 0.3)] * 3
        assert sc.effective_mode(envs) == "sigma-rho-lambda"
        light = [ArrivalEnvelope(0.05, 0.1)] * 3
        assert sc.effective_mode(light) == "sigma-rho"


class TestRegistry:
    def test_corpus_registered_on_import(self):
        names = scenario_names()
        for sc in adversarial_corpus():
            assert sc.name in names
            assert get_scenario(sc.name).kinds == sc.kinds

    def test_tag_filter(self):
        heavy = registered_scenarios(tag="heavy-band")
        assert len(heavy) >= 3
        assert all("heavy-band" in sc.tags for sc in heavy)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")


class TestGenerator:
    def test_stable_in_seed_and_index(self):
        a = generate_scenarios(10, seed=4)
        b = generate_scenarios(30, seed=4)
        assert a == b[:10]  # growing the matrix never perturbs a prefix

    def test_seeds_differ(self):
        assert generate_scenarios(5, seed=1) != generate_scenarios(5, seed=2)

    def test_axes_covered_at_scale(self):
        scs = generate_scenarios(150, seed=9)
        assert {s.topology for s in scs} == {"host", "chain", "tree"}
        assert {s.mode for s in scs} == {
            "sigma-rho", "sigma-rho-lambda", "adaptive"
        }
        assert any("heavy-band" in s.tags for s in scs)
        assert any(s.start_offsets for s in scs)
        assert all(0 < s.utilization <= 0.96 for s in scs)


class TestBatchAnalytic:
    """The vectorised kernels pinned to the scalar theorems."""

    def _random_populations(self, rng, n=50):
        pops = []
        for _ in range(n):
            k = int(rng.integers(1, 7))
            sig = rng.uniform(1e-3, 0.5, size=k)
            rho = rng.uniform(0.01, 0.95 / k, size=k)
            pops.append([ArrivalEnvelope(s, r) for s, r in zip(sig, rho)])
        return pops

    def test_theorem1_matches_scalar(self, rng):
        pops = self._random_populations(rng)
        sig, rho = pack_envelopes(pops)
        batch = batch_theorem1_wdb(sig, rho)
        for i, envs in enumerate(pops):
            scalar = theorem1_wdb_heterogeneous(
                [e.sigma for e in envs], [e.rho for e in envs]
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12)

    def test_remark1_matches_scalar(self, rng):
        pops = self._random_populations(rng)
        sig, rho = pack_envelopes(pops)
        batch = batch_remark1_wdb(sig, rho)
        for i, envs in enumerate(pops):
            scalar = remark1_wdb_heterogeneous(
                [e.sigma for e in envs], [e.rho for e in envs]
            )
            assert batch[i] == pytest.approx(scalar, rel=1e-12)

    def test_theorem1_homogeneous_equals_theorem2(self):
        envs = [[ArrivalEnvelope(0.05, 0.2)] * 4]
        sig, rho = pack_envelopes(envs)
        batch = batch_theorem1_wdb(sig, rho)
        assert batch[0] == pytest.approx(theorem2_wdb_homogeneous(4, 0.05, 0.2))

    def test_unstable_rows_are_infinite(self):
        envs = [
            [ArrivalEnvelope(0.1, 0.6), ArrivalEnvelope(0.1, 0.6)],
            [ArrivalEnvelope(0.1, 0.2)],
        ]
        sig, rho = pack_envelopes(envs)
        assert np.isinf(batch_theorem1_wdb(sig, rho)[0])
        assert np.isinf(batch_remark1_wdb(sig, rho)[0])
        assert np.isfinite(batch_theorem1_wdb(sig, rho)[1])

    def test_capacity_denormalisation(self):
        envs = [[ArrivalEnvelope(0.2, 0.8), ArrivalEnvelope(0.1, 0.6)]]
        sig, rho = pack_envelopes(envs)
        batch = batch_theorem1_wdb(sig, rho, capacity=np.array([2.0]))
        scalar = theorem1_wdb_heterogeneous([0.2, 0.1], [0.8, 0.6], capacity=2.0)
        assert batch[0] == pytest.approx(scalar, rel=1e-12)

    def test_batch_bounds_hop_scaling(self):
        envs = [[ArrivalEnvelope(0.05, 0.2)] * 3] * 2
        bounds, baselines = batch_bounds(
            envs, ["sigma-rho-lambda", "sigma-rho"],
            hops=[3, 1], propagation_total=[0.5, 0.0],
        )
        per_hop_t1 = theorem1_wdb_heterogeneous([0.05] * 3, [0.2] * 3)
        per_hop_r1 = remark1_wdb_heterogeneous([0.05] * 3, [0.2] * 3)
        assert bounds[0] == pytest.approx(3 * per_hop_t1 + 0.5)
        assert bounds[1] == pytest.approx(per_hop_r1)
        assert baselines[0] == pytest.approx(3 * per_hop_r1 + 0.5)

    def test_batch_bounds_rejects_unresolved_modes(self):
        envs = [[ArrivalEnvelope(0.05, 0.2)]]
        with pytest.raises(ValueError, match="resolved"):
            batch_bounds(envs, ["adaptive"])
