"""Proximity clustering: sizes, partition, core election."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.clustering import (
    cluster_by_proximity,
    draw_cluster_size,
    elect_core,
)
from repro.utils.rng import ensure_rng


def random_rtt(n, seed=0):
    gen = np.random.default_rng(seed)
    pos = gen.random((n, 2))
    d = np.sqrt(((pos[:, None] - pos[None, :]) ** 2).sum(-1))
    return d + d.T


class TestDrawClusterSize:
    def test_paper_rule_in_range(self, rng):
        for _ in range(100):
            s = draw_cluster_size(100, 3, rng)
            assert 3 <= s <= 8  # [k, 3k-1]

    def test_remainder_takes_all(self, rng):
        # <= 3k-1 unassigned: the cluster absorbs everyone.
        assert draw_cluster_size(5, 3, rng) == 5
        assert draw_cluster_size(8, 3, rng) == 8

    def test_max_size_caps(self, rng):
        for _ in range(50):
            assert draw_cluster_size(100, 3, rng, max_size=4) <= 4

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            draw_cluster_size(10, 1, rng)
        with pytest.raises(ValueError):
            draw_cluster_size(0, 3, rng)


class TestClusterByProximity:
    def test_partition_is_exact(self):
        rtt = random_rtt(37)
        clusters = cluster_by_proximity(list(range(37)), rtt, 3, rng=1)
        seen = [m for c in clusters for m in c]
        assert sorted(seen) == list(range(37))

    def test_cluster_sizes_in_paper_range(self):
        rtt = random_rtt(60)
        clusters = cluster_by_proximity(list(range(60)), rtt, 3, rng=2)
        # All but possibly the last remainder cluster obey [k, 3k-1].
        for c in clusters[:-1]:
            assert 1 <= len(c) <= 8

    def test_clusters_are_proximal(self):
        """Members of a cluster are nearer its seed than a random host
        (on average) -- the 'closest hosts' rule."""
        rtt = random_rtt(80, seed=3)
        clusters = cluster_by_proximity(list(range(80)), rtt, 3, rng=3)
        big = [c for c in clusters if len(c) >= 4]
        assert big, "expected at least one non-trivial cluster"
        for c in big[:5]:
            seed = c[0]
            inside = np.mean([rtt[seed, m] for m in c[1:]])
            outside_hosts = [m for m in range(80) if m not in c]
            outside = np.mean([rtt[seed, m] for m in outside_hosts])
            assert inside <= outside

    def test_reproducible(self):
        rtt = random_rtt(30)
        a = cluster_by_proximity(list(range(30)), rtt, 3, rng=7)
        b = cluster_by_proximity(list(range(30)), rtt, 3, rng=7)
        assert a == b

    def test_respects_per_seed_cap(self):
        rtt = random_rtt(40)
        clusters = cluster_by_proximity(
            list(range(40)), rtt, 3, rng=4, size_cap_per_seed=lambda h: 3
        )
        assert all(len(c) <= 3 for c in clusters)


class TestElectCore:
    def test_medoid_minimises_total_rtt(self):
        rtt = random_rtt(10)
        cluster = [0, 3, 5, 7]
        core = elect_core(cluster, rtt)
        sums = {m: sum(rtt[m, x] for x in cluster) for m in cluster}
        assert sums[core] == min(sums.values())

    def test_prefer_member_wins(self):
        rtt = random_rtt(10)
        assert elect_core([0, 3, 5], rtt, prefer=5) == 5

    def test_prefer_non_member_ignored(self):
        rtt = random_rtt(10)
        core = elect_core([0, 3], rtt, prefer=9)
        assert core in (0, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            elect_core([], random_rtt(3))


@given(
    n=st.integers(min_value=1, max_value=120),
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_clustering_always_partitions(n, k, seed):
    rtt = random_rtt(n, seed=seed % 7)
    clusters = cluster_by_proximity(list(range(n)), rtt, k, rng=seed)
    members = sorted(m for c in clusters for m in c)
    assert members == list(range(n))
    assert all(len(c) >= 1 for c in clusters)
