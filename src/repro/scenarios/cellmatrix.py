"""Structure-of-arrays grouped evaluation of a scenario matrix.

The per-cell worker (:func:`repro.scenarios.runner.evaluate_cell`)
realises and simulates one cell at a time: every cell pays its own
kernel dispatch, regulator passes and curve bookkeeping even when the
matrix holds hundreds of cells that differ only in parameters.  This
module evaluates a *batch of cells* instead:

1. **Lean realisation** -- each cell's traces and envelopes are
   realised with the exact seed derivations of
   :meth:`Scenario.realise_traces` / :meth:`realise_envelopes`, but the
   mix is built once, the empirical sigma is measured once per unique
   trace (:func:`_empirical_sigma_fast`, a flat-array restatement of
   ``PacketTrace.empirical_sigma``) and fragmentation is memoised.
   The tail (backend fallback, topology resolution) is delegated to
   :func:`repro.scenarios.runner._realise_from` -- one source of truth.
2. **Grouping** -- cells are keyed by
   ``(backend, discipline, topology, mode shape)``; two group kernels
   exist today, the adversarial fluid host and the adversarial primed
   DES host.  Cells outside both groups -- and cells whose grouped
   realisation or evaluation raises -- are re-run through
   :func:`evaluate_cell` individually, so results (including error
   tracebacks) match the per-cell path exactly; a failing cell fails
   only its own verdict.
3. **Packed evaluation** -- each fluid group packs its unique
   (trace, envelope) lanes into padded ``(n_lanes, n_bins_max + 1)``
   matrices and shapes them with the ``batch_fluid_*`` kernels of
   :mod:`repro.simulation.fluid` in one vectorised pass per group; the
   DES group runs :func:`repro.simulation.batched.primed_adversarial_worst`
   per cell with the regulator pass deduplicated across flows sharing
   a trace.

Equivalence contract: grouped evaluation is throughput-only.  Every
``CellResult`` field must equal the per-cell path bit for bit -- the
shared-grid prefix property of the batch kernels, the exact-selection
property of float min/max and the float-op-for-float-op lean replicas
are what make that hold; ``tests/test_scenarios_cellmatrix.py``
enforces it over the corpus and generated matrices.  Only the
``wall_time`` attribution differs: group kernel time is amortised
evenly over the group's cells.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.runtime.executor import TaskResult, _run_one
from repro.runtime.telemetry import begin_cell, end_cell, span
from repro.scenarios.runner import (
    CellResult,
    _Realised,
    _quant_eps,
    _realise_from,
    evaluate_cell,
)
from repro.scenarios.spec import Scenario
from repro.scenarios.tracebatch import _empirical_sigma_fast, realise_batch
from repro.simulation.batched import PRIMED_MODES, primed_adversarial_worst
from repro.simulation.fluid import (
    _adversarial_worst_arrays,
    _default_drain_margin,
    batch_fluid_next_empty,
    batch_fluid_on_time,
    batch_fluid_token_bucket,
    batch_fluid_work_conserving,
)
from repro.utils.rng import derive_seed

__all__ = [
    "evaluate_grouped",
    "group_key",
]

#: Ceiling on one packed fluid sub-batch, in float64 elements per
#: matrix (lanes x padded grid).  Groups whose lanes exceed it are
#: split into sub-batches of similar grid width (cells sorted by
#: ``n_bins`` first, so padding waste stays small); splitting is
#: invisible to results -- every kernel's valid prefix is independent
#: of the batch it rides in.
MAX_PACK_ELEMENTS = 4_000_000

#: Ceiling on padding waste within one pack: a cell whose grid is more
#: than this factor wider than the pack's narrowest starts a new pack.
#: Every lane pads to the pack maximum, so without this cap one
#: near-critical cell (drain margin ~ sigma/(C - rho) blows up the
#: grid) would multiply the whole pack's kernel cost; with cells
#: sorted ascending the waste per pack is bounded by the factor.
MAX_PACK_WIDTH_RATIO = 1.3


# ----------------------------------------------------------------------
# Lean realisation
# ----------------------------------------------------------------------
def _lean_realise(
    sc: Scenario, fragment_cache: dict, source_cache: dict
) -> _Realised:
    """Realise one cell with the per-cell path's exact float sequence.

    Replicates :meth:`Scenario.realise_traces` (``mtu=None``) and
    :meth:`Scenario.realise_envelopes` -- same seed derivations, same
    generation order, same envelope arithmetic -- while building the
    source list once per unique ``(kinds, utilization, capacity)``
    instead of twice per cell (sources are pure parameter records:
    equal construction inputs give bit-equal rates; ``mix.name``, the
    only per-cell part, reaches nothing but the seed derivation, which
    uses ``sc.name`` directly) and measuring each unique trace's
    empirical sigma once instead of once per flow.
    """
    skey = (tuple(sc.kinds), sc.utilization, sc.capacity)
    sources = source_cache.get(skey)
    if sources is None:
        sources = sc.mix().sources
        source_cache[skey] = sources
    rng = derive_seed(sc.seed, "scenario", sc.name)
    traces = []
    cache: dict[tuple[str, float], object] = {}
    for g, (src, kind) in enumerate(zip(sources, sc.kinds)):
        key = (kind, round(src.rate, 12))
        if sc.shared and key in cache:
            traces.append(cache[key])
            continue
        seed = derive_seed(rng, "trace", sc.name, kind if sc.shared else g)
        trace = src.generate(sc.horizon, rng=seed)
        cache[key] = trace
        traces.append(trace)
    if sc.start_offsets:
        traces = [
            tr.shifted(off) if off > 0 else tr
            for tr, off in zip(traces, sc.start_offsets)
        ]
    env_cache: dict[tuple[int, float], ArrivalEnvelope] = {}
    envelopes = []
    for tr, src in zip(traces, sources):
        ek = (id(tr), src.rate)
        env = env_cache.get(ek)
        if env is None:
            sigma = _empirical_sigma_fast(tr.times, tr.sizes, src.rate)
            env = ArrivalEnvelope(max(sigma, 1e-9), src.rate)
            env_cache[ek] = env
        envelopes.append(env)
    return _realise_from(sc, traces, envelopes, fragment_cache)


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------
def group_key(r: _Realised) -> Optional[tuple]:
    """The SoA group of a realised cell, or ``None`` (per-cell only).

    Group members must share every structural fact a packed kernel
    depends on: effective backend, discipline, topology, effective mode
    and (fluid) the grid resolution.  Capacities, envelopes, horizons
    and flow counts may vary freely -- they are per-lane/per-cell
    parameters of the kernels.
    """
    sc = r.scenario
    if sc.topology != "host" or sc.discipline != "adversarial":
        return None
    if r.eff_backend == "fluid":
        return ("fluid", "adversarial", "host", r.eff_mode, sc.dt)
    if r.eff_backend == "des" and r.eff_mode in PRIMED_MODES:
        return ("des", "adversarial", "host", r.eff_mode)
    return None


def _fallback_reason(r: _Realised) -> str:
    """Why :func:`group_key` rejected a realised cell (telemetry label).

    Mirrors the rejection order of :func:`group_key` so the label names
    the *first* disqualifying fact -- the "no silent caps" counters in
    the grouping summary aggregate these per reason.
    """
    sc = r.scenario
    if sc.topology != "host":
        return f"topology:{sc.topology}"
    if sc.discipline != "adversarial":
        return f"discipline:{sc.discipline}"
    if r.eff_backend == "des":
        return f"mode:{r.eff_mode}"
    return f"backend:{r.eff_backend}"


def _annotate_fallback(task: TaskResult, reason: str) -> None:
    """Stamp a per-cell fallback reason onto a ``_run_one`` result."""
    if task.telemetry is not None:
        task.telemetry.extra["fallback_reason"] = reason
        task.telemetry.counters["fallback_cells"] = 1


def _cell_result(r: _Realised, measured, events, cancelled, primed):
    sc = r.scenario
    return CellResult(
        name=sc.name,
        eff_mode=r.eff_mode,
        eff_backend=r.eff_backend,
        hops=r.hops,
        propagation_total=float(sum(r.propagation)),
        sigmas=tuple(float(e.sigma) for e in r.envelopes),
        rhos=tuple(float(e.rho) for e in r.envelopes),
        measured=float(measured),
        events=int(events),
        cancelled_events=int(cancelled),
        height_ok=r.height_ok,
        quant_eps=_quant_eps(r),
        primed=primed,
    )


# ----------------------------------------------------------------------
# DES group: primed adversarial hosts
# ----------------------------------------------------------------------
def _eval_des_group(
    mode: str, members: Sequence[tuple]
) -> list[Optional[CellResult]]:
    """Evaluate one primed-DES group; ``None`` marks per-cell fallback."""
    out: list[Optional[CellResult]] = []
    dedupe = mode in ("sigma-rho", "none")
    for _i, r, _prep, _tel in members:
        try:
            sc = r.scenario
            traces = r.traces
            # Same derivation (and the same all-empty ValueError) as
            # simulate_regulated_host; the horizon always exceeds every
            # emission, so its restrict() is the identity value-wise.
            max(tr.times[-1] + 1e-9 for tr in traces if len(tr))
            keys = (
                [
                    (id(tr), e.sigma, e.rho)
                    for tr, e in zip(traces, r.envelopes)
                ]
                if dedupe
                else None
            )
            worst, events = primed_adversarial_worst(
                [(tr.times, tr.sizes) for tr in traces],
                r.envelopes,
                mode,
                capacity=sc.capacity,
                stagger_phase=sc.stagger_phase,
                dep_cache={} if dedupe else None,
                cache_keys=keys,
            )
            out.append(_cell_result(r, worst, events, 0, True))
        except Exception:
            out.append(None)
    return out


# ----------------------------------------------------------------------
# Fluid group: adversarial fluid hosts
# ----------------------------------------------------------------------
class _FluidCell:
    """One fluid cell's packed-evaluation state."""

    __slots__ = (
        "realised", "n_bins", "arr_rows", "arr_of_flow", "lane_params",
        "measure_key",
    )

    def __init__(self, realised, n_bins, arr_rows, arr_of_flow,
                 lane_params, measure_key):
        self.realised = realised
        self.n_bins = n_bins
        #: Unique cumulative-arrival rows (one per shaped lane).
        self.arr_rows = arr_rows
        #: Flow index -> lane index into ``arr_rows``.
        self.arr_of_flow = arr_of_flow
        #: Per-lane shaper parameters (mode-dependent).
        self.lane_params = lane_params
        #: Flow index -> measurement-dedupe key (``None``: no sharing).
        self.measure_key = measure_key


def _binned_cum(tr, dt: float, horizon: float, total: float) -> np.ndarray:
    """``concatenate(([0], cumsum(tr.restrict(horizon).binned_arrivals(dt, total))))``.

    Fused: the restrict copy is skipped, its keep-mask is AND-ed into
    the bin mask instead (masking preserves element order, so the
    ``np.add.at`` accumulation order -- and every float -- matches).
    """
    n_bins = int(np.ceil(total / dt))
    bins = np.zeros(n_bins, dtype=np.float64)
    if len(tr):
        idx = np.floor(tr.times / dt).astype(np.int64)
        keep = (tr.times < horizon) & (idx < n_bins)
        np.add.at(bins, idx[keep], tr.sizes[keep])
    return np.concatenate(([0.0], np.cumsum(bins)))


def _prep_fluid_cell(r: _Realised, mode: str, dt: float) -> _FluidCell:
    """Realise one fluid cell's lanes (exceptions route to fallback).

    Mirrors ``simulate_fluid_host`` head for head: horizon and drain
    margin derivation, binned cumulative arrivals, the stagger plan and
    its offsets.  Every predicate a scalar kernel would raise on
    (``fluid_on_time`` window validation, the stagger-plan tiling
    check) is evaluated here so violating cells fall back to the
    per-cell path and reproduce its exact error.
    """
    sc = r.scenario
    traces, envelopes = r.traces, r.envelopes
    horizon = max(float(tr.times[-1]) for tr in traces if len(tr)) + dt
    total = horizon + _default_drain_margin(envelopes, sc.capacity)
    n_bins = int(np.ceil(total / dt))

    arr_rows: list[np.ndarray] = []
    arr_of_flow: list[int] = []
    lane_of: dict[tuple, int] = {}
    for tr in traces:
        key = (id(tr),)
        lane = lane_of.get(key)
        if lane is None:
            lane = len(arr_rows)
            lane_of[key] = lane
            arr_rows.append(_binned_cum(tr, dt, horizon, total))
        arr_of_flow.append(lane)

    k = len(traces)
    if mode == "none":
        # Shaping is the identity; one lane per unique arrival row.
        lane_params = [()] * len(arr_rows)
        shape_of_flow = list(arr_of_flow)
        measure_key = list(arr_of_flow)
    elif mode == "sigma-rho":
        # One shaped lane per unique (arrival row, sigma, rho/C).
        lane_params = []
        shape_of_flow = []
        shape_lane_of: dict[tuple, int] = {}
        for f in range(k):
            e = envelopes[f]
            skey = (arr_of_flow[f], e.sigma, e.rho / sc.capacity)
            lane = shape_lane_of.get(skey)
            if lane is None:
                lane = len(lane_params)
                shape_lane_of[skey] = lane
                lane_params.append(skey)
            shape_of_flow.append(lane)
        measure_key = list(shape_of_flow)
    else:  # sigma-rho-lambda: per-flow offsets, one lane per flow
        plan = AdaptiveController(envelopes, sc.capacity).build_stagger_plan()
        base = (sc.stagger_phase % 1.0) * plan.period
        lane_params = []
        for f, (reg, off) in enumerate(zip(plan.regulators, plan.offsets)):
            working, period = reg.working_period, reg.regulator_period
            offset = base + off
            # fluid_on_time's own validation, pre-flighted per lane.
            if not (working > 0.0 and period > 0.0 and offset >= 0.0):
                raise ValueError("invalid vacation window parameters")
            if working > period + 1e-12:
                raise ValueError(
                    "working period cannot exceed the cycle period"
                )
            lane_params.append((arr_of_flow[f], working, period, offset))
        shape_of_flow = list(range(k))
        measure_key = [None] * k
    return _FluidCell(
        r, n_bins, arr_rows,
        {"arr": arr_of_flow, "shape": shape_of_flow}, lane_params,
        measure_key,
    )


def _fluid_subbatches(
    cells: Sequence[tuple[int, _FluidCell]]
) -> list[list[tuple[int, _FluidCell]]]:
    """Split a fluid group into packs bounded by :data:`MAX_PACK_ELEMENTS`.

    Cells are sorted by grid length so each pack pads to a similar
    width; the split has no effect on results (kernel prefixes are
    batch-independent), only on peak memory.
    """
    ordered = sorted(cells, key=lambda item: item[1].n_bins)
    packs: list[list[tuple[int, _FluidCell]]] = []
    cur: list[tuple[int, _FluidCell]] = []
    lanes = 0
    for item in ordered:
        cell = item[1]
        n_lanes = len(cell.lane_params)
        width = cell.n_bins + 1  # sorted ascending: this is the pack max
        if cur and (
            (lanes + n_lanes) * width > MAX_PACK_ELEMENTS
            or width > MAX_PACK_WIDTH_RATIO * (cur[0][1].n_bins + 1)
        ):
            packs.append(cur)
            cur, lanes = [], 0
        cur.append(item)
        lanes += n_lanes
    if cur:
        packs.append(cur)
    return packs


def _eval_fluid_pack(
    mode: str, dt: float, pack: Sequence[tuple[int, _FluidCell]]
) -> dict[int, CellResult]:
    """Shape + measure one packed sub-batch of fluid cells."""
    n_max = max(cell.n_bins for _slot, cell in pack)
    t_grid = dt * np.arange(n_max + 1)
    lane_rows = []
    lane_base: dict[int, int] = {}
    sigmas, rhos = [], []
    workings, periods, offsets, caps = [], [], [], []
    for slot, cell in pack:
        lane_base[slot] = len(lane_rows)
        width = cell.n_bins + 1
        for params in cell.lane_params:
            if mode == "sigma-rho":
                sigmas.append(params[1])
                rhos.append(params[2])
            elif mode == "sigma-rho-lambda":
                workings.append(params[1])
                periods.append(params[2])
                offsets.append(params[3])
                caps.append(cell.realised.scenario.capacity)
        # "none" lanes are the arrival rows themselves.
        rows = (
            cell.arr_rows
            if mode == "none"
            else [cell.arr_rows[p[0]] for p in cell.lane_params]
        )
        for row in rows:
            padded = np.empty(n_max + 1, dtype=np.float64)
            padded[:width] = row
            padded[width:] = row[-1]
            lane_rows.append(padded)

    packed = np.asarray(lane_rows) if lane_rows else np.zeros((0, n_max + 1))
    if mode == "none" or packed.shape[0] == 0:
        shaped = packed
    elif mode == "sigma-rho":
        shaped = batch_fluid_token_bucket(
            packed, t_grid, np.asarray(sigmas), np.asarray(rhos)
        )
    else:
        on = batch_fluid_on_time(
            t_grid,
            np.asarray(workings),
            np.asarray(periods),
            np.asarray(offsets),
        )
        service = np.asarray(caps)[:, None] * on
        shaped = batch_fluid_work_conserving(packed, service)

    # Per-cell aggregates of the shaped flows (duplicates included:
    # np.sum over the k views runs the same stacked reduction as the
    # scalar path's np.sum(shaped, axis=0)).
    agg_pad = np.empty((len(pack), n_max + 1), dtype=np.float64)
    cell_caps = np.empty(len(pack))
    n_valid = np.empty(len(pack), dtype=np.int64)
    for c, (slot, cell) in enumerate(pack):
        base = lane_base[slot]
        n = cell.n_bins
        views = [
            shaped[base + lane, : n + 1]
            for lane in cell.arr_of_flow["shape"]
        ]
        agg = np.sum(views, axis=0)
        agg_pad[c, : n + 1] = agg
        agg_pad[c, n + 1:] = agg[n]
        cell_caps[c] = cell.realised.scenario.capacity
        n_valid[c] = n
    next_empty = batch_fluid_next_empty(t_grid, agg_pad, cell_caps, n_valid)

    results: dict[int, CellResult] = {}
    for c, (slot, cell) in enumerate(pack):
        base = lane_base[slot]
        n = cell.n_bins
        tg = t_grid[: n + 1]
        ne = next_empty[c, : n + 1]
        worst_cache: dict[int, float] = {}
        per_flow_worst = []
        k = len(cell.realised.traces)
        for f in range(k):
            mkey = cell.measure_key[f]
            if mkey is not None and mkey in worst_cache:
                per_flow_worst.append(worst_cache[mkey])
                continue
            arr = cell.arr_rows[cell.arr_of_flow["arr"][f]]
            shp = shaped[base + cell.arr_of_flow["shape"][f], : n + 1]
            worst = _adversarial_worst_arrays(tg, arr, shp, ne)
            if mkey is not None:
                worst_cache[mkey] = worst
            per_flow_worst.append(worst)
        results[slot] = _cell_result(
            cell.realised, max(per_flow_worst), 0, 0, False
        )
    return results


def _eval_fluid_group(
    mode: str,
    dt: float,
    members: Sequence[tuple],
    pack_stats: Optional[dict] = None,
) -> list[Optional[CellResult]]:
    """Evaluate one fluid group; ``None`` marks per-cell fallback.

    ``pack_stats`` (optional, a mutable mapping) accumulates lane
    packing telemetry across the group's sub-batches: ``packs``,
    ``lanes``, and padded vs. valid float64 elements (their ratio is
    the padding-waste the pack-width cap bounds).
    """
    out: list[Optional[CellResult]] = [None] * len(members)
    cells: list[tuple[int, _FluidCell]] = []
    for slot, (_i, r, _prep, _tel) in enumerate(members):
        try:
            cells.append((slot, _prep_fluid_cell(r, mode, dt)))
        except Exception:
            pass  # stays None: per-cell fallback reproduces the error
    for pack in _fluid_subbatches(cells):
        if pack_stats is not None and pack:
            n_max = max(cell.n_bins for _s, cell in pack)
            lanes = sum(len(cell.lane_params) for _s, cell in pack)
            pack_stats["packs"] = pack_stats.get("packs", 0) + 1
            pack_stats["lanes"] = pack_stats.get("lanes", 0) + lanes
            pack_stats["pad_elements"] = (
                pack_stats.get("pad_elements", 0) + lanes * (n_max + 1)
            )
            pack_stats["valid_elements"] = pack_stats.get(
                "valid_elements", 0
            ) + sum(
                len(cell.lane_params) * (cell.n_bins + 1) for _s, cell in pack
            )
        try:
            for slot, cell_result in _eval_fluid_pack(mode, dt, pack).items():
                out[slot] = cell_result
        except Exception:
            pass  # whole pack falls back per-cell
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def evaluate_grouped(
    scenarios: Sequence[Scenario],
    *,
    tick: Optional[callable] = None,
    stats: Optional[dict] = None,
    batch_realise: Optional[bool] = None,
    cost_model=None,
) -> list[TaskResult]:
    """Evaluate a matrix with SoA grouping; per-scenario task results.

    The contract of ``SerialExecutor.map_tasks(evaluate_cell, ...)``:
    one :class:`TaskResult` per scenario in input order, failures
    captured per cell, bit-identical values.  ``tick(done, total)`` is
    called as cells complete (grouped cells complete per group).

    ``batch_realise`` selects how candidate cells are realised:
    ``True`` synthesises the whole batch's traces/envelopes in flat
    passes (:func:`repro.scenarios.tracebatch.realise_batch`),
    ``False`` realises per cell (:func:`_lean_realise`), and ``None``
    (the default) batches whenever more than one candidate exists.
    Throughput-only either way -- the batch realiser replays the
    per-cell float sequence exactly, and any cell it cannot realise
    drops to the per-cell path (then to :func:`evaluate_cell`), so
    results are bit-identical.

    ``cost_model`` (optional,
    :class:`repro.runtime.cost.CellCostModel`) prices the batch's
    realisation cost per group (``estimate_realise``); the prediction
    lands in the grouping summary record next to the measured batch
    seconds, so realisation-cost calibration is observable in
    ``scenarios report``.

    ``stats`` (optional, a mutable mapping) receives
    ``stats["records"]``: one mapping per evaluated group
    (``kind == "grouping"``: cells, kernel seconds, lane packing and
    padding waste) plus one ``kind == "grouping_summary"`` mapping
    (grouped vs. fallback cell counts, per-reason fallback tallies, the
    realisation source-cache hit rate, and the batch-realisation tally:
    cells realised batched, lanes generated, batch seconds vs. the cost
    model's prediction) -- the "no silent caps" ledger of the grouped
    path.
    """
    scenarios = list(scenarios)
    n = len(scenarios)
    results: list[Optional[TaskResult]] = [None] * n
    fragment_cache: dict = {}
    source_cache: dict = {}
    groups: dict[tuple, list[tuple]] = {}
    fallback: list[tuple[int, str]] = []
    reasons: dict[str, int] = {}
    records: list[dict] = []
    src_hits = src_misses = 0
    done = 0

    def _tick():
        if tick is not None:
            tick(done, n)

    candidates: list[int] = []
    for i, sc in enumerate(scenarios):
        # Spec-level short-circuit: group_key() rejects these whatever
        # the realisation says, so skip the realisation entirely.
        if sc.topology != "host":
            fallback.append((i, f"topology:{sc.topology}"))
            continue
        if sc.discipline != "adversarial":
            fallback.append((i, f"discipline:{sc.discipline}"))
            continue
        candidates.append(i)

    if batch_realise is None:
        batch_realise = len(candidates) > 1

    realised: dict[int, _Realised] = {}
    batch_s = batch_share = 0.0
    batch_info: dict = {}
    predicted_realise_s = None
    if batch_realise and candidates:
        specs = [scenarios[i] for i in candidates]
        if cost_model is not None and hasattr(cost_model, "estimate_realise"):
            try:
                predicted_realise_s = float(
                    cost_model.estimate_realise(specs, grouped=True)
                )
            except Exception:
                predicted_realise_s = None
        t0 = time.perf_counter()
        try:
            batch_results, batch_info = realise_batch(
                specs, fragment_cache, source_cache
            )
        except Exception:
            batch_results = [None] * len(specs)
        batch_s = time.perf_counter() - t0
        for i, r in zip(candidates, batch_results):
            if r is not None:
                realised[i] = r
        src_hits += batch_info.get("source_cache_hits", 0)
        src_misses += batch_info.get("source_cache_misses", 0)
        # The batch pass ran cells batch-wise: amortise its wall time
        # evenly over the cells it realised (the same attribution rule
        # as the group kernels below).
        batch_share = batch_s / max(len(realised), 1)

    for i in candidates:
        sc = scenarios[i]
        tel = begin_cell(sc.name)
        t0 = time.perf_counter()
        key = None
        r = realised.get(i)
        from_batch = r is not None
        try:
            if r is None:
                cached = len(source_cache)
                with span("realise"):
                    r = _lean_realise(sc, fragment_cache, source_cache)
                if len(source_cache) == cached:
                    src_hits += 1
                else:
                    src_misses += 1
            elif tel is not None:
                # Batch-realised before this cell's telemetry began:
                # credit the amortised share so the report's phase
                # breakdown still accounts for realisation honestly.
                tel.add_phase("realise", batch_share, offset=0.0)
            key = group_key(r)
        except Exception:
            key = None
        prep = time.perf_counter() - t0
        if from_batch:
            prep += batch_share
        end_cell(tel)
        if key is None:
            # The fallback re-runs evaluate_cell with fresh telemetry,
            # so the lean-realisation attempt's record is discarded.
            reason = "realise-error" if r is None else _fallback_reason(r)
            fallback.append((i, reason))
        else:
            groups.setdefault(key, []).append((i, r, prep, tel))

    for i, reason in fallback:
        results[i] = _run_one(evaluate_cell, i, scenarios[i])
        _annotate_fallback(results[i], reason)
        reasons[reason] = reasons.get(reason, 0) + 1
        done += 1
        _tick()

    grouped_cells = 0
    for key, members in groups.items():
        pack_stats: dict = {}
        t0 = time.perf_counter()
        if key[0] == "des":
            cell_results = _eval_des_group(key[3], members)
        else:
            cell_results = _eval_fluid_group(
                key[3], key[4], members, pack_stats
            )
        kernel_s = time.perf_counter() - t0
        share = kernel_s / max(len(members), 1)
        kernel_fallbacks = 0
        for (i, _r, prep, tel), cell in zip(members, cell_results):
            if cell is None:
                results[i] = _run_one(evaluate_cell, i, scenarios[i])
                _annotate_fallback(results[i], "kernel-error")
                reasons["kernel-error"] = reasons.get("kernel-error", 0) + 1
                kernel_fallbacks += 1
            else:
                if tel is not None:
                    # The kernel ran cells batch-wise: credit each cell
                    # its amortised share, anchored at the kernel start
                    # so trace slices line up on the timeline.
                    tel.add_phase("simulate", share, offset=t0 - tel.t0)
                    tel.dur = prep + share
                    tel.counters["grouped_cells"] = 1
                    if key[0] == "des":
                        tel.counters["primed_cells"] = 1
                results[i] = TaskResult(
                    index=i, value=cell, wall_time=prep + share,
                    telemetry=tel,
                )
                grouped_cells += 1
            done += 1
            _tick()
        rec = {
            "kind": "grouping",
            "backend": key[0],
            "mode": key[3],
            "cells": len(members),
            "kernel_fallbacks": kernel_fallbacks,
            "prep_s": float(sum(m[2] for m in members)),
            "kernel_s": kernel_s,
        }
        if pack_stats:
            rec.update(pack_stats)
            pad = pack_stats.get("pad_elements", 0)
            if pad:
                rec["padding_waste"] = (
                    1.0 - pack_stats.get("valid_elements", 0) / pad
                )
        records.append(rec)

    summary = {
        "kind": "grouping_summary",
        "cells": n,
        "grouped_cells": grouped_cells,
        "fallback_cells": n - grouped_cells,
        "fallback_reasons": dict(sorted(reasons.items())),
        "source_cache_hits": src_hits,
        "source_cache_misses": src_misses,
        "batch_realise": bool(batch_realise),
        "batch_realised_cells": len(realised),
        "batch_realise_s": batch_s,
    }
    if batch_info:
        summary["batch_lanes_generated"] = batch_info.get("lanes_generated", 0)
        summary["batch_sigma_lanes"] = batch_info.get("sigma_lanes", 0)
    if predicted_realise_s is not None:
        summary["predicted_realise_s"] = predicted_realise_s
    records.append(summary)
    if stats is not None:
        stats["records"] = records
    return results
