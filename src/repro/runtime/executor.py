"""Pluggable execution backends for embarrassingly parallel cell work.

An :class:`Executor` maps a picklable, module-level function over a
sequence of picklable payloads and returns one :class:`TaskResult` per
payload, **in payload order**, regardless of completion order.  Three
backends share the contract:

``SerialExecutor``
    In-process loop; the reference semantics every other backend must
    reproduce bit-for-bit (results may only differ by wall time).
``ThreadExecutor``
    ``concurrent.futures.ThreadPoolExecutor``; useful when the payload
    releases the GIL (NumPy-heavy cells) or for I/O-bound stages.
``ProcessExecutor``
    ``concurrent.futures.ProcessPoolExecutor``; the scale backend for
    CPU-bound DES cells.  Payloads are submitted in contiguous chunks
    (amortising pickling and task dispatch), and the worker function
    plus payloads must be picklable.

Failure containment: a payload that raises is captured **inside the
worker** and returned as ``TaskResult(error=<traceback>)`` -- one
crashing cell never takes down its chunk, let alone the campaign.  A
hard worker death (e.g. ``BrokenProcessPool``) is caught at the chunk
future and degrades into error results for that chunk only.
"""

from __future__ import annotations

import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, Executor as _FuturesExecutor, wait
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Optional, Sequence

from repro.runtime.telemetry import (
    CellTelemetry,
    begin_cell,
    end_cell,
    enabled as telemetry_enabled,
)

__all__ = [
    "TaskResult",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_KINDS",
    "make_executor",
    "auto_chunksize",
]

#: Executor kinds :func:`make_executor` accepts.
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Upper bound on the automatic chunk size (keeps progress granular).
MAX_AUTO_CHUNK = 16
#: Chunks-per-worker target of the automatic chunk size (load balance:
#: several chunks per worker absorb cell-cost variance).
CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class TaskResult:
    """One payload's outcome: a value or a captured worker traceback."""

    index: int
    value: Any = None
    error: Optional[str] = None
    wall_time: float = 0.0
    #: Worker-side telemetry for this payload (``None`` when collection
    #: is disabled); excluded from equality so the determinism gates
    #: keep comparing values, not timings.
    telemetry: Optional[CellTelemetry] = dataclass_field(
        default=None, compare=False, repr=False
    )

    @property
    def ok(self) -> bool:
        return self.error is None


def auto_chunksize(n_tasks: int, jobs: int) -> int:
    """Contiguous chunk size balancing dispatch overhead vs. skew."""
    if n_tasks <= 0:
        return 1
    per_worker = -(-n_tasks // max(1, jobs * CHUNKS_PER_WORKER))  # ceil div
    return max(1, min(MAX_AUTO_CHUNK, per_worker))


def _check_plan(chunk_plan: Sequence[Sequence[int]], n: int) -> None:
    """A chunk plan must cover every payload index exactly once."""
    seen: set[int] = set()
    count = 0
    for chunk in chunk_plan:
        for i in chunk:
            i = int(i)
            if not 0 <= i < n:
                raise ValueError(f"chunk plan index {i} out of range [0, {n})")
            seen.add(i)
            count += 1
    if count != n or len(seen) != n:
        raise ValueError(
            f"chunk plan must cover all {n} payloads exactly once "
            f"(got {count} entries, {len(seen)} distinct)"
        )


def _run_one(
    fn: Callable[[Any], Any],
    index: int,
    payload: Any,
    collect: bool = True,
) -> TaskResult:
    """Worker-side unit of execution with exception capture.

    ``collect`` carries the parent's telemetry switch across the
    process boundary (spawned workers re-import modules, so the global
    flag alone cannot be trusted there); :func:`begin_cell` still
    honours the local global, so both ends must agree to collect.
    """
    tel = (
        begin_cell(str(getattr(payload, "name", index))) if collect else None
    )
    t0 = time.perf_counter()
    try:
        value = fn(payload)
    except Exception:
        end_cell(tel)
        return TaskResult(
            index=index,
            error=traceback.format_exc(limit=20),
            wall_time=time.perf_counter() - t0,
            telemetry=tel,
        )
    end_cell(tel)
    return TaskResult(
        index=index,
        value=value,
        wall_time=time.perf_counter() - t0,
        telemetry=tel,
    )


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[tuple[int, Any]],
    submit_t: Optional[float] = None,
    collect: bool = True,
) -> list[TaskResult]:
    """Worker-side chunk loop (module-level, hence picklable).

    ``submit_t`` is the parent's ``time.perf_counter()`` at submission
    -- CLOCK_MONOTONIC is process-shared on Linux, so the difference to
    the worker's first instruction is this chunk's queue latency.
    """
    t_start = time.perf_counter()
    queue_s = t_start - submit_t if submit_t is not None else None
    results = []
    for index, payload in chunk:
        tr = _run_one(fn, index, payload, collect)
        if tr.telemetry is not None:
            tr.telemetry.extra["chunk_size"] = len(chunk)
            if queue_s is not None:
                tr.telemetry.extra["chunk_queue_s"] = queue_s
        results.append(tr)
    return results


class Executor(ABC):
    """The execution contract: ordered results, captured failures."""

    #: Human-readable backend name (CLI/report labels).
    kind: str = "abstract"
    #: Degree of parallelism (1 for the serial backend).
    jobs: int = 1
    #: Whether callers may replace the per-payload worker stage with an
    #: in-process batch-of-cells pass (the structure-of-arrays grouped
    #: evaluator).  Only sound for in-process execution: pool backends
    #: ship payloads to workers one chunk at a time, so grouping there
    #: would serialise the batch through the parent instead.
    supports_cell_grouping: bool = False

    @abstractmethod
    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        chunk_plan: Optional[Sequence[Sequence[int]]] = None,
    ) -> list[TaskResult]:
        """Evaluate ``fn`` over ``payloads``; results in payload order.

        ``progress`` (optional) is called as ``progress(done, total)``
        whenever the completed-task count advances.  ``chunk_plan``
        (optional, pool backends) prescribes the submission chunks as
        payload-index lists -- the cost-aware scheduler's hook (see
        :func:`repro.runtime.cost.plan_chunks`).  Every index must
        appear exactly once; results stay in payload order regardless.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """The in-process reference backend.

    A ``chunk_plan`` is validated but otherwise ignored: serial
    execution has no dispatch skew to schedule around, and running in
    payload order keeps the reference semantics trivially ordered.
    """

    kind = "serial"
    supports_cell_grouping = True

    def map_tasks(self, fn, payloads, *, progress=None, chunk_plan=None):
        if chunk_plan is not None:
            _check_plan(chunk_plan, len(payloads))
        results = []
        for i, payload in enumerate(payloads):
            results.append(_run_one(fn, i, payload))
            if progress is not None:
                progress(i + 1, len(payloads))
        return results


class _PoolExecutor(Executor):
    """Shared chunked-submission driver for the futures-based backends."""

    def __init__(self, jobs: int = 2, chunksize: Optional[int] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs
        self.chunksize = chunksize

    def _make_pool(self) -> _FuturesExecutor:  # pragma: no cover - abstract
        raise NotImplementedError

    def map_tasks(self, fn, payloads, *, progress=None, chunk_plan=None):
        n = len(payloads)
        if n == 0:
            return []
        if chunk_plan is not None:
            _check_plan(chunk_plan, n)
            chunks = [
                [(int(i), payloads[int(i)]) for i in chunk]
                for chunk in chunk_plan
                if len(chunk)
            ]
        else:
            size = self.chunksize or auto_chunksize(n, self.jobs)
            chunks = [
                [(i, payloads[i]) for i in range(lo, min(lo + size, n))]
                for lo in range(0, n, size)
            ]
        results: dict[int, TaskResult] = {}
        done = 0
        collect = telemetry_enabled()
        with self._make_pool() as pool:
            pending = {
                pool.submit(
                    _run_chunk, fn, chunk, time.perf_counter(), collect
                ): chunk
                for chunk in chunks
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    chunk = pending.pop(fut)
                    try:
                        chunk_results = fut.result()
                    except Exception:
                        # Hard worker death (BrokenProcessPool, pickling
                        # failure): fail this chunk's cells, keep going.
                        err = traceback.format_exc(limit=10)
                        chunk_results = [
                            TaskResult(index=i, error=err) for i, _ in chunk
                        ]
                    for tr in chunk_results:
                        results[tr.index] = tr
                    done += len(chunk)
                    if progress is not None:
                        progress(done, n)
        return [results[i] for i in range(n)]


class ThreadExecutor(_PoolExecutor):
    """GIL-sharing pool; cheap dispatch, no pickling."""

    kind = "thread"

    def _make_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.jobs)


class ProcessExecutor(_PoolExecutor):
    """Multiprocessing pool; the scale backend for CPU-bound cells."""

    kind = "process"

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=self.jobs)


def make_executor(
    kind: Optional[str] = None,
    jobs: int = 1,
    *,
    chunksize: Optional[int] = None,
) -> Executor:
    """Build an executor from CLI-ish knobs.

    ``kind=None`` picks ``serial`` for ``jobs == 1`` and ``process``
    otherwise (the right default for CPU-bound cells).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if kind is None:
        kind = "serial" if jobs == 1 else "process"
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"executor kind must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    if kind == "serial":
        return SerialExecutor()
    cls = ThreadExecutor if kind == "thread" else ProcessExecutor
    return cls(jobs=jobs, chunksize=chunksize)
