"""The repro-experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


def test_theory_runs(capsys):
    assert main(["theory"]) == 0
    out = capsys.readouterr().out
    assert "Rate thresholds" in out
    assert "0.73" in out and "0.79" in out


def test_fig4_quick(capsys):
    assert main(["fig4a", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4(a)" in out
    assert "crossover" in out


def test_table_quick(capsys):
    assert main(["table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "Capacity-aware DSCT" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig9z"])


def test_experiment_registry_complete():
    for name in ("fig4a", "fig6c", "table1", "theory", "validate", "all"):
        assert name in EXPERIMENTS


def test_validate_quick(capsys):
    assert main(["validate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Measured vs analytic" in out
    assert "unsound cells: 0" in out


class TestScenariosSubcommand:
    def test_list_shows_corpus(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "Registered scenarios" in out
        assert "sync-burst-video" in out
        assert "heavy-band-k3-n2" in out

    def test_list_tag_filter(self, capsys):
        assert main(["scenarios", "list", "--tag", "heavy-band"]) == 0
        out = capsys.readouterr().out
        assert "heavy-band-k2-n2" in out
        assert "sync-burst-video" not in out

    def test_run_small_matrix_reports_soundness(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "6", "--seed", "3", "--no-corpus"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenarios evaluated: 6" in out
        assert "soundness violations: 0" in out
        assert "scenarios/s" in out

    def test_run_verbose_prints_cells(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "3", "--seed", "3",
             "--no-corpus", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "Scenario matrix cross-validation" in out
        assert "gen-3-0000" in out

    def test_bad_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "frobnicate"])


class TestScenariosRuntime:
    """The parallel-runtime flags: --jobs/--store/--resume/--campaign/diff."""

    pytestmark = pytest.mark.runtime

    def test_run_parallel_jobs(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "8", "--seed", "3",
             "--no-corpus", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenarios evaluated: 8" in out
        assert "soundness violations: 0" in out

    def test_store_and_resume_evaluate_zero_new_cells(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        argv = ["scenarios", "run", "--count", "6", "--seed", "3",
                "--no-corpus", "--store", store]
        assert main(argv) == 0
        assert "scenarios evaluated: 6" in capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "cells skipped (already in store): 6" in out
        assert "scenarios evaluated: 0" in out

    def test_campaign_config_file(self, capsys, tmp_path):
        config = tmp_path / "c.json"
        config.write_text('{"count": 5, "seed": 9, "max_k": 7, "max_hops": 4}')
        assert main(
            ["scenarios", "run", "--campaign", str(config), "--jobs", "2"]
        ) == 0
        assert "scenarios evaluated: 5" in capsys.readouterr().out

    def test_diff_clean_campaigns(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        argv = ["scenarios", "run", "--count", "4", "--seed", "5",
                "--no-corpus", "--store", store]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["scenarios", "diff", store, store]) == 0
        out = capsys.readouterr().out
        assert "soundness regressions: 0" in out

    def test_diff_flags_regression(self, capsys, tmp_path):
        from repro.runtime import ResultStore

        old, new = tmp_path / "old", tmp_path / "new"
        ResultStore(old).append({"key": "aa", "sound": True})
        ResultStore(new).append({"key": "aa", "sound": False})
        assert main(["scenarios", "diff", str(old), str(new)]) == 1
        assert "REGRESSION aa" in capsys.readouterr().out

    def test_resume_without_store_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2", "--resume"])

    def test_budget_flag_flags_slow_cells(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "3", "--seed", "3",
             "--no-corpus", "--budget", "1e-9"]
        ) == 1
        out = capsys.readouterr().out
        assert "perf-budget violations: 3" in out

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2", "--jobs", "0"])
