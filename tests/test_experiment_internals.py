"""Experiment-harness internals: configs, scheme parsing, sweeps."""

import pytest

from repro.experiments.config import (
    PAPER_UTILIZATIONS,
    Fig4Config,
    Fig6Config,
    TableConfig,
)
from repro.experiments.multigroup import _parse_scheme


class TestPaperSweep:
    def test_thirteen_points(self):
        assert len(PAPER_UTILIZATIONS) == 13
        assert PAPER_UTILIZATIONS[0] == pytest.approx(0.35)
        assert PAPER_UTILIZATIONS[-1] == pytest.approx(0.95)

    def test_step_is_005(self):
        steps = {
            round(b - a, 10)
            for a, b in zip(PAPER_UTILIZATIONS, PAPER_UTILIZATIONS[1:])
        }
        assert steps == {0.05}


class TestConfigs:
    def test_fig4_defaults_are_paper_scale(self):
        c = Fig4Config()
        assert c.utilizations == PAPER_UTILIZATIONS
        assert c.discipline == "adversarial"
        assert c.shared_streams is True

    def test_fig4_quick_is_smaller(self):
        q = Fig4Config.quick()
        assert len(q.utilizations) < len(PAPER_UTILIZATIONS)
        assert q.horizon < Fig4Config().horizon

    def test_fig6_defaults(self):
        c = Fig6Config()
        assert c.n_hosts == 665
        assert len(c.schemes) == 6
        assert c.cluster_k == 3

    def test_fig6_quick_shrinks_population(self):
        assert Fig6Config.quick().n_hosts < Fig6Config().n_hosts

    def test_table_defaults(self):
        c = TableConfig()
        assert c.n_hosts == 665
        assert c.n_groups == 3

    def test_configs_are_frozen(self):
        with pytest.raises(AttributeError):
            Fig4Config().horizon = 1.0


class TestSchemeParsing:
    @pytest.mark.parametrize(
        "scheme,expected",
        [
            ("dsct+sigma-rho", ("dsct", "sigma-rho")),
            ("nice+sigma-rho-lambda", ("nice", "sigma-rho-lambda")),
            ("capacity-aware-dsct", ("capacity-aware-dsct", "none")),
            ("capacity-aware-nice", ("capacity-aware-nice", "none")),
        ],
    )
    def test_valid_schemes(self, scheme, expected):
        assert _parse_scheme(scheme) == expected

    @pytest.mark.parametrize(
        "scheme", ["dsct", "dsct+leaky-bucket", "chord+sigma-rho", ""]
    )
    def test_invalid_schemes_rejected(self, scheme):
        with pytest.raises(ValueError):
            _parse_scheme(scheme)
