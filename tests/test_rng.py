"""Seeded RNG plumbing: reproducibility and independence."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_from_int_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_from_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(9)
        a = ensure_rng(seq)
        assert isinstance(a, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_children_are_stable_per_index(self):
        a = spawn_rngs(7, 5)
        b = spawn_rngs(7, 5)
        for x, y in zip(a, b):
            assert np.array_equal(x.random(3), y.random(3))

    def test_children_differ_from_each_other(self):
        children = spawn_rngs(7, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_count_zero(self):
        assert spawn_rngs(7, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_sensitive_to_tokens(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_range(self):
        s = derive_seed(123, "x")
        assert 0 <= s < 2**63
