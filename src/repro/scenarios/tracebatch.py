"""Batched cross-cell trace synthesis for the grouped cell matrix.

PR 6's structure-of-arrays evaluator removed per-cell kernel dispatch;
what remained of the campaign hot path was the per-cell, per-flow
Python of *realisation*: seed derivation, one ``TrafficSource.generate``
call per lane, one empirical-sigma measurement per unique trace, and
envelope/fragmentation object churn.  This module realises an entire
candidate batch in flat passes instead:

* **Lane planning** replicates :func:`cellmatrix._lean_realise`'s exact
  cache and seed semantics (the ``(kinds, utilization, capacity)``
  source cache, the per-cell shared-trace cache keyed
  ``(kind, round(rate, 12))``, the
  ``derive_seed(rng, "trace", name, ...)`` stream per generated lane)
  while splitting the lanes by source kind.
* **Deterministic kinds** (cbr, the audio frame grid) ride shared
  arrays: one ``arange`` per unique ``(phase, interval, horizon)``
  serves every lane, and cbr lanes sharing ``(grid, packet_size)``
  share one :class:`~repro.simulation.flow.PacketTrace` object outright
  -- downstream ``id()``-keyed memoisation (fragmentation, sigma) then
  dedupes across *cells*, not just flows.
* **Stochastic kinds** (poisson, onoff, audio sizes, video) keep their
  per-lane RNG draws bit-identical -- each lane still consumes its own
  ``derive_seed`` stream -- with the surrounding object churn hoisted
  out of the loop (audio draws sizes straight onto the shared grid).
* **Batched measurement**: empirical sigmas are computed over packed
  padded matrices by :func:`batch_empirical_sigma`, the batch extension
  of :func:`_empirical_sigma_fast`, deduped by ``(trace, rho)`` across
  the whole batch.

The tail of every cell (backend fallback, fragmentation, topology
resolution) still goes through :func:`repro.scenarios.runner._realise_from`
-- one source of truth -- and any cell whose batched realisation raises
is handed back to the caller (``None``) for the per-cell path, which
reproduces the error exactly.  Equivalence contract: like the group
kernels, batched realisation is throughput-only -- every trace,
envelope and ``_Realised`` field matches the per-cell path bit for bit
(``tests/test_tracebatch.py`` enforces it over generated scenarios).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.scenarios.runner import _Realised, _realise_from
from repro.scenarios.spec import Scenario
from repro.simulation.flow import AudioSource, CBRSource, trace_from_arrays
from repro.utils.rng import derive_seed

__all__ = [
    "batch_empirical_sigma",
    "realise_batch",
]

#: Ceiling on one packed sigma sub-batch, in float64 elements per
#: matrix (lanes x padded trace length).  Mirrors the fluid pack cap:
#: splitting is invisible to results (each row's prefix is independent
#: of the batch it rides in), it only bounds peak memory.
MAX_SIGMA_PACK_ELEMENTS = 2_000_000

#: Ceiling on padding waste within one sigma pack: a lane more than
#: this factor longer than the pack's shortest starts a new pack
#: (lanes are sorted by length first, so waste per pack is bounded).
MAX_SIGMA_PACK_RATIO = 1.5


# ----------------------------------------------------------------------
# Empirical sigma: scalar kernel + batch extension
# ----------------------------------------------------------------------
def _empirical_sigma_fast(
    times: np.ndarray, sizes: np.ndarray, rho: float
) -> float:
    """``PacketTrace.empirical_sigma`` without building the curve.

    Restates ``PiecewiseLinearCurve.from_packet_arrivals(t, s)
    .min_sigma(rho)`` on flat arrays.  Bit-identical: the staircase
    interleaves a pre-jump and post-jump value at every unique time;
    ``g_post[i] >= g_pre[i]`` and ``g_pre[i+1] <= g_post[i]`` make the
    interleaved running minimum equal the running minimum over the
    pre-jump values alone, and the supremum is attained at post-jump
    positions -- float min/max select existing values, so dropping the
    dominated positions changes no bits.
    """
    if times.shape[0] == 0:
        return 0.0
    uniq_t, inverse = np.unique(times, return_inverse=True)
    jump = np.zeros(uniq_t.shape[0], dtype=np.float64)
    np.add.at(jump, inverse, sizes)
    cum = np.cumsum(jump)
    ramp = rho * uniq_t
    g_pre = np.concatenate(([0.0], cum[:-1])) - ramp
    g_post = cum - ramp
    run_min = np.minimum.accumulate(g_pre)
    return float(max((g_post - run_min).max(), 0.0))


def _sigma_packs(order: list[int], lengths: list[int]) -> list[list[int]]:
    """Split sorted lane indices into packs bounded by the element cap."""
    packs: list[list[int]] = []
    cur: list[int] = []
    for i in order:
        width = lengths[i]  # sorted ascending: this is the pack max
        if cur and (
            (len(cur) + 1) * width > MAX_SIGMA_PACK_ELEMENTS
            or width > MAX_SIGMA_PACK_RATIO * lengths[cur[0]]
        ):
            packs.append(cur)
            cur = []
        cur.append(i)
    if cur:
        packs.append(cur)
    return packs


def batch_empirical_sigma(
    lanes: Sequence[tuple[np.ndarray, np.ndarray, float]]
) -> np.ndarray:
    """:func:`_empirical_sigma_fast` over many lanes in padded matrices.

    ``lanes`` is a sequence of ``(times, sizes, rho)``.  Lanes with
    strictly increasing times -- every generator grid, and (almost
    surely) every stochastic trace -- take the matrix path: for them
    ``np.unique`` is the identity and the jump accumulation reduces to
    the sizes themselves, so the row-wise ``cumsum`` / running-minimum
    / masked row-max replays the scalar kernel's float sequence exactly
    (time rows pad with the last time, size rows pad with ``0.0`` --
    ``x + 0.0`` preserves every bit -- and padded columns are masked to
    ``-inf`` before the max, which is exact selection).  Empty or
    duplicate-timestamp lanes route through the scalar kernel; either
    way ``out[i]`` equals ``_empirical_sigma_fast(*lanes[i])`` bit for
    bit.
    """
    n = len(lanes)
    out = np.empty(n, dtype=np.float64)
    batchable: list[int] = []
    lengths = [0] * n
    for i, (t, s, rho) in enumerate(lanes):
        lengths[i] = int(t.shape[0])
        if t.shape[0] >= 1 and (
            t.shape[0] == 1 or bool(np.all(np.diff(t) > 0))
        ):
            batchable.append(i)
        else:
            out[i] = _empirical_sigma_fast(t, s, rho)
    batchable.sort(key=lambda i: lengths[i])
    for pack in _sigma_packs(batchable, lengths):
        if len(pack) == 1:
            i = pack[0]
            out[i] = _empirical_sigma_fast(*lanes[i])
            continue
        rows = len(pack)
        width = lengths[pack[-1]]
        t_mat = np.empty((rows, width), dtype=np.float64)
        s_mat = np.zeros((rows, width), dtype=np.float64)
        rhos = np.empty((rows, 1), dtype=np.float64)
        valid = np.empty(rows, dtype=np.int64)
        for r, i in enumerate(pack):
            t, s, rho = lanes[i]
            m = lengths[i]
            t_mat[r, :m] = t
            t_mat[r, m:] = t[m - 1]
            s_mat[r, :m] = s
            rhos[r, 0] = rho
            valid[r] = m
        cum = np.cumsum(s_mat, axis=1)
        ramp = rhos * t_mat
        g_pre = np.empty_like(cum)
        g_pre[:, :1] = 0.0
        g_pre[:, 1:] = cum[:, :-1]
        g_pre -= ramp
        g_post = cum - ramp
        diff = g_post - np.minimum.accumulate(g_pre, axis=1)
        diff[np.arange(width) >= valid[:, None]] = -np.inf
        out[pack] = np.maximum(diff.max(axis=1), 0.0)
    return out


# ----------------------------------------------------------------------
# Batched realisation
# ----------------------------------------------------------------------
class _CellPlan:
    """One cell's lane plan (trace slots + pending generation jobs)."""

    __slots__ = ("scenario", "sources", "slots", "traces")

    def __init__(self, scenario, sources, slots):
        self.scenario = scenario
        self.sources = sources
        #: Flow index -> index of the flow whose trace it reuses
        #: (the per-cell shared-trace cache, resolved to slots).
        self.slots = slots
        #: Generated traces, indexed by owning flow.
        self.traces: dict[int, object] = {}


def realise_batch(
    scenarios: Sequence[Scenario],
    fragment_cache: dict,
    source_cache: dict,
) -> tuple[list[Optional[_Realised]], dict]:
    """Realise a batch of cells in flat passes; ``None`` marks fallback.

    Returns ``(realised, info)`` with one ``_Realised`` (or ``None``)
    per scenario in input order and an ``info`` mapping carrying the
    source-cache hit/miss tally plus lane counters for the grouping
    telemetry.  A cell whose planning, generation or tail raises is
    returned as ``None`` so the caller's per-cell path can reproduce
    the exact error; one bad cell never fails its batch-mates.
    """
    n = len(scenarios)
    results: list[Optional[_Realised]] = [None] * n
    plans: list[Optional[_CellPlan]] = [None] * n
    by_kind: dict[str, list[tuple[int, int, object, int, float]]] = {}
    info = {
        "source_cache_hits": 0,
        "source_cache_misses": 0,
        "lanes_generated": 0,
        "sigma_lanes": 0,
    }

    # -- pass 1: plan lanes (exact _lean_realise cache/seed semantics) --
    for ci, sc in enumerate(scenarios):
        try:
            skey = (tuple(sc.kinds), sc.utilization, sc.capacity)
            sources = source_cache.get(skey)
            if sources is None:
                sources = sc.mix().sources
                source_cache[skey] = sources
                info["source_cache_misses"] += 1
            else:
                info["source_cache_hits"] += 1
            rng = None
            cache: dict[tuple[str, float], int] = {}
            slots: list[int] = []
            for g, (src, kind) in enumerate(zip(sources, sc.kinds)):
                key = (kind, round(src.rate, 12))
                if sc.shared and key in cache:
                    slots.append(cache[key])
                    continue
                if type(src) is CBRSource:
                    # cbr generation never consumes its seed, and
                    # derive_seed is stateless (pure FNV over the int
                    # chain), so skipping the derivation is invisible
                    # to every other lane's stream.
                    seed = 0
                else:
                    if rng is None:
                        rng = derive_seed(sc.seed, "scenario", sc.name)
                    seed = derive_seed(
                        rng, "trace", sc.name, kind if sc.shared else g
                    )
                cache[key] = g
                slots.append(g)
                by_kind.setdefault(kind, []).append(
                    (ci, g, src, seed, sc.horizon)
                )
                info["lanes_generated"] += 1
            plans[ci] = _CellPlan(sc, sources, slots)
        except Exception:
            plans[ci] = None

    # -- pass 2: generate, kind by kind ---------------------------------
    # Shared deterministic grids: one arange per unique (spec, horizon);
    # cbr lanes sharing (grid, packet_size) share the whole trace object
    # so id()-keyed memoisation downstream dedupes across cells.
    grid_cache: dict[tuple, np.ndarray] = {}
    cbr_trace_cache: dict[tuple, object] = {}
    for kind, jobs in by_kind.items():
        for ci, g, src, seed, horizon in jobs:
            plan = plans[ci]
            if plan is None:
                continue
            try:
                if type(src) is CBRSource:
                    gkey = ("cbr", src.phase, src.packet_size / src.rate,
                            horizon)
                    times = grid_cache.get(gkey)
                    if times is None:
                        times = src.time_grid(horizon)
                        grid_cache[gkey] = times
                    tkey = (id(times), src.packet_size)
                    trace = cbr_trace_cache.get(tkey)
                    if trace is None:
                        trace = src.trace_on_grid(times)
                        cbr_trace_cache[tkey] = trace
                elif type(src) is AudioSource:
                    gkey = ("audio", src.frame_interval, horizon)
                    times = grid_cache.get(gkey)
                    if times is None:
                        times = src.time_grid(horizon)
                        grid_cache[gkey] = times
                    trace = src.trace_on_grid(times, seed)
                else:
                    trace = src.generate(horizon, rng=seed)
                plan.traces[g] = trace
            except Exception:
                plans[ci] = None

    # -- pass 3: offsets, batched sigma, per-cell tail ------------------
    sigma_lane_of: dict[tuple, int] = {}
    sigma_pins: list[object] = []  # keep id()-keyed traces alive
    sigma_lanes: list[tuple[np.ndarray, np.ndarray, float]] = []
    cell_lane_refs: list[Optional[tuple[list, list]]] = [None] * n
    for ci, plan in enumerate(plans):
        if plan is None:
            continue
        sc = plan.scenario
        try:
            traces = [plan.traces[slot] for slot in plan.slots]
            if sc.start_offsets:
                traces = [
                    trace_from_arrays(tr.times + off, tr.sizes)
                    if off > 0
                    else tr
                    for tr, off in zip(traces, sc.start_offsets)
                ]
            flow_lane: list[int] = []
            for tr, src in zip(traces, plan.sources):
                ek = (id(tr), src.rate)
                lane = sigma_lane_of.get(ek)
                if lane is None:
                    lane = len(sigma_lanes)
                    sigma_lane_of[ek] = lane
                    sigma_pins.append(tr)
                    sigma_lanes.append((tr.times, tr.sizes, src.rate))
                flow_lane.append(lane)
            cell_lane_refs[ci] = (traces, flow_lane)
        except Exception:
            plans[ci] = None

    info["sigma_lanes"] = len(sigma_lanes)
    sigmas = (
        batch_empirical_sigma(sigma_lanes)
        if sigma_lanes
        else np.empty(0, dtype=np.float64)
    )
    env_of_lane: dict[tuple[int, float], ArrivalEnvelope] = {}

    for ci, plan in enumerate(plans):
        if plan is None or cell_lane_refs[ci] is None:
            continue
        sc = plan.scenario
        traces, flow_lane = cell_lane_refs[ci]
        try:
            envelopes = []
            for lane, src in zip(flow_lane, plan.sources):
                env = env_of_lane.get((lane, src.rate))
                if env is None:
                    env = ArrivalEnvelope(
                        max(float(sigmas[lane]), 1e-9), src.rate
                    )
                    env_of_lane[(lane, src.rate)] = env
                envelopes.append(env)
            results[ci] = _realise_from(sc, traces, envelopes, fragment_cache)
        except Exception:
            results[ci] = None
    return results, info
