"""Discrete-event engine: ordering, determinism, cancellation."""

import pytest

from repro.simulation.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(2.0, log.append, "b")
    sim.schedule(1.0, log.append, "a")
    sim.schedule(3.0, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == pytest.approx(3.0)


def test_ties_break_by_priority_then_fifo():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, "third", priority=1)
    sim.schedule(1.0, log.append, "first", priority=0)
    sim.schedule(1.0, log.append, "fourth", priority=1)
    sim.schedule(1.0, log.append, "second", priority=0)
    sim.run()
    assert log == ["first", "second", "third", "fourth"]


def test_run_until_leaves_future_events():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, "a")
    sim.schedule(5.0, log.append, "b")
    sim.run(until=2.0)
    assert log == ["a"]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert log == ["a", "b"]


def test_schedule_in_is_relative():
    sim = Simulator()
    out = []
    sim.schedule(1.0, lambda: sim.schedule_in(0.5, lambda: out.append(sim.now)))
    sim.run()
    assert out == [pytest.approx(1.5)]


def test_scheduling_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError, match="past"):
        sim.schedule(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_in(-1.0, lambda: None)


def test_cancellation():
    sim = Simulator()
    log = []
    ev = sim.schedule(1.0, log.append, "cancelled")
    sim.schedule(2.0, log.append, "kept")
    ev.cancel()
    sim.run()
    assert log == ["kept"]


def test_cascading_events():
    """Components schedule from within callbacks (the usual pattern)."""
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 5:
            sim.schedule_in(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    assert ticks == [pytest.approx(i) for i in range(5)]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule_in(1e-9, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=1000)


def test_peek_time_and_pending():
    sim = Simulator()
    assert sim.peek_time() == float("inf")
    ev = sim.schedule(3.0, lambda: None)
    assert sim.peek_time() == pytest.approx(3.0)
    assert sim.pending == 1
    ev.cancel()
    assert sim.peek_time() == float("inf")
    assert sim.pending == 0


def test_determinism_across_runs():
    def run_once():
        sim = Simulator()
        log = []
        for i in range(50):
            sim.schedule((i * 37 % 10) / 10.0, log.append, i)
        sim.run()
        return log

    assert run_once() == run_once()
