"""Seeded random-number-generator plumbing.

Every stochastic component in the library (VBR sources, topology
generators, cluster-size draws in DSCT/NICE) accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalises all three into a ``Generator`` so results are reproducible
when a seed is supplied and callers never have to care which form they
were handed.

:func:`spawn_rngs` derives independent child generators for parallel
sweeps (one child per sweep point) so that changing the number of sweep
points does not perturb the stream used by any individual point.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: The union of things we accept wherever randomness is needed.
RandomSource = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(source: RandomSource = None) -> np.random.Generator:
    """Normalise ``source`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an ``int`` or
    :class:`numpy.random.SeedSequence` seeds a new generator; an existing
    generator is returned unchanged.
    """
    if isinstance(source, np.random.Generator):
        return source
    if source is None:
        return np.random.default_rng()
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    raise TypeError(
        "random source must be None, an int seed, a SeedSequence, or a "
        f"numpy Generator, got {type(source).__name__}"
    )


def spawn_rngs(source: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The children are stable functions of ``source`` and their index, so
    sweep point *i* sees the same stream regardless of how many other
    points run.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(source, np.random.SeedSequence):
        seq = source
    elif isinstance(source, (int, np.integer)):
        seq = np.random.SeedSequence(int(source))
    elif source is None:
        seq = np.random.SeedSequence()
    elif isinstance(source, np.random.Generator):
        # Derive children deterministically from the generator's stream.
        seq = np.random.SeedSequence(source.integers(0, 2**63 - 1))
    else:
        raise TypeError(
            "random source must be None, an int seed, a SeedSequence, or a "
            f"numpy Generator, got {type(source).__name__}"
        )
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(source: RandomSource, *tokens: object) -> int:
    """Derive a stable 63-bit seed from ``source`` and context tokens.

    Used to give independently seeded streams to named subsystems, e.g.
    ``derive_seed(seed, "dsct", group_index)``.
    """
    base = 0 if source is None else _source_entropy(source)
    h = np.uint64(1469598103934665603)  # FNV-1a offset basis
    for token in (base, *tokens):
        for byte in repr(token).encode():
            h = np.uint64((int(h) ^ byte) * 1099511628211 % 2**64)
    return int(h % np.uint64(2**63 - 1))


def _source_entropy(source: RandomSource) -> int:
    if isinstance(source, (int, np.integer)):
        return int(source)
    if isinstance(source, np.random.SeedSequence):
        return int(np.asarray(source.entropy).flat[0])
    if isinstance(source, np.random.Generator):
        return int(source.integers(0, 2**63 - 1))
    raise TypeError(f"cannot derive entropy from {type(source).__name__}")
