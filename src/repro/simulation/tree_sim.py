"""Whole-tree multicast simulation (packet replication at every host).

The figure harness reduces each group tree to its critical path
(Theorem 7's worst-case construction).  This module simulates the
*entire* tree instead: every member host runs the full regulated
pipeline (per-flow regulators + MUX) and replicates each forwarded
packet to all of its children over the underlay latencies.  It is the
ground truth the critical-path reduction is validated against in
``tests/test_tree_sim.py`` -- and a realistic substrate in its own
right (per-receiver delays, loss hooks, churn interplay).

Cost: the legacy engine pays events scaling with
(members x packets x K).  The batched engine under the adversarial
discipline is *busy-period bound* instead: the K-1 cross flows at
every member are known up front, so their regulator departures fold
into each host's MUX as a zero-event background train
(:meth:`repro.simulation.batched.BatchMuxServer.prime_background`),
and replication commits **one fanout event per MUX busy period per
child** -- the released busy period travels as one packet batch --
instead of one event per packet per child.  The tagged flow's root
pipeline is closed form too (:func:`_primed_root_release`): its
regulator departures and the root MUX's busy periods are computed as
one array pass, and the root replicator sees exactly one
``receive_batch`` event per busy period -- the whole primed tree is
busy-period bound, with no per-packet event surface left anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.overlay.tree import MulticastTree
from repro.simulation.batched import (
    _adversarial_mux_deliveries,
    sigma_rho_departures,
    vacation_departures,
)
from repro.simulation.engine import Simulator
from repro.simulation.flow import PacketTrace
from repro.simulation.host_sim import (
    MODES,
    build_regulated_host,
    inject_trace,
    resolve_mode,
)
from repro.simulation.measures import DelayStats
from repro.simulation.packet import Packet

__all__ = ["TreeSimResult", "simulate_multicast_tree"]


@dataclass(frozen=True)
class TreeSimResult:
    """Outcome of a whole-tree multicast simulation for one group."""

    group: int
    mode: str
    worst_case_delay: float
    worst_receiver: int
    per_receiver_worst: dict[int, float]
    events: int
    #: Whether cross traffic was folded closed-form into every member's
    #: MUX and replication ran busy-period batched (batched engine +
    #: adversarial discipline).
    primed: bool = False

    def stats(self) -> DelayStats:
        return DelayStats.from_delays(
            np.asarray(list(self.per_receiver_worst.values()))
        )


class _Replicator:
    """Fan a served packet out to every child entry (plus local delivery).

    Two paths: the per-packet :meth:`receive` (legacy engine, FIFO
    deliveries) copies each packet per child with its ``hops`` counter
    bumped; the busy-period :meth:`receive_batch` (adversarial batched
    MUX release) forwards the released batch as **one event per child,
    sharing the packet objects** -- nothing downstream mutates them and
    delays are measured against ``t_emit`` alone, so the copies (and
    their ``hops`` bookkeeping) are pure churn the fast path skips.
    """

    def __init__(
        self,
        sim: Simulator,
        host: int,
        flow_id: int,
        children_entries: Sequence[tuple[int, object, float]],
        deliver,
        deliver_batch,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.children_entries = children_entries  # (child, entry, latency)
        self.deliver = deliver
        self.deliver_batch = deliver_batch

    def receive(self, packet: Packet) -> None:
        # Local delivery at this host (it is a receiver too).
        self.deliver(self.host, self.flow_id, packet)
        for child, entry, latency in self.children_entries:
            copy = Packet(
                flow_id=packet.flow_id,
                size=packet.size,
                t_emit=packet.t_emit,
                hops=packet.hops + 1,
            )
            self.sim.schedule_in(latency, entry.receive, copy)

    def receive_batch(self, packets: Sequence[Packet]) -> None:
        """Deliver and replicate one released busy period: a single
        vectorised local update plus one fanout event per child."""
        self.deliver_batch(self.host, packets)
        sim = self.sim
        for child, entry, latency in self.children_entries:
            sim.schedule_in(latency, entry.receive_batch, packets)


def _primed_root_release(
    sim: Simulator,
    tagged: PacketTrace,
    cross: Sequence[PacketTrace],
    env_order: Sequence[ArrivalEnvelope],
    replicator: "_Replicator",
    *,
    mode: str,
    capacity: float,
    stagger_phase: float,
) -> None:
    """Schedule the root replicator's busy-period releases closed form.

    The root host is a fully-known adversarial host: the tagged flow's
    arrivals and all K-1 cross traces are available up front, so its
    whole pipeline -- tagged regulator, MUX busy periods, hold-and-
    release -- collapses into the same array pass
    :func:`repro.simulation.batched.primed_adversarial_host` runs for
    single-host cells.  The only thing the event loop still has to do
    is fan released batches out to the children, so this schedules
    exactly one ``receive_batch`` event per MUX busy period that
    contains tagged packets (``priority=-1``, the release check's slot
    in the evented event order) and nothing else: the last per-packet
    surface of the primed tree is gone.

    Bit-identity is by construction: the regulator kernels replay the
    evented components' float sequence, the background fold and the
    ``busy_until`` recurrence are the proven MUX arithmetic (cross
    flows in sorted flow order precede equal-time tagged arrivals,
    exactly the injection-order tie-break), and each release fires at
    the busy period's end with the packets the evented MUX would hold.
    """
    eff = resolve_mode(mode, env_order, capacity)
    if eff == "sigma-rho-lambda":
        plan = AdaptiveController(env_order, capacity).build_stagger_plan()
        base = (stagger_phase % 1.0) * plan.period

    def _departures(f: int, tr: PacketTrace) -> np.ndarray:
        if eff == "sigma-rho":
            e = env_order[f]
            deps, _ = sigma_rho_departures(
                tr.times, tr.sizes, e.sigma, e.rho / capacity
            )
        elif eff == "sigma-rho-lambda":
            deps, _ = vacation_departures(
                tr.times, tr.sizes, plan.regulators[f],
                offset=base + plan.offsets[f], out_rate=capacity,
            )
        else:  # none: arrivals feed the MUX directly
            deps = np.asarray(tr.times, dtype=np.float64)
        return np.asarray(deps, dtype=np.float64)

    # The cross background train, rebuilt with the builder's arithmetic
    # (sorted flow order, stable time sort): it must interleave with
    # the tagged departures exactly like the train primed into the
    # root's MUX.
    bg_t_parts = [_departures(f, tr) for f, tr in enumerate(cross, start=1)]
    bg_s_parts = [np.asarray(tr.sizes, dtype=np.float64) for tr in cross]
    bg_t = np.concatenate(bg_t_parts) if bg_t_parts else np.empty(0)
    bg_s = np.concatenate(bg_s_parts) if bg_s_parts else np.empty(0)
    bg_order = np.argsort(bg_t, kind="stable")
    bg_t = bg_t[bg_order]
    bg_s = bg_s[bg_order]

    tagged_deps = _departures(0, tagged)
    # Stable merge: background arrivals precede equal-time tagged ones
    # (background events carry earlier sequence numbers in the evented
    # order), tagged departures keep emission order.
    arr = np.concatenate([bg_t, tagged_deps])
    sizes = np.concatenate([bg_s, np.asarray(tagged.sizes, dtype=np.float64)])
    is_tagged = np.zeros(arr.size, dtype=bool)
    is_tagged[bg_t.size:] = True
    order = np.argsort(arr, kind="stable")
    arr = arr[order]
    tx = sizes[order] / capacity
    is_tagged = is_tagged[order]
    delivery, _ = _adversarial_mux_deliveries(arr, tx)

    t_del = delivery[is_tagged]
    if t_del.size == 0:
        return
    # Consecutive equal delivery instants = one busy period (ends are
    # strictly increasing across periods): one release batch each.
    starts = np.concatenate(([0], np.flatnonzero(np.diff(t_del) > 0) + 1))
    ends = np.concatenate((starts[1:], [t_del.size]))
    # The evented root counts one busy period per release check, i.e.
    # per tagged-containing period; background-only periods fold
    # uncounted there too.
    sim.busy_periods += int(starts.size)
    packets = [
        Packet(flow_id=0, size=float(s), t_emit=float(t))
        for t, s in zip(tagged.times, tagged.sizes)
    ]
    sim.schedule_batch(
        t_del[starts],
        replicator.receive_batch,
        ((packets[a:b],) for a, b in zip(starts, ends)),
        priority=-1,
    )


def simulate_multicast_tree(
    trees: Sequence[MulticastTree],
    group: int,
    traces: Sequence[PacketTrace],
    envelopes: Sequence[ArrivalEnvelope],
    latency: np.ndarray,
    *,
    mode: str = "sigma-rho",
    capacity: float = 1.0,
    discipline: str = "fifo",
    horizon: Optional[float] = None,
    host_capacity: Optional[Mapping[int, float]] = None,
    engine: str = "batched",
) -> TreeSimResult:
    """Simulate group ``group``'s flow over its full tree.

    Every member of the group's tree instantiates the regulated host
    pipeline for all K flows (it joined every group, per the paper's
    Simulation II population): the group's own flow arrives from its
    tree parent and is replicated to its children; the other K-1 flows
    enter locally as cross traffic (their own trees are independent).

    Parameters
    ----------
    trees:
        One tree per group (only ``trees[group]`` is walked; the others
        define which flows exist).
    group:
        Index of the simulated group (the tagged flow).
    traces, envelopes:
        Per-group packet traces and (sigma, rho) descriptions.
    latency:
        Host-to-host one-way underlay latency matrix.
    mode, capacity, discipline:
        Regulated-host pipeline configuration (see
        :func:`repro.simulation.host_sim.build_regulated_host`).
    host_capacity:
        Optional per-host MUX capacity override (capacity-aware runs).
    engine:
        ``"batched"`` (window-batched components, default) or
        ``"legacy"`` (per-packet event chain); see
        :func:`repro.simulation.host_sim.build_regulated_host`.

    Returns
    -------
    TreeSimResult
        Per-receiver worst-case delays of the tagged flow and the
        network-wide worst case (the WDB of the paper).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    tree = trees[group]
    k = len(traces)
    if len(envelopes) != k:
        raise ValueError("traces and envelopes must align")
    if horizon is None:
        horizon = max(float(tr.times[-1]) for tr in traces if len(tr)) + 1e-9
    # Busy-period fast path: cross traffic folds into each member's MUX
    # closed-form, replication batches per busy period.  Adversarial
    # delivery instants are tie-order invariant, which is what makes
    # the folding exact (see the batched-module docstring).
    primed = engine == "batched" and discipline == "adversarial"

    sim = Simulator()
    per_receiver: dict[int, float] = {}

    def deliver(host: int, flow_id: int, packet: Packet) -> None:
        if flow_id != group:
            return
        delay = sim.now - packet.t_emit
        if delay > per_receiver.get(host, 0.0):
            per_receiver[host] = delay

    def deliver_batch(host: int, packets: Sequence[Packet]) -> None:
        # One released busy period, all delivered now: the worst delay
        # of the batch is measured against its earliest emission.
        delay = sim.now - min(p.t_emit for p in packets)
        if delay > per_receiver.get(host, 0.0):
            per_receiver[host] = delay

    # Build hosts bottom-up so children entries exist before parents.
    entries_by_host: dict[int, list] = {}
    children = tree.children()
    order = sorted(tree.members(), key=tree.depth, reverse=True)
    # Flow order inside each host: tagged flow first (index 0) so the
    # adversarial priority, when used, targets it.
    env_order = [envelopes[group]] + [
        envelopes[g] for g in range(k) if g != group
    ]
    cross = [traces[g].restrict(horizon) for g in range(k) if g != group]
    primed_map = (
        {f: tr for f, tr in enumerate(cross, start=1)} if primed else None
    )
    root_replicator: Optional[_Replicator] = None
    for host in order:
        child_entries = [
            (c, entries_by_host[c][0], float(latency[host, c]))
            for c in children[host]
        ]
        replicator = _Replicator(
            sim, host, group, child_entries, deliver, deliver_batch
        )
        if host == tree.root:
            root_replicator = replicator
        sink_map: dict[int, object] = {0: replicator}
        for f in range(1, k):
            sink_map[f] = _Drop()
        cap = capacity
        if host_capacity is not None:
            cap = float(host_capacity.get(host, capacity))
        entries, _ = build_regulated_host(
            sim, env_order, sink_map,
            mode=mode, capacity=cap, discipline=discipline,
            stagger_phase=(hash(host) % 997) / 997.0,
            engine=engine,
            primed_traces=primed_map,
        )
        entries_by_host[host] = entries

    # Inject the K-1 cross flows at every member (each host serves all
    # K groups) -- unless they were primed closed-form above -- and
    # then the tagged flow at the root.  Cross flows go first so that
    # at equal-time ties cross arrivals precede tagged ones everywhere
    # (fanout events always carry later sequence numbers than
    # injections), which is exactly the order the background fold
    # realises: all three engines agree on every tie.
    tagged = traces[group].restrict(horizon)
    if primed:
        root_cap = capacity
        if host_capacity is not None:
            root_cap = float(host_capacity.get(tree.root, capacity))
        assert root_replicator is not None
        _primed_root_release(
            sim, tagged, cross, env_order, root_replicator,
            mode=mode, capacity=root_cap,
            stagger_phase=(hash(tree.root) % 997) / 997.0,
        )
    else:
        for host in tree.members():
            for f, tr in enumerate(cross, start=1):
                inject_trace(sim, tr, f, entries_by_host[host][f])
        inject_trace(sim, tagged, 0, entries_by_host[tree.root][0])

    sim.run()
    # Function-local import: keeps the simulation layer importable
    # without the runtime package at module-load time.
    from repro.runtime.telemetry import record_engine

    record_engine(sim)
    if not per_receiver:
        raise RuntimeError("no packet was delivered; empty trace?")
    worst_host = max(per_receiver, key=lambda h: per_receiver[h])
    return TreeSimResult(
        group=group,
        mode=mode,
        worst_case_delay=per_receiver[worst_host],
        worst_receiver=worst_host,
        per_receiver_worst=dict(per_receiver),
        events=sim.events_processed,
        primed=primed,
    )


class _Drop:
    """Terminal sink for cross traffic."""

    def receive(self, packet: Packet) -> None:  # noqa: D102 - trivial
        pass
