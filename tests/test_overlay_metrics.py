"""Scheme-comparison metrics + the Lemma-1 backlog invariant."""

import numpy as np
import pytest

from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.overlay.metrics import compare_schemes, measure_tree
from repro.simulation.fluid import fluid_vacation_regulator


class TestCompareSchemes:
    @pytest.fixture(scope="class")
    def metrics(self, small_mgn):
        return compare_schemes(small_mgn, aggregate_rate=0.8, rng=5)

    def test_every_scheme_and_group_measured(self, metrics, small_mgn):
        schemes = {m.scheme for m in metrics}
        assert len(schemes) == 4
        assert len(metrics) == 4 * small_mgn.n_groups

    def test_sizes_cover_population(self, metrics, small_mgn):
        assert all(m.size == small_mgn.network.n_hosts for m in metrics)

    def test_dsct_stretch_no_worse_than_nice(self, metrics):
        """Location awareness: DSCT's mean stretch <= NICE's (+ noise)."""
        dsct = np.mean([m.stretch for m in metrics if m.scheme == "dsct"])
        nice = np.mean([m.stretch for m in metrics if m.scheme == "nice"])
        assert dsct <= nice * 1.25

    def test_rows_render(self, metrics):
        row = metrics[0].as_row()
        assert len(row) == 9
        assert isinstance(row[0], str)

    def test_capacity_scheme_requires_rate(self, small_mgn):
        with pytest.raises(ValueError):
            compare_schemes(small_mgn, schemes=("capacity-aware-dsct",))


class TestMeasureTree:
    def test_star_metrics(self, small_mgn):
        from repro.overlay.tree import MulticastTree

        star = MulticastTree(root=0, parent={i: 0 for i in range(1, 6)})
        m = measure_tree(
            "star", 0, star, small_mgn.latency, small_mgn.network.host_router
        )
        assert m.height == 2
        assert m.max_fanout == 5
        assert m.mean_fanout_internal == pytest.approx(5.0)
        assert m.critical_path_hosts == 2


class TestLemma1BacklogInvariant:
    """Lemma 1's induction invariant, measured: the backlog of a
    (sigma, rho, lambda) regulator fed conformant traffic never exceeds
    (1 + lambda) sigma."""

    @pytest.mark.parametrize("rho", [0.15, 0.25, 0.4])
    def test_saturated_input_backlog_bounded(self, rho):
        sigma = 0.08
        reg = SigmaRhoLambdaRegulator(sigma, rho)
        dt = 1e-4
        horizon = 12 * reg.regulator_period
        n = int(horizon / dt)
        t = dt * np.arange(n + 1)
        # The extremal conformant input: full burst then sustained rho.
        arr = np.minimum(sigma + rho * t, sigma + rho * horizon)
        arr[0] = 0.0
        out = fluid_vacation_regulator(arr, t, reg)
        backlog = arr - out
        bound = (1.0 + reg.lam) * sigma
        assert float(backlog.max()) <= bound + rho * dt + 1e-9

    def test_invariant_tight_at_vacation_end(self):
        """The maximum backlog is attained at the end of a vacation
        (Lemma 1's proof: 'the largest backlog occurs at each end of a
        vacation')."""
        sigma, rho = 0.08, 0.25
        reg = SigmaRhoLambdaRegulator(sigma, rho)
        dt = 1e-4
        horizon = 8 * reg.regulator_period
        n = int(horizon / dt)
        t = dt * np.arange(n + 1)
        arr = sigma + rho * t
        arr[0] = 0.0
        out = fluid_vacation_regulator(arr, t, reg)
        backlog = arr - out
        t_peak = t[int(np.argmax(backlog))]
        # Vacations end at m * P (window starts); peaks align there.
        phase = t_peak % reg.regulator_period
        assert min(phase, reg.regulator_period - phase) <= 2 * dt + 1e-9
