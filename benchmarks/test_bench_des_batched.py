"""Batched-vs-legacy DES engine benchmarks (the PR-3 tentpole numbers).

The expensive scenario cells are DES-backed: vacation-regulator hosts
and whole-tree runs dominate campaign wall-clock (the ROADMAP's
10-100x observation).  These benchmarks measure exactly those cells on
both engines, assert the batched engine's speedup floors, and emit the
machine-readable ``BENCH_pr3.json`` trajectory point (events/sec,
cells/sec, campaign wall-clock, parallel speedup) at the repo root.

Timing uses best-of-N wall clocks around the same calls both engines
get; the floors leave generous headroom under the observed numbers so
CI noise does not flake (observed: ~15-30x on the vacation host,
~1.5-2x on whole trees).
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.calculus.envelope import ArrivalEnvelope
from repro.runtime import CellCostModel, ProcessExecutor
from repro.scenarios import generate_scenarios, run_batch
from repro.simulation.flow import VBRVideoSource
from repro.simulation.host_sim import simulate_regulated_host
from repro.simulation.tree_sim import simulate_multicast_tree

#: Asserted speedup floor for the vacation-regulator host cell.
VACATION_SPEEDUP_FLOOR = 5.0
#: Asserted speedup floor for the whole-tree cell (replication-bound:
#: per-packet child-fanout events are irreducible, so gains are
#: engine-overhead only; observed ~1.5x, floor kept low for CI noise).
TREE_SPEEDUP_FLOOR = 1.1


def _best_of(n: int, fn, *args, **kwargs):
    """(best wall seconds, last result) over ``n`` runs."""
    best = float("inf")
    result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def vacation_workload():
    rho = 0.3
    trace = VBRVideoSource(rho).generate(10.0, rng=1).fragment(0.002)
    envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * 3
    return [trace] * 3, envs


def test_vacation_host_batched_speedup(benchmark, bench_pr3, artifact_report,
                                       vacation_workload):
    """The dearest scenario family: staggered vacation regulators into
    the adversarial general MUX.  The batched engine collapses it into
    the primed window-kernel fast path."""
    traces, envs = vacation_workload
    kwargs = dict(mode="sigma-rho-lambda", discipline="adversarial")
    t_legacy, legacy = _best_of(
        3, simulate_regulated_host, traces, envs, engine="legacy", **kwargs
    )
    batched = run_once(
        benchmark, simulate_regulated_host, traces, envs,
        engine="batched", **kwargs,
    )
    t_batched, _ = _best_of(
        3, simulate_regulated_host, traces, envs, engine="batched", **kwargs
    )
    assert batched.worst_case_delay <= legacy.worst_case_delay + 1e-15
    packets = sum(len(tr) for tr in traces)
    speedup = t_legacy / t_batched
    legacy_events_per_sec = (legacy.events + legacy.cancelled_events) / t_legacy
    packets_per_sec = packets / t_batched
    bench_pr3["vacation_host"] = {
        "packets": packets,
        "legacy_seconds": round(t_legacy, 5),
        "batched_seconds": round(t_batched, 5),
        "speedup_x": round(speedup, 2),
        "legacy_events": legacy.events,
        "batched_events": batched.events,
        "legacy_events_per_sec": round(legacy_events_per_sec),
        "batched_packets_per_sec": round(packets_per_sec),
    }
    benchmark.extra_info.update(bench_pr3["vacation_host"])
    artifact_report.append(
        "== Batched DES: vacation-regulator host ==\n"
        f"packets: {packets}\n"
        f"legacy:  {t_legacy * 1e3:.1f} ms ({legacy.events} events, "
        f"{legacy_events_per_sec / 1e3:.0f}k ev/s)\n"
        f"batched: {t_batched * 1e3:.1f} ms ({batched.events} batch events, "
        f"{packets_per_sec / 1e3:.0f}k packets/s)\n"
        f"speedup: {speedup:.1f}x"
    )
    assert speedup >= VACATION_SPEEDUP_FLOOR, (
        f"vacation-host batched engine only {speedup:.2f}x over legacy"
    )


def test_tree_des_batched_speedup(bench_pr3, artifact_report):
    """Whole-tree DES: every member runs the full pipeline for all K
    flows; the batched MUX removes the per-packet finish events."""
    from repro.overlay.groups import MultiGroupNetwork
    from repro.topology.attach import attach_hosts
    from repro.topology.transit_stub import transit_stub_backbone

    g = transit_stub_backbone(3, 2, 3, rng=1)
    net = attach_hosts(g, 16, rng=2)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=3)
    tree = mgn.build_tree(0, "dsct", rng=4)
    traces = [
        VBRVideoSource(0.25).generate(1.5, rng=i).fragment(0.002)
        for i in range(3)
    ]
    envs = [
        ArrivalEnvelope(max(t.empirical_sigma(0.25), 1e-6), 0.25)
        for t in traces
    ]
    args = ([tree] * 3, 0, traces, envs, mgn.latency)
    kwargs = dict(mode="sigma-rho", discipline="adversarial")
    t_legacy, legacy = _best_of(
        3, simulate_multicast_tree, *args, engine="legacy", **kwargs
    )
    t_batched, batched = _best_of(
        3, simulate_multicast_tree, *args, engine="batched", **kwargs
    )
    for host, worst in batched.per_receiver_worst.items():
        assert worst <= legacy.per_receiver_worst[host] + 1e-15
    speedup = t_legacy / t_batched
    bench_pr3["tree_des"] = {
        "members": tree.size,
        "legacy_seconds": round(t_legacy, 5),
        "batched_seconds": round(t_batched, 5),
        "speedup_x": round(speedup, 2),
        "legacy_events_per_sec": round(legacy.events / t_legacy),
        "batched_events_per_sec": round(batched.events / t_batched),
    }
    artifact_report.append(
        "== Batched DES: whole-tree (16 members) ==\n"
        f"legacy:  {t_legacy * 1e3:.1f} ms ({legacy.events} events)\n"
        f"batched: {t_batched * 1e3:.1f} ms ({batched.events} events)\n"
        f"speedup: {speedup:.2f}x"
    )
    assert speedup >= TREE_SPEEDUP_FLOOR, (
        f"tree_des batched engine only {speedup:.2f}x over legacy"
    )


def _des_heavy_matrix(count: int):
    """A generated matrix forced onto the DES backend (host/chain)."""
    cells = []
    for sc in generate_scenarios(count * 2, seed=11, horizon=0.8):
        if sc.topology == "tree":
            continue
        cells.append(
            dataclasses.replace(sc, backend="des", mode="sigma-rho")
        )
        if len(cells) == count:
            break
    return cells


def test_des_campaign_cells_per_sec(bench_pr3, artifact_report):
    """DES-heavy campaign throughput plus cost-scheduled parallel speedup."""
    cells = _des_heavy_matrix(48)
    t0 = time.perf_counter()
    serial = run_batch(cells)
    serial_elapsed = time.perf_counter() - t0
    assert not serial.violations
    jobs = 4
    cores = os.cpu_count() or 1
    t0 = time.perf_counter()
    parallel = run_batch(
        cells,
        executor=ProcessExecutor(jobs=jobs),
        cost_model=CellCostModel(),
    )
    parallel_elapsed = time.perf_counter() - t0
    assert not parallel.violations
    assert [o.measured for o in parallel.outcomes] == [
        o.measured for o in serial.outcomes
    ]
    speedup = serial_elapsed / parallel_elapsed
    bench_pr3["des_campaign"] = {
        "cells": len(cells),
        "serial_seconds": round(serial_elapsed, 3),
        "serial_cells_per_sec": round(serial.scenarios_per_sec, 1),
        "parallel_jobs": jobs,
        "parallel_seconds": round(parallel_elapsed, 3),
        "parallel_cells_per_sec": round(parallel.scenarios_per_sec, 1),
        "parallel_speedup_x": round(speedup, 2),
        # Context next to the number it qualifies: a sub-1x speedup on
        # a box with fewer cores than jobs is expected, not a
        # regression, and the floor is only asserted on >= 4 cores.
        "cpu_count": cores,
        "floor_asserted": cores >= jobs,
    }
    artifact_report.append(
        "== DES-heavy campaign (48 cells, cost-scheduled) ==\n"
        f"serial:   {serial.scenarios_per_sec:.1f} cells/s "
        f"({serial_elapsed:.2f}s)\n"
        f"parallel: {parallel.scenarios_per_sec:.1f} cells/s "
        f"({parallel_elapsed:.2f}s, {jobs} jobs, {cores} cores)\n"
        f"speedup:  {speedup:.2f}x"
        + ("" if cores >= jobs else "  (floor not asserted: too few cores)")
    )
    if cores >= jobs:
        assert speedup >= 1.3, (
            f"cost-scheduled {jobs}-job campaign only {speedup:.2f}x"
        )


@pytest.mark.scenario
def test_thousand_cell_campaign_wall_clock(bench_pr3, artifact_report):
    """The full 1024-cell campaign wall-clock (opt-in: ``-m scenario``)."""
    from repro.runtime import CampaignConfig, build_campaign, run_campaign

    config = CampaignConfig.from_file(
        os.path.join(os.path.dirname(__file__), "..",
                     "examples", "campaign_thousand.json")
    )
    scenarios = build_campaign(config)
    jobs = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    campaign = run_campaign(
        scenarios, executor=ProcessExecutor(jobs=jobs), cost_model="auto"
    )
    elapsed = time.perf_counter() - t0
    assert campaign.clean
    bench_pr3["thousand_cell_campaign"] = {
        "cells": len(scenarios),
        "jobs": jobs,
        "wall_seconds": round(elapsed, 2),
        "cells_per_sec": round(len(scenarios) / elapsed, 1),
    }
    artifact_report.append(
        "== Thousand-cell campaign ==\n"
        f"{len(scenarios)} cells, {jobs} jobs: {elapsed:.1f}s "
        f"({len(scenarios) / elapsed:.1f} cells/s)"
    )
