"""Campaign telemetry: collection, persistence, and the report/trace lenses.

Telemetry is an observability side-channel with one hard contract: it
must never change a verdict.  The tests here pin that contract from
every direction -- serial/parallel/grouped runs stay bit-identical with
collection on and off, ``summary.json`` is byte-identical either way --
and then exercise the channel itself: worker-side records pickle across
the process executor, both store backends round-trip the telemetry
table/file, ``scenarios report`` renders every section, and ``--trace``
emits loadable Chrome trace-event JSON.
"""

import dataclasses
import json
import pickle

import pytest

from repro.experiments.cli import main
from repro.runtime import (
    CellTelemetry,
    JsonlResultStore,
    ProcessExecutor,
    ResultStore,
    SerialExecutor,
    SqliteResultStore,
    chrome_trace_events,
    set_telemetry_enabled,
    telemetry_enabled,
)
from repro.runtime import telemetry as tele
from repro.runtime.cost import CellCostModel
from repro.scenarios import generate_scenarios, run_batch
from repro.scenarios.runner import evaluate_cells_grouped

pytestmark = pytest.mark.runtime


@pytest.fixture
def telemetry_on():
    """Force collection on for a test, restoring the prior state."""
    was = telemetry_enabled()
    set_telemetry_enabled(True)
    yield
    set_telemetry_enabled(was)


@pytest.fixture
def telemetry_off():
    was = telemetry_enabled()
    set_telemetry_enabled(False)
    yield
    set_telemetry_enabled(was)


def _normalised(outcomes):
    """Outcomes with the only legitimately run-dependent compared field
    (wall_time) zeroed, so cross-run comparisons check verdict bits."""
    return [dataclasses.replace(o, wall_time=0.0) for o in outcomes]


# ----------------------------------------------------------------------
# The contract: telemetry never changes a verdict
# ----------------------------------------------------------------------
class TestVerdictInvariance:
    def test_serial_parallel_grouped_identical_on_and_off(self):
        scenarios = generate_scenarios(16, seed=11)
        runs = {}
        was = telemetry_enabled()
        try:
            for flag in (True, False):
                set_telemetry_enabled(flag)
                runs[flag, "serial"] = run_batch(
                    scenarios, executor=SerialExecutor(), group_cells=False
                )
                runs[flag, "parallel"] = run_batch(
                    scenarios, executor=ProcessExecutor(jobs=2),
                    group_cells=False,
                )
                runs[flag, "grouped"] = run_batch(
                    scenarios, executor=SerialExecutor(), group_cells=True
                )
        finally:
            set_telemetry_enabled(was)
        reference = _normalised(runs[True, "serial"].outcomes)
        for key, report in runs.items():
            assert _normalised(report.outcomes) == reference, key

    def test_cell_results_identical_with_and_without_collection(self):
        scenarios = generate_scenarios(8, seed=3)
        was = telemetry_enabled()
        try:
            set_telemetry_enabled(True)
            on = evaluate_cells_grouped(scenarios)
            set_telemetry_enabled(False)
            off = evaluate_cells_grouped(scenarios)
        finally:
            set_telemetry_enabled(was)
        for a, b in zip(on, off):
            assert a.value == b.value
            assert a.error == b.error
        assert all(t.telemetry is not None for t in on)
        assert all(t.telemetry is None for t in off)


# ----------------------------------------------------------------------
# Collection primitives
# ----------------------------------------------------------------------
class TestCollection:
    def test_begin_end_span_counter(self, telemetry_on):
        cell = tele.begin_cell("t-cell")
        assert cell is not None and tele.active_cell() is cell
        with tele.span("work"):
            tele.counter_add("widgets", 3)
            tele.extra_set("note", "hi")
        tele.end_cell(cell)
        assert tele.active_cell() is None
        assert cell.dur > 0.0
        assert cell.phases["work"] > 0.0
        assert cell.spans[0][0] == "work"
        assert cell.counters == {"widgets": 3}
        assert cell.extra == {"note": "hi"}

    def test_disabled_collection_is_inert(self, telemetry_off):
        assert tele.begin_cell("t-off") is None
        with tele.span("ignored"):
            tele.counter_add("ignored")
        tele.end_cell(None)  # must not raise
        assert tele.active_cell() is None

    def test_instrumentation_without_active_cell_is_noop(self, telemetry_on):
        # Library code calls span/counter_add unconditionally; outside a
        # begin/end window they must cost nothing and record nothing.
        with tele.span("orphan"):
            tele.counter_add("orphan")
            tele.extra_set("orphan", 1)
        assert tele.active_cell() is None

    def test_record_engine_folds_counters(self, telemetry_on):
        class FakeSim:
            events_processed = 7
            events_scheduled = 9
            cancelled_events = 0  # zero counters are skipped
            busy_periods = 2
            receive_batch_calls = 4

        cell = tele.begin_cell("t-engine")
        tele.record_engine(FakeSim())
        tele.end_cell(cell)
        assert cell.counters == {
            "events_processed": 7,
            "events_scheduled": 9,
            "busy_periods": 2,
            "receive_batch_calls": 4,
        }

    def test_evented_host_records_engine_tallies(self, telemetry_on):
        # End-to-end through the real event engine: the evented rung
        # (no closed-form shortcuts) must fold its scheduler tallies
        # into the active cell; the primed batched rung runs no event
        # loop and records none.
        from repro.calculus.envelope import ArrivalEnvelope
        from repro.simulation.flow import VBRVideoSource
        from repro.simulation.host_sim import simulate_regulated_host

        rho = 0.8 / 3
        src = VBRVideoSource(rho, scene_strength=0.15, scene_persistence=0.9)
        trace = src.generate(1.0, rng=42).fragment(0.002)
        traces = [trace] * 3
        envs = [ArrivalEnvelope(max(trace.empirical_sigma(rho), 1e-6), rho)] * 3
        tallies = {}
        for engine in ("evented", "batched"):
            cell = tele.begin_cell(engine)
            simulate_regulated_host(
                traces, envs, mode="sigma-rho", discipline="adversarial",
                engine=engine,
            )
            tele.end_cell(cell)
            tallies[engine] = cell.counters
        assert tallies["evented"]["events_processed"] > 0
        assert tallies["evented"]["events_scheduled"] > 0
        assert tallies["evented"]["busy_periods"] > 0
        assert tallies["batched"] == {}  # primed: no event loop ran

    def test_telemetry_pickles(self, telemetry_on):
        cell = tele.begin_cell("t-pickle")
        with tele.span("phase"):
            tele.counter_add("n", 2)
        tele.end_cell(cell)
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell
        assert isinstance(clone, CellTelemetry)

    def test_parallel_run_collects_worker_side(self, telemetry_on):
        # Telemetry must survive the worker -> parent pickle hop and
        # carry the worker's pid (the trace's track id).
        scenarios = generate_scenarios(6, seed=5)
        report = run_batch(
            scenarios, executor=ProcessExecutor(jobs=2), group_cells=False
        )
        tels = [o.telemetry for o in report.outcomes]
        assert all(t is not None for t in tels)
        assert all(t.dur > 0.0 and t.worker > 0 for t in tels)
        assert all("simulate" in t.phases for t in tels)


# ----------------------------------------------------------------------
# Grouped-path stats: fallback reasons and packing efficiency
# ----------------------------------------------------------------------
class TestGroupedStats:
    def test_mixed_matrix_stats(self, telemetry_on):
        scenarios = generate_scenarios(24, seed=11)  # hosts + chains/trees
        stats: dict = {}
        tasks = evaluate_cells_grouped(scenarios, stats=stats)
        records = stats["records"]
        summary = [r for r in records if r["kind"] == "grouping_summary"]
        groups = [r for r in records if r["kind"] == "grouping"]
        assert len(summary) == 1
        s = summary[0]
        assert s["cells"] == len(scenarios)
        assert s["grouped_cells"] + s["fallback_cells"] == s["cells"]
        assert s["grouped_cells"] == sum(g["cells"] for g in groups)
        # generate_scenarios mixes topologies: the fallback reasons must
        # name them rather than hide behind one opaque count.
        assert any(r.startswith("topology:") for r in s["fallback_reasons"])
        assert sum(s["fallback_reasons"].values()) == s["fallback_cells"]
        for g in groups:
            if "padding_waste" in g:
                assert 0.0 <= g["padding_waste"] < 1.0
                assert g["pad_elements"] >= g["valid_elements"]
        # Per-cell annotations agree with the summary tallies.
        grouped_n = sum(
            t.telemetry.counters.get("grouped_cells", 0)
            for t in tasks if t.telemetry is not None
        )
        fallback_n = sum(
            t.telemetry.counters.get("fallback_cells", 0)
            for t in tasks if t.telemetry is not None
        )
        assert grouped_n == s["grouped_cells"]
        assert fallback_n == s["fallback_cells"]


# ----------------------------------------------------------------------
# Cost-model fit ledger
# ----------------------------------------------------------------------
class TestFitReport:
    def test_degenerate_samples_counted_by_reason(self):
        good = {"wall_time": 0.01, "eff_backend": "fluid", "k": 3,
                "hops": 1, "horizon": 1.0, "dt": 1e-3}
        records = [
            good,
            dict(good, wall_time=None),            # missing-wall
            dict(good, wall_time="fast"),          # missing-wall
            dict(good, wall_time=-1.0),            # bad-wall
            dict(good, wall_time=float("nan")),    # bad-wall
            dict(good, dt="tiny"),                 # bad-features
            dict(good, dt=float("inf")),           # bad-workload
        ]
        report: dict = {}
        model = CellCostModel.fit(records, report=report)
        assert report["records"] == len(records)
        assert report["accepted"] == 1
        assert report["dropped"] == len(records) - 1
        assert report["dropped_reasons"] == {
            "missing-wall": 2, "bad-wall": 2,
            "bad-features": 1, "bad-workload": 1,
        }
        assert report["backends"]["fluid"]["accepted"] == 1
        assert report["backends"]["fluid"]["refit"] is True
        assert model.estimate(good) > 0.0

    def test_empty_fit_reports_zero(self):
        report: dict = {}
        CellCostModel.fit([], report=report)
        assert report == {
            "records": 0, "accepted": 0, "dropped": 0,
            "dropped_reasons": {}, "backends": {},
        }


# ----------------------------------------------------------------------
# Store round-trip: the separate telemetry channel
# ----------------------------------------------------------------------
class TestStoreRoundtrip:
    RECORDS = [
        {"kind": "cell", "name": "c0", "worker": 123, "t0": 1.0,
         "dur": 0.5, "spans": [["simulate", 0.0, 0.5]],
         "phases": {"simulate": 0.5}, "counters": {"events_processed": 9},
         "extra": {}},
        {"kind": "grouping", "backend": "fluid", "cells": 4},
        {"kind": "fit", "records": 4, "accepted": 4, "dropped": 0},
    ]

    @pytest.mark.parametrize("cls", [JsonlResultStore, SqliteResultStore])
    def test_roundtrip(self, cls, tmp_path):
        store = cls(tmp_path / "store")
        assert store.load_telemetry() == []
        store.append_telemetry(self.RECORDS)
        store.append_telemetry([])  # empty batch is a no-op
        assert store.load_telemetry() == self.RECORDS

    def test_jsonl_skips_torn_lines(self, tmp_path):
        store = JsonlResultStore(tmp_path / "store")
        store.append_telemetry(self.RECORDS[:1])
        path = store.root / JsonlResultStore.TELEMETRY
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "tru\n')  # torn mid-write
        assert store.load_telemetry() == self.RECORDS[:1]

    def test_base_store_hooks_are_noops(self):
        class Dummy(ResultStore):
            def append(self, record):  # pragma: no cover - unused
                raise NotImplementedError

            def load(self):
                return {}

        dummy = Dummy()
        dummy.append_telemetry(self.RECORDS)
        assert dummy.load_telemetry() == []


# ----------------------------------------------------------------------
# The CLI lenses: report, --trace, --progress, --no-telemetry
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def smoke_store(tmp_path_factory):
    """One telemetry-enabled 24-cell smoke campaign, reused per lens."""
    root = tmp_path_factory.mktemp("telemetry") / "smoke"
    assert main(
        ["scenarios", "run", "--count", "24", "--seed", "11",
         "--no-corpus", "--store", str(root)]
    ) == 0
    return root


class TestCliLenses:
    def test_report_renders_every_section(self, smoke_store, capsys):
        assert main(["scenarios", "report", str(smoke_store)]) == 0
        out = capsys.readouterr().out
        assert "Campaign telemetry report" in out
        assert "Top 10 slowest cells" in out
        assert "Phase breakdown per backend" in out
        assert "realise" in out and "simulate" in out
        assert "bounds" in out and "verdict" in out
        assert "Engine counters" in out
        assert "grouped_cells" in out and "fallback_cells" in out
        assert "Cost-model calibration" in out
        assert "Grouping efficiency" in out
        assert "grouped cells:" in out
        assert "source cache:" in out

    def test_report_top_flag(self, smoke_store, capsys):
        assert main(
            ["scenarios", "report", str(smoke_store), "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "Top 3 slowest cells" in out

    def test_report_bad_top_rejected(self, smoke_store):
        with pytest.raises(SystemExit):
            main(["scenarios", "report", str(smoke_store), "--top", "0"])

    def test_report_missing_store_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scenarios", "report", str(tmp_path / "nope")])

    def test_report_empty_telemetry_returns_1(self, tmp_path, capsys):
        root = tmp_path / "bare"
        assert main(
            ["scenarios", "run", "--count", "2", "--seed", "3",
             "--no-corpus", "--no-telemetry", "--store", str(root)]
        ) == 0
        assert main(["scenarios", "report", str(root)]) == 1
        assert "no telemetry records" in capsys.readouterr().out

    def test_trace_writes_valid_chrome_json(self, smoke_store, tmp_path,
                                            capsys):
        trace = tmp_path / "run.trace.json"
        assert main(
            ["scenarios", "run", "--count", "6", "--seed", "5",
             "--no-corpus", "--store", str(tmp_path / "s"),
             "--trace", str(trace)]
        ) == 0
        assert "trace written" in capsys.readouterr().err
        doc = json.loads(trace.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        kinds = {e["ph"] for e in events}
        assert kinds == {"M", "X"}
        cells = [e for e in events if e.get("cat") == "cell"]
        assert len(cells) == 6
        assert all(e["dur"] >= 0.0 and e["ts"] >= 0.0 for e in cells)
        assert any(e.get("cat") == "phase" for e in events)

    def test_trace_with_no_telemetry_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["scenarios", "run", "--count", "2", "--no-corpus",
                 "--no-telemetry", "--trace", str(tmp_path / "t.json")]
            )

    def test_no_telemetry_summary_byte_identical(self, smoke_store,
                                                 tmp_path, capsys):
        off = tmp_path / "off"
        assert main(
            ["scenarios", "run", "--count", "24", "--seed", "11",
             "--no-corpus", "--no-telemetry", "--store", str(off)]
        ) == 0
        capsys.readouterr()
        on_summary = (smoke_store / "summary.json").read_bytes()
        assert (off / "summary.json").read_bytes() == on_summary
        assert (smoke_store / JsonlResultStore.TELEMETRY).exists()
        assert not (off / JsonlResultStore.TELEMETRY).exists()
        # The kill switch is restored after the run.
        assert telemetry_enabled()

    def test_progress_status_line(self, tmp_path, capsys):
        assert main(
            ["scenarios", "run", "--count", "6", "--seed", "3",
             "--no-corpus", "--progress", "--store", str(tmp_path / "p")]
        ) == 0
        err = capsys.readouterr().err
        assert "6/6 cells" in err
        assert "cells/s" in err and "ETA" in err

    def test_profile_prints_fit_ledger(self, tmp_path, capsys):
        root = tmp_path / "prof"
        args = ["scenarios", "run", "--count", "6", "--seed", "3",
                "--no-corpus", "--store", str(root)]
        assert main(args) == 0
        capsys.readouterr()
        # Second run resumes -> refit from the stored wall clocks.
        assert main(args + ["--resume", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cost-model refit:" in out
        assert "samples accepted" in out


# ----------------------------------------------------------------------
# Aggregation helpers
# ----------------------------------------------------------------------
class TestAggregation:
    def test_chrome_trace_empty(self):
        doc = chrome_trace_events([])
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_phase_breakdown_and_counters(self):
        records = [
            {"kind": "cell", "eff_backend": "fluid", "dur": 0.2,
             "phases": {"simulate": 0.2}, "counters": {"n": 1}},
            {"kind": "cell", "eff_backend": "fluid", "dur": 0.1,
             "phases": {"simulate": 0.05, "realise": 0.05},
             "counters": {"n": 2}},
            {"kind": "cell", "eff_backend": "des", "dur": 0.05,
             "phases": {"simulate": 0.05}, "counters": {}},
            {"kind": "grouping", "backend": "fluid"},  # not a cell
        ]
        rows = tele.phase_breakdown(records)
        assert [r["backend"] for r in rows] == ["fluid", "des"]
        assert rows[0]["cells"] == 2
        assert rows[0]["phases"]["simulate"] == pytest.approx(0.25)
        assert tele.counter_totals(records) == {"n": 3}
        slowest = tele.top_slowest(records, 2)
        assert [r["dur"] for r in slowest] == [0.2, 0.1]

    def test_calibration_rows(self):
        records = [
            {"kind": "cell", "eff_backend": "fluid",
             "wall_time": 0.2, "predicted_cost": 0.1},
            {"kind": "cell", "eff_backend": "fluid",
             "wall_time": 0.1, "predicted_cost": 0.1},
            {"kind": "cell", "eff_backend": "des", "wall_time": 0.1},
        ]
        rows = tele.calibration_rows(records)
        assert rows[0]["backend"] == "fluid"
        assert rows[0]["median_ratio"] == pytest.approx(1.5)
        assert rows[-1] == {"backend": "(no prediction)", "cells": 1}
