"""Figures 1 and 2: the paper's illustrative examples, made executable.

These two figures are not measurements, but their semantics are exactly
checkable against our machinery, which closes the "every figure"
inventory:

* **Figure 1** -- the capacity-aware reconstruction example: five end
  hosts with output capacity ``C = 5 rho``.  With one single-source
  group, host 0 serves all four others directly
  (``floor(5rho/rho) = 5`` children, height 2).  When the hosts join a
  second group, the degree bound drops to ``floor(5rho/2rho) = 2`` and
  the tree deepens (hosts 3 and 4 re-home under host 1, height 3).
  :func:`fig1_example` rebuilds both trees from the degree-bound rule.

* **Figure 2** -- the (sigma, rho, lambda) regulator operation: the
  zig-zag output curve (slope 1 during working periods, flat during
  vacations) against the input trend line ``sigma + rho t``.  "The
  cross points of the zig-zag curve and the trend line indicate the
  time that all of the blocked data from the flow are output" --
  :func:`fig2_regulator_operation` generates both curves and locates
  those touch points, which must occur exactly at the working-period
  ends ``m P + W``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.overlay.capacity_aware import capacity_degree_bound
from repro.overlay.tree import MulticastTree
from repro.simulation.fluid import fluid_vacation_regulator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["Fig1Result", "fig1_example", "Fig2Result", "fig2_regulator_operation"]


@dataclass(frozen=True)
class Fig1Result:
    """The two trees of Figure 1 and their degree bounds."""

    one_group_tree: MulticastTree
    two_group_tree: MulticastTree
    degree_bound_one_group: int
    degree_bound_two_groups: int


def fig1_example(capacity_multiple: float = 5.0) -> Fig1Result:
    """Rebuild Figure 1's five-host example from the degree-bound rule.

    ``capacity_multiple`` is the host capacity in units of the flow rate
    (the paper uses ``C = 5 rho``).  Trees are constructed greedily:
    breadth-first filling with the computed fan-out, hosts in index
    order (host 0 is where the flow enters) -- which yields exactly the
    paper's two drawings.
    """
    check_positive(capacity_multiple, "capacity_multiple")
    hosts = list(range(5))

    def fill(degree: int) -> MulticastTree:
        parent: dict[int, int] = {}
        frontier = [0]
        remaining = hosts[1:]
        slots = {0: degree}
        while remaining:
            head = frontier.pop(0)
            take = remaining[: slots[head]]
            remaining = remaining[len(take):]
            for h in take:
                parent[h] = head
                slots[h] = degree
                frontier.append(h)
        return MulticastTree(root=0, parent=parent)

    d1 = capacity_degree_bound(capacity_multiple, 1.0)
    d2 = capacity_degree_bound(capacity_multiple, 2.0)
    return Fig1Result(
        one_group_tree=fill(d1),
        two_group_tree=fill(d2),
        degree_bound_one_group=d1,
        degree_bound_two_groups=d2,
    )


@dataclass(frozen=True)
class Fig2Result:
    """The Figure-2 curves and their characteristic points."""

    t: np.ndarray
    input_cum: np.ndarray       #: the saturated-input cumulative curve
    output_cum: np.ndarray      #: the zig-zag regulator output
    trend: np.ndarray           #: sigma + rho t
    touch_times: np.ndarray     #: where the zig-zag meets the trend line
    working_period: float
    vacation: float
    period: float


def fig2_regulator_operation(
    sigma: float = 0.1,
    rho: float = 0.25,
    periods: int = 4,
    samples_per_period: int = 2000,
) -> Fig2Result:
    """Generate Figure 2's curves for a (sigma, rho, lambda) regulator.

    The input is the regulator's own envelope ``sigma + rho t`` (the
    saturating arrival of the figure).  The output alternates slope-1
    working segments and flat vacations; the points where it catches the
    trend line are the instants "all of the blocked data from the flow
    are output", which the construction places at the end of every
    working period (``m P + W``).
    """
    check_positive(sigma, "sigma")
    check_positive(rho, "rho")
    check_positive_int(periods, "periods")
    reg = SigmaRhoLambdaRegulator(sigma, rho)
    horizon = periods * reg.regulator_period
    n = periods * samples_per_period
    t = np.linspace(0.0, horizon, n + 1)
    trend = sigma + rho * t
    # The saturated input: the full burst sigma at t=0, then rate rho.
    input_cum = trend.copy()
    input_cum[0] = 0.0  # nothing has arrived strictly before t=0
    output_cum = fluid_vacation_regulator(input_cum, t, reg)
    # Touch points: output reaches the trend line (within grid step).
    gap = trend - output_cum
    step = horizon / n
    tol = 1.5 * step  # one grid cell of slope-1 catching up
    touching = gap <= tol
    # Extract the first touch instant of every contiguous touching run.
    starts = np.nonzero(touching & ~np.roll(touching, 1))[0]
    touch_times = t[starts]
    return Fig2Result(
        t=t,
        input_cum=input_cum,
        output_cum=output_cum,
        trend=trend,
        touch_times=touch_times,
        working_period=reg.working_period,
        vacation=reg.vacation,
        period=reg.regulator_period,
    )
