"""Rendering and series analysis for the experiment harness.

The paper reports its results as delay-vs-rate curves (Figures 4/6) and
layer-number tables (Tables I-III).  The helpers here turn sweep
results into the same artefacts in ASCII, and extract the two numbers
the paper quotes from every curve pair: the **crossover rate** (the
simulated rate threshold) and the **maximum improvement factor**.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "find_crossover",
    "max_improvement",
    "render_table",
    "format_series",
]


def find_crossover(
    utilizations: Sequence[float],
    baseline: Sequence[float],
    candidate: Sequence[float],
) -> Optional[float]:
    """First sweep rate at which ``candidate`` drops below ``baseline``.

    This is how the paper reads its simulated rate threshold off the
    figures ("the cross point of the two curves is 0.66").  Linear
    interpolation refines the crossing between sweep points.  ``None``
    if the curves never cross within the sweep.
    """
    if not (len(utilizations) == len(baseline) == len(candidate)):
        raise ValueError("series must have equal lengths")
    prev_gap = None
    for i, (u, b, c) in enumerate(zip(utilizations, baseline, candidate)):
        gap = c - b
        if gap <= 0:
            if i == 0 or prev_gap is None or prev_gap <= 0:
                return float(u)
            u0 = utilizations[i - 1]
            frac = prev_gap / (prev_gap - gap)
            return float(u0 + frac * (u - u0))
        prev_gap = gap
    return None


def max_improvement(
    utilizations: Sequence[float],
    baseline: Sequence[float],
    candidate: Sequence[float],
) -> tuple[Optional[float], float]:
    """Largest ``baseline / candidate`` ratio and the rate attaining it.

    The paper's "the maximum worst-case delay improvement ... is at
    rho_bar = 0.8 and has the value 0.72/0.26 ~ 2.8".  Only sweep points
    where the candidate actually wins (ratio > 1) are considered;
    returns ``(None, 1.0)`` when it never wins.
    """
    best_u, best_ratio = None, 1.0
    for u, b, c in zip(utilizations, baseline, candidate):
        if c <= 0:
            continue
        ratio = b / c
        if ratio > best_ratio:
            best_u, best_ratio = float(u), float(ratio)
    return best_u, best_ratio


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Plain-text table with aligned columns (the benches print these)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, utilizations: Sequence[float], values: Sequence[float]) -> str:
    """One labelled series as a compact row (for figure-style output)."""
    cells = " ".join(f"{v:7.3f}" for v in values)
    return f"{name:>28s}: {cells}"
