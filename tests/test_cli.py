"""The repro-experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


def test_theory_runs(capsys):
    assert main(["theory"]) == 0
    out = capsys.readouterr().out
    assert "Rate thresholds" in out
    assert "0.73" in out and "0.79" in out


def test_fig4_quick(capsys):
    assert main(["fig4a", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4(a)" in out
    assert "crossover" in out


def test_table_quick(capsys):
    assert main(["table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "Capacity-aware DSCT" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig9z"])


def test_experiment_registry_complete():
    for name in ("fig4a", "fig6c", "table1", "theory", "validate", "all"):
        assert name in EXPERIMENTS


def test_validate_quick(capsys):
    assert main(["validate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Measured vs analytic" in out
    assert "unsound cells: 0" in out


class TestScenariosSubcommand:
    def test_list_shows_corpus(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "Registered scenarios" in out
        assert "sync-burst-video" in out
        assert "heavy-band-k3-n2" in out

    def test_list_tag_filter(self, capsys):
        assert main(["scenarios", "list", "--tag", "heavy-band"]) == 0
        out = capsys.readouterr().out
        assert "heavy-band-k2-n2" in out
        assert "sync-burst-video" not in out

    def test_run_small_matrix_reports_soundness(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "6", "--seed", "3", "--no-corpus"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenarios evaluated: 6" in out
        assert "soundness violations: 0" in out
        assert "scenarios/s" in out

    def test_run_verbose_prints_cells(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "3", "--seed", "3",
             "--no-corpus", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "Scenario matrix cross-validation" in out
        assert "gen-3-0000" in out

    def test_bad_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "frobnicate"])


class TestScenariosRuntime:
    """The parallel-runtime flags: --jobs/--store/--resume/--campaign/diff."""

    pytestmark = pytest.mark.runtime

    def test_run_parallel_jobs(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "8", "--seed", "3",
             "--no-corpus", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenarios evaluated: 8" in out
        assert "soundness violations: 0" in out

    def test_store_and_resume_evaluate_zero_new_cells(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        argv = ["scenarios", "run", "--count", "6", "--seed", "3",
                "--no-corpus", "--store", store]
        assert main(argv) == 0
        assert "scenarios evaluated: 6" in capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "cells skipped (already in store): 6" in out
        assert "scenarios evaluated: 0" in out

    def test_campaign_config_file(self, capsys, tmp_path):
        config = tmp_path / "c.json"
        config.write_text('{"count": 5, "seed": 9, "max_k": 7, "max_hops": 4}')
        assert main(
            ["scenarios", "run", "--campaign", str(config), "--jobs", "2"]
        ) == 0
        assert "scenarios evaluated: 5" in capsys.readouterr().out

    def test_diff_clean_campaigns(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        argv = ["scenarios", "run", "--count", "4", "--seed", "5",
                "--no-corpus", "--store", store]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["scenarios", "diff", store, store]) == 0
        out = capsys.readouterr().out
        assert "soundness regressions: 0" in out

    def test_diff_flags_regression(self, capsys, tmp_path):
        from repro.runtime import ResultStore

        old, new = tmp_path / "old", tmp_path / "new"
        ResultStore(old).append({"key": "aa", "sound": True})
        ResultStore(new).append({"key": "aa", "sound": False})
        assert main(["scenarios", "diff", str(old), str(new)]) == 1
        assert "REGRESSION aa" in capsys.readouterr().out

    def test_resume_without_store_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2", "--resume"])

    def test_sqlite_store_url(self, capsys, tmp_path):
        store = f"sqlite:{tmp_path / 'camp'}"
        argv = ["scenarios", "run", "--count", "4", "--seed", "3",
                "--no-corpus", "--store", store]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[sqlite]" in out and "4 records" in out
        assert (tmp_path / "camp" / "results.sqlite").exists()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "cells skipped (already in store): 4" in out

    def test_sharded_runs_fill_one_store(self, capsys, tmp_path):
        store = f"sqlite:{tmp_path / 'camp'}"
        base = ["scenarios", "run", "--count", "6", "--seed", "3",
                "--no-corpus", "--store", store]
        assert main(base + ["--shard", "1/2"]) == 0
        assert "(shard 1/2)" in capsys.readouterr().out
        assert main(base + ["--shard", "2/2"]) == 0
        capsys.readouterr()
        assert main(["scenarios", "merge", store]) == 0
        out = capsys.readouterr().out
        assert "refreshed summary" in out and "cells: 6" in out

    def test_bad_shard_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2", "--shard", "0/2"])
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2", "--shard", "junk"])

    def test_merge_joins_shard_stores(self, capsys, tmp_path):
        from repro.runtime import ResultStore

        ResultStore(tmp_path / "s1").append({"key": "aa", "sound": True})
        ResultStore(tmp_path / "s2").append({"key": "bb", "sound": True})
        assert main(
            ["scenarios", "merge", str(tmp_path / "all"),
             str(tmp_path / "s1"), str(tmp_path / "s2")]
        ) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard store(s)" in out and "cells: 2" in out

    def test_baseline_gate_passes_and_fails(self, capsys, tmp_path):
        base = ["scenarios", "run", "--count", "4", "--seed", "5",
                "--no-corpus"]
        assert main(base + ["--store", str(tmp_path / "pinned")]) == 0
        capsys.readouterr()
        # Same matrix against the pinned baseline: gate passes.
        assert main(
            base + ["--store", str(tmp_path / "cand"),
                    "--baseline", str(tmp_path / "pinned")]
        ) == 0
        assert "Baseline gate" in capsys.readouterr().out
        # Poison the candidate store: gate fails even though the run
        # itself was clean.
        from repro.runtime import open_store

        cand = open_store(tmp_path / "cand2")
        pinned = open_store(tmp_path / "pinned")
        for key, rec in pinned.load().items():
            cand.append({**rec, "sound": False})
        assert main(
            ["scenarios", "run", "--count", "1", "--seed", "5", "--no-corpus",
             "--store", str(tmp_path / "cand2"),
             "--baseline", str(tmp_path / "pinned")]
        ) == 1

    def test_baseline_requires_store(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2",
                  "--baseline", "somewhere"])

    def test_typoed_reference_stores_fail_loudly(self, tmp_path):
        """A missing baseline/diff/curate store must error, never pass
        the gate by comparing against a conjured empty store."""
        from repro.runtime import ResultStore

        real = tmp_path / "real"
        ResultStore(real).append({"key": "aa", "sound": True})
        typo = str(tmp_path / "pined")
        with pytest.raises(SystemExit):
            main(["scenarios", "diff", typo, str(real)])
        with pytest.raises(SystemExit):
            main(["scenarios", "diff", str(real), typo])
        with pytest.raises(SystemExit):
            main(["scenarios", "curate", typo])
        with pytest.raises(SystemExit):
            main(["scenarios", "merge", str(tmp_path / "dest"), typo])
        with pytest.raises(SystemExit):
            # Fails before the campaign runs, not after.
            main(["scenarios", "run", "--count", "2", "--no-corpus",
                  "--store", str(tmp_path / "cand"), "--baseline", typo])
        assert not (tmp_path / "pined").exists()  # no conjured store

    def test_shard_extra_segments_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2", "--shard", "1/2/3"])

    def test_missing_corpus_file_fails_cleanly(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "0", "--no-corpus",
                  "--corpus", "no-such-corpus.json"])

    def test_budget_applies_to_corpus_cells(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        assert main(
            ["scenarios", "run", "--count", "3", "--seed", "3",
             "--no-corpus", "--store", store]
        ) == 0
        capsys.readouterr()
        corpus = tmp_path / "curated.json"
        assert main(
            ["scenarios", "curate", store, "--min-tightness", "0.05",
             "--limit", "2", "--out", str(corpus)]
        ) == 0
        capsys.readouterr()
        # An impossible budget must verdict the curated cells too.
        assert main(
            ["scenarios", "run", "--count", "0", "--no-corpus",
             "--corpus", str(corpus), "--budget", "1e-9"]
        ) == 1
        assert "perf-budget violations: 2" in capsys.readouterr().out

    def test_diff_strict_flags_removed_cells(self, capsys, tmp_path):
        from repro.runtime import ResultStore

        old, new = tmp_path / "old", tmp_path / "new"
        ResultStore(old).append({"key": "aa", "sound": True})
        ResultStore(old).append({"key": "gone", "sound": True})
        ResultStore(new).append({"key": "aa", "sound": True})
        assert main(["scenarios", "diff", str(old), str(new)]) == 0
        capsys.readouterr()
        assert main(["scenarios", "diff", str(old), str(new), "--strict"]) == 1
        assert "baseline cells missing" in capsys.readouterr().out

    def test_diff_json_output(self, capsys, tmp_path):
        import json

        from repro.runtime import ResultStore

        old, new = tmp_path / "old", tmp_path / "new"
        ResultStore(old).append({"key": "aa", "sound": True})
        ResultStore(new).append({"key": "aa", "sound": False})
        report = tmp_path / "diff.json"
        assert main(
            ["scenarios", "diff", str(old), str(new), "--json", str(report)]
        ) == 1
        payload = json.loads(report.read_text())
        assert payload["regressions"] == ["aa"]

    def test_curate_promotes_and_reruns(self, capsys, tmp_path):
        store = str(tmp_path / "camp")
        assert main(
            ["scenarios", "run", "--count", "6", "--seed", "3",
             "--no-corpus", "--store", store]
        ) == 0
        capsys.readouterr()
        corpus = tmp_path / "curated.json"
        assert main(
            ["scenarios", "curate", store, "--min-tightness", "0.05",
             "--limit", "2", "--out", str(corpus)]
        ) == 0
        out = capsys.readouterr().out
        assert "promoted 2 cells" in out
        assert corpus.exists()
        # The promoted corpus feeds straight back into a run.
        assert main(
            ["scenarios", "run", "--count", "0", "--no-corpus",
             "--corpus", str(corpus)]
        ) == 0
        assert "scenarios evaluated: 2" in capsys.readouterr().out

    def test_budget_flag_flags_slow_cells(self, capsys):
        assert main(
            ["scenarios", "run", "--count", "3", "--seed", "3",
             "--no-corpus", "--budget", "1e-9"]
        ) == 1
        out = capsys.readouterr().out
        assert "perf-budget violations: 3" in out

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--count", "2", "--jobs", "0"])


class TestDegradedStores:
    """report/diff on poison-only or partial stores: one useful line,
    correct exit code, never a traceback."""

    pytestmark = pytest.mark.runtime

    @staticmethod
    def _poison_only_store(root):
        from repro.runtime import open_store

        st = open_store(f"jsonl:{root}")
        st.append_poison(
            [{"key": "dead", "name": "cell-x", "attempts": 3,
              "error_head": "boom", "worker": "w1"}]
        )
        st.close()
        return str(root)

    def test_report_on_poison_only_store(self, capsys, tmp_path):
        store = self._poison_only_store(tmp_path / "camp")
        assert main(["scenarios", "report", store]) == 0
        out = capsys.readouterr().out
        assert "Poison channel" in out
        assert "cell-x" in out and "boom" in out
        assert "store holds 1 poison diagnoses and 0 partial" in out

    def test_report_on_partial_error_store(self, capsys, tmp_path):
        from repro.runtime import open_store

        st = open_store(f"sqlite:{tmp_path / 'camp'}")
        st.append({"key": "k1", "error": "Traceback: ..."})
        st.close()
        assert main(["scenarios", "report", f"sqlite:{tmp_path / 'camp'}"]) == 0
        out = capsys.readouterr().out
        assert "0 poison diagnoses and 1 partial (error) records" in out

    def test_report_on_store_without_telemetry_still_fails(
        self, capsys, tmp_path
    ):
        from repro.runtime import open_store

        st = open_store(f"jsonl:{tmp_path / 'camp'}")
        st.append({"key": "k1", "sound": True})
        st.close()
        assert main(["scenarios", "report", str(tmp_path / "camp")]) == 1
        assert "no telemetry records" in capsys.readouterr().out

    def test_diff_notes_empty_sides(self, capsys, tmp_path):
        from repro.runtime import open_store

        empty = self._poison_only_store(tmp_path / "old")
        st = open_store(f"jsonl:{tmp_path / 'new'}")
        st.append({"key": "k1", "sound": True})
        st.close()
        assert main(["scenarios", "diff", empty, str(tmp_path / "new")]) == 0
        out = capsys.readouterr().out
        assert f"note: {empty} has no result records (1 poison diagnoses)" in out
        assert "note: " + str(tmp_path / "new") not in out
