#!/usr/bin/env python3
"""Quickstart: the paper's machinery in ten minutes.

Walks through the core objects: (sigma, rho) envelopes, the two
regulator families, the rate threshold rho*, and the adaptive control
algorithm's decision -- all at one end host that joined K = 3 groups.

Run:  python examples/quickstart.py
"""

from repro import (
    AdaptiveController,
    ArrivalEnvelope,
    SigmaRhoLambdaRegulator,
    heterogeneous_threshold,
    homogeneous_threshold,
    remark1_wdb_homogeneous,
    theorem2_wdb_homogeneous,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Describe the traffic entering one end host.
    #
    # The host joined K = 3 multicast groups, so three real-time flows
    # share its output link (normalised capacity C = 1).  Each flow is
    # described by a Cruz burstiness constraint R ~ (sigma, rho).
    # ------------------------------------------------------------------
    k = 3
    sigma, rho = 0.06, 0.30          # bursty video-like flows at 30% each
    flows = [ArrivalEnvelope(sigma, rho)] * k
    print(f"{k} flows, each (sigma={sigma}, rho={rho}); "
          f"aggregate utilisation u = {k * rho:.2f}")

    # ------------------------------------------------------------------
    # 2. The rate threshold rho* (Theorems 3/4).
    #
    # Below rho* the classical token bucket is the better regulator;
    # above it the paper's (sigma, rho, lambda) vacation regulator wins.
    # The paper quotes the aggregate forms: 0.73 C (homogeneous flows)
    # and 0.79 C (heterogeneous).
    # ------------------------------------------------------------------
    print(f"\nhomogeneous threshold   K*rho* = "
          f"{homogeneous_threshold(k, aggregate=True):.3f} (paper: ~0.73C)")
    print(f"heterogeneous threshold K*rho* = "
          f"{heterogeneous_threshold(k, aggregate=True):.3f} (paper: ~0.79C)")

    # ------------------------------------------------------------------
    # 3. Worst-case delay bounds of the two systems (Remark 1, Theorem 2).
    # ------------------------------------------------------------------
    d_baseline = remark1_wdb_homogeneous(k, sigma, rho)
    d_vacation = theorem2_wdb_homogeneous(k, sigma, rho)
    print(f"\n(sigma, rho) MUX bound        D  = {d_baseline:.3f} s")
    print(f"(sigma, rho, lambda) bound    D^ = {d_vacation:.3f} s")
    print("-> the vacation regulator wins" if d_vacation < d_baseline
          else "-> the token bucket wins")

    # ------------------------------------------------------------------
    # 4. The Adaptive Control Algorithm makes that call automatically.
    # ------------------------------------------------------------------
    ctrl = AdaptiveController(flows)
    print(f"\nadaptive controller says: {ctrl.select_mode().value}")
    plan = ctrl.build_stagger_plan()
    print(f"stagger plan: period={plan.period:.4f} s, "
          f"offsets={tuple(round(o, 4) for o in plan.offsets)}, "
          f"utilisation={plan.utilization:.2f}")

    # ------------------------------------------------------------------
    # 5. The regulator parameters of Section III.
    # ------------------------------------------------------------------
    reg = SigmaRhoLambdaRegulator(sigma, rho)
    print(f"\n(sigma, rho, lambda) regulator: lambda={reg.lam:.3f}, "
          f"W={reg.working_period:.4f} s, V={reg.vacation:.4f} s, "
          f"period={reg.regulator_period:.4f} s")
    print("on-state windows in the first second:",
          [(round(s, 3), round(e, 3)) for s, e in reg.windows(1.0)])


if __name__ == "__main__":
    main()
