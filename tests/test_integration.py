"""Cross-module integration tests.

These exercise paths that no unit test covers end to end: the adaptive
controller driving simulations over real topology-derived workloads,
the transit-stub underlay feeding the figure harness, churn composing
with the whole-tree simulator, and the public package surface.
"""

import numpy as np
import pytest

import repro
from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController, ControlMode
from repro.core.threshold import homogeneous_threshold
from repro.overlay.dynamics import ChurnSimulator
from repro.overlay.groups import MultiGroupNetwork
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_host
from repro.simulation.tree_sim import simulate_multicast_tree
from repro.topology.attach import attach_hosts
from repro.topology.routing import host_rtt_matrix
from repro.topology.transit_stub import transit_stub_backbone


class TestPublicSurface:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_example(self):
        flows = [repro.ArrivalEnvelope(sigma=0.02, rho=0.28)] * 3
        ctrl = repro.AdaptiveController(flows)
        assert ctrl.select_mode().value == "sigma-rho-lambda"


class TestAdaptiveEndToEnd:
    """The headline behaviour: adaptivity is never much worse than the
    better fixed policy, on either side of the threshold."""

    @pytest.mark.parametrize("u", [0.45, 0.95])
    def test_adaptive_tracks_best_fixed_policy(self, u):
        k = 3
        rho = u / k
        stream = VBRVideoSource(rho).generate(8.0, rng=17).fragment(0.002)
        envs = [ArrivalEnvelope(max(stream.empirical_sigma(rho), 1e-6), rho)] * k
        results = {
            mode: simulate_fluid_host(
                [stream] * k, envs, mode=mode,
                discipline="adversarial", dt=1e-3,
            ).worst_case_delay
            for mode in ("sigma-rho", "sigma-rho-lambda", "adaptive")
        }
        best_fixed = min(results["sigma-rho"], results["sigma-rho-lambda"])
        assert results["adaptive"] <= best_fixed * 1.2 + 1e-3

    def test_mode_flips_across_threshold(self):
        k = 3
        rho_star = homogeneous_threshold(k)
        mk = lambda rho: AdaptiveController(
            [ArrivalEnvelope(0.05, rho)] * k
        ).select_mode()
        assert mk(rho_star * 0.9) is ControlMode.SIGMA_RHO
        assert mk(rho_star * 1.05) is ControlMode.SIGMA_RHO_LAMBDA


class TestTransitStubPipeline:
    def test_multigroup_world_on_transit_stub(self):
        """The whole pipeline runs on the alternative underlay."""
        g = transit_stub_backbone(3, 2, 4, rng=8)
        net = attach_hosts(g, 40, rng=8)
        mgn = MultiGroupNetwork.fully_joined(net, 3, rng=8)
        trees = mgn.build_all_trees("dsct", rng=8)
        assert all(t.size == 40 for t in trees)
        u = 0.9
        rho = u / 3
        stream = VBRVideoSource(rho).generate(3.0, rng=8).fragment(0.002)
        envs = [ArrivalEnvelope(max(stream.empirical_sigma(rho), 1e-6), rho)] * 3
        res = simulate_multicast_tree(
            trees, 0, [stream] * 3, envs, mgn.latency,
            mode="sigma-rho-lambda", discipline="fifo",
        )
        assert set(res.per_receiver_worst) == trees[0].members()


class TestChurnThenSimulate:
    def test_tree_survives_churn_and_still_simulates(self):
        g = transit_stub_backbone(2, 2, 4, rng=9)
        net = attach_hosts(g, 30, rng=9)
        rtt = host_rtt_matrix(net)
        mgn = MultiGroupNetwork.fully_joined(net, 3, rng=9)
        trees = mgn.build_all_trees("dsct", rng=9)
        churn = ChurnSimulator(
            trees[0], rtt,
            standby=[],  # leave-only churn over the full membership
        )
        for _ in range(8):
            if churn.tree.size <= 3:
                break
            churn.step(rng=3)
        shrunk = churn.tree
        rho = 0.25
        stream = VBRVideoSource(rho).generate(2.0, rng=9).fragment(0.002)
        envs = [ArrivalEnvelope(max(stream.empirical_sigma(rho), 1e-6), rho)] * 3
        res = simulate_multicast_tree(
            [shrunk, trees[1], trees[2]], 0, [stream] * 3, envs, mgn.latency,
            mode="sigma-rho", discipline="fifo",
        )
        assert set(res.per_receiver_worst) == shrunk.members()


class TestDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self):
        def run():
            g = transit_stub_backbone(2, 2, 3, rng=4)
            net = attach_hosts(g, 24, rng=4)
            mgn = MultiGroupNetwork.fully_joined(net, 2, rng=4)
            trees = mgn.build_all_trees("nice", rng=4)
            rho = 0.3
            stream = VBRVideoSource(rho).generate(2.0, rng=4).fragment(0.002)
            envs = [
                ArrivalEnvelope(max(stream.empirical_sigma(rho), 1e-6), rho)
            ] * 2
            res = simulate_multicast_tree(
                trees, 0, [stream] * 2, envs, mgn.latency, mode="sigma-rho",
            )
            return res.worst_case_delay, res.worst_receiver

        assert run() == run()
