"""Loss injection and delivery accounting.

The paper's future work: "to study the algorithms on other QoS
requirements (e.g., error control and packet loss) in multicast
communications".  This module provides the substrate for that study:

* :class:`LossyLink` -- a DES component that drops packets with a
  configurable Bernoulli probability and/or during deterministic
  outage windows (burst loss), forwarding survivors after a fixed
  propagation delay;
* :class:`LossAccountant` -- per-flow delivered/dropped bookkeeping so
  experiments can report loss rates next to worst-case delays.

Regulators interact with loss in a way worth measuring: a vacation
regulator *upstream* of a lossy link shapes bursts away, which reduces
the number of packets exposed to an outage window (tested in
``tests/test_loss.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative, check_probability

__all__ = ["LossyLink", "LossAccountant"]


class LossAccountant:
    """Per-flow delivered/dropped counters."""

    def __init__(self) -> None:
        self.delivered: dict[int, int] = {}
        self.dropped: dict[int, int] = {}
        self.delivered_data: dict[int, float] = {}
        self.dropped_data: dict[int, float] = {}

    def record_delivery(self, pkt: Packet) -> None:
        self.delivered[pkt.flow_id] = self.delivered.get(pkt.flow_id, 0) + 1
        self.delivered_data[pkt.flow_id] = (
            self.delivered_data.get(pkt.flow_id, 0.0) + pkt.size
        )

    def record_drop(self, pkt: Packet) -> None:
        self.dropped[pkt.flow_id] = self.dropped.get(pkt.flow_id, 0) + 1
        self.dropped_data[pkt.flow_id] = (
            self.dropped_data.get(pkt.flow_id, 0.0) + pkt.size
        )

    def loss_rate(self, flow_id: Optional[int] = None) -> float:
        """Dropped packets / offered packets (0 when nothing offered)."""
        if flow_id is None:
            d = sum(self.dropped.values())
            t = d + sum(self.delivered.values())
        else:
            d = self.dropped.get(flow_id, 0)
            t = d + self.delivered.get(flow_id, 0)
        return d / t if t else 0.0


class LossyLink:
    """A link with propagation delay, random loss and outage windows.

    Parameters
    ----------
    sim:
        The simulator.
    sink:
        Downstream component for surviving packets.
    delay:
        One-way propagation delay (seconds).
    loss_probability:
        Independent Bernoulli drop probability per packet.
    outages:
        Optional ``(start, end)`` windows during which *every* packet is
        dropped (burst loss / transient partition).
    rng:
        Seed/generator for the Bernoulli draws.
    accountant:
        Optional shared :class:`LossAccountant`.
    """

    def __init__(
        self,
        sim: Simulator,
        sink,
        *,
        delay: float = 0.0,
        loss_probability: float = 0.0,
        outages: Optional[Sequence[tuple[float, float]]] = None,
        rng: RandomSource = None,
        accountant: Optional[LossAccountant] = None,
    ):
        self.sim = sim
        self.sink = sink
        self.delay = check_non_negative(delay, "delay")
        self.loss_probability = check_probability(
            loss_probability, "loss_probability"
        )
        self.outages = [
            (float(s), float(e)) for s, e in (outages or [])
        ]
        for s, e in self.outages:
            if e < s:
                raise ValueError(f"outage window ({s}, {e}) has end < start")
        self._rng = ensure_rng(rng)
        self.accountant = accountant or LossAccountant()

    def _in_outage(self, t: float) -> bool:
        return any(s <= t < e for s, e in self.outages)

    def receive(self, packet: Packet) -> None:
        now = self.sim.now
        if self._in_outage(now) or (
            self.loss_probability > 0.0
            and self._rng.random() < self.loss_probability
        ):
            self.accountant.record_drop(packet)
            return
        self.accountant.record_delivery(packet)
        if self.delay > 0.0:
            self.sim.schedule_in(self.delay, self.sink.receive, packet)
        else:
            self.sink.receive(packet)
