"""Batched scenario-runner throughput (scenarios/sec).

The scenario matrix is only a usable regression net if sweeping
hundreds of cells stays cheap; these benchmarks time the three cost
centres -- generation, the vectorised analytic pass, and the full
realise+simulate+verdict pipeline -- and assert generous throughput
floors so CI noise does not flake.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.runtime import ProcessExecutor
from repro.scenarios import generate_scenarios, run_batch
from repro.scenarios.analytic import batch_bounds

#: Worker count of the parallel throughput benchmark.
PARALLEL_JOBS = 4
#: Speedup floor asserted when the hardware can actually host the
#: workers; recorded (extra_info) but not asserted on smaller boxes,
#: where process parallelism cannot beat serial by construction.
SPEEDUP_FLOOR = 2.0


def test_generate_200_scenarios(benchmark):
    scenarios = benchmark(generate_scenarios, 200, 0)
    assert len(scenarios) == 200


def test_vectorised_analytic_pass(benchmark):
    """The batched bound evaluation over 200 realised envelope sets."""
    scenarios = generate_scenarios(200, seed=0)
    envs, modes = [], []
    for sc in scenarios:
        e = sc.realise_envelopes(sc.realise_traces(mtu=None))
        envs.append(e)
        modes.append(sc.effective_mode(e))
    bounds, baselines = benchmark(batch_bounds, envs, modes)
    assert bounds.shape == (200,)
    assert baselines.shape == (200,)


def test_batched_runner_throughput(benchmark, artifact_report):
    """End-to-end matrix evaluation: realise, simulate, verdict."""
    scenarios = generate_scenarios(100, seed=0)
    report = run_once(benchmark, run_batch, scenarios)
    assert not report.violations
    # Floor: the 100-cell matrix must stream at >= 10 scenarios/s
    # (observed ~100/s; an order of magnitude of headroom for CI).
    assert report.scenarios_per_sec >= 10.0
    artifact_report.append(
        "== Scenario matrix throughput ==\n"
        + "\n".join(report.summary_lines())
    )


def test_parallel_vs_serial_throughput(benchmark, artifact_report):
    """Parallel campaign speedup over the serial runner (same matrix).

    The speedup lands in the benchmark JSON (``extra_info``) so runs on
    different hardware are comparable; the >= 2x floor at 4 workers is
    asserted only where >= 4 cores exist -- on smaller machines process
    parallelism cannot win and the number is recorded as-is.
    """
    scenarios = generate_scenarios(96, seed=0)
    t0 = time.perf_counter()
    serial = run_batch(scenarios)
    serial_elapsed = time.perf_counter() - t0
    parallel = run_once(
        benchmark, run_batch, scenarios,
        executor=ProcessExecutor(jobs=PARALLEL_JOBS),
    )
    assert not serial.violations and not parallel.violations
    # Identical verdicts either way (the determinism contract).
    assert [o.measured for o in parallel.outcomes] == [
        o.measured for o in serial.outcomes
    ]
    speedup = serial_elapsed / parallel.elapsed if parallel.elapsed else 0.0
    cores = os.cpu_count() or 1
    benchmark.extra_info["jobs"] = PARALLEL_JOBS
    benchmark.extra_info["cpu_count"] = cores
    benchmark.extra_info["serial_scenarios_per_sec"] = round(
        serial.scenarios_per_sec, 1
    )
    benchmark.extra_info["parallel_scenarios_per_sec"] = round(
        parallel.scenarios_per_sec, 1
    )
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    if cores >= PARALLEL_JOBS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{PARALLEL_JOBS}-worker campaign only {speedup:.2f}x over serial"
        )
    artifact_report.append(
        "== Parallel campaign speedup ==\n"
        f"cells: {len(scenarios)}, jobs: {PARALLEL_JOBS}, cores: {cores}\n"
        f"serial:   {serial.scenarios_per_sec:.1f} scenarios/s\n"
        f"parallel: {parallel.scenarios_per_sec:.1f} scenarios/s\n"
        f"speedup:  {speedup:.2f}x"
        + ("" if cores >= PARALLEL_JOBS else "  (floor not asserted: too few cores)")
    )
