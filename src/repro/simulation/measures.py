"""Delay measurement and aggregation.

:class:`DelayRecorder` is the terminal sink of a simulated pipeline: it
timestamps packet deliveries against their source emission times.
:class:`DelayStats` summarises a set of recorded delays (the worst-case
delay is *the* metric of the paper; mean and percentiles are kept for
diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DelayStats", "DelayRecorder"]


@dataclass(frozen=True)
class DelayStats:
    """Summary statistics of a collection of packet delays (seconds)."""

    count: int
    worst: float
    mean: float
    p50: float
    p99: float

    @classmethod
    def from_delays(cls, delays: np.ndarray) -> "DelayStats":
        d = np.asarray(delays, dtype=np.float64)
        if d.size == 0:
            return cls(count=0, worst=0.0, mean=0.0, p50=0.0, p99=0.0)
        return cls(
            count=int(d.size),
            worst=float(d.max()),
            mean=float(d.mean()),
            p50=float(np.percentile(d, 50)),
            p99=float(np.percentile(d, 99)),
        )


class DelayRecorder:
    """A sink component recording end-to-end delays per flow.

    Any object with a ``receive(packet)`` method can terminate a
    pipeline; this one remembers ``now - packet.t_emit`` for every
    delivery, keyed by flow.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._delays: dict[int, list[float]] = {}
        self._arrival_times: dict[int, list[float]] = {}
        self._sizes: dict[int, list[float]] = {}

    def receive(self, packet) -> None:
        self._delays.setdefault(packet.flow_id, []).append(
            self._sim.now - packet.t_emit
        )
        self._arrival_times.setdefault(packet.flow_id, []).append(self._sim.now)
        self._sizes.setdefault(packet.flow_id, []).append(packet.size)

    def receive_batch(self, packets) -> None:
        """Record several packets delivered at the current instant (one
        busy period released by a batched MUX)."""
        now = self._sim.now
        for packet in packets:
            self._delays.setdefault(packet.flow_id, []).append(
                now - packet.t_emit
            )
            self._arrival_times.setdefault(packet.flow_id, []).append(now)
            self._sizes.setdefault(packet.flow_id, []).append(packet.size)

    # -- queries ---------------------------------------------------------
    def flows(self) -> list[int]:
        return sorted(self._delays)

    def delays(self, flow_id: int | None = None) -> np.ndarray:
        """Recorded delays for one flow (or all flows concatenated)."""
        if flow_id is not None:
            return np.asarray(self._delays.get(flow_id, ()), dtype=np.float64)
        if not self._delays:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(
            [np.asarray(v, dtype=np.float64) for v in self._delays.values()]
        )

    def stats(self, flow_id: int | None = None) -> DelayStats:
        return DelayStats.from_delays(self.delays(flow_id))

    def worst_case_delay(self, flow_id: int | None = None) -> float:
        d = self.delays(flow_id)
        return float(d.max()) if d.size else 0.0

    def received_total(self, flow_id: int) -> float:
        """Total data received for a flow (conservation checks in tests)."""
        return float(np.sum(self._sizes.get(flow_id, ())))
