"""Capacity-aware tree variants (the strategy the paper argues against).

Capacity-aware EMcast protocols "assign the direct child members for
each end host based on the end host output capacity", avoiding
bottlenecks at the price of deeper trees (Fig. 1 of the paper: with
``C = 5 rho`` a host serves 5 children for one group but only
``floor(5rho/2rho) = 2`` once it joins two groups).

:func:`capacity_degree_bound` computes that fan-out limit; the tree
builders reuse the DSCT/NICE cluster machinery with per-host cluster
size caps so a host never cores more children than its capacity can
forward at the aggregate group rate.  The cap *shrinks as the traffic
rate grows*, which is why the capacity-aware rows of Tables I-III
deepen with the average input rate while the regulated DSCT stays flat.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.overlay.dsct import build_dsct_tree
from repro.overlay.nice import build_nice_tree
from repro.overlay.tree import MulticastTree
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive

__all__ = [
    "capacity_degree_bound",
    "capacity_aware_dsct",
    "capacity_aware_nice",
]


def capacity_degree_bound(
    capacity: float, aggregate_rate: float, *, minimum: int = 1
) -> int:
    """Maximum children a host can serve: ``floor(capacity / aggregate_rate)``.

    ``aggregate_rate`` is the total rate the host forwards per child
    (the sum of its joined groups' flow rates -- ``K rho`` for K
    homogeneous groups); Fig. 1's ``floor(5rho / 2rho) = 2`` rule.
    """
    check_positive(capacity, "capacity")
    check_positive(aggregate_rate, "aggregate_rate")
    return max(minimum, int(np.floor(capacity / aggregate_rate)))


class _FanoutBudget:
    """Per-host remaining fan-out budget, cumulative across layers.

    A host that cores several layers accumulates children; the tree
    builders call :meth:`charge` after each cluster is formed (see
    ``layer_once``), so the cap binds to the host's *total* children.
    The budget is callable so it can be passed as ``size_cap_per_seed``
    (the seed of a cluster becomes its core under
    ``core_policy="capacity"``, hence the cap binds to the right host).
    """

    def __init__(self, bound_per_host: dict[int, int]):
        self._remaining = dict(bound_per_host)

    def __call__(self, seed: int) -> int:
        # Cluster = core + children; at least 1 (a lone host).  A
        # quarter of the remaining budget is held back per layer: a core
        # that exhausted itself at the bottom layer would reach the
        # upper layers with no capacity left, forcing over-budget
        # minimum-size clusters there.  The reserve keeps the cumulative
        # spend within the initial bound (geometric series) while still
        # filling ~75% of each host's capacity -- the high per-host
        # utilisation that gives the capacity-aware scheme its paper
        # behaviour (better than (sigma, rho), worse than
        # (sigma, rho, lambda) beyond the threshold).
        remaining = max(self._remaining.get(seed, 0), 0)
        if remaining <= 2:
            spendable = remaining
        else:
            spendable = remaining - max((remaining + 7) // 8, 1)
        return 1 + spendable

    def charge(self, core: int, n_children: int) -> None:
        if core in self._remaining:
            self._remaining[core] -= n_children


def _degree_bounds(
    members: Sequence[int],
    host_capacity: Sequence[float],
    aggregate_rate: float,
) -> dict[int, int]:
    return {
        int(m): capacity_degree_bound(float(host_capacity[m]), aggregate_rate)
        for m in members
    }


def capacity_aware_dsct(
    source: int,
    members: Sequence[int],
    rtt: np.ndarray,
    host_router: Sequence[int],
    host_capacity: Sequence[float],
    aggregate_rate: float,
    *,
    k: int = 3,
    rng: RandomSource = None,
) -> MulticastTree:
    """Capacity-aware DSCT: cluster sizes capped by each core's capacity.

    ``host_capacity[h]`` is host ``h``'s output capacity in units of the
    normalised link (``C = 1``); ``aggregate_rate`` is the summed rate
    of the flows each host forwards (``K * rho_flow``).
    """
    budget = _FanoutBudget(_degree_bounds(members, host_capacity, aggregate_rate))
    return build_dsct_tree(
        source, members, rtt, host_router,
        k=k, rng=rng, core_policy="capacity",
        size_cap_per_seed=budget, fill_to_capacity=True,
    )


def capacity_aware_nice(
    source: int,
    members: Sequence[int],
    rtt: np.ndarray,
    host_capacity: Sequence[float],
    aggregate_rate: float,
    *,
    k: int = 3,
    rng: RandomSource = None,
) -> MulticastTree:
    """Capacity-aware NICE: the location-unaware counterpart."""
    budget = _FanoutBudget(_degree_bounds(members, host_capacity, aggregate_rate))
    return build_nice_tree(
        source, members, rtt,
        k=k, rng=rng, core_policy="capacity",
        size_cap_per_seed=budget, fill_to_capacity=True,
    )
