"""Lease-based work-stealing coordination (repro.runtime.coordinator).

The contract under test is the PR's headline invariant: leases change
*who* runs a cell, never its seed or record, so ``summary.json`` after
any combination of steals, splits, injected worker kills, hangs and
coordinator restarts is byte-identical to an undisturbed serial run.
"""

import time

import pytest

from repro.runtime import (
    FaultPlan,
    LeaseTable,
    RetryPolicy,
    open_store,
    run_campaign,
)
from repro.runtime.coordinator import (
    allowed_deaths,
    plan_campaign_leases,
    run_coordinator,
    work_store,
)
from repro.runtime.cost import CellCostModel, plan_leases
from repro.runtime.store import cell_key
from repro.runtime.telemetry import lease_rows, lease_summary
from repro.scenarios import generate_scenarios

pytestmark = pytest.mark.runtime

N_CELLS = 12
SEED = 7


@pytest.fixture(scope="module")
def matrix():
    return generate_scenarios(N_CELLS, seed=SEED, horizon=0.6)


@pytest.fixture(scope="module")
def reference_summary(matrix, tmp_path_factory):
    """summary.json bytes from an undisturbed serial run."""
    root = tmp_path_factory.mktemp("reference")
    report = run_campaign(matrix, store=root)
    assert report.clean
    return (root / "summary.json").read_bytes()


def _summary_bytes(store_root) -> bytes:
    return (store_root / "summary.json").read_bytes()


# ----------------------------------------------------------------------
# The lease table (CAS claim/steal/renew/finish/split, synthetic clock)
# ----------------------------------------------------------------------
class TestLeaseTable:
    def _table(self, tmp_path) -> LeaseTable:
        return LeaseTable(tmp_path / "leases.sqlite")

    @staticmethod
    def _lease(cost, n_cells=1, deaths=0):
        return {
            "cells": [{"key": f"k{cost}-{i}"} for i in range(n_cells)],
            "cost": cost,
            "deaths": deaths,
        }

    def test_claim_is_dearest_first_cas(self, tmp_path):
        lt = self._table(tmp_path)
        lt.add_many([self._lease(1.0), self._lease(3.0), self._lease(2.0)])
        a = lt.claim("wa", ttl=10.0, now=100.0)
        b = lt.claim("wb", ttl=10.0, now=100.0)
        assert (a["cost"], b["cost"]) == (3.0, 2.0)
        assert a["state"] == "active" and a["worker"] == "wa"
        assert a["deadline"] == 110.0
        lt.claim("wc", ttl=10.0, now=100.0)
        assert lt.claim("wd", ttl=10.0, now=100.0) is None

    def test_steal_waits_for_the_deadline(self, tmp_path):
        lt = self._table(tmp_path)
        lt.add_many([self._lease(1.0)])
        held = lt.claim("wa", ttl=10.0, now=100.0)
        assert lt.steal("wb", ttl=10.0, now=105.0) is None
        stolen = lt.steal("wb", ttl=10.0, now=111.0)
        assert stolen["id"] == held["id"]
        assert stolen["worker"] == "wb"
        assert stolen["deaths"] == 1 and stolen["steals"] == 1
        assert stolen["deadline"] == 121.0

    def test_renew_is_holder_checked(self, tmp_path):
        lt = self._table(tmp_path)
        (lid,) = lt.add_many([self._lease(1.0)])
        lt.claim("wa", ttl=10.0, now=100.0)
        assert lt.renew(lid, "wa", ttl=10.0, now=105.0)
        assert not lt.renew(lid, "wb", ttl=10.0, now=105.0)
        # A renew that lands after the steal tells the old holder to
        # abandon: the thief owns the cells now.
        lt.steal("wb", ttl=10.0, now=120.0)
        assert not lt.renew(lid, "wa", ttl=10.0, now=121.0)

    def test_finish_is_holder_checked_and_terminal(self, tmp_path):
        lt = self._table(tmp_path)
        (lid,) = lt.add_many([self._lease(1.0)])
        lt.claim("wa", ttl=10.0, now=100.0)
        assert not lt.finish(lid, "wb")
        assert lt.finish(lid, "wa")
        assert lt.rows()[0]["state"] == "done"
        assert lt.unfinished() == 0
        with pytest.raises(ValueError):
            lt.finish(lid, "wa", state="open")

    def test_split_replaces_a_held_lease_with_children(self, tmp_path):
        lt = self._table(tmp_path)
        (lid,) = lt.add_many([self._lease(6.0, n_cells=3)])
        lease = lt.claim("wa", ttl=10.0, now=100.0)
        children = lt.split(
            lid,
            "wa",
            [
                {"cells": [c], "cost": 2.0, "deaths": 1}
                for c in lease["cells"]
            ],
        )
        assert len(children) == 3
        states = {r["id"]: r["state"] for r in lt.rows()}
        assert states[lid] == "split"
        assert all(states[c] == "open" for c in children)
        child = lt.claim("wb", ttl=10.0, now=101.0)
        assert child["deaths"] == 1  # kill history survives the split

    def test_supersede_incomplete_reclaims_open_and_active(self, tmp_path):
        lt = self._table(tmp_path)
        ids = lt.add_many(
            [self._lease(1.0), self._lease(2.0, deaths=2), self._lease(3.0)]
        )
        lt.claim("wa", ttl=10.0, now=100.0)
        lt.finish(ids[2], None, "done")  # claim took the dearest: ids[2]
        stale = lt.supersede_incomplete()
        assert {r["id"] for r in stale} == set(ids[:2])
        assert max(r["deaths"] for r in stale) == 2
        states = {r["id"]: r["state"] for r in lt.rows()}
        assert states[ids[0]] == states[ids[1]] == "reclaimed"
        assert states[ids[2]] == "done"
        assert lt.unfinished() == 0

    def test_heartbeats_upsert_per_worker(self, tmp_path):
        lt = self._table(tmp_path)
        lt.beat("wa", 100.0, None, 123)
        lt.beat("wa", 105.0, 7, 123)
        lt.beat("wb", 101.0)
        rows = {hb["worker"]: hb for hb in lt.heartbeat_rows()}
        assert rows["wa"]["beat"] == 105.0 and rows["wa"]["lease"] == 7
        assert rows["wb"]["pid"] is None

    def test_tables_upgrade_old_stores_in_place(self, tmp_path):
        # A pre-PR-10 store has no lease tables; .leases() must create
        # them on connect without touching existing records.
        st = open_store(f"sqlite:{tmp_path / 'camp'}")
        st.append({"key": "aa", "sound": True})
        lt = st.leases()
        lt.add_many([self._lease(1.0)])
        assert lt.unfinished() == 1
        assert set(st.load()) == {"aa"}
        st.close()

    def test_jsonl_backend_uses_a_sidecar(self, tmp_path):
        st = open_store(f"jsonl:{tmp_path / 'camp'}")
        st.leases().add_many([self._lease(1.0)])
        assert (st.root / "leases.sqlite").exists()
        # The sidecar alone is store evidence: workers may open a
        # coordinated store before the first record lands.
        again = open_store(st.root, must_exist=True)
        assert again.kind == "jsonl"
        st.close()


# ----------------------------------------------------------------------
# Lease planning
# ----------------------------------------------------------------------
class TestLeasePlanning:
    def test_plan_leases_is_an_exact_cover(self):
        costs = [float(1 + (i * 7) % 5) for i in range(37)]
        for workers in (1, 2, 5, 50):
            groups = plan_leases(costs, workers, max_cells=8)
            flat = [i for g in groups for i in g]
            assert sorted(flat) == list(range(len(costs)))
            assert all(1 <= len(g) <= 8 for g in groups)

    def test_plan_leases_leads_with_the_dearest_work(self):
        costs = [1.0, 9.0, 2.0, 8.0, 3.0]
        groups = plan_leases(costs, 2, max_cells=2)
        lease_costs = [sum(costs[i] for i in g) for g in groups]
        assert lease_costs[0] == max(lease_costs)
        assert lease_costs[-1] == min(lease_costs)

    def test_plan_campaign_leases_rows(self, matrix, tmp_path):
        st = open_store(f"sqlite:{tmp_path / 'camp'}")
        poisoned = cell_key(matrix[0])
        ids = plan_campaign_leases(
            st, matrix, 2, deaths={poisoned: 3}
        )
        rows = {r["id"]: r for r in st.leases().rows()}
        assert set(ids) == set(rows)
        cells = [c for r in rows.values() for c in r["cells"]]
        assert sorted(c["key"] for c in cells) == sorted(
            cell_key(sc) for sc in matrix
        )
        spec_fields = set(cells[0]["spec"])
        assert {"name", "seed"} <= spec_fields  # self-contained payloads
        inherited = {
            r["deaths"]
            for r in rows.values()
            if any(c["key"] == poisoned for c in r["cells"])
        }
        assert inherited == {3}
        assert plan_campaign_leases(st, [], 2) == []
        st.close()

    def test_death_budget_tracks_retry_policy(self):
        assert allowed_deaths(None) == 2
        assert allowed_deaths(RetryPolicy(max_attempts=1)) == 2
        assert allowed_deaths(RetryPolicy(max_attempts=5)) == 5


# ----------------------------------------------------------------------
# Workers (in-process, injectable clock)
# ----------------------------------------------------------------------
class TestWorkStore:
    def test_single_worker_drain_matches_serial(
        self, matrix, tmp_path, reference_summary
    ):
        url = f"sqlite:{tmp_path / 'camp'}"
        st = open_store(url)
        planned = plan_campaign_leases(st, matrix, 2)
        report = work_store(url, "w1", lease_ttl=30.0)
        assert report.leases_done == len(planned)
        assert report.cells_evaluated == N_CELLS
        assert report.leases_stolen == 0 and report.leases_poisoned == 0
        lt = st.leases()
        assert lt.unfinished() == 0
        assert lt.counts() == {"done": len(planned)}
        st.write_summary()
        assert _summary_bytes(st.root) == reference_summary
        st.close()

    def test_steal_split_rerun_matches_serial(
        self, matrix, tmp_path, reference_summary
    ):
        """A SIGKILLed holder's lease is stolen, split for culprit
        isolation, re-run with the death on record -- byte-identically."""
        url = f"jsonl:{tmp_path / 'camp'}"
        st = open_store(url)
        plan_campaign_leases(st, matrix, 1)  # workers=1 -> multi-cell head
        # A ghost worker claimed leases -- dearest first, up to and
        # including a multi-cell one -- and died: every deadline it
        # held is already far in the past.
        held = []
        while True:
            lease = st.leases().claim("ghost", ttl=5.0, now=time.time() - 1000)
            assert lease is not None, "no multi-cell lease in the plan"
            held.append(lease)
            if len(lease["cells"]) > 1:
                break
        reclaimed_cells = sum(len(l["cells"]) for l in held)
        report = work_store(
            url, "thief", lease_ttl=30.0, retry=RetryPolicy(max_attempts=2)
        )
        assert report.leases_stolen == len(held)
        assert report.leases_split == 1
        assert report.cells_evaluated == N_CELLS
        assert st.leases().unfinished() == 0
        st.write_summary()
        assert _summary_bytes(st.root) == reference_summary
        # The reclaim is visible in telemetry: attempt-ledger entries
        # citing the lease death plus one kind="lease" row per lease.
        tele = st.load_telemetry()
        ledger = [
            t
            for t in tele
            if t.get("kind") == "attempts"
            and any("reclaimed" in f for f in t.get("faults", ()))
        ]
        assert len(ledger) == reclaimed_cells
        assert all(t["disposition"] == "recovered" for t in ledger)
        leases = lease_rows(tele)
        assert sum(r["deaths"] for r in leases) == reclaimed_cells
        st.close()

    def test_death_budget_routes_cells_to_poison(self, matrix, tmp_path):
        url = f"sqlite:{tmp_path / 'camp'}"
        st = open_store(url)
        killer = matrix[0]
        plan_campaign_leases(
            st, [killer], 1, deaths={cell_key(killer): 2}
        )
        report = work_store(url, "w1", lease_ttl=30.0)
        assert report.leases_poisoned == 1 and report.cells_poisoned == 1
        assert report.leases_done == 0
        assert st.leases().counts() == {"poison": 1}
        record = st.load()[cell_key(killer)]
        assert "poison channel" in record["error"]
        (diag,) = st.load_poison()
        assert diag["key"] == cell_key(killer)
        assert diag["worker"] == "w1" and diag["attempts"] == 2
        # The error record keeps the cell resumable: a later campaign
        # with a bigger budget retries exactly this cell.
        assert st.completed_keys() == set()
        st.close()

    def test_worker_returns_when_no_work_remains(self, tmp_path):
        url = f"sqlite:{tmp_path / 'camp'}"
        open_store(url).close()
        report = work_store(url, "w1", lease_ttl=1.0)
        assert report.leases_done == 0 and report.cells_evaluated == 0


# ----------------------------------------------------------------------
# The coordinator (real worker subprocesses, injected chaos)
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_clean_coordinated_run_matches_serial(
        self, matrix, tmp_path, reference_summary
    ):
        coord = run_coordinator(
            matrix, store=f"sqlite:{tmp_path / 'camp'}", workers=2,
            lease_ttl=20.0,
        )
        assert coord.converged and coord.clean
        assert coord.summary["cells"] == N_CELLS
        assert _summary_bytes(tmp_path / "camp") == reference_summary
        # Resume for free: a second coordinator plans nothing.
        again = run_coordinator(
            matrix, store=f"sqlite:{tmp_path / 'camp'}", workers=2,
            lease_ttl=20.0,
        )
        assert again.skipped == N_CELLS and again.planned_leases == 0
        assert _summary_bytes(tmp_path / "camp") == reference_summary

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_killed_workers_mid_lease_converge_byte_identical(
        self, matrix, tmp_path, reference_summary, backend
    ):
        """Real SIGKILLs mid-lease: the fault plan kills the worker
        process between renewals; survivors steal and converge."""
        plan = FaultPlan(seed=SEED, rate=0.3, kinds=("kill",), store_rate=0.0)
        coord = run_coordinator(
            matrix,
            store=f"{backend}:{tmp_path / 'camp'}",
            workers=2,
            lease_ttl=2.0,
            retry=RetryPolicy(max_attempts=4, seed=SEED),
            fault_plan=plan,
        )
        assert coord.converged and coord.clean
        assert coord.worker_deaths >= 1  # chaos actually fired
        assert coord.stolen_leases >= 1
        assert _summary_bytes(tmp_path / "camp") == reference_summary
        st = open_store(tmp_path / "camp")
        digest = lease_summary(st.load_telemetry())
        assert digest["converged"] and digest["stolen"] == coord.stolen_leases
        st.close()

    def test_hung_worker_heartbeat_lapse_is_stolen(
        self, matrix, tmp_path, reference_summary
    ):
        """A hung cell never renews its lease: the deadline lapses, a
        live worker steals, and the woken holder abandons cleanly."""
        plan = FaultPlan(
            seed=SEED, rate=0.25, kinds=("hang",), store_rate=0.0, hang_s=2.5
        )
        coord = run_coordinator(
            matrix,
            store=f"sqlite:{tmp_path / 'camp'}",
            workers=2,
            lease_ttl=1.0,
            retry=RetryPolicy(max_attempts=4, seed=SEED),
            fault_plan=plan,
        )
        assert coord.converged and coord.clean
        assert coord.stolen_leases >= 1
        assert _summary_bytes(tmp_path / "camp") == reference_summary

    def test_restarted_coordinator_supersedes_and_converges(
        self, matrix, tmp_path, reference_summary
    ):
        """A dead coordinator's plan -- open leases plus one a worker
        still held -- is superseded wholesale by its successor."""
        url = f"sqlite:{tmp_path / 'camp'}"
        st = open_store(url)
        planned = plan_campaign_leases(st, matrix, 2)
        st.leases().claim("orphan", ttl=300.0, now=time.time())
        st.close()
        coord = run_coordinator(matrix, store=url, workers=2, lease_ttl=20.0)
        assert coord.superseded_leases == len(planned)
        assert coord.converged and coord.clean
        assert _summary_bytes(tmp_path / "camp") == reference_summary

    def test_rejects_zero_workers(self, matrix, tmp_path):
        with pytest.raises(ValueError):
            run_coordinator(matrix, store=tmp_path / "camp", workers=0)


# ----------------------------------------------------------------------
# CLI surface (scenarios work / scenarios run --coordinator)
# ----------------------------------------------------------------------
class TestCoordinatorCli:
    def test_work_drains_a_planned_store(self, matrix, tmp_path, capsys):
        from repro.experiments.cli import main

        url = f"sqlite:{tmp_path / 'camp'}"
        st = open_store(url)
        plan_campaign_leases(st, matrix, 2)
        st.close()
        assert main(["scenarios", "work", url, "--worker-id", "w1"]) == 0
        out = capsys.readouterr().out
        assert "Lease worker" in out
        assert f"{N_CELLS} cells evaluated" in out

    def test_run_coordinator_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert (
            main(
                ["scenarios", "run", "--count", "6", "--seed", "3",
                 "--no-corpus", "--store", str(tmp_path / "camp"),
                 "--coordinator", "2", "--lease-ttl", "20"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Coordinated campaign summary" in out
        assert "leases:" in out

    def test_coordinator_validations(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):  # needs a store
            main(["scenarios", "run", "--count", "2", "--coordinator", "2"])
        with pytest.raises(SystemExit):  # sharding is the other topology
            main(["scenarios", "run", "--count", "2", "--coordinator", "2",
                  "--store", str(tmp_path / "c"), "--shard", "0/2"])
        with pytest.raises(SystemExit):  # lease TTL is a coordinator knob
            main(["scenarios", "run", "--count", "2", "--lease-ttl", "5",
                  "--store", str(tmp_path / "c")])
        with pytest.raises(SystemExit):  # worker id is mandatory
            main(["scenarios", "work", str(tmp_path / "c")])
