"""Argument-checking helpers with consistent error messages.

These helpers keep validation one-liners at public API boundaries while
producing uniform, actionable ``ValueError``/``TypeError`` messages.  They
all return the validated value so they can be used inline::

    self.rate = check_positive(rate, "rate")
"""

from __future__ import annotations

import math
from typing import Sequence


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0`` (and finite)."""
    value = _check_finite_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0`` (and finite)."""
    value = _check_finite_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    value = _check_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Require ``value`` to lie in the given (by default closed) interval."""
    value = _check_finite_number(value, name)
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Require ``value`` to be an integer ``>= 1``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Require ``value`` to be an integer ``>= 0``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Require two sequences to have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def _check_finite_number(value: float, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value
