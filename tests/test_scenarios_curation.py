"""Store-driven corpus curation: spec round-trips and promotion.

The curation loop (ROADMAP open item): campaign stores record each
cell's tightness plus (v2) its full spec, so cells that push measured
delay close to the analytic bound can be promoted into a re-runnable
curated corpus without the generating code.
"""

import dataclasses

import pytest

from repro.runtime import cell_key, outcome_record, run_campaign
from repro.scenarios import (
    curate_records,
    generate_scenarios,
    load_curated,
    run_batch,
    save_curated,
    scenario_from_dict,
)

pytestmark = pytest.mark.runtime


def _record(name="cell", *, tightness=0.95, sound=True, error=None, spec=True):
    sc = generate_scenarios(1, seed=41)[0]
    sc = dataclasses.replace(sc, name=name)
    rec = {
        "key": name,
        "name": name,
        "sound": sound,
        "error": error,
        "tightness": tightness,
    }
    if spec:
        rec["spec"] = dataclasses.asdict(sc)
    return rec


class TestSpecRoundtrip:
    def test_asdict_roundtrips_through_json_types(self):
        for sc in generate_scenarios(6, seed=13):
            payload = dataclasses.asdict(sc)
            # JSON turns tuples into lists; simulate that wire format.
            for field in ("kinds", "start_offsets", "tags"):
                payload[field] = list(payload[field])
            assert scenario_from_dict(payload) == sc

    def test_unknown_keys_rejected(self):
        payload = dataclasses.asdict(generate_scenarios(1, seed=13)[0])
        payload["frobnicate"] = True
        with pytest.raises(ValueError, match="frobnicate"):
            scenario_from_dict(payload)

    def test_validation_still_runs(self):
        payload = dataclasses.asdict(generate_scenarios(1, seed=13)[0])
        payload["mode"] = "nonsense"
        with pytest.raises(ValueError, match="mode"):
            scenario_from_dict(payload)


class TestCurateRecords:
    def test_promotes_tight_cells_tightest_first(self):
        records = [
            _record("loose", tightness=0.2),
            _record("tight", tightness=0.97),
            _record("tighter", tightness=0.99),
        ]
        promoted = curate_records(records, min_tightness=0.9)
        assert [sc.name for sc in promoted] == ["tighter", "tight"]

    def test_promoted_specs_keep_their_cell_keys(self):
        """Promotion must not decorate the spec: a curated cell has to
        resume/diff/shard in alignment with the store it came from."""
        rec = _record("tight", tightness=0.97)
        (promoted,) = curate_records([rec], min_tightness=0.9)
        assert cell_key(promoted) == cell_key(rec["spec"])

    def test_never_promotes_unsound_error_or_specless_cells(self):
        records = [
            _record("unsound", sound=False, tightness=1.5),
            _record("crashed", error="Traceback ...", tightness=0.99),
            _record("v1-record", tightness=0.99, spec=False),
            _record("nan", tightness=float("nan")),
            _record("good", tightness=0.95),
        ]
        promoted = curate_records(records, min_tightness=0.9)
        assert [sc.name for sc in promoted] == ["good"]

    def test_limit_and_dedup(self):
        records = [
            _record("a", tightness=0.99),
            _record("a", tightness=0.98),  # duplicate name: first wins
            _record("b", tightness=0.95),
            _record("c", tightness=0.94),
        ]
        promoted = curate_records(records, min_tightness=0.9, limit=2)
        assert [sc.name for sc in promoted] == ["a", "b"]

    def test_malformed_spec_skipped_not_raised(self):
        bad = _record("bad", tightness=0.99)
        bad["spec"]["mode"] = "nonsense"
        promoted = curate_records([bad, _record("ok", tightness=0.95)])
        assert [sc.name for sc in promoted] == ["ok"]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            curate_records([], min_tightness=0.0)
        with pytest.raises(ValueError):
            curate_records([], limit=0)


class TestCuratedCorpusFile:
    def test_save_load_roundtrip(self, tmp_path):
        scenarios = generate_scenarios(4, seed=17)
        path = save_curated(scenarios, tmp_path / "corpus.json")
        assert load_curated(path) == tuple(scenarios)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="scenarios"):
            load_curated(path)


class TestEndToEnd:
    def test_store_to_corpus_to_rerun(self, tmp_path):
        """Sweep -> promote from the store -> re-run the promoted cells."""
        matrix = generate_scenarios(8, seed=23, horizon=0.5)
        run_campaign(matrix, store=tmp_path / "camp")
        from repro.runtime import open_store

        records = open_store(tmp_path / "camp").load().values()
        promoted = curate_records(records, min_tightness=0.05, limit=3)
        assert promoted  # this matrix always has cells above 0.05
        path = save_curated(promoted, tmp_path / "corpus.json")
        rerun = run_batch(load_curated(path))
        assert not rerun.violations
        # Promoted specs re-realise bit-identically: same measurement.
        by_key = {rec["name"]: rec for rec in records}
        for outcome in rerun.outcomes:
            assert outcome.measured == by_key[outcome.scenario.name]["measured"]

    def test_outcome_record_spec_rebuilds_the_cell(self):
        sc = generate_scenarios(1, seed=29, horizon=0.5)[0]
        rec = outcome_record(run_batch([sc]).outcomes[0])
        assert scenario_from_dict(rec["spec"]) == sc
