"""Single regulated end host simulation (the paper's Simulation I).

Figure 3 of the paper: a source feeds K real-time flows through one
(sigma, rho, lambda)/(sigma, rho)-regulated end host towards a sink;
Figure 4 plots the measured worst-case delay of both regulator families
against the flows' average input rate.  :func:`simulate_regulated_host`
is that topology as a function: traces in, per-flow worst-case delays
out.

Control modes
-------------
``"sigma-rho"``
    per-flow token buckets feeding the MUX (the baseline).
``"sigma-rho-lambda"``
    the adaptive controller's staggered vacation regulators.
``"none"``
    no regulation (used by the capacity-aware scheme, where the tree --
    not a regulator -- limits load).
``"adaptive"``
    let :class:`~repro.core.adaptive.AdaptiveController` pick one of the
    first two from the measured average rate (the full algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController, ControlMode
from repro.simulation.batched import (
    PRIMED_MODES,
    BatchMuxServer,
    BatchVacationComponent,
    primed_adversarial_host,
    sigma_rho_departures,
    vacation_departures,
)
from repro.simulation.engine import Simulator
from repro.simulation.flow import PacketTrace
from repro.simulation.measures import DelayRecorder, DelayStats
from repro.simulation.mux_sim import MuxServer
from repro.simulation.packet import Packet
from repro.simulation.regulator_sim import TokenBucketComponent, VacationComponent
from repro.utils.validation import check_positive

__all__ = [
    "HostResult",
    "simulate_regulated_host",
    "build_regulated_host",
    "inject_trace",
    "resolve_mode",
]

#: Control-mode strings accepted by the builders.
MODES = ("sigma-rho", "sigma-rho-lambda", "none", "adaptive")

#: DES engines: ``"batched"`` (window-batched components plus the
#: closed-form primed fast paths, the default), ``"evented"`` (the
#: same window-batched components but *no* closed-form shortcuts --
#: the PR-3 behaviour, kept as the mid-rung of the equivalence ladder
#: and as the benchmark baseline the primed paths are measured
#: against) or ``"legacy"`` (the per-packet event chain, addressable
#: as ``backend="des_legacy"``).
ENGINES = ("batched", "evented", "legacy")

#: Engines built from the window-batched components.
_BATCH_ENGINES = ("batched", "evented")


@dataclass(frozen=True)
class HostResult:
    """Outcome of a single-host simulation."""

    mode: str
    worst_case_delay: float
    per_flow: tuple[DelayStats, ...]
    events: int
    #: Cancelled events popped off the heap (regulator wakeup churn);
    #: batch harnesses report it next to ``events`` so event-rate
    #: figures account for the lazy-cancellation residue.
    cancelled_events: int = 0
    #: Whether the cell resolved on a closed-form primed fast path
    #: (no event loop); the cost model prices primed cells separately.
    primed: bool = False

    def worst_flow(self) -> int:
        """Index of the flow with the largest worst-case delay."""
        return max(range(len(self.per_flow)), key=lambda i: self.per_flow[i].worst)


def inject_trace(
    sim: Simulator, trace: PacketTrace, flow_id: int, sink
) -> None:
    """Schedule every packet of ``trace`` for delivery into ``sink``.

    Uses the engine's batch-schedule API: one validation pass for the
    whole train, and time-sorted traces load the heap without per-event
    sift-ups.
    """
    sim.schedule_batch(
        trace.times,
        sink.receive,
        (
            (Packet(flow_id=flow_id, size=float(s), t_emit=float(t)),)
            for t, s in zip(trace.times, trace.sizes)
        ),
    )


def resolve_mode(
    mode: str, envelopes: Sequence[ArrivalEnvelope], capacity: float
) -> str:
    """Resolve ``"adaptive"`` into a concrete control mode, exactly the
    way :func:`build_regulated_host` does."""
    if mode != "adaptive":
        return mode
    ctrl = AdaptiveController(envelopes, capacity)
    return (
        "sigma-rho"
        if ctrl.select_mode() is ControlMode.SIGMA_RHO
        else "sigma-rho-lambda"
    )


class _PrimedEntry:
    """Entry sentinel for a flow whose traffic was primed closed-form.

    A primed flow's packets must never be injected -- its regulator
    departures are already folded into the MUX background train -- so
    any ``receive`` on this entry is a builder-contract violation.
    """

    __slots__ = ("flow_id",)

    def __init__(self, flow_id: int):
        self.flow_id = flow_id

    def receive(self, packet: Packet) -> None:
        raise RuntimeError(
            f"flow {self.flow_id} was primed closed-form; do not inject "
            "its trace into the evented pipeline"
        )

    receive_batch = receive


def build_regulated_host(
    sim: Simulator,
    envelopes: Sequence[ArrivalEnvelope],
    sink,
    *,
    mode: str = "adaptive",
    capacity: float = 1.0,
    discipline: str = "priority",
    stagger_phase: float = 0.0,
    engine: str = "batched",
    primed_traces: Optional[Mapping[int, PacketTrace]] = None,
):
    """Assemble regulators + MUX for one end host; return per-flow entry points.

    Parameters
    ----------
    sim, envelopes, sink:
        Simulator, per-flow (sigma, rho) envelopes, downstream sink
        (single component or ``flow_id -> component`` mapping).
    mode:
        One of :data:`MODES`.
    capacity:
        MUX service rate ``C``.
    discipline:
        MUX discipline; ``"priority"`` with flow index as priority
        realises the adversarial *general MUX* (the last flow is the
        tagged worst-case flow), ``"fifo"`` the benign one.
    stagger_phase:
        Fraction of the stagger period added to every vacation-regulator
        offset (used by multi-hop chains to de-synchronise consecutive
        hosts' window schedules).
    engine:
        One of :data:`ENGINES`: ``"batched"`` commits whole busy trains
        per event (window-batched vacation service, commit-on-receive
        MUX drains) and is the only engine eligible for the primed
        closed-form fast paths; ``"evented"`` uses the same components
        but never shortcuts the event loop (the equivalence ladder's
        mid-rung); ``"legacy"`` is the per-packet event chain.  The
        equivalence contract (``tests/test_des_batched_equivalence``):
        bit-identical delays for FIFO/priority disciplines; under the
        adversarial discipline the batched engines release held batches
        deterministically at zero-backlog instants (the fluid backend's
        semantics), so their delays are pointwise <= the legacy
        engine's (whose release at exact ties was an event-order race).
        ``"priority"`` MUXes always use the legacy server (a strict
        priority order cannot be committed ahead of arrivals).
    primed_traces:
        Optional ``flow_id -> PacketTrace`` of flows whose *complete*
        arrival traces are known up front (cross traffic).  Their
        regulator departures are computed closed-form and folded into
        the MUX as a zero-event background train
        (:meth:`repro.simulation.batched.BatchMuxServer.prime_background`);
        the returned entry for such a flow is a sentinel that rejects
        injection.  Requires a batch engine and a fifo/adversarial
        discipline (the callers gate on adversarial, where delivery
        instants are provably tie-order invariant).

    Returns
    -------
    (entries, mux):
        ``entries`` -- one entry component per flow (regulator, or the
        MUX itself in mode ``"none"``); ``mux`` -- the MUX server.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    check_positive(capacity, "capacity")
    controller = AdaptiveController(envelopes, capacity)
    if mode == "adaptive":
        mode = (
            "sigma-rho"
            if controller.select_mode() is ControlMode.SIGMA_RHO
            else "sigma-rho-lambda"
        )
    # One stagger plan serves both the vacation entries and the primed
    # cross-flow departures below.
    plan = base = None
    if mode == "sigma-rho-lambda":
        plan = controller.build_stagger_plan()
        base = (stagger_phase % 1.0) * plan.period
    priorities = {i: i for i in range(len(envelopes))}
    if engine in _BATCH_ENGINES and discipline in ("fifo", "adversarial"):
        mux = BatchMuxServer(
            sim, capacity, sink, discipline=discipline, priorities=priorities
        )
    else:
        mux = MuxServer(
            sim, capacity, sink, discipline=discipline, priorities=priorities
        )
    if primed_traces and not isinstance(mux, BatchMuxServer):
        raise ValueError(
            "primed_traces requires a batch engine with a fifo or "
            f"adversarial discipline, got engine={engine!r} "
            f"discipline={discipline!r}"
        )
    if mode == "none":
        entries: list = [mux] * len(envelopes)
    elif mode == "sigma-rho":
        entries = [
            TokenBucketComponent(sim, e.sigma, e.rho / capacity, mux)
            for e in envelopes
        ]
    else:  # sigma-rho-lambda
        vacation_cls = (
            BatchVacationComponent
            if engine in _BATCH_ENGINES
            else VacationComponent
        )
        entries = [
            vacation_cls(
                sim,
                reg,
                mux,
                offset=base + off,
                out_rate=capacity,
            )
            for reg, off in zip(plan.regulators, plan.offsets)
        ]
    if primed_traces:
        dep_parts: list[np.ndarray] = []
        size_parts: list[np.ndarray] = []
        for f in sorted(primed_traces):
            trace = primed_traces[f]
            if not 0 <= f < len(envelopes):
                raise ValueError(f"primed flow id {f} out of range")
            if mode == "sigma-rho":
                e = envelopes[f]
                deps, _ = sigma_rho_departures(
                    trace.times, trace.sizes, e.sigma, e.rho / capacity
                )
            elif mode == "sigma-rho-lambda":
                deps, _ = vacation_departures(
                    trace.times, trace.sizes, plan.regulators[f],
                    offset=base + plan.offsets[f], out_rate=capacity,
                )
            else:  # none: arrivals feed the MUX directly
                deps = trace.times
            dep_parts.append(np.asarray(deps, dtype=np.float64))
            size_parts.append(np.asarray(trace.sizes, dtype=np.float64))
            entries[f] = _PrimedEntry(f)
        merged_t = np.concatenate(dep_parts) if dep_parts else np.empty(0)
        merged_s = np.concatenate(size_parts) if size_parts else np.empty(0)
        # Stable sort keeps flow-injection order at equal instants --
        # the same tie-break the evented event sequence realises.
        order = np.argsort(merged_t, kind="stable")
        mux.prime_background(merged_t[order], merged_s[order])
    return entries, mux


def simulate_regulated_host(
    traces: Sequence[PacketTrace],
    envelopes: Sequence[ArrivalEnvelope],
    *,
    mode: str = "adaptive",
    capacity: float = 1.0,
    discipline: str = "priority",
    stagger_phase: float = 0.0,
    horizon: Optional[float] = None,
    drain: bool = True,
    engine: str = "batched",
) -> HostResult:
    """Run the Fig.-3 topology: K flows through one regulated host.

    Parameters
    ----------
    traces:
        One packet trace per flow (same indices as ``envelopes``).
    envelopes:
        Per-flow (sigma, rho) descriptions used to configure regulators.
    stagger_phase:
        Fraction of the stagger period added to every vacation-regulator
        offset (the bounds hold for *any* phase; adversarial scenario
        tests sweep it).
    horizon:
        Injection stops here (defaults to the longest trace).
    drain:
        Keep running after the horizon until every queued packet is
        delivered, so worst-case delays are not truncated.
    engine:
        ``"batched"`` (default), ``"evented"`` or ``"legacy"`` -- see
        :func:`build_regulated_host`.  For *any* regulated host under
        the adversarial discipline the batched engine skips the event
        loop entirely: all arrivals are known up front, so the cell
        collapses into the array fast path
        (:func:`repro.simulation.batched.primed_adversarial_host`) --
        token-bucket and vacation departures are both closed form --
        with bit-identical delays and orders of magnitude fewer
        events.

    Returns
    -------
    HostResult
        Worst-case delay over all flows and per-flow statistics.
    """
    if len(traces) != len(envelopes):
        raise ValueError("traces and envelopes must align")
    if not traces:
        raise ValueError("at least one flow is required")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    # Resolve the effective mode up front (the builders resolve it the
    # same way; needed here to route the primed fast paths).
    effective_mode = resolve_mode(mode, envelopes, capacity)
    if horizon is None:
        horizon = max(tr.times[-1] + 1e-9 for tr in traces if len(tr))
    if (
        engine == "batched"
        and effective_mode in PRIMED_MODES
        and discipline == "adversarial"
    ):
        restricted = [tr.restrict(horizon) for tr in traces]
        outcome = primed_adversarial_host(
            [(tr.times, tr.sizes) for tr in restricted],
            envelopes,
            effective_mode,
            capacity=capacity,
            stagger_phase=stagger_phase,
            horizon=horizon,
            drain=drain,
        )
        per_flow = tuple(
            DelayStats.from_delays(d) for d in outcome.per_flow_delays
        )
        return HostResult(
            mode=effective_mode,
            worst_case_delay=max((s.worst for s in per_flow), default=0.0),
            per_flow=per_flow,
            events=outcome.batch_events,
            cancelled_events=0,
            primed=True,
        )
    sim = Simulator()
    recorder = DelayRecorder(sim)
    entries, _mux = build_regulated_host(
        sim, envelopes, recorder, mode=mode, capacity=capacity,
        discipline=discipline, stagger_phase=stagger_phase, engine=engine,
    )
    for flow_id, (trace, entry) in enumerate(zip(traces, entries)):
        inject_trace(sim, trace.restrict(horizon), flow_id, entry)
    sim.run(until=None if drain else horizon)
    # Function-local import: the simulation layer stays importable
    # without the runtime package at module-load time.
    from repro.runtime.telemetry import record_engine

    record_engine(sim)
    per_flow = tuple(recorder.stats(i) for i in range(len(traces)))
    worst = max((s.worst for s in per_flow), default=0.0)
    return HostResult(
        mode=effective_mode,
        worst_case_delay=worst,
        per_flow=per_flow,
        events=sim.events_processed,
        cancelled_events=sim.cancelled_events,
    )
