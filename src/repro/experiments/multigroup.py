"""Figures 6(a)-(c): worst-case multicast delay in the multi-group network.

The paper's Simulation II: 665 end hosts attached to the Fig.-5
backbone, all joining 3 groups; six scheme combinations are compared --
{capacity-aware, (sigma, rho), (sigma, rho, lambda)} x {DSCT, NICE}.
Expected shape (Fig. 6): the (sigma, rho) trees degrade steeply with
load; capacity-aware trees degrade mildly (taller trees, but bounded
per-hop load); the (sigma, rho, lambda) trees win beyond the rate
threshold; DSCT beats NICE under every control scheme (location
awareness shortens overlay hops).

Methodology (see DESIGN.md substitution table): per group we build the
full tree, then run the regulated-chain simulation along its *critical
path* (the longest root-to-leaf path, which attains the worst case per
Theorem 7's construction), with every forwarder loaded by all K group
flows.  The reported WDB is the maximum over groups of (sum of per-hop
worst-case delays + underlay propagation along the path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.threshold import heterogeneous_threshold, homogeneous_threshold
from repro.experiments.config import Fig6Config
from repro.experiments.report import find_crossover, max_improvement
from repro.overlay.groups import MultiGroupNetwork
from repro.overlay.tree import MulticastTree
from repro.simulation.fluid import simulate_fluid_chain
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.utils.rng import derive_seed
from repro.workloads.profiles import TrafficMix

__all__ = ["Fig6Point", "Fig6Result", "run_fig6", "measure_tree_wdb"]


@dataclass(frozen=True)
class Fig6Point:
    """One sweep point: WDB of every scheme at one utilisation."""

    utilization: float
    wdb: dict[str, float]


@dataclass(frozen=True)
class Fig6Result:
    """A full Figure-6 panel (one traffic mix)."""

    mix_name: str
    homogeneous: bool
    schemes: tuple[str, ...]
    points: tuple[Fig6Point, ...]
    crossover_dsct: float | None
    max_improvement_dsct: float
    theoretical_threshold_aggregate: float
    tree_heights: dict[str, dict[float, list[int]]]

    @property
    def utilizations(self) -> list[float]:
        return [p.utilization for p in self.points]

    def series(self, scheme: str) -> list[float]:
        return [p.wdb[scheme] for p in self.points]


def _parse_scheme(scheme: str) -> tuple[str, str]:
    """Split ``"dsct+sigma-rho"``-style labels into (tree, control)."""
    if scheme.startswith("capacity-aware-"):
        return scheme, "none"
    tree, _, control = scheme.partition("+")
    if tree not in ("dsct", "nice") or control not in (
        "sigma-rho", "sigma-rho-lambda",
    ):
        raise ValueError(f"unrecognised scheme {scheme!r}")
    return tree, control


def measure_tree_wdb(
    tree: MulticastTree,
    group: int,
    traces,
    envelopes: Sequence[ArrivalEnvelope],
    latency: np.ndarray,
    *,
    mode: str,
    capacities,
    config: Fig6Config,
) -> float:
    """Worst-case multicast delay of one group's tree (critical path).

    ``traces``/``envelopes`` are per-group; index ``group`` is the
    tagged flow travelling the path, the rest are cross traffic at every
    forwarder.  ``capacities`` is a scalar (regulated hosts, C = 1) or a
    per-forwarder list (capacity-aware: capacity / fan-out).
    """
    path = tree.critical_path()
    if len(path) < 2:
        return 0.0
    forwarders = path[:-1]
    hops = len(forwarders)
    # Propagation entering each forwarder (source forwards locally at
    # hop 0), plus the final overlay edge to the leaf receiver.
    propagation = [0.0] + [
        float(latency[path[i - 1], path[i]]) for i in range(1, hops)
    ]
    final_edge = float(latency[path[-2], path[-1]])
    order = [group] + [g for g in range(len(traces)) if g != group]
    tagged_trace = traces[group]
    cross = [traces[g] for g in order[1:]]
    envs = [envelopes[g] for g in order]
    result = simulate_fluid_chain(
        tagged_trace,
        [cross] * hops,
        envs,
        mode=mode,
        capacity=capacities,
        discipline=config.discipline,
        propagation=propagation,
        dt=config.dt,
        horizon=config.horizon,
    )
    return result.worst_case_delay + final_edge


def run_fig6(mix: TrafficMix, config: Fig6Config | None = None) -> Fig6Result:
    """Sweep one traffic mix over the rate axis (one Figure-6 panel)."""
    config = config or Fig6Config()
    backbone = fig5_backbone()
    network = attach_hosts(
        backbone, config.n_hosts, rng=derive_seed(config.seed, "attach")
    )
    mgn = MultiGroupNetwork.fully_joined(
        network,
        mix.k,
        host_capacity_range=config.host_capacity_range,
        rng=derive_seed(config.seed, "groups"),
    )
    latency = mgn.latency

    # Rate-independent trees are built once.
    static_trees: dict[str, list[MulticastTree]] = {}
    for base in ("dsct", "nice"):
        if any(s.startswith(base + "+") for s in config.schemes):
            static_trees[base] = mgn.build_all_trees(
                base, k=config.cluster_k, rng=config.seed
            )

    points: list[Fig6Point] = []
    tree_heights: dict[str, dict[float, list[int]]] = {
        s: {} for s in config.schemes
    }
    for u in config.utilizations:
        u = float(u)
        scaled = mix.at_utilization(u)
        # Rate-independent seed: the sweep rescales one stream pattern
        # (see single_host._measure_point for the rationale).
        seed = derive_seed(config.seed, "fig6", mix.name)
        traces = scaled.generate_traces(
            config.horizon, seed, shared=config.shared_streams, mtu=config.mtu
        )
        envelopes = [
            ArrivalEnvelope(max(tr.empirical_sigma(src.rate), 1e-9), src.rate)
            for tr, src in zip(traces, scaled.sources)
        ]
        wdb: dict[str, float] = {}
        for scheme in config.schemes:
            tree_kind, control = _parse_scheme(scheme)
            if control == "none":
                trees = mgn.build_all_trees(
                    tree_kind, k=config.cluster_k,
                    aggregate_rate=u, rng=config.seed,
                )
            else:
                trees = static_trees[tree_kind]
            tree_heights[scheme][u] = [t.height for t in trees]
            worst = 0.0
            for g, tree in enumerate(trees):
                if control == "none":
                    fanout = tree.fanout()
                    caps = [
                        float(mgn.host_capacity[h]) / max(fanout.get(h, 1), 1)
                        for h in tree.critical_path()[:-1]
                    ]
                    mode = "none"
                else:
                    caps = 1.0
                    mode = control
                worst = max(
                    worst,
                    measure_tree_wdb(
                        tree, g, traces, envelopes, latency,
                        mode=mode, capacities=caps, config=config,
                    ),
                )
            wdb[scheme] = worst
        points.append(Fig6Point(utilization=u, wdb=wdb))

    us = [p.utilization for p in points]
    cross = None
    improvement = 1.0
    if "dsct+sigma-rho" in config.schemes and "dsct+sigma-rho-lambda" in config.schemes:
        sr = [p.wdb["dsct+sigma-rho"] for p in points]
        srl = [p.wdb["dsct+sigma-rho-lambda"] for p in points]
        cross = find_crossover(us, sr, srl)
        _, improvement = max_improvement(us, sr, srl)
    if mix.is_homogeneous:
        theo = homogeneous_threshold(mix.k, aggregate=True)
    else:
        theo = heterogeneous_threshold(mix.k, aggregate=True)
    return Fig6Result(
        mix_name=mix.name,
        homogeneous=mix.is_homogeneous,
        schemes=tuple(config.schemes),
        points=tuple(points),
        crossover_dsct=cross,
        max_improvement_dsct=improvement,
        theoretical_threshold_aggregate=theo,
        tree_heights=tree_heights,
    )
