"""Backbone router topologies.

:func:`fig5_backbone` reconstructs the 19-router backbone of the
paper's Fig. 5.  The figure is a drawing without an adjacency list, so
we hand-code a 19-node two-level mesh with the same flavour: a richly
connected core ring with chords, plus peripheral routers hanging off
core nodes (see DESIGN.md substitution table -- DSCT only needs
router-locality and heterogeneous RTTs, not an exact adjacency).

:func:`waxman_backbone` generates classic Waxman random backbones for
scaling studies beyond the paper's fixed topology.

Graphs are :class:`networkx.Graph` with a ``latency`` edge attribute in
seconds (one-way propagation).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_positive

__all__ = ["fig5_backbone", "waxman_backbone", "validate_backbone"]

#: Hand-coded adjacency approximating the paper's Fig. 5 (node 0 is the
#: router the figure draws at the centre-left; numbering follows the
#: figure's labels 0..18).  Edges are (u, v, relative_length); relative
#: lengths are scaled by ``core_latency``.
_FIG5_EDGES: list[tuple[int, int, float]] = [
    # Core ring
    (0, 1, 1.0), (1, 2, 1.2), (2, 3, 1.0), (3, 4, 1.1), (4, 5, 1.0),
    (5, 6, 1.3), (6, 7, 1.0), (7, 8, 1.2), (8, 0, 1.1),
    # Chords across the core
    (0, 4, 1.6), (1, 5, 1.7), (2, 6, 1.5), (3, 7, 1.8), (2, 8, 1.4),
    # Peripheral routers
    (9, 0, 0.8), (10, 1, 0.7), (11, 2, 0.9), (12, 3, 0.8),
    (13, 4, 0.7), (14, 5, 0.9), (15, 6, 0.8), (16, 7, 0.7),
    (17, 8, 0.9), (18, 2, 0.6),
    # A couple of peripheral cross-links for path diversity
    (9, 10, 1.1), (13, 14, 1.2), (16, 17, 1.0),
]


def fig5_backbone(core_latency: float = 0.010) -> nx.Graph:
    """The 19-router backbone approximating the paper's Fig. 5.

    Parameters
    ----------
    core_latency:
        One-way propagation latency of a unit-length core link, in
        seconds (10 ms default -- metropolitan/continental mix).

    Returns
    -------
    networkx.Graph
        Nodes ``0..18`` with ``latency`` edge attributes.
    """
    check_positive(core_latency, "core_latency")
    g = nx.Graph(name="fig5-backbone")
    for u, v, w in _FIG5_EDGES:
        g.add_edge(u, v, latency=w * core_latency)
    validate_backbone(g)
    return g


def waxman_backbone(
    n_routers: int,
    *,
    alpha: float = 0.4,
    beta: float = 0.25,
    core_latency: float = 0.010,
    rng: RandomSource = None,
) -> nx.Graph:
    """A Waxman random backbone for scaling studies.

    Routers are placed uniformly in the unit square; routers ``u, v``
    connect with probability ``alpha * exp(-d(u,v) / (beta * L))`` where
    ``L`` is the maximum distance.  Edge latency is proportional to
    Euclidean distance (``core_latency`` per unit).  Extra edges are
    added if needed so the graph is connected.
    """
    if n_routers < 2:
        raise ValueError(f"n_routers must be >= 2, got {n_routers}")
    check_positive(alpha, "alpha")
    check_positive(beta, "beta")
    check_positive(core_latency, "core_latency")
    gen = ensure_rng(rng)
    pos = gen.random((n_routers, 2))
    g = nx.Graph(name=f"waxman-{n_routers}")
    g.add_nodes_from(range(n_routers))
    diffs = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diffs**2).sum(-1))
    l_max = dist.max()
    prob = alpha * np.exp(-dist / (beta * l_max))
    draws = gen.random((n_routers, n_routers))
    for u in range(n_routers):
        for v in range(u + 1, n_routers):
            if draws[u, v] < prob[u, v]:
                g.add_edge(u, v, latency=float(dist[u, v]) * core_latency)
    # Stitch components together through their closest router pair.
    comps = [list(c) for c in nx.connected_components(g)]
    while len(comps) > 1:
        a, b = comps[0], comps[1]
        best = min(
            ((u, v) for u in a for v in b), key=lambda uv: dist[uv[0], uv[1]]
        )
        g.add_edge(*best, latency=float(dist[best[0], best[1]]) * core_latency)
        comps = [list(c) for c in nx.connected_components(g)]
    validate_backbone(g)
    return g


def validate_backbone(g: nx.Graph) -> None:
    """Invariants every backbone must satisfy."""
    if g.number_of_nodes() < 2:
        raise ValueError("backbone needs at least two routers")
    if not nx.is_connected(g):
        raise ValueError("backbone must be connected")
    for u, v, data in g.edges(data=True):
        lat = data.get("latency")
        if lat is None or lat <= 0:
            raise ValueError(f"edge ({u},{v}) lacks a positive latency")
