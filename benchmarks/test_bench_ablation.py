"""Ablation benches for the design choices called out in DESIGN.md.

1. **Cluster size base k** -- the paper fixes k = 3; sweep k in {2..5}
   and report the height/per-hop trade-off.
2. **MUX discipline** -- the theory holds for *any* work-conserving
   discipline; compare FIFO / priority / adversarial measurements and
   check the dominance ordering.
3. **Stagger policy** -- the (sigma, rho, lambda) gain at heavy load
   should come from *staggering* the vacations; compare the staggered
   plan against deliberately synchronised offsets.
4. **Fluid grid resolution** -- dt sensitivity of the measured WDB.
5. **Shared vs independent streams** -- the paper feeds identical
   streams to all groups; independent realisations de-synchronise the
   bursts and weaken the (sigma, rho) worst case.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.experiments.report import render_table
from repro.overlay.groups import MultiGroupNetwork
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import (
    fluid_mux,
    fluid_next_empty,
    fluid_vacation_regulator,
    simulate_fluid_host,
    _adversarial_worst,
)
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone


def _scenario(u=0.9, k=3, horizon=15.0, seed=1):
    rho = u / k
    src = VBRVideoSource(rho)
    trace = src.generate(horizon, rng=seed).fragment(0.002)
    sigma = max(trace.empirical_sigma(rho), 1e-6)
    envs = [ArrivalEnvelope(sigma, rho)] * k
    return [trace] * k, envs


def test_ablation_cluster_k(benchmark, artifact_report):
    """Tree height vs k: larger clusters flatten the hierarchy."""
    bb = fig5_backbone()
    net = attach_hosts(bb, 665, rng=5)
    mgn = MultiGroupNetwork.fully_joined(net, 3, rng=5)

    def sweep():
        rows = []
        for k in (2, 3, 4, 5):
            trees = mgn.build_all_trees("dsct", k=k, rng=7)
            rows.append([k, max(t.height for t in trees),
                         float(np.mean([t.max_fanout() for t in trees]))])
        return rows

    rows = run_once(benchmark, sweep)
    artifact_report.append(
        render_table(["k", "max height", "mean max fan-out"], rows,
                     title="== Ablation: cluster size base k (DSCT, 665 hosts) ==")
    )
    heights = [r[1] for r in rows]
    assert heights[0] >= heights[-1]  # k=2 at least as tall as k=5


def test_ablation_mux_discipline(benchmark, artifact_report):
    """FIFO <= priority <= adversarial measured WDB on the same input."""
    traces, envs = _scenario()

    def measure():
        out = {}
        for disc in ("fifo", "priority", "adversarial"):
            res = simulate_fluid_host(
                traces, envs, mode="sigma-rho", discipline=disc, dt=1e-3
            )
            out[disc] = res.worst_case_delay
        return out

    out = run_once(benchmark, measure)
    artifact_report.append(
        render_table(["discipline", "WDB [s]"], [[d, v] for d, v in out.items()],
                     title="== Ablation: MUX discipline ((sigma,rho), u=0.9) ==")
    )
    assert out["fifo"] <= out["priority"] * 1.001 + 1e-3
    assert out["priority"] <= out["adversarial"] * 1.001 + 1e-3


def test_ablation_stagger_policy(benchmark, artifact_report):
    """Staggered vs synchronised vacations at heavy load.

    With synchronised offsets every flow's working window collides in
    the MUX; the staggered plan is the paper's mechanism and must be
    strictly better at heavy load.
    """
    traces, envs = _scenario(u=0.9)
    k = len(envs)
    dt = 1e-3
    horizon = float(traces[0].times[-1]) + dt

    def measure():
        ctrl = AdaptiveController(envs)
        plan = ctrl.build_stagger_plan()
        total = horizon + 30.0
        n = int(np.ceil(total / dt))
        t = dt * np.arange(n + 1)
        arrs = [
            np.concatenate(([0.0], np.cumsum(tr.binned_arrivals(dt, total))))
            for tr in traces
        ]
        out = {}
        for label, offsets in (
            ("staggered", plan.offsets),
            ("synchronised", tuple(0.0 for _ in plan.offsets)),
        ):
            shaped = [
                fluid_vacation_regulator(a, t, reg, offset=off)
                for a, reg, off in zip(arrs, plan.regulators, offsets)
            ]
            agg = np.sum(shaped, axis=0)
            ne = fluid_next_empty(t, agg, 1.0)
            worst = max(
                _adversarial_worst(t, arrs[f], shaped[f], ne) for f in range(k)
            )
            out[label] = worst
        return out

    out = run_once(benchmark, measure)
    artifact_report.append(
        render_table(["policy", "WDB [s]"], [[p, v] for p, v in out.items()],
                     title="== Ablation: vacation stagger policy (u=0.9) ==")
    )
    assert out["staggered"] < out["synchronised"]


def test_ablation_grid_resolution(benchmark, artifact_report):
    """The fluid WDB converges as dt shrinks (O(dt) quantisation)."""
    traces, envs = _scenario(u=0.8, horizon=8.0)

    def measure():
        return {
            dt: simulate_fluid_host(
                traces, envs, mode="sigma-rho", discipline="adversarial", dt=dt
            ).worst_case_delay
            for dt in (4e-3, 2e-3, 1e-3, 5e-4)
        }

    out = run_once(benchmark, measure)
    artifact_report.append(
        render_table(["dt", "WDB [s]"], [[f"{d:g}", v] for d, v in out.items()],
                     title="== Ablation: fluid grid resolution ==")
    )
    values = list(out.values())
    finest = values[-1]
    assert abs(values[-2] - finest) <= max(0.05 * finest, 4e-3)


def test_ablation_shared_vs_independent_streams(benchmark, artifact_report):
    """Independent per-group streams de-synchronise the bursts."""
    u, k = 0.9, 3
    rho = u / k
    src = VBRVideoSource(rho)
    shared_trace = src.generate(15.0, rng=11).fragment(0.002)
    indep = [src.generate(15.0, rng=100 + i).fragment(0.002) for i in range(k)]
    sigma = max(shared_trace.empirical_sigma(rho), 1e-6)
    envs = [ArrivalEnvelope(sigma, rho)] * k

    def measure():
        out = {}
        out["shared"] = simulate_fluid_host(
            [shared_trace] * k, envs, mode="sigma-rho",
            discipline="adversarial", dt=1e-3,
        ).worst_case_delay
        envs_i = [
            ArrivalEnvelope(max(tr.empirical_sigma(rho), 1e-6), rho)
            for tr in indep
        ]
        out["independent"] = simulate_fluid_host(
            indep, envs_i, mode="sigma-rho",
            discipline="adversarial", dt=1e-3,
        ).worst_case_delay
        return out

    out = run_once(benchmark, measure)
    artifact_report.append(
        render_table(["streams", "WDB [s]"], [[s, v] for s, v in out.items()],
                     title="== Ablation: shared vs independent group streams ==")
    )
    # Synchronised bursts realise the worse case.
    assert out["shared"] >= out["independent"] * 0.8
