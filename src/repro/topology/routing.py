"""Shortest-path latencies and host RTT matrices.

DSCT and NICE cluster end hosts by round-trip time; the regulated
chain simulations add per-hop underlay propagation.  Both need a
distance oracle, provided here as dense NumPy matrices computed once
per topology (scipy's Dijkstra on the sparse router graph, then a
broadcast over host attachments -- vectorised, no per-pair Python
work).
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.topology.attach import AttachedNetwork

__all__ = ["router_distance_matrix", "host_rtt_matrix", "host_latency_matrix"]


def router_distance_matrix(backbone: nx.Graph) -> np.ndarray:
    """All-pairs one-way latency between routers (dense, seconds)."""
    nodes = sorted(backbone.nodes)
    index = {r: i for i, r in enumerate(nodes)}
    n = len(nodes)
    rows, cols, vals = [], [], []
    for u, v, data in backbone.edges(data=True):
        iu, iv = index[u], index[v]
        rows += [iu, iv]
        cols += [iv, iu]
        vals += [data["latency"], data["latency"]]
    adj = csr_matrix((vals, (rows, cols)), shape=(n, n))
    dist = dijkstra(adj, directed=False)
    if not np.all(np.isfinite(dist)):
        raise ValueError("backbone is not connected")
    return dist


def host_latency_matrix(network: AttachedNetwork) -> np.ndarray:
    """One-way host-to-host latency matrix (seconds).

    ``lat[a, b] = access[a] + router_dist[r_a, r_b] + access[b]`` for
    ``a != b`` and 0 on the diagonal.  Hosts on the same router are a
    LAN apart (sum of access latencies) -- the locality DSCT exploits.
    """
    router_dist = router_distance_matrix(network.backbone)
    nodes = sorted(network.backbone.nodes)
    index = np.array([nodes.index(r) for r in network.host_router])
    core = router_dist[np.ix_(index, index)]
    acc = network.access_latency
    lat = core + acc[:, None] + acc[None, :]
    np.fill_diagonal(lat, 0.0)
    return lat


def host_rtt_matrix(network: AttachedNetwork) -> np.ndarray:
    """Round-trip time matrix: twice the one-way latency."""
    return 2.0 * host_latency_matrix(network)
