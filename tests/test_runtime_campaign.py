"""Campaign driver tests + the tier-1 parallel smoke campaign.

``test_parallel_smoke_campaign`` keeps the multiprocessing path
permanently exercised in tier-1 (2 workers, 24 cells); the rest covers
the satellite guarantees: serial/parallel bit-identical outcomes,
resume-after-partial-run, per-cell failure containment and perf-budget
verdicts.
"""

import dataclasses
from pathlib import Path

import pytest

import repro.scenarios.runner as runner_mod
from repro.runtime import (
    CampaignConfig,
    ProcessExecutor,
    ResultStore,
    SerialExecutor,
    build_campaign,
    cell_key,
    outcome_record,
    run_campaign,
)
from repro.scenarios import generate_scenarios, run_batch

pytestmark = pytest.mark.runtime

N_SMOKE = 24


@pytest.fixture(scope="module")
def smoke_matrix():
    return generate_scenarios(N_SMOKE, seed=11)


def test_parallel_smoke_campaign(smoke_matrix, tmp_path):
    """Tier-1 keeps the multiprocessing path alive: 2 workers, 24 cells."""
    campaign = run_campaign(
        smoke_matrix,
        executor=ProcessExecutor(jobs=2),
        store=tmp_path / "smoke",
    )
    assert campaign.evaluated == N_SMOKE
    assert campaign.clean, [o.scenario.name for o in campaign.report.violations]
    assert campaign.store_records == N_SMOKE
    assert ResultStore(tmp_path / "smoke").completed_keys() == {
        cell_key(sc) for sc in smoke_matrix
    }


def test_serial_and_parallel_outcomes_are_bit_identical(smoke_matrix):
    """The determinism contract: worker count never changes a verdict."""
    serial = run_batch(smoke_matrix, executor=SerialExecutor())
    parallel = run_batch(smoke_matrix, executor=ProcessExecutor(jobs=2))
    for s, p in zip(serial.outcomes, parallel.outcomes):
        assert s.scenario.name == p.scenario.name
        assert s.measured == p.measured          # bit-identical, no approx
        assert s.bound == p.bound
        assert s.eps == p.eps
        assert s.events == p.events
        assert s.sound and p.sound


def test_resume_skips_completed_cells(smoke_matrix, tmp_path):
    store = tmp_path / "resume"
    first = run_campaign(smoke_matrix[:10], store=store)
    assert first.evaluated == 10 and first.skipped == 0
    second = run_campaign(smoke_matrix, store=store, resume=True)
    assert second.skipped == 10
    assert second.evaluated == N_SMOKE - 10
    third = run_campaign(smoke_matrix, store=store, resume=True)
    assert third.evaluated == 0
    assert third.skipped == N_SMOKE
    assert third.store_records == N_SMOKE


def test_resume_retries_error_cells(smoke_matrix, tmp_path):
    store = ResultStore(tmp_path / "retry")
    bad = outcome_record(run_batch(smoke_matrix[:1]).outcomes[0])
    bad["error"] = "Traceback (most recent call last): boom"
    store.append(bad)
    campaign = run_campaign(smoke_matrix[:1], store=store, resume=True)
    assert campaign.skipped == 0 and campaign.evaluated == 1


def test_resume_requires_store(smoke_matrix):
    with pytest.raises(ValueError, match="store"):
        run_campaign(smoke_matrix[:2], resume=True)


def test_resume_never_launders_stored_violations(smoke_matrix, tmp_path):
    """Skipping a known-unsound cell must keep the campaign dirty."""
    store = ResultStore(tmp_path / "dirty")
    bad = outcome_record(run_batch(smoke_matrix[:1]).outcomes[0])
    bad["sound"] = False
    store.append(bad)
    campaign = run_campaign(smoke_matrix[:1], store=store, resume=True)
    assert campaign.evaluated == 0 and campaign.skipped == 1
    assert campaign.skipped_violations == 1
    assert not campaign.clean
    assert any(
        "already-failed in store" in ln for ln in campaign.summary_lines()
    )
    # And the no-op report does not fabricate infinite throughput.
    assert campaign.report.scenarios_per_sec == 0.0


def test_tick_streams_inflight_progress(smoke_matrix):
    seen = []
    run_batch(
        smoke_matrix[:5],
        executor=ProcessExecutor(jobs=2),
        tick=lambda done, n: seen.append((done, n)),
    )
    assert seen and seen[-1] == (5, 5)


def test_crashing_cell_fails_its_verdict_not_the_campaign(
    smoke_matrix, monkeypatch, tmp_path
):
    victim = smoke_matrix[3].name
    real_simulate = runner_mod._simulate

    def sabotage(realised):
        if realised.scenario.name == victim:
            raise RuntimeError("injected simulator crash")
        return real_simulate(realised)

    monkeypatch.setattr(runner_mod, "_simulate", sabotage)
    # Pin the per-cell path: the grouped evaluator resolves eligible
    # cells without _simulate (its error isolation has its own test in
    # test_scenarios_cellmatrix.py).
    campaign = run_campaign(
        smoke_matrix[:6], executor=SerialExecutor(), store=tmp_path / "crash",
        group_cells=False,
    )
    assert campaign.evaluated == 6
    errors = campaign.report.errors
    assert [o.scenario.name for o in errors] == [victim]
    assert "injected simulator crash" in errors[0].error
    assert not errors[0].sound
    # The other five cells got real verdicts.
    assert sum(o.sound for o in campaign.report.outcomes) == 5
    # And the store recorded the failure for later retry/diffing.
    rec = ResultStore(tmp_path / "crash").load()[cell_key(smoke_matrix[3])]
    assert rec["error"] and not rec["sound"]


def test_perf_budget_verdict(smoke_matrix):
    strangled = [
        dataclasses.replace(sc, perf_budget=1e-9) for sc in smoke_matrix[:3]
    ]
    campaign = run_campaign(strangled)
    assert len(campaign.report.perf_violations) == 3
    # Budget misses are perf regressions, not soundness violations.
    assert not campaign.report.violations
    assert not campaign.clean
    lines = "\n".join(campaign.summary_lines())
    assert "perf-budget violations: 3" in lines
    assert "OVER-BUDGET" in lines


def test_outcome_record_schema(smoke_matrix):
    outcome = run_batch(smoke_matrix[:1]).outcomes[0]
    rec = outcome_record(outcome)
    assert rec["key"] == cell_key(smoke_matrix[0])
    assert rec["name"] == smoke_matrix[0].name
    assert rec["sound"] is True and rec["error"] is None
    assert rec["budget_ok"] is True
    assert rec["measured"] == pytest.approx(outcome.measured)
    assert rec["wall_time"] > 0


class TestCampaignConfig:
    def test_from_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"count": 12, "seed": 5, "max_k": 8, "max_hops": 4}')
        config = CampaignConfig.from_file(path)
        assert (config.count, config.seed) == (12, 5)
        matrix = build_campaign(config)
        assert len(matrix) == 12
        assert max(sc.k for sc in matrix) <= 8
        assert all(sc.hops <= 4 for sc in matrix)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"count": 5, "frobnicate": true}')
        with pytest.raises(ValueError, match="frobnicate"):
            CampaignConfig.from_file(path)

    def test_shipped_thousand_cell_config_parses(self):
        config = CampaignConfig.from_file(
            Path(__file__).resolve().parents[1]
            / "examples"
            / "campaign_thousand.json"
        )
        assert config.count >= 1000
        assert config.max_k > 6       # the K > 6 population regime
        assert config.max_hops > 3    # deeper chains than the default draw

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(count=0)
        with pytest.raises(ValueError):
            CampaignConfig(perf_budget=-1.0)
