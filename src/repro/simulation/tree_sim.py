"""Whole-tree multicast simulation (packet replication at every host).

The figure harness reduces each group tree to its critical path
(Theorem 7's worst-case construction).  This module simulates the
*entire* tree instead: every member host runs the full regulated
pipeline (per-flow regulators + MUX) and replicates each forwarded
packet to all of its children over the underlay latencies.  It is the
ground truth the critical-path reduction is validated against in
``tests/test_tree_sim.py`` -- and a realistic substrate in its own
right (per-receiver delays, loss hooks, churn interplay).

Cost: the legacy engine pays events scaling with
(members x packets x K).  The batched engine under the adversarial
discipline is *busy-period bound* instead: the K-1 cross flows at
every member are known up front, so their regulator departures fold
into each host's MUX as a zero-event background train
(:meth:`repro.simulation.batched.BatchMuxServer.prime_background`),
and replication commits **one fanout event per MUX busy period per
child** -- the released busy period travels as one packet batch --
instead of one event per packet per child.  Only the tagged flow's
root injection remains per-packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.overlay.tree import MulticastTree
from repro.simulation.engine import Simulator
from repro.simulation.flow import PacketTrace
from repro.simulation.host_sim import MODES, build_regulated_host, inject_trace
from repro.simulation.measures import DelayStats
from repro.simulation.packet import Packet

__all__ = ["TreeSimResult", "simulate_multicast_tree"]


@dataclass(frozen=True)
class TreeSimResult:
    """Outcome of a whole-tree multicast simulation for one group."""

    group: int
    mode: str
    worst_case_delay: float
    worst_receiver: int
    per_receiver_worst: dict[int, float]
    events: int
    #: Whether cross traffic was folded closed-form into every member's
    #: MUX and replication ran busy-period batched (batched engine +
    #: adversarial discipline).
    primed: bool = False

    def stats(self) -> DelayStats:
        return DelayStats.from_delays(
            np.asarray(list(self.per_receiver_worst.values()))
        )


class _Replicator:
    """Fan a served packet out to every child entry (plus local delivery).

    Two paths: the per-packet :meth:`receive` (legacy engine, FIFO
    deliveries) copies each packet per child with its ``hops`` counter
    bumped; the busy-period :meth:`receive_batch` (adversarial batched
    MUX release) forwards the released batch as **one event per child,
    sharing the packet objects** -- nothing downstream mutates them and
    delays are measured against ``t_emit`` alone, so the copies (and
    their ``hops`` bookkeeping) are pure churn the fast path skips.
    """

    def __init__(
        self,
        sim: Simulator,
        host: int,
        flow_id: int,
        children_entries: Sequence[tuple[int, object, float]],
        deliver,
        deliver_batch,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.children_entries = children_entries  # (child, entry, latency)
        self.deliver = deliver
        self.deliver_batch = deliver_batch

    def receive(self, packet: Packet) -> None:
        # Local delivery at this host (it is a receiver too).
        self.deliver(self.host, self.flow_id, packet)
        for child, entry, latency in self.children_entries:
            copy = Packet(
                flow_id=packet.flow_id,
                size=packet.size,
                t_emit=packet.t_emit,
                hops=packet.hops + 1,
            )
            self.sim.schedule_in(latency, entry.receive, copy)

    def receive_batch(self, packets: Sequence[Packet]) -> None:
        """Deliver and replicate one released busy period: a single
        vectorised local update plus one fanout event per child."""
        self.deliver_batch(self.host, packets)
        sim = self.sim
        for child, entry, latency in self.children_entries:
            sim.schedule_in(latency, entry.receive_batch, packets)


def simulate_multicast_tree(
    trees: Sequence[MulticastTree],
    group: int,
    traces: Sequence[PacketTrace],
    envelopes: Sequence[ArrivalEnvelope],
    latency: np.ndarray,
    *,
    mode: str = "sigma-rho",
    capacity: float = 1.0,
    discipline: str = "fifo",
    horizon: Optional[float] = None,
    host_capacity: Optional[Mapping[int, float]] = None,
    engine: str = "batched",
) -> TreeSimResult:
    """Simulate group ``group``'s flow over its full tree.

    Every member of the group's tree instantiates the regulated host
    pipeline for all K flows (it joined every group, per the paper's
    Simulation II population): the group's own flow arrives from its
    tree parent and is replicated to its children; the other K-1 flows
    enter locally as cross traffic (their own trees are independent).

    Parameters
    ----------
    trees:
        One tree per group (only ``trees[group]`` is walked; the others
        define which flows exist).
    group:
        Index of the simulated group (the tagged flow).
    traces, envelopes:
        Per-group packet traces and (sigma, rho) descriptions.
    latency:
        Host-to-host one-way underlay latency matrix.
    mode, capacity, discipline:
        Regulated-host pipeline configuration (see
        :func:`repro.simulation.host_sim.build_regulated_host`).
    host_capacity:
        Optional per-host MUX capacity override (capacity-aware runs).
    engine:
        ``"batched"`` (window-batched components, default) or
        ``"legacy"`` (per-packet event chain); see
        :func:`repro.simulation.host_sim.build_regulated_host`.

    Returns
    -------
    TreeSimResult
        Per-receiver worst-case delays of the tagged flow and the
        network-wide worst case (the WDB of the paper).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    tree = trees[group]
    k = len(traces)
    if len(envelopes) != k:
        raise ValueError("traces and envelopes must align")
    if horizon is None:
        horizon = max(float(tr.times[-1]) for tr in traces if len(tr)) + 1e-9
    # Busy-period fast path: cross traffic folds into each member's MUX
    # closed-form, replication batches per busy period.  Adversarial
    # delivery instants are tie-order invariant, which is what makes
    # the folding exact (see the batched-module docstring).
    primed = engine == "batched" and discipline == "adversarial"

    sim = Simulator()
    per_receiver: dict[int, float] = {}

    def deliver(host: int, flow_id: int, packet: Packet) -> None:
        if flow_id != group:
            return
        delay = sim.now - packet.t_emit
        if delay > per_receiver.get(host, 0.0):
            per_receiver[host] = delay

    def deliver_batch(host: int, packets: Sequence[Packet]) -> None:
        # One released busy period, all delivered now: the worst delay
        # of the batch is measured against its earliest emission.
        delay = sim.now - min(p.t_emit for p in packets)
        if delay > per_receiver.get(host, 0.0):
            per_receiver[host] = delay

    # Build hosts bottom-up so children entries exist before parents.
    entries_by_host: dict[int, list] = {}
    children = tree.children()
    order = sorted(tree.members(), key=tree.depth, reverse=True)
    # Flow order inside each host: tagged flow first (index 0) so the
    # adversarial priority, when used, targets it.
    env_order = [envelopes[group]] + [
        envelopes[g] for g in range(k) if g != group
    ]
    cross = [traces[g].restrict(horizon) for g in range(k) if g != group]
    primed_map = (
        {f: tr for f, tr in enumerate(cross, start=1)} if primed else None
    )
    for host in order:
        child_entries = [
            (c, entries_by_host[c][0], float(latency[host, c]))
            for c in children[host]
        ]
        replicator = _Replicator(
            sim, host, group, child_entries, deliver, deliver_batch
        )
        sink_map: dict[int, object] = {0: replicator}
        for f in range(1, k):
            sink_map[f] = _Drop()
        cap = capacity
        if host_capacity is not None:
            cap = float(host_capacity.get(host, capacity))
        entries, _ = build_regulated_host(
            sim, env_order, sink_map,
            mode=mode, capacity=cap, discipline=discipline,
            stagger_phase=(hash(host) % 997) / 997.0,
            engine=engine,
            primed_traces=primed_map,
        )
        entries_by_host[host] = entries

    # Inject the K-1 cross flows at every member (each host serves all
    # K groups) -- unless they were primed closed-form above -- and
    # then the tagged flow at the root.  Cross flows go first so that
    # at equal-time ties cross arrivals precede tagged ones everywhere
    # (fanout events always carry later sequence numbers than
    # injections), which is exactly the order the background fold
    # realises: all three engines agree on every tie.
    if not primed:
        for host in tree.members():
            for f, tr in enumerate(cross, start=1):
                inject_trace(sim, tr, f, entries_by_host[host][f])
    root_entry = entries_by_host[tree.root][0]
    inject_trace(sim, traces[group].restrict(horizon), 0, root_entry)

    sim.run()
    # Function-local import: keeps the simulation layer importable
    # without the runtime package at module-load time.
    from repro.runtime.telemetry import record_engine

    record_engine(sim)
    if not per_receiver:
        raise RuntimeError("no packet was delivered; empty trace?")
    worst_host = max(per_receiver, key=lambda h: per_receiver[h])
    return TreeSimResult(
        group=group,
        mode=mode,
        worst_case_delay=per_receiver[worst_host],
        worst_receiver=worst_host,
        per_receiver_worst=dict(per_receiver),
        events=sim.events_processed,
        primed=primed,
    )


class _Drop:
    """Terminal sink for cross traffic."""

    def receive(self, packet: Packet) -> None:  # noqa: D102 - trivial
        pass
