"""Systematic analytic-vs-measured validation.

The theorems give worst-case *bounds*; the simulators measure realised
worst cases.  Soundness of the whole reproduction rests on the measured
value never exceeding its bound, for every (workload, K, rate, mode)
cell.  :func:`validate_bounds` sweeps that grid and reports the
tightness ratio ``measured / bound`` per cell; a ratio above 1 is a
bug (and a test failure), a ratio near 1 means the simulation realises
the analytical worst case (the synchronised-stream setups should).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.delay_bounds import (
    remark1_wdb_heterogeneous,
    theorem1_wdb_heterogeneous,
)
from repro.simulation.fluid import simulate_fluid_host
from repro.utils.rng import derive_seed
from repro.workloads.profiles import (
    AUDIO_MIX,
    HETEROGENEOUS_MIX,
    VIDEO_MIX,
    TrafficMix,
)

__all__ = ["ValidationCell", "validate_bounds", "DEFAULT_MIXES"]

DEFAULT_MIXES: tuple[TrafficMix, ...] = (AUDIO_MIX, VIDEO_MIX, HETEROGENEOUS_MIX)


@dataclass(frozen=True)
class ValidationCell:
    """One grid cell of the bound validation."""

    mix_name: str
    mode: str
    utilization: float
    measured: float
    bound: float

    @property
    def tightness(self) -> float:
        """measured / bound; must be <= 1 (+ grid tolerance)."""
        if self.bound == 0:
            return 0.0
        return self.measured / self.bound

    @property
    def sound(self) -> bool:
        return self.measured <= self.bound * 1.001 + 5e-3


def validate_bounds(
    mixes: Sequence[TrafficMix] = DEFAULT_MIXES,
    utilizations: Sequence[float] = (0.5, 0.7, 0.9),
    *,
    horizon: float = 10.0,
    dt: float = 1e-3,
    seed: int = 2006,
) -> list[ValidationCell]:
    """Measure every (mix, mode, rate) cell against its theorem.

    (sigma, rho) cells check against Remark 1; (sigma, rho, lambda)
    cells against Theorem 1 (which covers Theorem 2's homogeneous case).
    """
    cells: list[ValidationCell] = []
    for mix in mixes:
        for u in utilizations:
            scaled = mix.at_utilization(float(u))
            traces = scaled.generate_traces(
                horizon, derive_seed(seed, "validate", mix.name), shared=True
            )
            envs = [
                ArrivalEnvelope(max(tr.empirical_sigma(src.rate), 1e-9), src.rate)
                for tr, src in zip(traces, scaled.sources)
            ]
            sigmas = [e.sigma for e in envs]
            rhos = [e.rho for e in envs]
            for mode, bound in (
                ("sigma-rho", remark1_wdb_heterogeneous(sigmas, rhos)),
                ("sigma-rho-lambda", theorem1_wdb_heterogeneous(sigmas, rhos)),
            ):
                res = simulate_fluid_host(
                    traces, envs, mode=mode,
                    discipline="adversarial", dt=dt,
                )
                cells.append(
                    ValidationCell(
                        mix_name=mix.name,
                        mode=mode,
                        utilization=float(u),
                        measured=res.worst_case_delay,
                        bound=float(bound),
                    )
                )
    return cells
