"""Attaching end hosts to the backbone.

"The 665 group members directly or indirectly through some intermediate
network components (e.g., the hubs) attach to the routers in the
backbone network" (Section VI-B).  :func:`attach_hosts` distributes
``n`` hosts over the routers (uniformly or with a skew) and assigns
each an access latency; the result is an :class:`AttachedNetwork`
bundle consumed by the routing and overlay modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.topology.backbone import validate_backbone
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_positive

__all__ = ["AttachedNetwork", "attach_hosts"]


@dataclass(frozen=True)
class AttachedNetwork:
    """A backbone plus attached end hosts.

    Attributes
    ----------
    backbone:
        Router graph with ``latency`` edge attributes.
    host_router:
        ``host_router[h]`` is the backbone router host ``h`` attaches to.
    access_latency:
        ``access_latency[h]`` is the one-way host-router latency (s).
    """

    backbone: nx.Graph
    host_router: np.ndarray
    access_latency: np.ndarray

    def __post_init__(self) -> None:
        validate_backbone(self.backbone)
        hr = np.asarray(self.host_router, dtype=np.int64)
        al = np.asarray(self.access_latency, dtype=np.float64)
        if hr.ndim != 1 or al.ndim != 1 or hr.shape != al.shape:
            raise ValueError("host_router and access_latency must be 1-D and aligned")
        routers = set(self.backbone.nodes)
        if not set(hr.tolist()) <= routers:
            raise ValueError("host_router references unknown routers")
        if np.any(al <= 0):
            raise ValueError("access latencies must be > 0")
        object.__setattr__(self, "host_router", hr)
        object.__setattr__(self, "access_latency", al)

    @property
    def n_hosts(self) -> int:
        return int(self.host_router.shape[0])

    @property
    def n_routers(self) -> int:
        return int(self.backbone.number_of_nodes())

    def hosts_at_router(self, router: int) -> np.ndarray:
        """Indices of hosts attached to ``router`` (a DSCT local domain)."""
        return np.nonzero(self.host_router == router)[0]

    def domains(self) -> dict[int, np.ndarray]:
        """Mapping router -> attached hosts, omitting empty routers."""
        out = {}
        for r in self.backbone.nodes:
            hosts = self.hosts_at_router(r)
            if hosts.size:
                out[int(r)] = hosts
        return out


def attach_hosts(
    backbone: nx.Graph,
    n_hosts: int,
    *,
    access_latency_range: tuple[float, float] = (0.001, 0.005),
    skew: float = 0.0,
    rng: RandomSource = None,
) -> AttachedNetwork:
    """Attach ``n_hosts`` end hosts to the backbone routers.

    Parameters
    ----------
    backbone:
        Router graph (see :mod:`repro.topology.backbone`).
    n_hosts:
        Number of end hosts (665 in the paper's Simulation II).
    access_latency_range:
        Uniform range of host-router one-way latencies in seconds
        (LAN/hub scale, 1-5 ms default).
    skew:
        0 gives uniform attachment; larger values concentrate hosts on
        a few routers (Zipf-like weights with exponent ``skew``),
        modelling hot campuses.
    rng:
        Seed or generator for reproducibility.
    """
    validate_backbone(backbone)
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    lo, hi = access_latency_range
    check_positive(lo, "access_latency_range[0]")
    if hi < lo:
        raise ValueError("access_latency_range must be (low, high) with low <= high")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    gen = ensure_rng(rng)
    routers = np.asarray(sorted(backbone.nodes), dtype=np.int64)
    if skew == 0.0:
        weights = np.ones(routers.shape[0])
    else:
        ranks = np.arange(1, routers.shape[0] + 1, dtype=np.float64)
        weights = ranks ** (-skew)
        gen.shuffle(weights)  # which router is "hot" is itself random
    weights = weights / weights.sum()
    host_router = routers[gen.choice(routers.shape[0], size=n_hosts, p=weights)]
    access_latency = gen.uniform(lo, hi, size=n_hosts)
    return AttachedNetwork(
        backbone=backbone,
        host_router=host_router,
        access_latency=access_latency,
    )
