"""Priority-extended (sigma, rho, lambda, w) regulation.

The paper's conclusion sketches the extension this module implements:
"When the traffic priority is considered, we should extend our
algorithm to deal with the flows with different priorities.  For
example, adding new parameters into (sigma, rho, lambda) regulator to
enable it to recognize and process flows with different priorities."

Mechanism: **window splitting**.  In the plain stagger plan every flow
gets one working window of length ``W_i`` per common period ``P``; the
worst-case wait for a bit is dominated by one full vacation
(``~ P - W_i``).  A flow with integer priority weight ``w_i >= 1``
instead receives ``w_i`` sub-windows of length ``W_i / w_i`` spread
evenly across the period.  Its throughput share is unchanged (the
envelope it presents to the MUX is preserved -- the conservation
argument of Section III applies per sub-window), but the longest time
it can be blocked shrinks to about ``(P - W_i) / w_i``: the delay bound
scales inversely with the weight.

The fluid realisation reuses the periodic on-time kernel once per
sub-window; everything composes with the existing MUX stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.core.delay_bounds import reduced_sigma_star
from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.fluid import fluid_on_time, fluid_work_conserving
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "PriorityStaggerPlan",
    "build_priority_stagger_plan",
    "priority_delay_bound",
    "fluid_priority_vacation_regulator",
]


@dataclass(frozen=True)
class PriorityStaggerPlan:
    """A stagger plan whose flows may hold several sub-windows per period.

    Attributes
    ----------
    regulators:
        Per-flow (sigma, rho, lambda) parameter objects (on the reduced
        bursts ``sigma_i*``).
    weights:
        Integer priority weights ``w_i >= 1``; flow ``i`` gets ``w_i``
        sub-windows of length ``W_i / w_i`` per period.
    sub_offsets:
        ``sub_offsets[i]`` -- tuple of the flow's sub-window start
        offsets within the common period.
    period:
        The common regulator period.
    """

    regulators: tuple[SigmaRhoLambdaRegulator, ...]
    weights: tuple[int, ...]
    sub_offsets: tuple[tuple[float, ...], ...]
    period: float

    def __post_init__(self) -> None:
        if not (
            len(self.regulators) == len(self.weights) == len(self.sub_offsets)
        ):
            raise ValueError("regulators, weights and sub_offsets must align")
        for w, offs in zip(self.weights, self.sub_offsets):
            if len(offs) != w:
                raise ValueError("each flow needs exactly w_i sub-offsets")
        total_work = sum(r.working_period for r in self.regulators)
        if total_work > self.period * (1 + 1e-9):
            raise ValueError("working periods exceed the period; unstable host")

    def sub_window_length(self, flow: int) -> float:
        return self.regulators[flow].working_period / self.weights[flow]

    def windows_overlap(self) -> bool:
        """Check pairwise overlap of all sub-windows within one period."""
        spans = []
        for i, offs in enumerate(self.sub_offsets):
            w = self.sub_window_length(i)
            for o in offs:
                spans.append((o % self.period, (o % self.period) + w))
        spans.sort()
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            if s1 < e0 - 1e-12:
                return True
        if spans and spans[-1][1] - self.period > spans[0][0] + 1e-12:
            return True
        return False


def build_priority_stagger_plan(
    envelopes: Sequence[ArrivalEnvelope],
    weights: Sequence[int],
    capacity: float = 1.0,
) -> PriorityStaggerPlan:
    """Build a priority plan: ``w_i`` sub-windows per flow per period.

    Scheduling: the period is cut into ``lcm``-style slots by walking a
    round-robin over every flow's sub-windows in weight order; the
    resulting sub-windows tile without overlap because the total work
    per period is unchanged (``sum W_i <= P`` under stability).
    """
    if len(envelopes) != len(weights):
        raise ValueError("envelopes and weights must align")
    check_positive(capacity, "capacity")
    for w in weights:
        check_positive_int(w, "weight")
    controller = AdaptiveController(envelopes, capacity)
    if not controller.is_stable:
        raise ValueError("stability condition violated (sum rho_i > C)")
    sigmas = [e.sigma for e in envelopes]
    rhos = [e.rho / capacity for e in envelopes]
    stars = reduced_sigma_star(sigmas, rhos)
    regulators = tuple(
        SigmaRhoLambdaRegulator(s, r) for s, r in zip(stars, rhos)
    )
    period = regulators[0].regulator_period

    # Allocation: interleave one sub-window of every flow, repeating
    # until each flow has placed its w_i sub-windows; the gap between a
    # flow's consecutive sub-windows is then ~P / w_i.  Offsets are laid
    # out greedily in slot order.
    max_w = max(weights)
    slot_cursor = 0.0
    sub_offsets: list[list[float]] = [[] for _ in envelopes]
    for round_idx in range(max_w):
        for i, (reg, w) in enumerate(zip(regulators, weights)):
            if round_idx >= w:
                continue
            length = reg.working_period / w
            sub_offsets[i].append(slot_cursor)
            slot_cursor += length
    # Spread the rounds across the period so a flow's sub-windows are
    # roughly evenly spaced: scale each round's block into its share.
    total_work = slot_cursor
    if total_work > 0 and total_work < period:
        # Insert idle slack between rounds proportionally.
        stretch = period / total_work
        sub_offsets = [
            [o * stretch for o in offs] for offs in sub_offsets
        ]
    return PriorityStaggerPlan(
        regulators=regulators,
        weights=tuple(int(w) for w in weights),
        sub_offsets=tuple(tuple(o) for o in sub_offsets),
        period=period,
    )


def max_service_gap(plan: PriorityStaggerPlan, flow: int) -> float:
    """Largest start-to-start distance between consecutive sub-windows.

    Computed from the *constructed* schedule (wrapping around the
    period), so the delay bound below holds for any layout, evenly
    spaced or not.  With a single window the gap is the full period.
    """
    offs = sorted(o % plan.period for o in plan.sub_offsets[flow])
    if len(offs) == 1:
        return plan.period
    gaps = [b - a for a, b in zip(offs, offs[1:])]
    gaps.append(offs[0] + plan.period - offs[-1])
    return max(gaps)


def priority_delay_bound(
    plan: PriorityStaggerPlan, flow: int, sigma_input: float | None = None
) -> float:
    """Lemma-1-style bound for a weighted flow.

    Between two consecutive sub-window starts (distance at most
    ``g = max_service_gap``), the flow accumulates at most
    ``sigma + rho g`` of backlog; sub-windows then drain it at the
    long-run duty-cycle rate ``rho``.  Hence

    ``D_i <= (sigma_in - sigma_i)+ / rho_i + sigma_i / rho_i + g_i``.

    For a single window (``w_i = 1``, ``g = P``) this reduces to
    ``sigma/rho + P = (1 + lambda) sigma / rho`` -- Lemma 1's induction
    invariant, slightly tighter than its ``2 lambda sigma / rho`` form.
    As the weight grows, ``g -> P / w`` and the bound decreases towards
    the fluid-rate limit ``sigma / rho``.
    """
    reg = plan.regulators[flow]
    excess = 0.0
    if sigma_input is not None and sigma_input > reg.sigma:
        excess = (sigma_input - reg.sigma) / reg.rho
    return excess + reg.sigma / reg.rho + max_service_gap(plan, flow)


def fluid_priority_vacation_regulator(
    arrivals_cum: np.ndarray,
    t_grid: np.ndarray,
    plan: PriorityStaggerPlan,
    flow: int,
    out_rate: float = 1.0,
) -> np.ndarray:
    """Fluid realisation: service available in every sub-window.

    The cumulative on-time is the sum of the periodic on-times of the
    flow's sub-windows (they never overlap within the flow by
    construction), each with length ``W_i / w_i`` and the common period.
    """
    reg = plan.regulators[flow]
    w = plan.weights[flow]
    length = reg.working_period / w
    on = np.zeros_like(t_grid)
    for off in plan.sub_offsets[flow]:
        on += fluid_on_time(t_grid, length, plan.period, off)
    return fluid_work_conserving(arrivals_cum, out_rate * on)
