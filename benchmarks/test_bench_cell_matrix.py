"""Structure-of-arrays cell-matrix benchmarks (the PR-6 tentpole numbers).

PR 5 made single cells cheap; PR 6 makes the *matrix* cheap: cells
sharing ``(backend, discipline, topology, mode)`` evaluate as one
grouped pass -- sources built once per parameter point, traces and
sigma measurements deduplicated within each cell, fluid lanes packed
into padded matrices for the ``batch_fluid_*`` kernels, DES cells run
through the lean ``primed_adversarial_worst`` kernel with regulator
passes shared across flows on the same trace.  Results stay
bit-identical to the per-cell path (``tests/test_scenarios_cellmatrix``
enforces it); these benchmarks measure the throughput side and emit
``BENCH_pr6.json`` at the repo root.

The homogeneous closed-form campaigns (k = 12 shared CBR flows per
cell: the per-cell path shapes and measures 12 lanes, the grouped path
one) are where grouping pays most; observed on the reference container
~8x fluid and ~7.5x DES end-to-end through ``run_batch``.  Floors keep
generous headroom so CI noise does not flake:

* fluid sigma-rho closed-form campaign >= 5x grouped over per-cell;
* DES sigma-rho closed-form campaign >= 4x grouped over per-cell;
* the mixed generated matrix (chains/trees/adaptive cells fall back
  per-cell) must never regress below 0.7x -- grouping is default-on
  for serial runs, so near-parity on unfavourable matrices is part of
  the contract.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.runtime.executor import SerialExecutor
from repro.scenarios import generate_scenarios, run_batch
from repro.scenarios.spec import Scenario

#: Asserted floor: grouped vs per-cell on the fluid closed-form campaign.
FLUID_GROUPED_FLOOR = 5.0
#: Asserted floor: grouped vs per-cell on the DES closed-form campaign.
DES_GROUPED_FLOOR = 4.0
#: Asserted floor: grouped vs per-cell on the mixed generated matrix.
MIXED_PARITY_FLOOR = 0.7

N_CELLS = 256


def _closed_form_matrix(backend: str, n: int = N_CELLS, k: int = 12):
    """One SoA group: homogeneous shared-CBR adversarial hosts whose
    utilisation sweeps 64 parameter points."""
    return [
        Scenario(
            name=f"soa-{backend}-{i}",
            kinds=("cbr",) * k,
            utilization=0.55 + 0.0005 * (i % 64),
            mode="sigma-rho",
            backend=backend,
            horizon=0.5,
            seed=i,
        )
        for i in range(n)
    ]


def _best_of(n: int, fn, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _grouped_vs_percell(cells):
    t_per, per = _best_of(
        2, run_batch, cells, executor=SerialExecutor(), group_cells=False
    )
    t_grp, grp = _best_of(
        2, run_batch, cells, executor=SerialExecutor(), group_cells=True
    )
    for p, g in zip(per.outcomes, grp.outcomes):
        assert g.measured == p.measured and g.bound == p.bound
        assert g.events == p.events and g.sound == p.sound
    return t_per, t_grp


def test_fluid_closed_form_campaign_grouped_speedup(
    benchmark, bench_pr6, artifact_report
):
    cells = _closed_form_matrix("fluid")
    run_once(
        benchmark, run_batch, cells,
        executor=SerialExecutor(), group_cells=True,
    )
    t_per, t_grp = _grouped_vs_percell(cells)
    speedup = t_per / t_grp
    bench_pr6["fluid_closed_form"] = {
        "cells": len(cells),
        "flows_per_cell": 12,
        "percell_seconds": round(t_per, 3),
        "percell_cells_per_sec": round(len(cells) / t_per, 1),
        "grouped_seconds": round(t_grp, 3),
        "grouped_cells_per_sec": round(len(cells) / t_grp, 1),
        "speedup_x": round(speedup, 2),
    }
    benchmark.extra_info.update(bench_pr6["fluid_closed_form"])
    artifact_report.append(
        "== SoA cell matrix: fluid sigma-rho closed form ==\n"
        f"cells:    {len(cells)} (12 shared CBR flows each)\n"
        f"per-cell: {len(cells) / t_per:.0f} cells/s ({t_per:.2f}s)\n"
        f"grouped:  {len(cells) / t_grp:.0f} cells/s ({t_grp:.2f}s)\n"
        f"speedup:  {speedup:.1f}x"
    )
    assert speedup >= FLUID_GROUPED_FLOOR, (
        f"grouped fluid campaign only {speedup:.2f}x over per-cell"
    )


def test_des_closed_form_campaign_grouped_speedup(bench_pr6, artifact_report):
    cells = _closed_form_matrix("des")
    t_per, t_grp = _grouped_vs_percell(cells)
    speedup = t_per / t_grp
    bench_pr6["des_closed_form"] = {
        "cells": len(cells),
        "flows_per_cell": 12,
        "percell_seconds": round(t_per, 3),
        "percell_cells_per_sec": round(len(cells) / t_per, 1),
        "grouped_seconds": round(t_grp, 3),
        "grouped_cells_per_sec": round(len(cells) / t_grp, 1),
        "speedup_x": round(speedup, 2),
    }
    artifact_report.append(
        "== SoA cell matrix: DES sigma-rho closed form ==\n"
        f"cells:    {len(cells)} (12 shared CBR flows each)\n"
        f"per-cell: {len(cells) / t_per:.0f} cells/s ({t_per:.2f}s)\n"
        f"grouped:  {len(cells) / t_grp:.0f} cells/s ({t_grp:.2f}s)\n"
        f"speedup:  {speedup:.1f}x"
    )
    assert speedup >= DES_GROUPED_FLOOR, (
        f"grouped DES campaign only {speedup:.2f}x over per-cell"
    )


def test_mixed_matrix_grouped_never_regresses(bench_pr6, artifact_report):
    """Grouping is default-on for serial runs, so the unfavourable
    case -- a generated matrix full of fallback cells -- must stay at
    near-parity."""
    cells = generate_scenarios(192, seed=23)
    t_per, t_grp = _grouped_vs_percell(cells)
    ratio = t_per / t_grp
    bench_pr6["mixed_generated"] = {
        "cells": len(cells),
        "percell_cells_per_sec": round(len(cells) / t_per, 1),
        "grouped_cells_per_sec": round(len(cells) / t_grp, 1),
        "grouped_over_percell_x": round(ratio, 2),
    }
    artifact_report.append(
        "== SoA cell matrix: mixed generated matrix ==\n"
        f"cells:    {len(cells)} (hosts + chain/tree/adaptive fallback)\n"
        f"per-cell: {len(cells) / t_per:.0f} cells/s\n"
        f"grouped:  {len(cells) / t_grp:.0f} cells/s "
        f"({ratio:.2f}x)"
    )
    assert ratio >= MIXED_PARITY_FLOOR, (
        f"grouped evaluation regressed the mixed matrix to {ratio:.2f}x"
    )
