"""Underlay substrate: backbone, attachment, routing."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.attach import AttachedNetwork, attach_hosts
from repro.topology.backbone import fig5_backbone, validate_backbone, waxman_backbone
from repro.topology.routing import (
    host_latency_matrix,
    host_rtt_matrix,
    router_distance_matrix,
)


class TestFig5Backbone:
    def test_nineteen_routers(self):
        g = fig5_backbone()
        assert g.number_of_nodes() == 19

    def test_connected_with_positive_latencies(self):
        g = fig5_backbone()
        assert nx.is_connected(g)
        assert all(d["latency"] > 0 for _, _, d in g.edges(data=True))

    def test_latency_scaling(self):
        a = fig5_backbone(core_latency=0.01)
        b = fig5_backbone(core_latency=0.02)
        ea = next(iter(a.edges(data=True)))
        eb = next(iter(b.edges(data=True)))
        assert eb[2]["latency"] == pytest.approx(2 * ea[2]["latency"])

    def test_validate_rejects_disconnected(self):
        g = nx.Graph()
        g.add_edge(0, 1, latency=0.01)
        g.add_edge(2, 3, latency=0.01)
        with pytest.raises(ValueError, match="connected"):
            validate_backbone(g)

    def test_validate_rejects_missing_latency(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(ValueError, match="latency"):
            validate_backbone(g)


class TestWaxman:
    def test_size_and_connectivity(self):
        g = waxman_backbone(40, rng=5)
        assert g.number_of_nodes() == 40
        assert nx.is_connected(g)

    def test_reproducible(self):
        a = waxman_backbone(25, rng=9)
        b = waxman_backbone(25, rng=9)
        assert set(a.edges) == set(b.edges)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            waxman_backbone(1)


class TestAttachment:
    def test_counts_and_ranges(self, backbone):
        net = attach_hosts(backbone, 100, rng=1)
        assert net.n_hosts == 100
        assert net.n_routers == 19
        assert np.all(net.access_latency >= 0.001)
        assert np.all(net.access_latency <= 0.005)

    def test_every_host_on_a_real_router(self, backbone):
        net = attach_hosts(backbone, 50, rng=2)
        assert set(net.host_router.tolist()) <= set(backbone.nodes)

    def test_domains_partition_hosts(self, backbone):
        net = attach_hosts(backbone, 80, rng=3)
        doms = net.domains()
        total = sum(len(v) for v in doms.values())
        assert total == 80

    def test_skewed_attachment_concentrates(self, backbone):
        uniform = attach_hosts(backbone, 600, skew=0.0, rng=4)
        skewed = attach_hosts(backbone, 600, skew=2.0, rng=4)
        u_max = max(len(v) for v in uniform.domains().values())
        s_max = max(len(v) for v in skewed.domains().values())
        assert s_max > u_max

    def test_validation(self, backbone):
        with pytest.raises(ValueError):
            attach_hosts(backbone, 0)
        with pytest.raises(ValueError):
            attach_hosts(backbone, 10, access_latency_range=(0.005, 0.001))
        with pytest.raises(ValueError):
            attach_hosts(backbone, 10, skew=-1.0)

    def test_attached_network_validation(self, backbone):
        with pytest.raises(ValueError, match="unknown routers"):
            AttachedNetwork(
                backbone,
                host_router=np.array([999]),
                access_latency=np.array([0.001]),
            )


class TestRouting:
    def test_router_matrix_symmetric_zero_diagonal(self, backbone):
        d = router_distance_matrix(backbone)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert np.all(d[~np.eye(19, dtype=bool)] > 0)

    def test_triangle_inequality(self, backbone):
        """Shortest-path metric: d(a,c) <= d(a,b) + d(b,c)."""
        d = router_distance_matrix(backbone)
        n = d.shape[0]
        via = d[:, None, :] + d[None, :, :].transpose(1, 0, 2)
        # min over intermediate b of d(a,b)+d(b,c) >= d(a,c)
        assert np.all(d <= via.min(axis=1) + 1e-12)

    def test_host_latency_structure(self, small_network):
        lat = host_latency_matrix(small_network)
        n = small_network.n_hosts
        assert lat.shape == (n, n)
        assert np.allclose(np.diag(lat), 0.0)
        assert np.allclose(lat, lat.T)

    def test_same_router_hosts_are_close(self, small_network):
        lat = host_latency_matrix(small_network)
        doms = small_network.domains()
        multi = [hs for hs in doms.values() if len(hs) >= 2]
        if not multi:
            pytest.skip("no multi-host domain in fixture")
        a, b = multi[0][:2]
        # Same-router pair: only access links, < 10 ms + no core latency.
        assert lat[a, b] <= 0.01
        # Cross-domain pair includes at least one core hop (>= 6 ms).
        routers = list(doms)
        other = doms[routers[1]][0] if routers[0] != small_network.host_router[a] else doms[routers[0]][0]

    def test_rtt_is_twice_latency(self, small_network):
        lat = host_latency_matrix(small_network)
        rtt = host_rtt_matrix(small_network)
        assert np.allclose(rtt, 2 * lat)
