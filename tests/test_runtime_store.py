"""The pluggable result store: keys, backends, resume, corruption, diffing.

The store is the campaign's memory: content-hashed keys make resume
and cross-campaign diffing order-independent, and a corrupt row (torn
JSONL write, hand-edited SQLite payload) must quarantine rather than
kill the next run.  The backend-parametrised classes here pin the
contract both backends share; concurrency-specific coverage lives in
``test_runtime_store_sqlite.py``.
"""

import json
from pathlib import Path

import pytest

from repro.runtime.store import (
    JsonlResultStore,
    ResultStore,
    cell_key,
    diff_records,
    diff_stores,
    fingerprint_shard,
    merge_stores,
    open_store,
    spec_fingerprint,
)
from repro.runtime.store_sqlite import SqliteResultStore
from repro.scenarios.spec import Scenario

pytestmark = pytest.mark.runtime

BACKENDS = ("jsonl", "sqlite")


def _make_store(kind: str, root) -> ResultStore:
    return open_store(f"{kind}:{root}")


def _sc(**kw):
    base = dict(name="cell", kinds=("audio",) * 2, utilization=0.5, seed=3)
    base.update(kw)
    return Scenario(**base)


def _rec(key, *, sound=True, error=None, budget_ok=True, tightness=0.5):
    return {
        "key": key,
        "sound": sound,
        "error": error,
        "budget_ok": budget_ok,
        "tightness": tightness,
        "wall_time": 0.1,
    }


class TestKeys:
    def test_key_covers_every_field_including_seed(self):
        a, b = _sc(seed=1), _sc(seed=2)
        assert cell_key(a) != cell_key(b)
        assert cell_key(a) == cell_key(_sc(seed=1))

    def test_fingerprint_ignores_seed_only(self):
        assert spec_fingerprint(_sc(seed=1)) == spec_fingerprint(_sc(seed=2))
        assert spec_fingerprint(_sc(utilization=0.5)) != spec_fingerprint(
            _sc(utilization=0.6)
        )
        assert spec_fingerprint(_sc(name="a")) != spec_fingerprint(_sc(name="b"))

    def test_keys_are_short_hex(self):
        key = cell_key(_sc())
        assert len(key) == 16
        int(key, 16)  # parses as hex

    def test_verdict_knobs_never_rekey_or_reseed(self):
        """perf_budget moves the verdict threshold, not the measurement:
        changing it must not invalidate stored cells or reseed traces."""
        plain, budgeted = _sc(), _sc(perf_budget=60.0)
        assert cell_key(plain) == cell_key(budgeted)
        assert spec_fingerprint(plain) == spec_fingerprint(budgeted)

    def test_fingerprint_shard_is_a_partition(self):
        fps = [spec_fingerprint(_sc(name=f"c{i}")) for i in range(40)]
        shards = [fingerprint_shard(fp, 4) for fp in fps]
        assert set(shards) <= set(range(4))
        assert len(set(shards)) > 1  # actually spreads
        # Deterministic, and independent of the shard the caller asks for.
        assert shards == [fingerprint_shard(fp, 4) for fp in fps]
        with pytest.raises(ValueError):
            fingerprint_shard(fps[0], 0)


class TestFactory:
    def test_base_class_dispatches_jsonl_default(self, tmp_path):
        store = ResultStore(tmp_path / "camp")
        assert isinstance(store, JsonlResultStore)
        assert store.kind == "jsonl"

    def test_url_schemes_force_backends(self, tmp_path):
        assert isinstance(
            open_store(f"jsonl:{tmp_path / 'j'}"), JsonlResultStore
        )
        assert isinstance(
            open_store(f"sqlite:{tmp_path / 's'}"), SqliteResultStore
        )
        assert isinstance(
            ResultStore(f"sqlite:{tmp_path / 's2'}"), SqliteResultStore
        )

    def test_bare_path_autodetects_existing_sqlite(self, tmp_path):
        sq = open_store(f"sqlite:{tmp_path / 'camp'}")
        sq.append(_rec("aa"))
        reopened = open_store(tmp_path / "camp")
        assert isinstance(reopened, SqliteResultStore)
        assert set(reopened.load()) == {"aa"}

    def test_instances_pass_through(self, tmp_path):
        store = open_store(tmp_path)
        assert open_store(store) is store

    def test_open_store_rejects_non_path_targets(self, tmp_path, monkeypatch):
        """Regression: a non-path object used to be str()-coerced into a
        literal '<... object at 0x...>' directory in the cwd."""
        monkeypatch.chdir(tmp_path)
        for bogus in (object(), 123, ["a"], None):
            with pytest.raises(TypeError, match="ResultStore instance"):
                open_store(bogus)
        assert list(tmp_path.iterdir()) == []  # nothing conjured

    def test_open_store_accepts_path_like_objects(self, tmp_path):
        """Anything implementing __fspath__ (py.path.local, custom
        path types) keeps working -- the guard targets stray objects,
        not the os.PathLike protocol."""

        class _FsPath:
            def __init__(self, p):
                self._p = str(p)

            def __fspath__(self):
                return self._p

        store = open_store(_FsPath(tmp_path / "pathlike"))
        assert isinstance(store, JsonlResultStore)
        assert store.root == tmp_path / "pathlike"
        assert isinstance(JsonlResultStore(_FsPath(tmp_path / "j2")).root, Path)

    def test_backend_constructors_reject_store_instances(
        self, tmp_path, monkeypatch
    ):
        """Passing a ResultStore where a root path is expected must fail
        loudly instead of mkdir-ing the instance's repr."""
        monkeypatch.chdir(tmp_path)
        store = open_store(tmp_path / "real")
        with pytest.raises(TypeError, match="open_store"):
            JsonlResultStore(store)
        with pytest.raises(TypeError, match="open_store"):
            SqliteResultStore(store)
        with pytest.raises(TypeError):
            JsonlResultStore(4.2)
        assert not any(
            "object at 0x" in p.name for p in tmp_path.iterdir()
        )

    def test_run_campaign_accepts_store_instance(self, tmp_path, monkeypatch):
        """run_campaign(store=<instance>) must use the instance as-is."""
        from repro.runtime import run_campaign
        from repro.scenarios import generate_scenarios

        monkeypatch.chdir(tmp_path)
        store = open_store(tmp_path / "inst")
        campaign = run_campaign(generate_scenarios(2, seed=3), store=store)
        assert campaign.store_records == 2
        assert len(store.load()) == 2
        assert not any(
            "object at 0x" in p.name for p in tmp_path.iterdir()
        )

    def test_base_class_requires_target(self):
        with pytest.raises(TypeError):
            ResultStore()

    def test_base_class_rejects_instances(self, tmp_path):
        """ResultStore(instance) would re-run the instance's __init__
        (type.__call__ semantics); open_store is the pass-through."""
        store = open_store(tmp_path)
        with pytest.raises(TypeError, match="open_store"):
            ResultStore(store)
        assert store.root == tmp_path  # untouched

    def test_must_exist_refuses_missing_stores(self, tmp_path):
        missing = tmp_path / "typo"
        with pytest.raises(FileNotFoundError):
            open_store(missing, must_exist=True)
        with pytest.raises(FileNotFoundError):
            open_store(f"sqlite:{missing}", must_exist=True)
        # And it must not have conjured the directory while checking.
        assert not missing.exists()
        # A real store (even an empty-but-initialised one) opens fine.
        open_store(tmp_path / "real").append(_rec("aa"))
        assert open_store(tmp_path / "real", must_exist=True).load()

    def test_must_exist_accepts_zero_record_shard_store(self, tmp_path):
        """A shard that owns zero cells writes only summary.json; that
        store is real and must pass the reference check (the merge/diff
        steps of the sharded workflow see it)."""
        empty = open_store(tmp_path / "empty-shard")
        empty.append_many([])           # no results file created...
        empty.write_summary()           # ...but the summary always is
        reopened = open_store(tmp_path / "empty-shard", must_exist=True)
        assert reopened.load() == {}
        # And the merge workflow digests it without complaint.
        full = open_store(tmp_path / "full")
        full.append(_rec("aa"))
        summary = merge_stores(
            tmp_path / "all", [tmp_path / "empty-shard", tmp_path / "full"]
        )
        assert summary["cells"] == 1


@pytest.mark.parametrize("kind", BACKENDS)
class TestStoreRoundtrip:
    def test_append_load(self, kind, tmp_path):
        store = _make_store(kind, tmp_path / "camp")
        store.append(_rec("aa"))
        store.append(_rec("bb", sound=False))
        records = store.load()
        assert set(records) == {"aa", "bb"}
        assert records["bb"]["sound"] is False
        assert records["aa"]["v"] == 2

    def test_nonfinite_floats_survive(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.append({"key": "inf", "bound": float("inf"), "measured": float("nan")})
        rec = store.load()["inf"]
        assert rec["bound"] == float("inf")
        assert rec["measured"] != rec["measured"]  # NaN

    def test_last_record_wins(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.append(_rec("aa", sound=False))
        store.append(_rec("aa", sound=True))
        assert store.load()["aa"]["sound"] is True

    def test_append_many_batches(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.append_many(_rec(f"k{i:02d}") for i in range(20))
        assert len(store.load()) == 20

    def test_keyless_record_rejected_on_write(self, kind, tmp_path):
        with pytest.raises(ValueError, match="key"):
            _make_store(kind, tmp_path).append({"sound": True})

    def test_missing_store_is_empty(self, kind, tmp_path):
        assert _make_store(kind, tmp_path / "fresh").load() == {}

    def test_completed_keys_skips_error_records(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.append(_rec("ok"))
        store.append(_rec("boom", sound=False, error="Traceback ..."))
        assert store.completed_keys() == {"ok"}

    def test_backends_load_bit_identical_records(self, kind, tmp_path):
        """A record round-trips to the same dict through either backend."""
        recs = [
            _rec("aa", tightness=0.123456789),
            {"key": "bb", "bound": float("inf"), "measured": float("nan"),
             "tags": ["x"], "spec": {"name": "cell"}},
        ]
        store = _make_store(kind, tmp_path / kind)
        reference = JsonlResultStore(tmp_path / "ref")
        store.append_many(recs)
        reference.append_many(recs)
        loaded, ref = store.load(), reference.load()
        assert loaded["aa"] == ref["aa"]
        assert loaded["bb"]["bound"] == ref["bb"]["bound"]
        assert loaded["bb"]["tags"] == ref["bb"]["tags"]


class TestCorruption:
    def test_corrupt_lines_quarantined_not_fatal(self, tmp_path):
        store = JsonlResultStore(tmp_path)
        store.append(_rec("aa"))
        with store.results_path.open("a") as fh:
            fh.write("{torn json!!\n")           # unparseable
            fh.write('{"sound": true}\n')        # keyless
        store.append(_rec("bb"))
        records = store.load()
        assert set(records) == {"aa", "bb"}
        assert store.quarantined == 2
        quarantined = store.quarantine_path.read_text().splitlines()
        assert "{torn json!!" in quarantined
        # The rewritten results file is clean: a second load sees no rot.
        assert store.load() == records
        assert store.quarantined == 0


class TestSummary:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_summary_counts(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.append(_rec("a", tightness=0.4))
        store.append(_rec("b", sound=False, tightness=1.2))
        store.append(_rec("c", sound=False, error="Traceback ...", tightness=0.0))
        store.append(_rec("d", budget_ok=False, tightness=0.7))
        summary = store.write_summary(extra={"campaign": "t"})
        assert summary["cells"] == 4
        assert summary["sound"] == 2
        assert summary["unsound"] == 1          # error cells counted apart
        assert summary["errors"] == 1
        assert summary["budget_violations"] == 1
        assert summary["max_tightness"] == pytest.approx(1.2)
        assert summary["campaign"] == "t"
        on_disk = json.loads(store.summary_path.read_text())
        assert on_disk == summary

    def test_summary_write_is_atomic_replace(self, tmp_path):
        """The summary lands via temp-file + os.replace, and the temp
        file never survives (concurrent shard processes rewrite it)."""
        store = JsonlResultStore(tmp_path)
        store.append(_rec("a"))
        store.write_summary()
        leftovers = [
            p for p in tmp_path.iterdir() if p.name.endswith(".tmp")
        ]
        assert leftovers == []
        assert json.loads(store.summary_path.read_text())["cells"] == 1

    def test_summary_is_deterministic_across_backends(self, tmp_path):
        """Same records -> byte-identical summary.json, whichever backend
        holds them (no wall clocks or run-local state in the summary)."""
        recs = [_rec("a", tightness=0.25), _rec("b", sound=False)]
        files = []
        for kind in BACKENDS:
            store = _make_store(kind, tmp_path / kind)
            store.append_many(recs)
            store.write_summary()
            files.append(store.summary_path.read_bytes())
        assert files[0] == files[1]


class TestMerge:
    @pytest.mark.parametrize("dest_kind", BACKENDS)
    def test_merge_shard_stores(self, dest_kind, tmp_path):
        a, b = JsonlResultStore(tmp_path / "a"), _make_store(
            "sqlite", tmp_path / "b"
        )
        a.append(_rec("k1"))
        b.append(_rec("k2", sound=False))
        dest = f"{dest_kind}:{tmp_path / 'all'}"
        summary = merge_stores(dest, [tmp_path / "a", f"sqlite:{tmp_path / 'b'}"])
        assert summary["cells"] == 2
        assert set(open_store(dest).load()) == {"k1", "k2"}

    def test_merge_without_sources_refreshes_summary(self, tmp_path):
        store = JsonlResultStore(tmp_path)
        store.append(_rec("k1"))
        summary = merge_stores(tmp_path)
        assert summary["cells"] == 1
        assert store.summary_path.exists()

    def test_later_sources_win_ties(self, tmp_path):
        a, b = JsonlResultStore(tmp_path / "a"), JsonlResultStore(tmp_path / "b")
        a.append(_rec("k", sound=True))
        b.append(_rec("k", sound=False))
        merge_stores(tmp_path / "all", [tmp_path / "a", tmp_path / "b"])
        assert open_store(tmp_path / "all").load()["k"]["sound"] is False

    @pytest.mark.parametrize("dest_kind", BACKENDS)
    def test_merge_carries_telemetry_and_poison(self, dest_kind, tmp_path):
        """Folding shards together must not discard their attempt
        ledgers or poison diagnoses (the pre-PR-10 regression)."""
        a = _make_store("jsonl", tmp_path / "a")
        b = _make_store("sqlite", tmp_path / "b")
        a.append(_rec("k1"))
        a.append_telemetry([{"kind": "attempts", "key": "k1", "attempts": 2}])
        a.append_poison([{"key": "k1", "error_head": "boom"}])
        b.append(_rec("k2"))
        b.append_telemetry([{"kind": "lease", "lease": 1, "worker": "w1"}])
        dest = _make_store(dest_kind, tmp_path / "all")
        merge_stores(dest, [f"jsonl:{tmp_path / 'a'}", f"sqlite:{tmp_path / 'b'}"])
        tele = dest.load_telemetry()
        assert {t.get("merged_from") for t in tele} == {
            f"jsonl:{tmp_path / 'a'}",
            f"sqlite:{tmp_path / 'b'}",
        }
        assert any(t.get("kind") == "attempts" for t in tele)
        assert any(t.get("kind") == "lease" for t in tele)
        (diag,) = dest.load_poison()
        assert diag["error_head"] == "boom"
        assert diag["merged_from"] == f"jsonl:{tmp_path / 'a'}"

    def test_merge_preserves_original_provenance_across_hops(self, tmp_path):
        """A second merge hop keeps the *first* store's tag: provenance
        points at the original campaign, not the intermediate."""
        a = _make_store("jsonl", tmp_path / "a")
        a.append(_rec("k1"))
        a.append_poison([{"key": "k1", "error_head": "boom"}])
        merge_stores(tmp_path / "mid", [tmp_path / "a"])
        merge_stores(tmp_path / "final", [tmp_path / "mid"])
        (diag,) = open_store(tmp_path / "final").load_poison()
        assert diag["merged_from"] == f"jsonl:{tmp_path / 'a'}"

    def test_self_merge_rejected(self, tmp_path):
        store = JsonlResultStore(tmp_path)
        store.append(_rec("k"))
        with pytest.raises(ValueError, match="itself"):
            merge_stores(tmp_path, [tmp_path])

    def test_self_merge_rejected_through_path_aliases(self, tmp_path,
                                                      monkeypatch):
        """Relative vs absolute spellings of one store are still a
        self-merge (the guard resolves paths)."""
        store = JsonlResultStore(tmp_path / "camp")
        store.append(_rec("k"))
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError, match="itself"):
            merge_stores(tmp_path / "camp", ["camp"])


class TestDiff:
    def test_newly_unsound_cell_is_a_regression(self):
        old = {"a": _rec("a"), "b": _rec("b")}
        new = {"a": _rec("a"), "b": _rec("b", sound=False)}
        diff = diff_records(old, new)
        assert diff.regressions == ("b",)
        assert not diff.clean
        assert any("REGRESSION b" in ln for ln in diff.summary_lines())

    def test_worker_error_is_a_regression_too(self):
        diff = diff_records(
            {"a": _rec("a")}, {"a": _rec("a", error="Traceback ...")}
        )
        assert diff.regressions == ("a",)

    def test_fixes_added_removed(self):
        old = {"a": _rec("a", sound=False), "gone": _rec("gone")}
        new = {"a": _rec("a"), "fresh": _rec("fresh")}
        diff = diff_records(old, new)
        assert diff.fixes == ("a",)
        assert diff.added == ("fresh",)
        assert diff.removed == ("gone",)
        assert diff.clean

    def test_budget_regression_flagged(self):
        diff = diff_records(
            {"a": _rec("a")}, {"a": _rec("a", budget_ok=False)}
        )
        assert diff.budget_regressions == ("a",)
        assert not diff.clean

    def test_strict_gate_fails_on_removed_cells(self):
        diff = diff_records({"a": _rec("a"), "gone": _rec("gone")},
                            {"a": _rec("a")})
        assert diff.clean                       # not a regression per se...
        assert diff.gate() and not diff.gate(strict=True)  # ...but coverage loss

    def test_to_dict_machine_readable(self):
        diff = diff_records({"a": _rec("a")}, {"a": _rec("a", sound=False)})
        payload = diff.to_dict()
        assert payload["clean"] is False
        assert payload["regressions"] == ["a"]
        json.dumps(payload)  # JSON-serialisable as-is

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_diff_stores_end_to_end(self, kind, tmp_path):
        old = _make_store(kind, tmp_path / "old")
        new = _make_store(kind, tmp_path / "new")
        old.append(_rec("a"))
        new.append(_rec("a", sound=False))
        diff = diff_stores(f"{kind}:{tmp_path / 'old'}",
                           f"{kind}:{tmp_path / 'new'}")
        assert diff.regressions == ("a",)

    def test_diff_across_backends(self, tmp_path):
        """The diff is over records, so backends may differ freely."""
        JsonlResultStore(tmp_path / "old").append(_rec("a"))
        sq = _make_store("sqlite", tmp_path / "new")
        sq.append(_rec("a", budget_ok=False))
        diff = diff_stores(tmp_path / "old", f"sqlite:{tmp_path / 'new'}")
        assert diff.budget_regressions == ("a",)
