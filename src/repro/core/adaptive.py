"""The Adaptive Control Algorithm (Section III).

Each group end host ``g_j^i`` watches the average input rate
``rho_bar`` of the ``K_hat`` real-time flows entering it (one per group
it joined) and picks a traffic-control model:

* ``rho_bar in (0, rho*)``       -- normal load: plain (sigma, rho)
  regulators (token buckets), no vacations;
* ``rho_bar in [rho*, 1/K_hat)`` -- heavy load: (sigma, rho, lambda)
  regulators whose working periods are staggered round-robin so that at
  any instant (at most) one flow is being forwarded at full capacity
  while the others are blocked.

:class:`AdaptiveController` makes that decision and, in heavy-load
mode, produces a :class:`StaggerPlan`: per-flow regulators built on the
reduced bursts ``sigma_i*`` of Theorem 1 (which equalise all regulator
periods) plus phase offsets ``o_i = sum_{j<i} W_j`` so the working
windows tile the common period without overlap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.delay_bounds import reduced_sigma_star
from repro.core.regulator import (
    Regulator,
    SigmaRhoLambdaRegulator,
    SigmaRhoRegulator,
)
from repro.core.threshold import heterogeneous_threshold, homogeneous_threshold
from repro.utils.validation import check_positive

__all__ = ["ControlMode", "StaggerPlan", "AdaptiveController"]

_RHO_TOL = 1e-9


class ControlMode(enum.Enum):
    """Which regulator family the algorithm selected."""

    SIGMA_RHO = "sigma-rho"
    SIGMA_RHO_LAMBDA = "sigma-rho-lambda"


@dataclass(frozen=True)
class StaggerPlan:
    """A staggered vacation schedule for one end host's regulators.

    Attributes
    ----------
    regulators:
        One (sigma, rho, lambda) regulator per input flow, built on the
        reduced bursts ``sigma_i*``.
    offsets:
        Phase offset of each regulator's cycle (``o_i = sum_{j<i} W_j``).
    period:
        The common regulator period shared by all flows
        (``min_j sigma_j / (rho_j (1 - rho_j))``).
    """

    regulators: tuple[SigmaRhoLambdaRegulator, ...]
    offsets: tuple[float, ...]
    period: float

    def __post_init__(self) -> None:
        if len(self.regulators) != len(self.offsets):
            raise ValueError("regulators and offsets must have equal length")
        total_work = sum(r.working_period for r in self.regulators)
        if total_work > self.period * (1.0 + 1e-9):
            raise ValueError(
                "working periods exceed the common period; the stagger "
                f"cannot tile ({total_work:.6g} > {self.period:.6g}) -- "
                "is the stability condition sum(rho_i) <= C violated?"
            )

    @property
    def utilization(self) -> float:
        """Fraction of the period spent forwarding, ``sum W_i / P``."""
        return sum(r.working_period for r in self.regulators) / self.period

    def windows_overlap(self) -> bool:
        """Whether any two working windows overlap within a period.

        By construction (cumulative offsets over a common period) they
        never do; exposed for property tests and custom plans.
        """
        spans = sorted(
            (o % self.period, (o % self.period) + r.working_period)
            for o, r in zip(self.offsets, self.regulators)
        )
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            if s1 < e0 - 1e-12:
                return True
        # Wrap-around: the last window must not spill into the first.
        if spans and spans[-1][1] - self.period > spans[0][0] + 1e-12:
            return True
        return False


class AdaptiveController:
    """Decide and build the traffic-control model for one end host.

    Parameters
    ----------
    envelopes:
        The (sigma_i, rho_i) envelopes of the ``K_hat`` flows entering
        the host (one per group joined).
    capacity:
        Output link capacity ``C`` (1.0 under the paper's convention).
    threshold_override:
        Optional per-flow threshold ``rho*``; when omitted the Theorem
        3/4 value for ``K_hat`` flows is used (heterogeneous form unless
        all envelopes are identical).
    """

    def __init__(
        self,
        envelopes: Sequence[ArrivalEnvelope],
        capacity: float = 1.0,
        threshold_override: float | None = None,
    ):
        if not envelopes:
            raise ValueError("at least one input flow is required")
        self.envelopes = tuple(envelopes)
        self.capacity = check_positive(capacity, "capacity")
        self.k_hat = len(envelopes)
        if threshold_override is not None:
            self._rho_star = check_positive(threshold_override, "threshold_override")
        elif self.k_hat < 2:
            # A single-group host never multiplexes competing flows; the
            # vacation regulator can only hurt, so pin the threshold at
            # the stability limit (mode stays SIGMA_RHO).
            self._rho_star = 1.0
        elif self.is_homogeneous:
            self._rho_star = homogeneous_threshold(self.k_hat, self.capacity)
        else:
            self._rho_star = heterogeneous_threshold(self.k_hat, self.capacity)

    # -- measurements ---------------------------------------------------
    @property
    def is_homogeneous(self) -> bool:
        """All flows share the same (sigma, rho) description."""
        first = self.envelopes[0]
        return all(
            abs(e.sigma - first.sigma) <= _RHO_TOL
            and abs(e.rho - first.rho) <= _RHO_TOL
            for e in self.envelopes[1:]
        )

    @property
    def average_rate(self) -> float:
        """``rho_bar = (sum_i rho_i) / K_hat`` -- step 1 of the algorithm."""
        return sum(e.rho for e in self.envelopes) / self.k_hat

    @property
    def aggregate_rate(self) -> float:
        """``sum_i rho_i`` -- must not exceed ``C`` (stability)."""
        return sum(e.rho for e in self.envelopes)

    @property
    def rho_star(self) -> float:
        """The per-flow switching threshold in use."""
        return self._rho_star

    @property
    def is_stable(self) -> bool:
        """The paper's stability condition ``sum rho_i <= C``."""
        return self.aggregate_rate <= self.capacity + _RHO_TOL

    # -- the algorithm ----------------------------------------------------
    def select_mode(self) -> ControlMode:
        """Steps 2-3 of the Adaptive Control Algorithm.

        ``rho_bar < rho*`` selects the (sigma, rho) model, otherwise the
        (sigma, rho, lambda) model.  An unstable host (``sum rho_i > C``)
        is still assigned the lambda model -- it is the best the host can
        do -- but :attr:`is_stable` flags the violation.
        """
        if self.average_rate < self._rho_star:
            return ControlMode.SIGMA_RHO
        return ControlMode.SIGMA_RHO_LAMBDA

    def build_regulators(self) -> list[Regulator]:
        """Instantiate the per-flow regulators for the selected mode."""
        mode = self.select_mode()
        if mode is ControlMode.SIGMA_RHO:
            return [
                SigmaRhoRegulator(e.sigma, e.rho / self.capacity)
                for e in self.envelopes
            ]
        return list(self.build_stagger_plan().regulators)

    def build_stagger_plan(self) -> StaggerPlan:
        """Build the heavy-load round-robin schedule (Theorem 1 setup).

        Uses the reduced bursts ``sigma_i*`` so every regulator has the
        same period ``P = min_j sigma_j/(rho_j (1-rho_j))``, then offsets
        flow ``i`` by the cumulative working periods of flows ``< i``.
        Under stability ``sum_i W_i = P sum_i rho_i <= P``, so the
        windows tile without overlap.
        """
        sigmas = [e.sigma for e in self.envelopes]
        rhos = [e.rho / self.capacity for e in self.envelopes]
        stars = reduced_sigma_star(sigmas, rhos)
        regulators = tuple(
            SigmaRhoLambdaRegulator(s_star, r) for s_star, r in zip(stars, rhos)
        )
        period = regulators[0].regulator_period
        offsets = []
        acc = 0.0
        for reg in regulators:
            offsets.append(acc)
            acc += reg.working_period
        return StaggerPlan(regulators=regulators, offsets=tuple(offsets), period=period)

    def describe(self) -> dict:
        """A JSON-friendly summary (used by examples and the CLI)."""
        mode = self.select_mode()
        info = {
            "k_hat": self.k_hat,
            "homogeneous": self.is_homogeneous,
            "average_rate": self.average_rate,
            "aggregate_rate": self.aggregate_rate,
            "rho_star_per_flow": self._rho_star,
            "rho_star_aggregate": self._rho_star * self.k_hat,
            "stable": self.is_stable,
            "mode": mode.value,
        }
        if mode is ControlMode.SIGMA_RHO_LAMBDA:
            plan = self.build_stagger_plan()
            info["stagger_period"] = plan.period
            info["stagger_utilization"] = plan.utilization
        return info
