"""Shared cross-validation tolerances for the test suite.

Every analytic-vs-measured and backend-vs-backend comparison in the
tests draws its slack from here instead of scattering ad-hoc literals.
Each constant documents *what physical effect* it covers; tightening a
tolerance is a one-line change that the whole suite feels, and any test
that needs more slack than these provide is flagging a real bug, not a
tuning opportunity.
"""

# ----------------------------------------------------------------------
# Soundness: measured worst case vs analytic bound
# ----------------------------------------------------------------------
# The canonical soundness slacks live in the batched runner (they gate
# its per-cell verdicts in production, not just in tests); re-exported
# here so tests and runner can never drift apart.
from repro.scenarios.runner import EPS_ABS, EPS_REL

#: Relative slack on every soundness comparison (float accumulation
#: over long cumulative sums; nothing physical).
SOUND_REL = EPS_REL

#: Absolute slack for the DES backend, in seconds: one MTU (2 ms)
#: serialisation per hop -- the non-preemptive packet granularity the
#: fluid theorems do not see.
SOUND_ABS_DES = 4e-3

#: Absolute slack for the fluid backend at the default ``dt = 1e-3``:
#: a few grid bins of quantisation in the horizontal-deviation and
#: next-empty measures.
SOUND_ABS_FLUID = EPS_ABS


def sound_limit(bound: float, *, abs_tol: float = SOUND_ABS_FLUID) -> float:
    """The largest measured delay a sound cell may report."""
    return bound * (1.0 + SOUND_REL) + abs_tol


# ----------------------------------------------------------------------
# DES chain vs fluid chain (backend agreement on identical inputs)
# ----------------------------------------------------------------------
#: The DES chain's physical end-to-end delay vs the fluid Theorem-7
#: adversarial accounting: the DES sees discrete packets and
#: non-preemptive windows (up to a packet + window slack per hop), so
#: it may exceed the fluid continuum by a bounded factor.  Measured
#: worst ratio across modes is ~1.25; anything above 1.3 is a backend
#: divergence, not quantisation.
DES_OVER_FLUID_FACTOR = 1.3
DES_OVER_FLUID_ABS = 0.02

#: FIFO end-to-end agreement between the two backends on identical
#: traces (relative/absolute, fed to ``pytest.approx``).  Measured
#: deviation peaks near 0.25 in lambda mode (window quantisation);
#: 0.35 keeps headroom without hiding regressions.
BACKEND_FIFO_REL = 0.35
BACKEND_FIFO_ABS = 0.02

#: Strict dominance comparisons (adversarial >= fifo, etc.): pure
#: float-noise tie-breaking.
TIE_EPS = 1e-9

# ----------------------------------------------------------------------
# Validation-harness shape thresholds
# ----------------------------------------------------------------------
#: Synchronised streams must realise at least this fraction of the
#: analytic worst case somewhere in a validation grid -- guards against
#: vacuously loose measurements, not against unsound ones.
TIGHTNESS_FLOOR = 0.2
