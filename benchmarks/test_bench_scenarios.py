"""Batched scenario-runner throughput (scenarios/sec).

The scenario matrix is only a usable regression net if sweeping
hundreds of cells stays cheap; these benchmarks time the three cost
centres -- generation, the vectorised analytic pass, and the full
realise+simulate+verdict pipeline -- and assert generous throughput
floors so CI noise does not flake.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.scenarios import generate_scenarios, run_batch
from repro.scenarios.analytic import batch_bounds


def test_generate_200_scenarios(benchmark):
    scenarios = benchmark(generate_scenarios, 200, 0)
    assert len(scenarios) == 200


def test_vectorised_analytic_pass(benchmark):
    """The batched bound evaluation over 200 realised envelope sets."""
    scenarios = generate_scenarios(200, seed=0)
    envs, modes = [], []
    for sc in scenarios:
        e = sc.realise_envelopes(sc.realise_traces(mtu=None))
        envs.append(e)
        modes.append(sc.effective_mode(e))
    bounds, baselines = benchmark(batch_bounds, envs, modes)
    assert bounds.shape == (200,)
    assert baselines.shape == (200,)


def test_batched_runner_throughput(benchmark, artifact_report):
    """End-to-end matrix evaluation: realise, simulate, verdict."""
    scenarios = generate_scenarios(100, seed=0)
    report = run_once(benchmark, run_batch, scenarios)
    assert not report.violations
    # Floor: the 100-cell matrix must stream at >= 10 scenarios/s
    # (observed ~100/s; an order of magnitude of headroom for CI).
    assert report.scenarios_per_sec >= 10.0
    artifact_report.append(
        "== Scenario matrix throughput ==\n"
        + "\n".join(report.summary_lines())
    )
