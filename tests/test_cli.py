"""The repro-experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


def test_theory_runs(capsys):
    assert main(["theory"]) == 0
    out = capsys.readouterr().out
    assert "Rate thresholds" in out
    assert "0.73" in out and "0.79" in out


def test_fig4_quick(capsys):
    assert main(["fig4a", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4(a)" in out
    assert "crossover" in out


def test_table_quick(capsys):
    assert main(["table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "Capacity-aware DSCT" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig9z"])


def test_experiment_registry_complete():
    for name in ("fig4a", "fig6c", "table1", "theory", "validate", "all"):
        assert name in EXPERIMENTS


def test_validate_quick(capsys):
    assert main(["validate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Measured vs analytic" in out
    assert "unsound cells: 0" in out
