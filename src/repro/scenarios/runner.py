"""The batched analytic-vs-simulation cross-validation runner.

:func:`run_batch` is the engine behind ``scenarios run`` and the
``tests/test_scenarios_*`` matrix:

1. every scenario is *realised* (traces generated, empirical envelopes
   measured, adaptive mode resolved, tree topologies reduced to their
   critical-path chain);
2. the analytic side -- Theorem 1/2 per hop, scaled by the Theorem 7 /
   Remark 2 hop count, plus propagation -- is evaluated for the whole
   batch in one vectorised NumPy pass
   (:func:`repro.scenarios.analytic.batch_bounds`);
3. the simulated side runs per scenario on the requested backend
   (vectorised fluid engine or packet DES), under the adversarial
   general-MUX accounting;
4. each cell gets a soundness verdict ``measured <= bound + eps`` where
   ``eps`` covers the backend's quantisation (O(dt) per hop for the
   fluid grid, packet/window granularity for the DES).

A soundness violation is never tolerance-tuned away: the verdict line
is the repo's central regression net, and any `sound=False` cell is a
bug in either the theorems' implementation or a simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.adaptive import AdaptiveController
from repro.core.delay_bounds import theorem1_wdb_heterogeneous
from repro.core.multicast_bounds import dsct_height_bound
from repro.overlay.groups import MultiGroupNetwork
from repro.scenarios.analytic import batch_bounds
from repro.scenarios.spec import Scenario
from repro.simulation.chain import simulate_regulated_chain
from repro.simulation.flow import PacketTrace
from repro.simulation.fluid import simulate_fluid_chain, simulate_fluid_host
from repro.simulation.host_sim import simulate_regulated_host
from repro.topology.attach import attach_hosts
from repro.topology.transit_stub import transit_stub_backbone
from repro.utils.rng import derive_seed
from repro.workloads.profiles import DEFAULT_MTU

__all__ = ["ScenarioOutcome", "BatchReport", "run_batch", "run_scenario"]

#: Relative slack of the soundness verdict (float accumulation).
EPS_REL = 1e-3
#: Absolute floor of the soundness verdict, in seconds.
EPS_ABS = 5e-3
#: Fluid-grid quantisation charged per hop, in units of ``dt``.
FLUID_GRID_FACTOR = 3.0
#: DES packet/window quantisation charged per hop, in units of the MTU.
DES_MTU_FACTOR = 6.0
#: Smallest MTU the DES backend will fragment to before falling back to
#: the fluid backend (tiny reduced bursts would explode packet counts).
MIN_DES_MTU = 2e-4


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's verdict (all delays in seconds)."""

    scenario: Scenario
    eff_mode: str
    eff_backend: str
    hops: int
    propagation_total: float
    measured: float
    bound: float
    baseline_bound: float
    eps: float
    events: int
    cancelled_events: int
    height_ok: bool = True

    @property
    def sound(self) -> bool:
        """The invariant: simulated worst case within the analytic bound.

        An infinite bound (unstable cell) is vacuously satisfied, but
        the Lemma-2 height check still applies to tree cells.
        """
        if not np.isfinite(self.bound):
            return self.height_ok
        return self.measured <= self.bound + self.eps and self.height_ok

    @property
    def tightness(self) -> float:
        """measured / bound (0 for infinite bounds)."""
        if not np.isfinite(self.bound) or self.bound <= 0.0:
            return 0.0
        return self.measured / self.bound


@dataclass(frozen=True)
class BatchReport:
    """Aggregate over one :func:`run_batch` invocation."""

    outcomes: tuple[ScenarioOutcome, ...]
    elapsed: float

    @property
    def n_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> tuple[ScenarioOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.sound)

    @property
    def events_total(self) -> int:
        return sum(o.events for o in self.outcomes)

    @property
    def cancelled_total(self) -> int:
        """DES heap residue across the batch (cancelled-event pops)."""
        return sum(o.cancelled_events for o in self.outcomes)

    @property
    def scenarios_per_sec(self) -> float:
        return self.n_scenarios / self.elapsed if self.elapsed > 0 else float("inf")

    @property
    def max_tightness(self) -> float:
        return max((o.tightness for o in self.outcomes), default=0.0)

    def summary_lines(self) -> list[str]:
        """Human-readable digest (the CLI prints these)."""
        lines = [
            f"scenarios evaluated: {self.n_scenarios}",
            f"soundness violations: {len(self.violations)}",
            f"max tightness (measured/bound): {self.max_tightness:.3f}",
            f"throughput: {self.scenarios_per_sec:.1f} scenarios/s "
            f"({self.elapsed:.1f}s wall)",
            f"DES events processed: {self.events_total} "
            f"(+{self.cancelled_total} cancelled heap residue)",
        ]
        for o in self.violations:
            lines.append(
                f"  VIOLATION {o.scenario.name}: measured={o.measured:.6g} "
                f"> bound={o.bound:.6g} + eps={o.eps:.3g}"
            )
        return lines


# ----------------------------------------------------------------------
# Realisation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Realised:
    """A scenario with its traces, envelopes and topology resolved."""

    scenario: Scenario
    traces: list[PacketTrace]
    envelopes: list[ArrivalEnvelope]
    eff_mode: str
    eff_backend: str
    mtu: float
    hops: int
    propagation: tuple[float, ...]
    height_ok: bool
    #: Extra per-hop soundness slack (DES vacation-window quantisation).
    extra_eps: float = 0.0


def _resolve_tree(sc: Scenario) -> tuple[int, tuple[float, ...], bool]:
    """Reduce a DSCT tree scenario to its critical-path chain.

    Returns ``(hops, per-hop propagation, height_ok)`` where
    ``height_ok`` asserts the constructed height against Lemma 2.
    """
    base = derive_seed(sc.seed, "tree-topology", sc.name)
    # One independent stream per construction stage (the convention of
    # experiments/trees.py); a shared integer would restart the same
    # default_rng sequence at every stage and correlate the draws.
    g = transit_stub_backbone(3, 2, 3, rng=derive_seed(base, "backbone"))
    net = attach_hosts(g, sc.tree_members, rng=derive_seed(base, "attach"))
    mgn = MultiGroupNetwork.fully_joined(
        net, sc.k, rng=derive_seed(base, "groups")
    )
    tree = mgn.build_tree(0, "dsct", rng=derive_seed(base, "tree"))
    path = tree.critical_path()
    # Lemma 2 plus the one-layer slack small random domains can pack
    # (the same property the dsct construction tests assert).  The delay
    # verdict uses the *constructed* height, so this side-check never
    # loosens the bound accounting.
    height_ok = tree.height <= dsct_height_bound(tree.size) + 1
    if len(path) < 2:
        return 1, (0.0,), height_ok
    lat = mgn.latency
    prop = tuple(float(lat[a, b]) for a, b in zip(path, path[1:]))
    return len(path) - 1, prop, height_ok


def _des_lambda_fit(
    sc: Scenario, envelopes: Sequence[ArrivalEnvelope]
) -> Optional[tuple[float, float]]:
    """Decide whether the DES can resolve a (sigma, rho, lambda) cell.

    The DES vacation regulator is non-preemptive with a fit check: a
    packet must fit inside one working period ``W_i = sigma_i*/(1-rho_i)``
    (built on the *reduced* bursts of Theorem 1, which can be far below
    the empirical sigma), so the MTU must shrink to a fraction of the
    smallest window.  On top of that, the minimum-feasible ``lambda``
    makes the window budget exactly tight (``rho P = W``): up to one
    packet serialisation is wasted per cycle by the fit check, and that
    waste accumulates over the run -- an honest quantisation term of
    ``(horizon / P) * mtu / rho`` that no per-packet slack covers.

    Returns ``(mtu, extra_eps_per_hop)``, or ``None`` when the packet
    count would explode (``mtu < MIN_DES_MTU``) or the accumulated
    window waste would swamp the bound -- the caller then falls back to
    the fluid backend, which resolves the cell exactly.
    """
    plan = AdaptiveController(envelopes, sc.capacity).build_stagger_plan()
    w_min = min(r.working_period for r in plan.regulators)
    mtu = min(DEFAULT_MTU, w_min * sc.capacity / 32.0)
    if mtu < MIN_DES_MTU:
        return None
    rho_min = min(e.rho for e in envelopes) / sc.capacity
    cycles = sc.horizon / plan.period + 1.0
    extra = cycles * (mtu / sc.capacity) / rho_min
    bound = theorem1_wdb_heterogeneous(
        [e.sigma for e in envelopes], [e.rho for e in envelopes], sc.capacity
    )
    if not np.isfinite(bound) or extra > 0.3 * bound:
        return None
    return mtu, extra


def _realise(sc: Scenario) -> _Realised:
    raw = sc.realise_traces(mtu=None)
    # Empirical envelopes are fragmentation-invariant (fragments share
    # the original emission times), so measure them once on raw traces.
    envelopes = sc.realise_envelopes(raw)
    eff_mode = sc.effective_mode(envelopes)
    backend, mtu, extra_eps = sc.backend, DEFAULT_MTU, 0.0
    if backend == "des" and eff_mode == "sigma-rho-lambda":
        fit = _des_lambda_fit(sc, envelopes)
        if fit is None:
            backend = "fluid"
        else:
            mtu, extra_eps = fit
    traces = [tr.fragment(mtu) for tr in raw]
    if sc.topology == "tree":
        hops, prop, height_ok = _resolve_tree(sc)
    elif sc.topology == "chain":
        hops, prop, height_ok = sc.hops, (sc.propagation,) * sc.hops, True
    else:
        hops, prop, height_ok = 1, (0.0,), True
    return _Realised(
        sc, traces, envelopes, eff_mode, backend, mtu, hops, prop,
        height_ok, extra_eps,
    )


# ----------------------------------------------------------------------
# Simulation
# ----------------------------------------------------------------------
def _simulate(r: _Realised) -> tuple[float, int, int]:
    """Run one realised scenario; returns (measured, events, cancelled)."""
    sc = r.scenario
    if sc.topology == "host":
        if r.eff_backend == "fluid":
            res = simulate_fluid_host(
                r.traces,
                r.envelopes,
                mode=r.eff_mode,
                capacity=sc.capacity,
                discipline=sc.discipline,
                stagger_phase=sc.stagger_phase,
                dt=sc.dt,
            )
            return res.worst_case_delay, 0, 0
        res = simulate_regulated_host(
            r.traces,
            r.envelopes,
            mode=r.eff_mode,
            capacity=sc.capacity,
            discipline=sc.discipline,
            stagger_phase=sc.stagger_phase,
        )
        return res.worst_case_delay, res.events, res.cancelled_events
    tagged, cross = r.traces[0], list(r.traces[1:])
    cross_per_hop = [cross] * r.hops
    if r.eff_backend == "fluid":
        res = simulate_fluid_chain(
            tagged,
            cross_per_hop,
            r.envelopes,
            mode=r.eff_mode,
            capacity=sc.capacity,
            discipline=sc.discipline,
            stagger_phase=sc.stagger_phase,
            propagation=list(r.propagation),
            dt=sc.dt,
        )
        return res.worst_case_delay, 0, 0
    des = simulate_regulated_chain(
        tagged,
        cross_per_hop,
        r.envelopes,
        mode=r.eff_mode,
        capacity=sc.capacity,
        discipline=sc.discipline,
        stagger_phase=sc.stagger_phase,
        propagation=list(r.propagation),
    )
    return des.worst_case_delay, des.events, des.cancelled_events


def _eps_for(r: _Realised, bound: float) -> float:
    """Soundness slack: float noise + backend quantisation per hop."""
    rel = EPS_REL * bound if np.isfinite(bound) else 0.0
    if r.eff_backend == "fluid":
        quant = FLUID_GRID_FACTOR * r.scenario.dt * r.hops
    else:
        quant = (DES_MTU_FACTOR * r.mtu + r.extra_eps) * r.hops
    return rel + EPS_ABS + quant


# ----------------------------------------------------------------------
# Batch driver
# ----------------------------------------------------------------------
def run_batch(
    scenarios: Sequence[Scenario],
    *,
    progress: Optional[callable] = None,
) -> BatchReport:
    """Evaluate a scenario matrix: vectorised bounds, per-cell verdicts.

    ``progress`` (optional) is called as ``progress(i, n, outcome)``
    after each simulated cell.
    """
    if not scenarios:
        raise ValueError("at least one scenario is required")
    t0 = time.perf_counter()
    realised = [_realise(sc) for sc in scenarios]
    bounds, baselines = batch_bounds(
        [r.envelopes for r in realised],
        [r.eff_mode for r in realised],
        hops=[r.hops for r in realised],
        propagation_total=[float(sum(r.propagation)) for r in realised],
        capacity=[r.scenario.capacity for r in realised],
    )
    outcomes: list[ScenarioOutcome] = []
    for i, r in enumerate(realised):
        measured, events, cancelled = _simulate(r)
        outcome = ScenarioOutcome(
            scenario=r.scenario,
            eff_mode=r.eff_mode,
            eff_backend=r.eff_backend,
            hops=r.hops,
            propagation_total=float(sum(r.propagation)),
            measured=float(measured),
            bound=float(bounds[i]),
            baseline_bound=float(baselines[i]),
            eps=_eps_for(r, float(bounds[i])),
            events=events,
            cancelled_events=cancelled,
            height_ok=r.height_ok,
        )
        outcomes.append(outcome)
        if progress is not None:
            progress(i, len(realised), outcome)
    return BatchReport(
        outcomes=tuple(outcomes), elapsed=time.perf_counter() - t0
    )


def run_scenario(scenario: Scenario) -> ScenarioOutcome:
    """Evaluate a single scenario (a batch of one)."""
    return run_batch([scenario]).outcomes[0]
