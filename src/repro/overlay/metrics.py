"""Structural tree metrics, comparable across schemes.

The EMcast literature (and the paper's Section I) evaluates trees on
more than delay: height, fan-out, link stress, latency stretch.
:func:`compare_schemes` builds every scheme over one world and collects
those metrics side by side -- the structural companion to the delay
comparison of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.overlay.groups import SCHEMES, MultiGroupNetwork
from repro.overlay.tree import MulticastTree
from repro.utils.rng import RandomSource

__all__ = ["TreeMetrics", "measure_tree", "compare_schemes"]


@dataclass(frozen=True)
class TreeMetrics:
    """Structural metrics of one multicast tree."""

    scheme: str
    group: int
    size: int
    height: int
    max_fanout: int
    mean_fanout_internal: float
    link_stress: float
    stretch: float
    critical_path_hosts: int

    def as_row(self) -> list:
        return [
            self.scheme, self.group, self.size, self.height,
            self.max_fanout, round(self.mean_fanout_internal, 2),
            round(self.link_stress, 2), round(self.stretch, 2),
            self.critical_path_hosts,
        ]


def measure_tree(
    scheme: str,
    group: int,
    tree: MulticastTree,
    latency: np.ndarray,
    host_router: Sequence[int],
) -> TreeMetrics:
    """Collect the structural metrics of one tree."""
    fanout = tree.fanout()
    internal = [f for f in fanout.values() if f > 0]
    return TreeMetrics(
        scheme=scheme,
        group=group,
        size=tree.size,
        height=tree.height,
        max_fanout=tree.max_fanout(),
        mean_fanout_internal=float(np.mean(internal)) if internal else 0.0,
        link_stress=tree.link_stress(host_router),
        stretch=tree.stretch(latency),
        critical_path_hosts=len(tree.critical_path()),
    )


def compare_schemes(
    mgn: MultiGroupNetwork,
    *,
    schemes: Sequence[str] = SCHEMES,
    aggregate_rate: Optional[float] = None,
    cluster_k: int = 3,
    rng: RandomSource = None,
) -> list[TreeMetrics]:
    """Build every scheme's trees over one world; return all metrics.

    ``aggregate_rate`` is required whenever a capacity-aware scheme is
    included (it sets the fan-out bounds).
    """
    latency = mgn.latency
    host_router = mgn.network.host_router
    out: list[TreeMetrics] = []
    for scheme in schemes:
        needs_rate = scheme.startswith("capacity-aware")
        trees = mgn.build_all_trees(
            scheme,
            k=cluster_k,
            aggregate_rate=aggregate_rate if needs_rate else None,
            rng=rng,
        )
        for g, tree in enumerate(trees):
            out.append(measure_tree(scheme, g, tree, latency, host_router))
    return out
