"""Transit-stub topology generation (GT-ITM style).

The Fig-5 backbone is a single flat domain; Internet-scale EMcast
studies (the paper's future-work PlanetLab deployment) run on
*transit-stub* topologies: a small well-connected transit core whose
routers each anchor several dense, low-latency stub domains.  DSCT's
local-domain machinery maps directly onto the stubs.

:func:`transit_stub_backbone` produces such graphs with ``latency``
edge attributes compatible with the rest of :mod:`repro.topology`.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topology.backbone import validate_backbone, waxman_backbone
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_positive

__all__ = ["transit_stub_backbone"]


def transit_stub_backbone(
    n_transit: int = 4,
    stubs_per_transit: int = 3,
    stub_size: int = 4,
    *,
    transit_latency: float = 0.020,
    stub_latency: float = 0.002,
    uplink_latency: float = 0.008,
    extra_stub_edges: float = 0.5,
    rng: RandomSource = None,
) -> nx.Graph:
    """Generate a two-level transit-stub router topology.

    Parameters
    ----------
    n_transit:
        Routers in the transit core (a Waxman graph at
        ``transit_latency`` scale).
    stubs_per_transit, stub_size:
        Each transit router anchors this many stub domains of this many
        routers each.
    transit_latency, stub_latency, uplink_latency:
        Latency scales of core links, intra-stub links and
        stub-to-transit uplinks.
    extra_stub_edges:
        Expected number of extra random intra-stub edges per stub
        (beyond the ring that guarantees connectivity).
    rng:
        Seed or generator.

    Returns
    -------
    networkx.Graph
        Routers numbered 0..N-1; transit routers first.  Node attribute
        ``tier`` is ``"transit"`` or ``"stub"``; stub nodes carry a
        ``domain`` id.
    """
    if n_transit < 2:
        raise ValueError("need at least 2 transit routers")
    if stubs_per_transit < 1 or stub_size < 1:
        raise ValueError("stubs_per_transit and stub_size must be >= 1")
    check_positive(transit_latency, "transit_latency")
    check_positive(stub_latency, "stub_latency")
    check_positive(uplink_latency, "uplink_latency")
    if extra_stub_edges < 0:
        raise ValueError("extra_stub_edges must be >= 0")
    gen = ensure_rng(rng)

    core = waxman_backbone(
        n_transit, core_latency=transit_latency, rng=gen
    )
    g = nx.Graph(name="transit-stub")
    for u, v, data in core.edges(data=True):
        g.add_edge(u, v, **data)
    for t in core.nodes:
        g.nodes[t]["tier"] = "transit"

    next_id = n_transit
    domain = 0
    for t in range(n_transit):
        for _ in range(stubs_per_transit):
            nodes = list(range(next_id, next_id + stub_size))
            next_id += stub_size
            for node in nodes:
                g.add_node(node, tier="stub", domain=domain)
            # Ring for connectivity (a single node needs no edges).
            for a, b in zip(nodes, nodes[1:]):
                g.add_edge(a, b, latency=float(gen.uniform(0.5, 1.5)) * stub_latency)
            # Random chords.
            n_extra = gen.poisson(extra_stub_edges)
            for _ in range(n_extra):
                if len(nodes) < 3:
                    break
                a, b = gen.choice(nodes, size=2, replace=False)
                if not g.has_edge(int(a), int(b)):
                    g.add_edge(
                        int(a), int(b),
                        latency=float(gen.uniform(0.5, 1.5)) * stub_latency,
                    )
            # Uplink: the stub's first router homes to the transit node.
            g.add_edge(
                nodes[0], t,
                latency=float(gen.uniform(0.7, 1.3)) * uplink_latency,
            )
            domain += 1
    validate_backbone(g)
    return g
