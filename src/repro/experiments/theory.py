"""Numeric validation of the theory results (Theorems 3-6, Lemma 2).

These are the paper's analytical artefacts: the rate threshold values
(``rho* = 0.73 C`` homogeneous / ``0.79 C`` heterogeneous), the control
ranges (``2 - sqrt(3)`` / ``(5 - sqrt(21))/2``), and the ``O(K^n)``
improvement ratio.  The tables here recompute them from the exact
numeric crossings and the closed forms side by side.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.delay_bounds import (
    improvement_ratio_homogeneous,
    theorem5_band,
    theorem5_ratio_lower_bound,
)
from repro.core.multicast_bounds import dsct_height_bound
from repro.core.threshold import (
    control_range_heterogeneous_limit,
    control_range_homogeneous_limit,
    heterogeneous_threshold,
    heterogeneous_threshold_quadratic,
    homogeneous_threshold,
)

__all__ = [
    "threshold_table",
    "improvement_ratio_table",
    "height_bound_table",
]


def threshold_table(ks: Sequence[int] = (2, 3, 5, 10, 30, 100, 1000)) -> dict:
    """Aggregate thresholds ``K rho*`` vs K, plus the asymptotic limits.

    Returns a dict with per-K rows and the two limits; the benches
    render it and assert convergence to 0.732 / 0.791.
    """
    rows = []
    for k in ks:
        rows.append(
            {
                "k": k,
                "homogeneous": homogeneous_threshold(k, aggregate=True),
                "heterogeneous": heterogeneous_threshold(k, aggregate=True),
                "heterogeneous_quadratic": heterogeneous_threshold_quadratic(
                    k, aggregate=True
                ),
            }
        )
    return {
        "rows": rows,
        "limit_homogeneous": math.sqrt(3.0) - 1.0,
        "limit_heterogeneous": (math.sqrt(21.0) - 3.0) / 2.0,
        "control_range_homogeneous": control_range_homogeneous_limit(),
        "control_range_heterogeneous": control_range_heterogeneous_limit(),
    }


def improvement_ratio_table(
    ks: Sequence[int] = (2, 3, 5, 8),
    ns: Sequence[int] = (1, 2),
    sigma: float = 0.02,
) -> list[dict]:
    """Theorem 6's ratio inside the heavy-load band, vs the O(K^n) bound.

    For each (K, n) the per-flow rate is placed at the band's midpoint
    ``rho in [1/K - 1/K^(n+1), 1/K)`` and the exact bound ratio
    ``D_g / D_hat_g`` is compared against Theorem 5's explicit lower
    bound ``(1 - K^-n)(1 - 1/K) K^n / 4``.
    """
    rows = []
    for k in ks:
        for n in ns:
            lo, hi = theorem5_band(k, n)
            rho = (lo + hi) / 2.0
            ratio = improvement_ratio_homogeneous(k, sigma, rho)
            rows.append(
                {
                    "k": k,
                    "n": n,
                    "rho": rho,
                    "ratio": ratio,
                    "lower_bound": theorem5_ratio_lower_bound(k, n),
                }
            )
    return rows


def height_bound_table(
    sizes: Sequence[int] = (10, 50, 100, 300, 665, 1000, 5000),
    k: int = 3,
) -> list[dict]:
    """Lemma 2's height bound across group sizes (665 = the paper's n)."""
    return [
        {"n": n, "k": k, "height_bound": dsct_height_bound(n, k)}
        for n in sizes
    ]
