"""Tables I-III: tree layer numbers vs average input rate.

The paper's point: the capacity-aware DSCT deepens as the traffic rate
grows (fan-out shrinks with spare capacity), while DSCT with the
(sigma, rho, lambda) regulator keeps its height *constant* -- the
regulator frees the bottleneck without touching the tree.  One table
per traffic mix (homogeneous audio, homogeneous video, heterogeneous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.config import TableConfig
from repro.overlay.groups import MultiGroupNetwork
from repro.topology.attach import attach_hosts
from repro.topology.backbone import fig5_backbone
from repro.utils.rng import derive_seed

__all__ = ["TableResult", "run_tree_table"]


@dataclass(frozen=True)
class TableResult:
    """One Tables-I/II/III artefact."""

    mix_name: str
    utilizations: tuple[float, ...]
    capacity_aware_heights: tuple[int, ...]
    regulated_heights: tuple[int, ...]

    def rows(self) -> list[list[object]]:
        """Rows in the paper's layout (schemes as rows, rates as columns)."""
        return [
            ["Capacity-aware DSCT", *self.capacity_aware_heights],
            ["DSCT with (sigma,rho,lambda) regulator", *self.regulated_heights],
        ]

    @property
    def capacity_aware_grows(self) -> bool:
        """The paper's qualitative claim for the capacity-aware row."""
        return self.capacity_aware_heights[-1] > self.capacity_aware_heights[0]

    @property
    def regulated_constant(self) -> bool:
        """The paper's qualitative claim for the regulated row."""
        return len(set(self.regulated_heights)) == 1


def run_tree_table(
    mix_name: str, config: TableConfig | None = None
) -> TableResult:
    """Regenerate one of Tables I-III.

    ``mix_name`` only labels the artefact: tree heights depend on the
    aggregate rate (the x-axis), not on the stream composition, which is
    why the paper's three tables share their regulated row per mix.
    """
    config = config or TableConfig()
    backbone = fig5_backbone()
    network = attach_hosts(
        backbone, config.n_hosts, rng=derive_seed(config.seed, "attach")
    )
    mgn = MultiGroupNetwork.fully_joined(
        network,
        config.n_groups,
        host_capacity_range=config.host_capacity_range,
        rng=derive_seed(config.seed, "groups"),
    )
    # The regulated DSCT never rebuilds with rate: a single construction
    # serves every sweep point (that is the point of the table).
    regulated = mgn.build_all_trees("dsct", k=config.cluster_k, rng=config.seed)
    reg_height = int(max(t.height for t in regulated))
    ca_heights = []
    for u in config.utilizations:
        trees = mgn.build_all_trees(
            "capacity-aware-dsct",
            k=config.cluster_k,
            aggregate_rate=float(u),
            rng=derive_seed(config.seed, "table", mix_name, round(float(u), 4)),
        )
        ca_heights.append(int(max(t.height for t in trees)))
    return TableResult(
        mix_name=mix_name,
        utilizations=tuple(float(u) for u in config.utilizations),
        capacity_aware_heights=tuple(ca_heights),
        regulated_heights=tuple([reg_height] * len(ca_heights)),
    )
