"""Command-line entry point: ``repro-experiments <experiment>``.

Regenerates any paper artefact from the shell::

    repro-experiments fig4b            # Fig 4(b): 3 video streams, one host
    repro-experiments fig6a --quick    # Fig 6(a) at reduced scale
    repro-experiments table2           # Table II
    repro-experiments theory           # thresholds + improvement ratios
    repro-experiments all --quick      # everything, CI scale

and drives the scenario-matrix cross-validation subsystem::

    repro-experiments scenarios list                     # curated corpus
    repro-experiments scenarios run --count 200 --seed 0 # matrix sweep
    repro-experiments scenarios run \\
        --campaign examples/campaign_thousand.json \\
        --jobs 4 --store campaigns/nightly --resume      # parallel campaign
    repro-experiments scenarios run \\
        --campaign examples/campaign_thousand.json \\
        --store sqlite:campaigns/shared --shard 1/2      # one of 2 shards
    repro-experiments scenarios merge campaigns/all \\
        campaigns/shard1 campaigns/shard2                # join shard stores
    repro-experiments scenarios diff campaigns/a campaigns/b
    repro-experiments scenarios curate campaigns/nightly \\
        --out corpus_curated.json                        # promote tight cells

Stores are named by URL or path: ``sqlite:DIR`` opens the WAL-mode
SQLite backend (safe for concurrent shard writers), ``jsonl:DIR`` the
append-only JSONL directory, and a bare path auto-detects whichever
backend already lives there (JSONL for fresh directories).

Output is plain text shaped like the paper's figures/tables; the
``scenarios run`` exit status is non-zero when any soundness or
perf-budget verdict fails (or, with ``--baseline STORE``, on any
regression against that pinned store), and ``scenarios diff`` is
non-zero on any soundness/perf-budget regression between the two
campaign stores -- with ``--strict``, also on baseline cells missing
from the candidate -- so both gate CI directly.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import Fig4Config, Fig6Config, TableConfig
from repro.experiments.multigroup import run_fig6
from repro.experiments.report import format_series, render_table
from repro.experiments.single_host import run_fig4
from repro.experiments.theory import (
    height_bound_table,
    improvement_ratio_table,
    threshold_table,
)
from repro.experiments.trees import run_tree_table
from repro.workloads.profiles import AUDIO_MIX, HETEROGENEOUS_MIX, VIDEO_MIX

_FIG_MIXES = {"a": AUDIO_MIX, "b": VIDEO_MIX, "c": HETEROGENEOUS_MIX}
_TABLE_MIXES = {"1": "3xaudio", "2": "3xvideo", "3": "1video+2audio"}

EXPERIMENTS = (
    "fig4a", "fig4b", "fig4c",
    "fig6a", "fig6b", "fig6c",
    "table1", "table2", "table3",
    "theory", "validate", "all",
)

#: Subcommand families dispatched before the flat experiment parser.
SUBCOMMANDS = ("scenarios",)


def _print_validation(quick: bool) -> None:
    from repro.experiments.validation import validate_bounds

    cells = validate_bounds(
        utilizations=(0.6, 0.9) if quick else (0.5, 0.7, 0.9),
        horizon=5.0 if quick else 10.0,
    )
    headers = ["mix", "mode", "u", "measured", "bound", "tightness", "sound"]
    rows = [
        [c.mix_name, c.mode, c.utilization, c.measured, c.bound,
         c.tightness, "yes" if c.sound else "NO"]
        for c in cells
    ]
    print(render_table(headers, rows,
                       title="== Measured vs analytic bounds =="))
    unsound = [c for c in cells if not c.sound]
    print(f"unsound cells: {len(unsound)}")


def _print_fig4(panel: str, quick: bool) -> None:
    config = Fig4Config.quick() if quick else Fig4Config()
    mix = _FIG_MIXES[panel]
    res = run_fig4(mix, config)
    print(f"== Figure 4({panel}) -- {res.mix_name}, single regulated host ==")
    print("utilization:  " + " ".join(f"{u:7.2f}" for u in res.utilizations))
    print(format_series("(sigma,rho) WDB [s]", res.utilizations, res.sigma_rho_series))
    print(format_series("(sigma,rho,lambda) WDB [s]", res.utilizations,
                        res.sigma_rho_lambda_series))
    print(f"crossover (simulated threshold): {res.crossover}")
    print(f"theoretical aggregate threshold: "
          f"{res.theoretical_threshold_aggregate:.3f}")
    print(f"max improvement: {res.max_improvement:.2f}x at "
          f"{res.max_improvement_at}")


def _print_fig6(panel: str, quick: bool) -> None:
    config = Fig6Config.quick() if quick else Fig6Config()
    mix = _FIG_MIXES[panel]
    res = run_fig6(mix, config)
    print(f"== Figure 6({panel}) -- {res.mix_name}, multi-group network ==")
    print("utilization:  " + " ".join(f"{u:7.2f}" for u in res.utilizations))
    for scheme in res.schemes:
        print(format_series(scheme, res.utilizations, res.series(scheme)))
    print(f"DSCT crossover (simulated threshold): {res.crossover_dsct}")
    print(f"theoretical aggregate threshold: "
          f"{res.theoretical_threshold_aggregate:.3f}")
    print(f"max DSCT improvement: {res.max_improvement_dsct:.2f}x")


def _print_table(which: str, quick: bool) -> None:
    config = TableConfig.quick() if quick else TableConfig()
    res = run_tree_table(_TABLE_MIXES[which], config)
    headers = ["scheme", *(f"{u:.2f}" for u in res.utilizations)]
    print(render_table(headers, res.rows(),
                       title=f"== Table {which} -- {res.mix_name} =="))
    print(f"capacity-aware grows with rate: {res.capacity_aware_grows}")
    print(f"regulated height constant:      {res.regulated_constant}")


def _print_theory() -> None:
    tt = threshold_table()
    headers = ["K", "hom K*rho*", "het K*rho*", "het quadratic"]
    rows = [
        [r["k"], r["homogeneous"], r["heterogeneous"], r["heterogeneous_quadratic"]]
        for r in tt["rows"]
    ]
    print(render_table(headers, rows, title="== Rate thresholds (Theorems 3/4) ==",
                       float_fmt="{:.4f}"))
    print(f"limits: homogeneous {tt['limit_homogeneous']:.4f} "
          f"(0.73C), heterogeneous {tt['limit_heterogeneous']:.4f} (0.79C)")
    print(f"control ranges: hom {tt['control_range_homogeneous']:.4f} (~0.27), "
          f"het {tt['control_range_heterogeneous']:.4f} (~0.21)")
    irt = improvement_ratio_table()
    headers = ["K", "n", "rho", "ratio Dg/D^g", "O(K^n) lower bound"]
    rows = [[r["k"], r["n"], r["rho"], r["ratio"], r["lower_bound"]] for r in irt]
    print(render_table(headers, rows,
                       title="== Improvement ratio (Theorems 5/6) ==",
                       float_fmt="{:.4f}"))
    hbt = height_bound_table()
    headers = ["n", "k", "height bound (Lemma 2)"]
    rows = [[r["n"], r["k"], r["height_bound"]] for r in hbt]
    print(render_table(headers, rows, title="== DSCT height bound (Lemma 2) =="))


def _scenarios_main(argv: list[str]) -> int:
    """The ``scenarios`` subcommand: batched cross-validation at scale."""
    import dataclasses
    import json

    from repro.runtime import (
        CampaignConfig,
        EXECUTOR_KINDS,
        backend_profile,
        build_campaign,
        diff_stores,
        make_executor,
        merge_stores,
        open_store,
        outcome_record,
        parse_shard,
        run_campaign,
    )
    from repro.scenarios import (
        adversarial_corpus,
        curate_records,
        generate_scenarios,
        load_curated,
        registered_scenarios,
        save_curated,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments scenarios",
        description="Batched analytic-vs-simulation scenario matrix.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    p_run = sub.add_parser("run", help="evaluate a scenario matrix")
    p_run.add_argument(
        "--count", type=int, default=50,
        help="number of generated scenarios (default 50)",
    )
    p_run.add_argument("--seed", type=int, default=0, help="generator seed")
    p_run.add_argument(
        "--campaign", default=None, metavar="FILE",
        help="JSON campaign config (replaces --count/--seed generation "
        "and skips the corpus)",
    )
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers (default 1: serial)",
    )
    p_run.add_argument(
        "--executor", choices=EXECUTOR_KINDS, default=None,
        help="execution backend (default: serial for --jobs 1, "
        "process otherwise)",
    )
    p_run.add_argument(
        "--store", default=None, metavar="URL",
        help="persistent result store: a directory (JSONL), sqlite:DIR "
        "(WAL-mode SQLite, safe for concurrent shard writers), or "
        "jsonl:DIR",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="skip cells already completed in --store",
    )
    p_run.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only this shard of the matrix (1-based: 1/2 and 2/2 "
        "are the halves), partitioned deterministically by cell "
        "fingerprint; shards may run concurrently against one SQLite "
        "store or per-shard stores joined later with 'scenarios merge'",
    )
    p_run.add_argument(
        "--baseline", default=None, metavar="URL",
        help="pinned baseline store: after the run, diff the --store "
        "against it and fail on any soundness/perf-budget regression "
        "(requires --store)",
    )
    p_run.add_argument(
        "--corpus", default=None, metavar="FILE",
        help="also run the scenarios of a curated corpus file "
        "(see 'scenarios curate')",
    )
    p_run.add_argument(
        "--budget", type=float, default=0.0, metavar="SECONDS",
        help="per-cell wall-clock budget verdict (0 disables)",
    )
    p_run.add_argument(
        "--no-corpus", action="store_true",
        help="skip the curated adversarial corpus",
    )
    p_run.add_argument(
        "--no-cost-model", action="store_true",
        help="disable cost-aware scheduling (uniform contiguous chunks)",
    )
    p_run.add_argument(
        "--group-cells", dest="group_cells", action="store_true",
        default=None,
        help="force the structure-of-arrays grouped evaluator (cells "
        "sharing backend/discipline/topology/mode evaluate as one "
        "vectorised pass; bit-identical outcomes, higher throughput)",
    )
    p_run.add_argument(
        "--no-group-cells", dest="group_cells", action="store_false",
        help="force per-cell evaluation (default: grouped on the "
        "serial in-process executor, per-cell on worker pools)",
    )
    p_run.add_argument(
        "--batch-realise", dest="batch_realise", action="store_true",
        default=None,
        help="force batched cross-cell trace synthesis inside the "
        "grouped evaluator (one flat pass realises every candidate "
        "cell's traces; bit-identical outcomes, higher throughput)",
    )
    p_run.add_argument(
        "--no-batch-realise", dest="batch_realise", action="store_false",
        help="force per-cell trace realisation (default: batched "
        "whenever the grouped evaluator has more than one candidate)",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="print a per-backend cell-cost breakdown after the run "
        "(from the store when given, else from this run's cells)",
    )
    p_run.add_argument(
        "--verbose", action="store_true",
        help="print every cell, not just the summary",
    )
    p_run.add_argument(
        "--no-telemetry", action="store_true",
        help="disable per-cell telemetry collection (spans, counters; "
        "on by default, near-zero overhead, never affects verdicts "
        "or summary.json)",
    )
    p_run.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write this run's cells as Chrome trace-event JSON "
        "(open in chrome://tracing or Perfetto: one track per worker, "
        "one slice per cell/phase)",
    )
    p_run.add_argument(
        "--progress", action="store_true",
        help="single rewriting status line on stderr: done/total, "
        "cells/s, ETA (seeded from the cost model, then observed rate)",
    )
    p_run.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed cell up to N times (bounded exponential "
        "backoff with seeded jitter; retries never change results -- "
        "cell seeds derive from the spec, not the attempt)",
    )
    p_run.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock cap on a cell (SIGALRM in the "
        "executing process, plus a parent-side watchdog on process "
        "pools); a timed-out attempt is retryable like any failure",
    )
    p_run.add_argument(
        "--inject-faults", default=None, metavar="SEED:RATE",
        help="arm the deterministic chaos harness: inject worker "
        "kills, kernel raises, delays and store-write faults at RATE "
        "on a schedule that is a pure function of (SEED, cell "
        "fingerprint); pair with --retries to prove recovery "
        "(the CI chaos gate runs 7:0.15 with --retries 3)",
    )
    p_run.add_argument(
        "--coordinator", type=int, default=None, metavar="N",
        help="run the campaign through the lease-based work-stealing "
        "coordinator with N local worker processes (requires --store; "
        "workers claim cost-sized leases from the store, expired "
        "leases are stolen, and summary.json stays byte-identical to "
        "a serial run)",
    )
    p_run.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="coordinator lease time-to-live (default 30; keep it "
        "above the slowest cell's full attempt budget -- workers "
        "renew between cells, so a hung cell lapses its lease)",
    )
    p_work = sub.add_parser(
        "work",
        help="drain leases from a coordinated campaign store (the "
        "worker half of 'run --coordinator'; runs until no open or "
        "active lease remains)",
    )
    p_work.add_argument("store", help="campaign store (path or URL)")
    p_work.add_argument(
        "--worker-id", required=True, metavar="ID",
        help="unique worker identity (lease ownership + heartbeats)",
    )
    p_work.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease time-to-live while this worker holds one "
        "(default 30)",
    )
    p_work.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed cell up to N times (as in 'run')",
    )
    p_work.add_argument(
        "--retry-seed", type=int, default=0, metavar="SEED",
        help="backoff-jitter seed (timing only, never results)",
    )
    p_work.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock cap on a cell",
    )
    p_work.add_argument(
        "--inject-faults", default=None, metavar="SEED:RATE",
        help="arm the chaos harness in this worker; unlike 'run', "
        "injected kills hard-exit the worker process (the "
        "coordinator's reclaim path is the recovery story)",
    )
    p_work.add_argument(
        "--max-leases", type=int, default=None, metavar="N",
        help="stop after N leases (default: drain the store)",
    )
    p_work.add_argument(
        "--no-telemetry", action="store_true",
        help="disable telemetry collection in this worker",
    )
    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", default=None, help="filter by tag")
    p_report = sub.add_parser(
        "report",
        help="campaign telemetry digest over a store: slowest cells, "
        "per-backend phase breakdown, engine counters, cost-model "
        "calibration, grouping efficiency",
    )
    p_report.add_argument("store", help="campaign store (path or URL)")
    p_report.add_argument(
        "baseline", nargs="?", default=None,
        help="optional second store: print cross-campaign telemetry "
        "deltas of STORE relative to BASELINE (per-cell phase-time "
        "ratios, cost-model calibration drift) instead of the "
        "single-store digest",
    )
    p_report.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many slowest cells to list (default 10)",
    )
    p_diff = sub.add_parser(
        "diff",
        help="compare two campaign stores cell-by-cell (exit 1 on any "
        "soundness or perf-budget regression: the CI baseline gate)",
    )
    p_diff.add_argument("old", help="baseline campaign store (path or URL)")
    p_diff.add_argument("new", help="candidate campaign store (path or URL)")
    p_diff.add_argument(
        "--strict", action="store_true",
        help="also fail when baseline cells are missing from the "
        "candidate (coverage loss)",
    )
    p_diff.add_argument(
        "--json", default=None, metavar="FILE", dest="json_out",
        help="additionally write the machine-readable diff to FILE",
    )
    p_merge = sub.add_parser(
        "merge",
        help="merge shard stores into one and rewrite its summary "
        "(no sources: refresh the summary of a shared store after "
        "concurrent shards finish)",
    )
    p_merge.add_argument("dest", help="destination store (path or URL)")
    p_merge.add_argument(
        "sources", nargs="*", help="shard stores to fold in (paths or URLs)"
    )
    p_curate = sub.add_parser(
        "curate",
        help="promote store cells with tightness close to 1 into a "
        "curated corpus file (re-runnable via 'run --corpus')",
    )
    p_curate.add_argument("store", help="campaign store (path or URL)")
    p_curate.add_argument(
        "--min-tightness", type=float, default=0.9, metavar="T",
        help="promotion threshold on measured/bound (default 0.9)",
    )
    p_curate.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="keep at most the N tightest cells",
    )
    p_curate.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the curated corpus JSON here (default: print names only)",
    )
    args = parser.parse_args(argv)

    if args.action == "list":
        rows = [
            [sc.name, ",".join(sc.kinds), sc.mode, sc.topology,
             sc.backend, f"{sc.utilization:.2f}", ",".join(sc.tags)]
            for sc in registered_scenarios(tag=args.tag)
        ]
        print(render_table(
            ["name", "kinds", "mode", "topology", "backend", "u", "tags"],
            rows, title="== Registered scenarios ==",
        ))
        print(f"{len(rows)} scenarios")
        return 0

    def _reference_store(target):
        """Open a store consumed as a reference: a typo'd or empty path
        must fail the command loudly, never pass a gate by comparing
        against nothing."""
        try:
            return open_store(target, must_exist=True)
        except FileNotFoundError as exc:
            parser.error(str(exc))

    if args.action == "work":
        import os

        from repro.runtime import RetryPolicy, faults, work_store
        from repro.runtime.coordinator import DEFAULT_LEASE_TTL

        if args.retries < 0:
            parser.error("--retries must be >= 0")
        if args.cell_timeout is not None and args.cell_timeout <= 0:
            parser.error("--cell-timeout must be > 0 seconds")
        if args.lease_ttl is not None and args.lease_ttl <= 0:
            parser.error("--lease-ttl must be > 0 seconds")
        if args.max_leases is not None and args.max_leases < 1:
            parser.error("--max-leases must be >= 1")
        retry = (
            RetryPolicy(max_attempts=args.retries + 1, seed=args.retry_seed)
            if args.retries
            else None
        )
        fault_plan = None
        if args.inject_faults:
            from repro.runtime import FaultPlan

            try:
                fault_plan = FaultPlan.parse(args.inject_faults)
            except ValueError as exc:
                parser.error(str(exc))
        elif os.environ.get("REPRO_FAULT_PLAN"):
            # The coordinator ships its exact plan (custom kinds and
            # attempt ceilings included) through the environment.
            try:
                fault_plan = faults.plan_from_dict(
                    json.loads(os.environ["REPRO_FAULT_PLAN"])
                )
            except (ValueError, TypeError) as exc:
                parser.error(f"bad REPRO_FAULT_PLAN: {exc}")
        if fault_plan is not None:
            # A lease worker's death is what the coordinator's reclaim
            # path exists to absorb: injected kills must be real here.
            faults.allow_kill(True)
        if args.no_telemetry:
            from repro.runtime import set_telemetry_enabled

            set_telemetry_enabled(False)
        report = work_store(
            _reference_store(args.store),
            args.worker_id,
            lease_ttl=(
                args.lease_ttl
                if args.lease_ttl is not None
                else DEFAULT_LEASE_TTL
            ),
            retry=retry,
            cell_timeout=args.cell_timeout,
            fault_plan=fault_plan,
            max_leases=args.max_leases,
        )
        print("== Lease worker ==")
        for line in report.summary_lines():
            print(line)
        return 0

    if args.action == "report":
        from repro.runtime import telemetry as tele

        if args.top < 1:
            parser.error("--top must be >= 1")
        report_store = _reference_store(args.store)
        records = report_store.load_telemetry()

        def _ms_opt(seconds) -> str:
            return (
                f"{1e3 * float(seconds):.2f}"
                if isinstance(seconds, (int, float))
                else "-"
            )

        if args.baseline:
            base_records = _reference_store(args.baseline).load_telemetry()
            print(
                f"== Cross-campaign telemetry diff "
                f"({args.store} vs {args.baseline}) =="
            )
            missing = [
                name
                for name, recs in (
                    (args.store, records),
                    (args.baseline, base_records),
                )
                if not recs
            ]
            if missing:
                print(
                    "no telemetry records in: " + ", ".join(missing)
                    + " (run a campaign without --no-telemetry first)"
                )
                return 1
            delta = tele.report_delta(base_records, records)
            rows = [
                [
                    r["backend"], r["phase"],
                    _ms_opt(r.get("base_per_cell")),
                    _ms_opt(r.get("cand_per_cell")),
                    f"{r['ratio']:.2f}x" if "ratio" in r else "-",
                ]
                for r in delta["phases"]
            ]
            print(render_table(
                ["backend", "phase", "base [ms/cell]", "cand [ms/cell]",
                 "ratio"],
                rows, title="== Phase time per cell (cand vs base) ==",
            ))
            rows = [
                [
                    r["backend"],
                    f"{r['base_median_ratio']:.2f}"
                    if r.get("base_median_ratio") is not None else "-",
                    f"{r['cand_median_ratio']:.2f}"
                    if r.get("cand_median_ratio") is not None else "-",
                    f"{r['drift']:+.2f}" if "drift" in r else "-",
                ]
                for r in delta["calibration"]
            ]
            if rows:
                print(render_table(
                    ["backend", "base actual/pred", "cand actual/pred",
                     "drift"],
                    rows, title="== Cost-model calibration drift ==",
                ))
            return 0

        def _poison_section() -> int:
            """Render the store's poison channel; returns the count."""
            poison = report_store.load_poison()
            if not poison:
                return 0
            rows = [
                [
                    p.get("name") or p.get("key") or "?",
                    p.get("attempts", "?"),
                    p.get("worker") or "-",
                    str(p.get("error_head") or "")[:80],
                ]
                for p in poison
            ]
            print(render_table(
                ["cell", "attempts", "worker", "last error"],
                rows, title="== Poison channel ==",
            ))
            return len(poison)

        print(f"== Campaign telemetry report ({args.store}) ==")
        if not records:
            # A crashed or chaos-heavy campaign can leave a store with
            # nothing but poison diagnoses or partial (error) records;
            # the report must still say something useful, not
            # traceback or pretend the store is fine.
            n_poison = _poison_section()
            n_partial = sum(
                1 for r in report_store.load().values() if r.get("error")
            )
            if n_poison or n_partial:
                print(
                    f"no telemetry records; store holds {n_poison} poison "
                    f"diagnoses and {n_partial} partial (error) records"
                )
                return 0
            print(
                "no telemetry records (run a campaign against this store "
                "without --no-telemetry first)"
            )
            return 1
        cells = [r for r in records if r.get("kind") == "cell"]
        print(f"telemetry records: {len(records)} ({len(cells)} cells)")

        def _ms(seconds) -> str:
            return f"{1e3 * float(seconds):.2f}"

        rows = [
            [
                r.get("name") or "?",
                r.get("eff_backend") or "?",
                _ms(r.get("dur") or 0.0),
                " ".join(
                    f"{name}={_ms(secs)}"
                    for name, secs in sorted(
                        (r.get("phases") or {}).items(),
                        key=lambda kv: -kv[1],
                    )
                ),
            ]
            for r in tele.top_slowest(records, args.top)
        ]
        print(render_table(
            ["cell", "backend", "dur [ms]", "phases [ms]"],
            rows, title=f"== Top {min(args.top, len(cells))} slowest cells ==",
        ))

        breakdown = tele.phase_breakdown(records)
        phase_names = sorted({p for row in breakdown for p in row["phases"]})
        rows = [
            [row["backend"], row["cells"]]
            + [_ms(row["phases"].get(p, 0.0)) for p in phase_names]
            + [_ms(row["total"])]
            for row in breakdown
        ]
        print(render_table(
            ["backend", "cells", *(f"{p} [ms]" for p in phase_names),
             "total [ms]"],
            rows, title="== Phase breakdown per backend ==",
        ))

        totals = tele.counter_totals(records)
        if totals:
            rows = [[name, n] for name, n in sorted(totals.items())]
            print(render_table(
                ["counter", "total"], rows, title="== Engine counters ==",
            ))

        attempts = tele.attempt_rows(records)
        if attempts:
            rows = [
                [
                    a.get("name") or "?",
                    a.get("attempts", 1),
                    a.get("disposition") or "?",
                    "; ".join(str(f) for f in (a.get("faults") or []))[:80],
                ]
                for a in attempts
            ]
            recovered = sum(
                1 for a in attempts if a.get("disposition") == "recovered"
            )
            print(render_table(
                ["cell", "attempts", "disposition", "attempt errors"],
                rows, title="== Retry ledger ==",
            ))
            print(
                f"retried cells: {len(attempts)} "
                f"({recovered} recovered, {len(attempts) - recovered} poison)"
            )
        for sr in tele.store_retry_rows(records):
            print(
                f"store-write retries ({sr.get('source', '?')}): "
                f"{sr.get('append_retries', 0)} append, "
                f"{sr.get('busy_retries', 0)} sqlite-busy"
            )

        lease_entries = tele.lease_rows(records)
        lease_digest = tele.lease_summary(records)
        if lease_entries or lease_digest:
            rows = [
                [
                    entry.get("lease", "?"),
                    entry.get("worker") or "?",
                    entry.get("cells", 0),
                    entry.get("deaths", 0),
                    entry.get("steals", 0),
                    "stolen" if entry.get("stolen") else "-",
                    entry.get("disposition") or "done",
                ]
                for entry in lease_entries
            ]
            print(render_table(
                ["lease", "worker", "cells", "deaths", "steals",
                 "reclaimed", "disposition"],
                rows, title="== Lease ledger ==",
            ))
            reclaimed = sum(1 for e in lease_entries if e.get("deaths"))
            print(
                f"leases run: {len(lease_entries)} "
                f"({reclaimed} reclaimed after worker deaths)"
            )
            if lease_digest:
                print(
                    f"coordinator: {lease_digest.get('planned', 0)} leases "
                    f"planned across {lease_digest.get('workers', 0)} "
                    f"workers, {lease_digest.get('stolen', 0)} stolen "
                    f"({lease_digest.get('worker_deaths', 0)} worker "
                    f"deaths), {lease_digest.get('respawns', 0)} respawns, "
                    f"{lease_digest.get('poison', 0)} poisoned"
                )

        _poison_section()

        calib = tele.calibration_rows(records)
        if calib:
            rows = [
                [
                    row["backend"], row["cells"],
                    _ms(row.get("actual_total", 0.0)),
                    _ms(row.get("predicted_total", 0.0)),
                    f"{row['median_ratio']:.2f}"
                    if "median_ratio" in row else "-",
                    f"{row['p10_ratio']:.2f}/{row['p90_ratio']:.2f}"
                    if "p10_ratio" in row else "-",
                ]
                for row in calib
            ]
            print(render_table(
                ["backend", "cells", "actual [ms]", "predicted [ms]",
                 "actual/pred median", "p10/p90"],
                rows, title="== Cost-model calibration ==",
            ))

        grouping = tele.grouping_rows(records)
        if grouping["groups"] or grouping["summary"]:
            rows = [
                [
                    g.get("backend") or "?", g.get("mode") or "?",
                    g.get("cells", 0), g.get("packs", "-"),
                    g.get("lanes", "-"),
                    f"{100.0 * g['padding_waste']:.1f}%"
                    if isinstance(g.get("padding_waste"), float) else "-",
                    _ms(g.get("kernel_s", 0.0)),
                ]
                for g in grouping["groups"]
            ]
            print(render_table(
                ["backend", "mode", "cells", "packs", "lanes",
                 "pad waste", "kernel [ms]"],
                rows, title="== Grouping efficiency ==",
            ))
            s = grouping["summary"]
            if s:
                print(
                    f"grouped cells: {s.get('grouped_cells', 0)}/"
                    f"{s.get('cells', 0)}, fallbacks: "
                    f"{s.get('fallback_cells', 0)} "
                    f"{s.get('fallback_reasons', {})}"
                )
                hits = s.get("source_cache_hits", 0)
                misses = s.get("source_cache_misses", 0)
                if hits or misses:
                    print(
                        f"source cache: {hits} hits / {misses} misses "
                        f"({100.0 * hits / max(hits + misses, 1):.0f}% hit rate)"
                    )
                if s.get("batch_realise"):
                    line = (
                        f"batch realise: {s.get('batch_realised_cells', 0)} "
                        f"cells, {s.get('batch_lanes_generated', 0)} lanes "
                        f"in {_ms_opt(s.get('batch_realise_s', 0.0))} ms"
                    )
                    if isinstance(
                        s.get("predicted_realise_s"), (int, float)
                    ):
                        line += (
                            f" (cost model predicted "
                            f"{_ms_opt(s['predicted_realise_s'])} ms)"
                        )
                    print(line)

        for fit in tele.fit_rows(records):
            print(
                f"cost-model refit: {fit.get('accepted', 0)}/"
                f"{fit.get('records', 0)} samples accepted, "
                f"{fit.get('dropped', 0)} degenerate dropped "
                f"{fit.get('dropped_reasons', {})}"
            )
        return 0

    if args.action == "diff":
        old_store = _reference_store(args.old)
        new_store = _reference_store(args.new)
        diff = diff_stores(old_store, new_store)
        print("== Campaign diff ==")
        for label, side in ((args.old, old_store), (args.new, new_store)):
            # A store can legitimately hold zero completed records (a
            # campaign that crashed early, or poison diagnoses only);
            # say so in one line rather than diffing silence.
            if not side.load():
                n_poison = len(side.load_poison())
                print(
                    f"note: {label} has no result records"
                    + (f" ({n_poison} poison diagnoses)" if n_poison else "")
                )
        for line in diff.summary_lines():
            print(line)
        if args.strict and diff.removed:
            print(f"STRICT: {len(diff.removed)} baseline cells missing")
        if args.json_out:
            from pathlib import Path

            Path(args.json_out).write_text(
                json.dumps(diff.to_dict(), indent=2) + "\n"
            )
        return 0 if diff.gate(strict=args.strict) else 1

    if args.action == "merge":
        summary = merge_stores(
            args.dest, [_reference_store(src) for src in args.sources]
        )
        print("== Store merge ==")
        print(
            f"merged {len(args.sources)} shard store(s) into {args.dest}"
            if args.sources
            else f"refreshed summary of {args.dest}"
        )
        print(
            f"cells: {summary['cells']}, sound: {summary['sound']}, "
            f"unsound: {summary['unsound']}, errors: {summary['errors']}"
        )
        return 0

    if args.action == "curate":
        if args.min_tightness <= 0:
            parser.error("--min-tightness must be > 0")
        if args.limit is not None and args.limit < 1:
            parser.error("--limit must be >= 1")
        promoted = curate_records(
            _reference_store(args.store).load().values(),
            min_tightness=args.min_tightness,
            limit=args.limit,
        )
        print("== Store-driven curation ==")
        print(
            f"promoted {len(promoted)} cells with tightness >= "
            f"{args.min_tightness}"
        )
        for sc in promoted:
            print(f"  {sc.name}")
        if args.out:
            save_curated(promoted, args.out)
            print(f"curated corpus written: {args.out}")
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.coordinator is not None:
        if args.coordinator < 1:
            parser.error("--coordinator must be >= 1 workers")
        if not args.store:
            parser.error("--coordinator requires --store")
        if args.shard:
            parser.error(
                "--coordinator and --shard both partition the matrix; "
                "use one (coordinated workers already split the work)"
            )
    if args.lease_ttl is not None:
        if args.lease_ttl <= 0:
            parser.error("--lease-ttl must be > 0 seconds")
        if args.coordinator is None:
            parser.error("--lease-ttl requires --coordinator")
    if args.resume and not args.store:
        parser.error("--resume requires --store")
    if args.baseline and not args.store:
        parser.error("--baseline requires --store")
    if args.baseline:
        _reference_store(args.baseline)  # fail before the run, not after
    if args.budget < 0:
        parser.error("--budget must be >= 0")
    if args.shard:
        try:
            parse_shard(args.shard)
        except ValueError as exc:
            parser.error(str(exc))
    if args.campaign:
        config = CampaignConfig.from_file(args.campaign)
        if args.budget:
            config = dataclasses.replace(config, perf_budget=args.budget)
        scenarios = build_campaign(config)
    else:
        if args.count < 0:
            parser.error("--count must be >= 0")
        scenarios = [] if args.no_corpus else list(adversarial_corpus())
        if args.budget:
            scenarios = [
                dataclasses.replace(sc, perf_budget=args.budget)
                for sc in scenarios
            ]
        if args.count:
            scenarios += generate_scenarios(
                args.count, seed=args.seed, perf_budget=args.budget
            )
        if not scenarios and not args.corpus:
            parser.error("nothing to run (--count 0 together with --no-corpus)")
    if args.corpus:
        try:
            curated = list(load_curated(args.corpus))
        except (OSError, ValueError, TypeError) as exc:
            parser.error(f"cannot load --corpus {args.corpus}: {exc}")
        if args.budget:
            # Safe to restamp: perf_budget is a verdict-only knob, so
            # the curated cells keep their store keys and seeds.
            curated = [
                dataclasses.replace(sc, perf_budget=args.budget)
                for sc in curated
            ]
        scenarios += curated
    if args.trace and args.no_telemetry:
        parser.error("--trace needs telemetry (drop --no-telemetry)")
    if args.coordinator is not None and (args.trace or args.verbose):
        parser.error(
            "--trace/--verbose need in-process outcomes; coordinated "
            "cells run in worker processes (use 'scenarios report' on "
            "the store instead)"
        )

    retry = None
    if args.retries:
        if args.retries < 0:
            parser.error("--retries must be >= 0")
        from repro.runtime import RetryPolicy

        # Jitter seeded from the campaign seed: replayable schedules.
        retry = RetryPolicy(max_attempts=args.retries + 1, seed=args.seed)
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be > 0 seconds")
    fault_plan = None
    if args.inject_faults:
        from repro.runtime import FaultPlan

        try:
            fault_plan = FaultPlan.parse(args.inject_faults)
        except ValueError as exc:
            parser.error(str(exc))

    tick = None
    progress = None
    if args.progress:
        import time

        from repro.runtime import CellCostModel

        # ETA before the first completion comes from the cost model's
        # predicted total; once cells finish, the observed rate takes
        # over (it folds in this machine's actual speed).
        predicted_s = float(
            CellCostModel().estimate_many(scenarios).sum()
        ) / max(args.jobs, 1)
        t_start = time.perf_counter()

        def _status(done: int, total: int) -> None:
            elapsed = time.perf_counter() - t_start
            rate = done / elapsed if elapsed > 0 and done else 0.0
            eta = (
                (total - done) / rate
                if rate > 0
                else max(predicted_s - elapsed, 0.0)
            )
            end = "\n" if done == total else ""
            print(
                f"\r  {done}/{total} cells  {rate:5.1f} cells/s  "
                f"ETA {eta:4.0f}s ",
                end=end, file=sys.stderr, flush=True,
            )

        tick = _status
        # The finalise stage re-reports per cell; route it into the
        # same status line (run_campaign's progress= hook).
        progress = lambda i, n, outcome: _status(i + 1, n)  # noqa: E731
    elif len(scenarios) >= 100:
        # Live in-flight ticker on stderr (chunk granularity) so long
        # campaigns are not silent until the summary.
        def tick(done: int, total: int) -> None:
            end = "\n" if done == total else ""
            print(f"\r  {done}/{total} cells", end=end, file=sys.stderr, flush=True)

    from repro.runtime import set_telemetry_enabled, telemetry_enabled

    if args.coordinator is not None:
        from repro.runtime import run_coordinator
        from repro.runtime.coordinator import DEFAULT_LEASE_TTL

        telemetry_was = telemetry_enabled()
        set_telemetry_enabled(not args.no_telemetry)
        try:
            coord = run_coordinator(
                scenarios,
                store=args.store,
                workers=args.coordinator,
                lease_ttl=(
                    args.lease_ttl
                    if args.lease_ttl is not None
                    else DEFAULT_LEASE_TTL
                ),
                retry=retry,
                cell_timeout=args.cell_timeout,
                fault_plan=fault_plan,
            )
        finally:
            set_telemetry_enabled(telemetry_was)
        print("== Coordinated campaign summary ==")
        for line in coord.summary_lines():
            print(line)
        baseline_clean = True
        if args.baseline:
            diff = diff_stores(_reference_store(args.baseline), args.store)
            print(f"== Baseline gate (vs {args.baseline}) ==")
            for line in diff.summary_lines():
                print(line)
            baseline_clean = diff.clean
        return 0 if coord.clean and baseline_clean else 1

    telemetry_was = telemetry_enabled()
    set_telemetry_enabled(not args.no_telemetry)
    try:
        campaign = run_campaign(
            scenarios,
            executor=make_executor(args.executor, args.jobs),
            store=args.store,
            resume=args.resume,
            shard=args.shard,
            tick=tick,
            progress=progress,
            cost_model=None if args.no_cost_model else "auto",
            group_cells=args.group_cells,
            batch_realise=args.batch_realise,
            retry=retry,
            cell_timeout=args.cell_timeout,
            fault_plan=fault_plan,
        )
    finally:
        set_telemetry_enabled(telemetry_was)

    if args.trace:
        from repro.runtime.telemetry import cell_record, write_chrome_trace

        trace_records = [
            cell_record(o.telemetry, eff_backend=o.eff_backend)
            for o in campaign.report.outcomes
            if o.telemetry is not None
        ]
        n_events = write_chrome_trace(args.trace, trace_records)
        print(
            f"trace written: {args.trace} ({n_events} events, "
            "open in chrome://tracing or Perfetto)",
            file=sys.stderr,
        )
    if args.verbose:
        rows = [
            [o.scenario.name, o.eff_mode, o.eff_backend, o.hops,
             o.measured, o.bound, o.tightness, "yes" if o.sound else "NO"]
            for o in campaign.report.outcomes
        ]
        print(render_table(
            ["scenario", "mode", "backend", "hops", "measured", "bound",
             "tightness", "sound"],
            rows, title="== Scenario matrix cross-validation ==",
        ))
    print("== Scenario matrix summary ==")
    for line in campaign.summary_lines():
        print(line)
    if args.profile:
        if args.store:
            records = list(open_store(args.store).load().values())
        else:
            records = [outcome_record(o) for o in campaign.report.outcomes]
        rows = [
            [r["backend"], r["cells"], r["wall_total"], r["wall_mean"],
             r["wall_max"], f"{100.0 * r['share']:.1f}%"]
            for r in backend_profile(records)
        ]
        print(render_table(
            ["backend", "cells", "wall total [s]", "mean [s]", "max [s]",
             "share"],
            rows, title="== Per-backend cell cost (from store) =="
            if args.store else "== Per-backend cell cost (this run) ==",
        ))
        fit = campaign.cost_fit
        if fit is not None:
            line = (
                f"cost-model refit: {fit.get('accepted', 0)}/"
                f"{fit.get('records', 0)} samples accepted"
            )
            if fit.get("dropped"):
                line += (
                    f"; WARNING: {fit['dropped']} degenerate samples "
                    f"dropped {fit.get('dropped_reasons', {})}"
                )
            print(line)
    baseline_clean = True
    if args.baseline:
        diff = diff_stores(_reference_store(args.baseline), args.store)
        print(f"== Baseline gate (vs {args.baseline}) ==")
        for line in diff.summary_lines():
            print(line)
        baseline_clean = diff.clean
    return 0 if campaign.clean and baseline_clean else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        return _scenarios_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale (shorter horizons, fewer sweep points)",
    )
    args = parser.parse_args(argv)
    exp = args.experiment
    if exp == "all":
        for panel in "abc":
            _print_fig4(panel, args.quick)
        for panel in "abc":
            _print_fig6(panel, args.quick)
        for which in "123":
            _print_table(which, args.quick)
        _print_theory()
        return 0
    if exp.startswith("fig4"):
        _print_fig4(exp[-1], args.quick)
    elif exp.startswith("fig6"):
        _print_fig6(exp[-1], args.quick)
    elif exp.startswith("table"):
        _print_table(exp[-1], args.quick)
    elif exp == "theory":
        _print_theory()
    elif exp == "validate":
        _print_validation(args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
