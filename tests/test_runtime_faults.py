"""The fault-tolerance stack: chaos harness, retries, timeouts, pools.

Covers the PR-8 guarantees layer by layer: the :class:`FaultPlan`
decision function is pure and bounded (hypothesis), retries recover
exactly the failures the plan injects, ``SIGALRM`` timeouts and the
parent-side watchdog unstick hung cells, a killed worker breaks only
its own cell's budget (pool resurrection isolates the culprit while
chunk-mates complete), stores survive torn/failed writes, and -- the
campaign invariant everything else exists for -- a fault-riddled
campaign writes a ``summary.json`` byte-identical to an undisturbed
run on both store backends.
"""

import multiprocessing
import signal
import sqlite3
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import faults
from repro.runtime.campaign import run_campaign
from repro.runtime.executor import (
    MAX_POOL_DEATHS,
    CellTimeout,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
)
from repro.runtime.faults import KILL_EXIT_CODE, FaultPlan, InjectedFault
from repro.runtime.store import JsonlResultStore, cell_key
from repro.runtime.store_sqlite import SqliteResultStore
from repro.runtime.telemetry import attempt_rows, store_retry_rows
from repro.scenarios import generate_scenarios

pytestmark = pytest.mark.runtime

#: Zero-sleep retry policy: tests assert recovery logic, not schedules.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def cells():
    return generate_scenarios(12, seed=11)


# ----------------------------------------------------------------------
# FaultPlan: the pure decision function
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    site=st.sampled_from(["kernel", "store"]),
    token=st.text(min_size=1, max_size=16),
    attempt=st.integers(1, 4),
    rate=st.floats(0.0, 1.0, allow_nan=False),
)
def test_decide_is_pure_and_bounded(seed, site, token, attempt, rate):
    plan = FaultPlan(seed=seed, rate=rate)
    first = plan.decide(site, token, attempt)
    # Interleave unrelated draws: decisions must not share RNG state.
    plan.decide(site, token + "x", attempt)
    plan.decide("store" if site == "kernel" else "kernel", token, attempt)
    assert plan.decide(site, token, attempt) == first
    kinds = plan.store_kinds if site == "store" else plan.kinds
    assert first is None or first in kinds
    if attempt > plan.max_attempt:
        assert first is None  # bounded: retries past max_attempt recover


def test_rate_edges():
    never = FaultPlan(seed=1, rate=0.0)
    always = FaultPlan(seed=1, rate=1.0)
    for token in ("a", "b", "c", "deadbeef"):
        assert never.decide("kernel", token, 1) is None
        assert always.decide("kernel", token, 1) in always.kinds
        assert always.decide("kernel", token, 2) is None  # max_attempt=1


def test_parse_roundtrip_and_errors():
    assert FaultPlan.parse("7:0.15") == FaultPlan(seed=7, rate=0.15)
    for bad in ("", "7", "7:0.1:9", "a:b", "7:2.0"):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(seed=0, rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(seed=0, rate=0.5, store_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(seed=0, rate=0.5, kinds=("raise", "segfault"))
    with pytest.raises(ValueError):
        FaultPlan(seed=0, rate=0.5, store_kinds=("torn", "melt"))
    with pytest.raises(ValueError):
        FaultPlan(seed=0, rate=0.5, max_attempt=-1)


def test_kill_degrades_to_raise_in_parent():
    """The campaign process must survive its own chaos harness."""
    assert multiprocessing.parent_process() is None  # we are the parent
    plan = FaultPlan(seed=1, rate=1.0, kinds=("kill",))
    with pytest.raises(InjectedFault, match="kill->raise"):
        plan.apply_cell("deadbeef")


def test_check_fault_is_noop_without_plan():
    """Off-path cost is one None check: the spec is never fingerprinted
    (object() would crash spec_fingerprint if it were)."""
    assert faults.active_plan() is None
    faults.check_fault("kernel", object())


def test_attempt_scope_is_thread_local_and_restores():
    assert faults.current_attempt() == 1
    with faults.attempt_scope(3):
        assert faults.current_attempt() == 3
        with faults.attempt_scope(5):
            assert faults.current_attempt() == 5
        assert faults.current_attempt() == 3
    assert faults.current_attempt() == 1


# ----------------------------------------------------------------------
# RetryPolicy + executor retries
# ----------------------------------------------------------------------
def test_retry_policy_delay_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=4, backoff_base=0.05, seed=3)
    for attempt in (1, 2, 3):
        d = policy.delay(attempt, token=7)
        assert d == policy.delay(attempt, token=7)  # replayable
        assert 0.0 <= d <= policy.backoff_max * (1.0 + policy.jitter)
    assert policy.delay(1, token=7) != policy.delay(1, token=8)
    assert policy.sleep_budget() >= 0.0
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def _fail_first_attempt(x):
    """Module-level (picklable); consults the attempt the executor set."""
    if faults.current_attempt() < 2:
        raise ValueError("first attempt always fails")
    return x * 10


def test_serial_retry_recovers(cells):
    results = SerialExecutor().map_tasks(
        _fail_first_attempt, [1, 2, 3], retry=FAST_RETRY
    )
    assert [r.value for r in results] == [10, 20, 30]
    assert all(r.ok and r.attempts == 2 for r in results)
    assert all(len(r.attempt_errors) == 1 for r in results)
    assert "first attempt always fails" in results[0].attempt_errors[0]


def test_serial_without_retry_fails():
    results = SerialExecutor().map_tasks(_fail_first_attempt, [1])
    assert not results[0].ok and results[0].attempts == 1


def _sleep_forever(x):
    time.sleep(30)
    return x


def _hang_first_attempt(x):
    if faults.current_attempt() == 1:
        time.sleep(30)
    return x + 1


def test_cell_timeout_serial():
    results = SerialExecutor().map_tasks(
        _sleep_forever, [1], cell_timeout=0.2
    )
    assert not results[0].ok
    assert CellTimeout.__name__ in results[0].error


def test_cell_timeout_recovers_with_retry():
    results = SerialExecutor().map_tasks(
        _hang_first_attempt,
        [5],
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
        cell_timeout=0.3,
    )
    assert results[0].ok and results[0].value == 6
    assert results[0].attempts == 2
    assert CellTimeout.__name__ in results[0].attempt_errors[0]


# ----------------------------------------------------------------------
# Pool resurrection: kills, culprit isolation, degradation, watchdog
# ----------------------------------------------------------------------
_KILL_TARGET = 3


def _kill_target_first_attempt(x):
    """Dies hard in a worker on attempt 1 of the target payload only."""
    import os

    if x == _KILL_TARGET and faults.current_attempt() == 1:
        if multiprocessing.parent_process() is not None:
            os._exit(KILL_EXIT_CODE)
    return x * 2


def _always_kill_target(x):
    """Dies hard on the target payload on *every* in-child attempt."""
    import os

    if x == _KILL_TARGET and multiprocessing.parent_process() is not None:
        os._exit(KILL_EXIT_CODE)
    return x * 2


def test_pool_death_isolates_culprit_and_recovers():
    """A worker kill no longer stamps the whole chunk with one shared
    traceback: every cell gets its own disposition and recovers."""
    results = ProcessExecutor(jobs=2, chunksize=4).map_tasks(
        _kill_target_first_attempt, list(range(8)), retry=FAST_RETRY
    )
    assert [r.value for r in results] == [2 * i for i in range(8)]
    assert all(r.ok for r in results)
    culprit = results[_KILL_TARGET]
    assert culprit.attempts >= 2
    assert any("pool death" in e for e in culprit.attempt_errors)


def test_pool_death_recovers_without_retry_policy():
    """Even with no RetryPolicy, one pool death must not fail innocent
    chunk-mates: MIN_DEATH_EXPOSURES keeps one exposure survivable."""
    results = ProcessExecutor(jobs=2, chunksize=4).map_tasks(
        _kill_target_first_attempt, list(range(8))
    )
    assert all(r.ok for r in results)
    assert [r.value for r in results] == [2 * i for i in range(8)]


def test_repeated_deaths_declare_poison_spare_chunkmates():
    results = ProcessExecutor(jobs=2, chunksize=2).map_tasks(
        _always_kill_target, list(range(4))
    )
    assert [r.ok for r in results] == [True, True, True, False]
    assert [r.value for r in results[:3]] == [0, 2, 4]
    assert "declared poison" in results[_KILL_TARGET].error


def test_degrades_to_serial_after_max_pool_deaths():
    """A payload that kills every pool eventually runs in-parent, where
    the 'kill' cannot fire -- the campaign outlives a poisonous pool."""
    results = ProcessExecutor(jobs=1, chunksize=1).map_tasks(
        _always_kill_target,
        [_KILL_TARGET],
        retry=RetryPolicy(
            max_attempts=MAX_POOL_DEATHS + 1, backoff_base=0.0, jitter=0.0
        ),
    )
    assert results[0].ok and results[0].value == 2 * _KILL_TARGET
    deaths = [e for e in results[0].attempt_errors if "pool death" in e]
    assert len(deaths) == MAX_POOL_DEATHS


def _block_sigalrm_and_hang_first(x):
    """A cell stuck where SIGALRM cannot fire (C-code stand-in)."""
    if faults.current_attempt() == 1:
        signal.pthread_sigmask(signal.SIG_BLOCK, [signal.SIGALRM])
        time.sleep(60)
    return x


def test_watchdog_unsticks_signal_immune_hang():
    results = ProcessExecutor(jobs=1, chunksize=1).map_tasks(
        _block_sigalrm_and_hang_first,
        [5],
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
        cell_timeout=0.3,
    )
    assert results[0].ok and results[0].value == 5
    assert any("watchdog" in e for e in results[0].attempt_errors)


# ----------------------------------------------------------------------
# Store faults: torn / failed writes, busy retry
# ----------------------------------------------------------------------
def _records(n):
    return [{"key": f"k{i:04d}", "name": f"cell-{i}", "sound": True}
            for i in range(n)]


def test_jsonl_torn_write_recovers_by_reappend(tmp_path):
    store = JsonlResultStore(tmp_path / "torn")
    plan = FaultPlan(seed=1, rate=0.0, store_kinds=("torn",), store_rate=1.0)
    recs = _records(5)
    with faults.activate(plan), faults.attempt_scope(1):
        with pytest.raises(InjectedFault, match="torn"):
            store.append_many(recs)
    # Retry (attempt 2 > max_attempt): the whole batch re-appends; the
    # torn residue must quarantine alone, never eat a fresh record --
    # the regression here is a torn FIRST record merging with the
    # retry's first line.
    with faults.activate(plan), faults.attempt_scope(2):
        store.append_many(recs)
    loaded = store.load()
    assert set(loaded) == {r["key"] for r in recs}
    assert store.quarantined == 1
    assert store.quarantine_path.exists()
    # A second load sees the healed file: nothing left to quarantine.
    store.load()
    assert store.quarantined == 0


def test_jsonl_fail_write_recovers_by_reappend(tmp_path):
    store = JsonlResultStore(tmp_path / "fail")
    plan = FaultPlan(seed=1, rate=0.0, store_kinds=("fail",), store_rate=1.0)
    recs = _records(4)
    with faults.activate(plan), faults.attempt_scope(1):
        with pytest.raises(InjectedFault, match="failure"):
            store.append_many(recs)
    with faults.activate(plan), faults.attempt_scope(2):
        store.append_many(recs)
    assert set(store.load()) == {r["key"] for r in recs}
    assert store.quarantined == 0  # fail leaves no residue, unlike torn


def test_sqlite_torn_payload_healed_by_replace(tmp_path):
    store = SqliteResultStore(tmp_path / "sq")
    plan = FaultPlan(seed=1, rate=0.0, store_kinds=("torn",), store_rate=1.0)
    recs = _records(4)
    with faults.activate(plan), faults.attempt_scope(1):
        with pytest.raises(InjectedFault, match="torn"):
            store.append_many(recs)
    with faults.activate(plan), faults.attempt_scope(2):
        store.append_many(recs)
    assert set(store.load()) == {r["key"] for r in recs}
    assert store.quarantined == 0  # INSERT OR REPLACE healed the row


def test_sqlite_busy_retry_bounded(tmp_path, monkeypatch):
    monkeypatch.setattr(time, "sleep", lambda s: None)
    store = SqliteResultStore(tmp_path / "busy")
    calls = []

    def locked_twice():
        calls.append(1)
        if len(calls) <= 2:
            raise sqlite3.OperationalError("database is locked")
        return "done"

    assert store._with_busy_retry(locked_twice) == "done"
    assert store.busy_retries == 2

    def not_busy():
        raise sqlite3.OperationalError("no such table: nope")

    with pytest.raises(sqlite3.OperationalError, match="no such table"):
        store._with_busy_retry(not_busy)
    assert store.busy_retries == 2  # non-busy errors never count

    def always_locked():
        raise sqlite3.OperationalError("database is busy")

    with pytest.raises(sqlite3.OperationalError, match="busy"):
        store._with_busy_retry(always_locked)  # bounded, then re-raises


# ----------------------------------------------------------------------
# The campaign invariant: retries never change results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["jsonl:", "sqlite:"])
def test_chaos_campaign_summary_byte_identical(cells, tmp_path, scheme):
    """The tentpole gate, in-tree: a campaign riddled with injected
    worker kills, kernel raises and torn store writes recovers to a
    ``summary.json`` byte-identical to an undisturbed serial run."""
    clean = run_campaign(cells, store=tmp_path / "clean")
    assert clean.clean

    chaos = run_campaign(
        cells,
        executor=ProcessExecutor(jobs=2),
        store=scheme + str(tmp_path / "chaos"),
        retry=RetryPolicy(max_attempts=4, backoff_base=0.0, jitter=0.0),
        fault_plan=FaultPlan(seed=7, rate=0.3),
    )
    assert chaos.clean
    assert chaos.retried_cells > 0  # the harness actually fired
    assert chaos.poisoned_cells == 0
    clean_bytes = (tmp_path / "clean" / "summary.json").read_bytes()
    chaos_bytes = (tmp_path / "chaos" / "summary.json").read_bytes()
    assert chaos_bytes == clean_bytes


def test_chaos_campaign_writes_attempt_ledger(cells, tmp_path):
    chaos = run_campaign(
        cells[:6],
        store=tmp_path / "ledger",
        retry=FAST_RETRY,
        fault_plan=FaultPlan(seed=7, rate=0.5, kinds=("raise", "delay")),
    )
    assert chaos.clean and chaos.retried_cells > 0
    records = JsonlResultStore(tmp_path / "ledger").load_telemetry()
    ledger = attempt_rows(records)
    assert len(ledger) == chaos.retried_cells
    assert all(row["disposition"] == "recovered" for row in ledger)
    assert all(row["attempts"] >= 2 or row["faults"] for row in ledger)
    if chaos.store_retries:
        assert store_retry_rows(records)


def test_poison_channel_and_resume_recovery(cells, tmp_path):
    """Cells that exhaust every retry land in the poison channel with
    their diagnosis; a later resume without the plan heals the store
    to the same summary as an undisturbed run."""
    store = tmp_path / "poison"
    sick = run_campaign(
        cells[:3],
        store=store,
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
        fault_plan=FaultPlan(
            seed=3, rate=1.0, kinds=("raise",), store_kinds=(),
            max_attempt=99,
        ),
    )
    assert sick.poisoned_cells == 3
    assert not sick.clean
    poison = JsonlResultStore(store).load_poison()
    assert {p["key"] for p in poison} == {cell_key(sc) for sc in cells[:3]}
    assert all(p["attempts"] >= 2 and p["error_head"] for p in poison)

    healed = run_campaign(cells[:3], store=store, resume=True)
    assert healed.evaluated == 3 and healed.clean
    ref = run_campaign(cells[:3], store=tmp_path / "ref")
    assert (store / "summary.json").read_bytes() == (
        tmp_path / "ref" / "summary.json"
    ).read_bytes()
    assert ref.clean


def test_fault_plan_survives_pickle_roundtrip():
    import pickle

    plan = FaultPlan(seed=7, rate=0.15)
    back = pickle.loads(pickle.dumps(plan))
    assert back == plan
    assert back.decide("kernel", "cafe", 1) == plan.decide("kernel", "cafe", 1)
