"""Campaign sharding: fingerprint partitioning, concurrent shard runs.

The acceptance contract of the sharded runtime: a campaign split
``--shard 1/N .. N/N`` across independent OS processes against one
SQLite store (or per-shard stores merged afterwards) must reproduce
the serial single-process JSONL campaign exactly -- same records,
byte-identical ``summary.json``, zero regressions under ``diff`` --
and resume as a no-op.  The tier-1 versions run a small matrix; the
full ``examples/campaign_thousand.json`` variant is opt-in via
``-m scenario``.
"""

import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    fingerprint_shard,
    spec_fingerprint,
)
from repro.runtime import (
    JsonlResultStore,
    SqliteResultStore,
    cell_key,
    diff_stores,
    merge_stores,
    parse_shard,
    run_campaign,
    shard_scenarios,
)
from repro.scenarios import generate_scenarios

pytestmark = pytest.mark.runtime

N_CELLS = 16


@pytest.fixture(scope="module")
def matrix():
    return generate_scenarios(N_CELLS, seed=7, horizon=0.6)


class TestShardSpec:
    def test_parse_shard_one_based(self):
        assert parse_shard("1/2") == (0, 2)
        assert parse_shard("2/2") == (1, 2)
        assert parse_shard(None) is None
        assert parse_shard((1, 4)) == (1, 4)

    @pytest.mark.parametrize(
        "bad", ["0/2", "3/2", "1", "a/b", "1/0", "-1/2", "1/2/3", "1/2/junk"]
    )
    def test_parse_shard_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_shard(bad)

    def test_parse_shard_rejects_bad_tuple(self):
        with pytest.raises(ValueError):
            parse_shard((2, 2))

    def test_shards_partition_the_matrix(self, matrix):
        total = 3
        shards = [
            shard_scenarios(matrix, (i, total)) for i in range(total)
        ]
        names = [sc.name for shard in shards for sc in shard]
        assert sorted(names) == sorted(sc.name for sc in matrix)
        assert len(names) == len(set(names))  # disjoint

    @settings(max_examples=50, deadline=None)
    @given(
        fingerprints=st.lists(
            st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
            max_size=40,
        ),
        total=st.integers(min_value=1, max_value=128),
    )
    def test_fingerprint_shard_is_a_disjoint_exact_cover(
        self, fingerprints, total
    ):
        """Every fingerprint lands in exactly one shard of [0, N), for
        arbitrary N -- including N far above the cell count, where the
        tail shards are legitimately empty."""
        buckets = {i: [] for i in range(total)}
        for fp in fingerprints:
            idx = fingerprint_shard(fp, total)
            assert 0 <= idx < total
            assert idx == fingerprint_shard(fp, total)  # deterministic
            buckets[idx].append(fp)
        covered = [fp for bucket in buckets.values() for fp in bucket]
        assert sorted(covered) == sorted(fingerprints)

    @settings(max_examples=25, deadline=None)
    @given(total=st.integers(min_value=1, max_value=64))
    def test_shard_scenarios_cover_for_any_worker_count(self, total):
        """The matrix-level consequence: N shard workers -- even more
        workers than cells -- together run every cell exactly once."""
        matrix = generate_scenarios(N_CELLS, seed=7, horizon=0.6)
        shards = [shard_scenarios(matrix, (i, total)) for i in range(total)]
        names = [sc.name for shard in shards for sc in shard]
        assert sorted(names) == sorted(sc.name for sc in matrix)
        for shard in shards:
            for sc in shard:
                idx = fingerprint_shard(spec_fingerprint(sc), total)
                assert sc in shards[idx]

    def test_shard_assignment_ignores_order_and_seed(self, matrix):
        shuffled = list(reversed(matrix))
        a = {sc.name for sc in shard_scenarios(matrix, "1/2")}
        b = {sc.name for sc in shard_scenarios(shuffled, "1/2")}
        assert a == b

    def test_single_shard_is_identity(self, matrix):
        assert shard_scenarios(matrix, "1/1") == list(matrix)
        assert shard_scenarios(matrix, None) == list(matrix)


def _run_shard(n_cells: int, seed: int, horizon: float, store_url: str,
               shard: str) -> None:
    """Child-process entry: run one shard of the matrix into the store."""
    scenarios = generate_scenarios(n_cells, seed=seed, horizon=horizon)
    campaign = run_campaign(
        scenarios, store=store_url, resume=True, shard=shard
    )
    assert campaign.clean


def _run_config_shard(config_path: str, store_url: str, shard: str) -> None:
    """Child-process entry: run one shard of a JSON campaign config."""
    from repro.runtime import CampaignConfig, build_campaign

    scenarios = build_campaign(CampaignConfig.from_file(config_path))
    campaign = run_campaign(
        scenarios, store=store_url, resume=True, shard=shard
    )
    assert campaign.clean


def _run_concurrent_shards(store_url: str, total: int = 2):
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(
            target=_run_shard,
            args=(N_CELLS, 7, 0.6, store_url, f"{i + 1}/{total}"),
        )
        for i in range(total)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=300)
        assert p.exitcode == 0


class TestConcurrentShardedCampaign:
    def test_two_shard_processes_match_serial_jsonl_run(
        self, matrix, tmp_path
    ):
        """The acceptance contract at tier-1 scale: 2 concurrent shard
        processes -> one SQLite store == serial JSONL run."""
        serial = run_campaign(matrix, store=tmp_path / "serial")
        assert serial.clean

        store_url = f"sqlite:{tmp_path / 'sharded'}"
        _run_concurrent_shards(store_url)
        merge_stores(store_url)  # refresh summary over the union

        sharded_store = SqliteResultStore(tmp_path / "sharded")
        serial_store = JsonlResultStore(tmp_path / "serial")
        assert set(sharded_store.load()) == {cell_key(sc) for sc in matrix}
        # summary.json is byte-identical: the summary aggregates only
        # content-derived verdicts, and outcomes are seed-deterministic.
        assert (
            sharded_store.summary_path.read_bytes()
            == serial_store.summary_path.read_bytes()
        )
        # Record-level equality modulo the wall clock (the one
        # legitimately run-dependent field).
        serial_records = serial_store.load()
        for key, rec in sharded_store.load().items():
            ref = dict(serial_records[key])
            got = dict(rec)
            ref.pop("wall_time"), got.pop("wall_time")
            assert got == ref
        # And the baseline-diff gate agrees: zero regressions.
        diff = diff_stores(tmp_path / "serial", store_url)
        assert diff.clean and not diff.added and not diff.removed

    def test_sharded_store_resumes_as_noop(self, matrix, tmp_path):
        store_url = f"sqlite:{tmp_path / 'resume'}"
        for shard in ("1/2", "2/2"):
            first = run_campaign(
                matrix, store=store_url, resume=True, shard=shard
            )
            assert first.skipped == 0 and first.clean
        again = run_campaign(matrix, store=store_url, resume=True)
        assert again.evaluated == 0
        assert again.skipped == N_CELLS
        assert again.clean

    def test_per_shard_jsonl_stores_merge_to_serial(self, matrix, tmp_path):
        """The no-shared-filesystem layout: one JSONL store per shard,
        merged afterwards, equals the serial run."""
        serial = run_campaign(matrix, store=tmp_path / "serial")
        assert serial.clean
        shard_dirs = []
        for i in (1, 2):
            shard_dir = tmp_path / f"shard{i}"
            report = run_campaign(
                matrix, store=shard_dir, shard=f"{i}/2"
            )
            assert report.clean
            shard_dirs.append(shard_dir)
        merge_stores(tmp_path / "merged", shard_dirs)
        assert (
            (tmp_path / "merged" / "summary.json").read_bytes()
            == (tmp_path / "serial" / "summary.json").read_bytes()
        )
        assert diff_stores(tmp_path / "serial", tmp_path / "merged").clean

    def test_interrupted_shard_resumes_where_it_stopped(self, matrix, tmp_path):
        store_url = f"sqlite:{tmp_path / 'partial'}"
        shard_cells = shard_scenarios(matrix, "1/2")
        assert len(shard_cells) >= 2
        # "Crash" after the first half of this shard's cells.
        run_campaign(shard_cells[: len(shard_cells) // 2], store=store_url)
        resumed = run_campaign(
            matrix, store=store_url, resume=True, shard="1/2"
        )
        assert resumed.skipped == len(shard_cells) // 2
        assert resumed.evaluated == len(shard_cells) - resumed.skipped


@pytest.mark.scenario
def test_thousand_cell_two_shard_acceptance(tmp_path):
    """The full acceptance criterion: ``examples/campaign_thousand.json``
    as 2 concurrent shard processes against one SQLite store, vs the
    single-process JSONL run -- byte-identical summary, clean diff,
    no-op resume.  Opt-in (``-m scenario``): this evaluates the 1024-cell
    matrix twice."""
    from repro.runtime import CampaignConfig, ProcessExecutor, build_campaign

    config_path = os.path.join(os.path.dirname(__file__), "..",
                               "examples", "campaign_thousand.json")
    scenarios = build_campaign(CampaignConfig.from_file(config_path))
    serial = run_campaign(
        scenarios,
        executor=ProcessExecutor(jobs=min(4, os.cpu_count() or 1)),
        store=tmp_path / "serial",
    )
    assert serial.clean

    store_url = f"sqlite:{tmp_path / 'sharded'}"
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(
            target=_run_config_shard,
            args=(config_path, store_url, f"{i}/2"),
        )
        for i in (1, 2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=3600)
        assert p.exitcode == 0
    merge_stores(store_url)
    assert (
        SqliteResultStore(tmp_path / "sharded").summary_path.read_bytes()
        == JsonlResultStore(tmp_path / "serial").summary_path.read_bytes()
    )
    diff = diff_stores(tmp_path / "serial", store_url)
    assert diff.clean and not diff.added and not diff.removed
    again = run_campaign(scenarios, store=store_url, resume=True)
    assert again.evaluated == 0 and again.skipped == len(scenarios)
