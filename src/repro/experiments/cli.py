"""Command-line entry point: ``repro-experiments <experiment>``.

Regenerates any paper artefact from the shell::

    repro-experiments fig4b            # Fig 4(b): 3 video streams, one host
    repro-experiments fig6a --quick    # Fig 6(a) at reduced scale
    repro-experiments table2           # Table II
    repro-experiments theory           # thresholds + improvement ratios
    repro-experiments all --quick      # everything, CI scale

and drives the scenario-matrix cross-validation subsystem::

    repro-experiments scenarios list                     # curated corpus
    repro-experiments scenarios run --count 200 --seed 0 # matrix sweep
    repro-experiments scenarios run \\
        --campaign examples/campaign_thousand.json \\
        --jobs 4 --store campaigns/nightly --resume      # parallel campaign
    repro-experiments scenarios diff campaigns/a campaigns/b

Output is plain text shaped like the paper's figures/tables; the
``scenarios run`` exit status is non-zero when any soundness or
perf-budget verdict fails, and ``scenarios diff`` is non-zero on any
regression between the two campaign stores (CI-friendly).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import Fig4Config, Fig6Config, TableConfig
from repro.experiments.multigroup import run_fig6
from repro.experiments.report import format_series, render_table
from repro.experiments.single_host import run_fig4
from repro.experiments.theory import (
    height_bound_table,
    improvement_ratio_table,
    threshold_table,
)
from repro.experiments.trees import run_tree_table
from repro.workloads.profiles import AUDIO_MIX, HETEROGENEOUS_MIX, VIDEO_MIX

_FIG_MIXES = {"a": AUDIO_MIX, "b": VIDEO_MIX, "c": HETEROGENEOUS_MIX}
_TABLE_MIXES = {"1": "3xaudio", "2": "3xvideo", "3": "1video+2audio"}

EXPERIMENTS = (
    "fig4a", "fig4b", "fig4c",
    "fig6a", "fig6b", "fig6c",
    "table1", "table2", "table3",
    "theory", "validate", "all",
)

#: Subcommand families dispatched before the flat experiment parser.
SUBCOMMANDS = ("scenarios",)


def _print_validation(quick: bool) -> None:
    from repro.experiments.validation import validate_bounds

    cells = validate_bounds(
        utilizations=(0.6, 0.9) if quick else (0.5, 0.7, 0.9),
        horizon=5.0 if quick else 10.0,
    )
    headers = ["mix", "mode", "u", "measured", "bound", "tightness", "sound"]
    rows = [
        [c.mix_name, c.mode, c.utilization, c.measured, c.bound,
         c.tightness, "yes" if c.sound else "NO"]
        for c in cells
    ]
    print(render_table(headers, rows,
                       title="== Measured vs analytic bounds =="))
    unsound = [c for c in cells if not c.sound]
    print(f"unsound cells: {len(unsound)}")


def _print_fig4(panel: str, quick: bool) -> None:
    config = Fig4Config.quick() if quick else Fig4Config()
    mix = _FIG_MIXES[panel]
    res = run_fig4(mix, config)
    print(f"== Figure 4({panel}) -- {res.mix_name}, single regulated host ==")
    print("utilization:  " + " ".join(f"{u:7.2f}" for u in res.utilizations))
    print(format_series("(sigma,rho) WDB [s]", res.utilizations, res.sigma_rho_series))
    print(format_series("(sigma,rho,lambda) WDB [s]", res.utilizations,
                        res.sigma_rho_lambda_series))
    print(f"crossover (simulated threshold): {res.crossover}")
    print(f"theoretical aggregate threshold: "
          f"{res.theoretical_threshold_aggregate:.3f}")
    print(f"max improvement: {res.max_improvement:.2f}x at "
          f"{res.max_improvement_at}")


def _print_fig6(panel: str, quick: bool) -> None:
    config = Fig6Config.quick() if quick else Fig6Config()
    mix = _FIG_MIXES[panel]
    res = run_fig6(mix, config)
    print(f"== Figure 6({panel}) -- {res.mix_name}, multi-group network ==")
    print("utilization:  " + " ".join(f"{u:7.2f}" for u in res.utilizations))
    for scheme in res.schemes:
        print(format_series(scheme, res.utilizations, res.series(scheme)))
    print(f"DSCT crossover (simulated threshold): {res.crossover_dsct}")
    print(f"theoretical aggregate threshold: "
          f"{res.theoretical_threshold_aggregate:.3f}")
    print(f"max DSCT improvement: {res.max_improvement_dsct:.2f}x")


def _print_table(which: str, quick: bool) -> None:
    config = TableConfig.quick() if quick else TableConfig()
    res = run_tree_table(_TABLE_MIXES[which], config)
    headers = ["scheme", *(f"{u:.2f}" for u in res.utilizations)]
    print(render_table(headers, res.rows(),
                       title=f"== Table {which} -- {res.mix_name} =="))
    print(f"capacity-aware grows with rate: {res.capacity_aware_grows}")
    print(f"regulated height constant:      {res.regulated_constant}")


def _print_theory() -> None:
    tt = threshold_table()
    headers = ["K", "hom K*rho*", "het K*rho*", "het quadratic"]
    rows = [
        [r["k"], r["homogeneous"], r["heterogeneous"], r["heterogeneous_quadratic"]]
        for r in tt["rows"]
    ]
    print(render_table(headers, rows, title="== Rate thresholds (Theorems 3/4) ==",
                       float_fmt="{:.4f}"))
    print(f"limits: homogeneous {tt['limit_homogeneous']:.4f} "
          f"(0.73C), heterogeneous {tt['limit_heterogeneous']:.4f} (0.79C)")
    print(f"control ranges: hom {tt['control_range_homogeneous']:.4f} (~0.27), "
          f"het {tt['control_range_heterogeneous']:.4f} (~0.21)")
    irt = improvement_ratio_table()
    headers = ["K", "n", "rho", "ratio Dg/D^g", "O(K^n) lower bound"]
    rows = [[r["k"], r["n"], r["rho"], r["ratio"], r["lower_bound"]] for r in irt]
    print(render_table(headers, rows,
                       title="== Improvement ratio (Theorems 5/6) ==",
                       float_fmt="{:.4f}"))
    hbt = height_bound_table()
    headers = ["n", "k", "height bound (Lemma 2)"]
    rows = [[r["n"], r["k"], r["height_bound"]] for r in hbt]
    print(render_table(headers, rows, title="== DSCT height bound (Lemma 2) =="))


def _scenarios_main(argv: list[str]) -> int:
    """The ``scenarios`` subcommand: batched cross-validation at scale."""
    import dataclasses

    from repro.runtime import (
        CampaignConfig,
        EXECUTOR_KINDS,
        ResultStore,
        backend_profile,
        build_campaign,
        diff_stores,
        make_executor,
        outcome_record,
        run_campaign,
    )
    from repro.scenarios import (
        adversarial_corpus,
        generate_scenarios,
        registered_scenarios,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments scenarios",
        description="Batched analytic-vs-simulation scenario matrix.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    p_run = sub.add_parser("run", help="evaluate a scenario matrix")
    p_run.add_argument(
        "--count", type=int, default=50,
        help="number of generated scenarios (default 50)",
    )
    p_run.add_argument("--seed", type=int, default=0, help="generator seed")
    p_run.add_argument(
        "--campaign", default=None, metavar="FILE",
        help="JSON campaign config (replaces --count/--seed generation "
        "and skips the corpus)",
    )
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers (default 1: serial)",
    )
    p_run.add_argument(
        "--executor", choices=EXECUTOR_KINDS, default=None,
        help="execution backend (default: serial for --jobs 1, "
        "process otherwise)",
    )
    p_run.add_argument(
        "--store", default=None, metavar="DIR",
        help="campaign directory for persistent JSONL results",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="skip cells already completed in --store",
    )
    p_run.add_argument(
        "--budget", type=float, default=0.0, metavar="SECONDS",
        help="per-cell wall-clock budget verdict (0 disables)",
    )
    p_run.add_argument(
        "--no-corpus", action="store_true",
        help="skip the curated adversarial corpus",
    )
    p_run.add_argument(
        "--no-cost-model", action="store_true",
        help="disable cost-aware scheduling (uniform contiguous chunks)",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="print a per-backend cell-cost breakdown after the run "
        "(from the store when given, else from this run's cells)",
    )
    p_run.add_argument(
        "--verbose", action="store_true",
        help="print every cell, not just the summary",
    )
    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", default=None, help="filter by tag")
    p_diff = sub.add_parser(
        "diff", help="compare two campaign stores cell-by-cell"
    )
    p_diff.add_argument("old", help="baseline campaign directory")
    p_diff.add_argument("new", help="candidate campaign directory")
    args = parser.parse_args(argv)

    if args.action == "list":
        rows = [
            [sc.name, ",".join(sc.kinds), sc.mode, sc.topology,
             sc.backend, f"{sc.utilization:.2f}", ",".join(sc.tags)]
            for sc in registered_scenarios(tag=args.tag)
        ]
        print(render_table(
            ["name", "kinds", "mode", "topology", "backend", "u", "tags"],
            rows, title="== Registered scenarios ==",
        ))
        print(f"{len(rows)} scenarios")
        return 0

    if args.action == "diff":
        diff = diff_stores(args.old, args.new)
        print("== Campaign diff ==")
        for line in diff.summary_lines():
            print(line)
        return 0 if diff.clean else 1

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.resume and not args.store:
        parser.error("--resume requires --store")
    if args.budget < 0:
        parser.error("--budget must be >= 0")
    if args.campaign:
        config = CampaignConfig.from_file(args.campaign)
        if args.budget:
            config = dataclasses.replace(config, perf_budget=args.budget)
        scenarios = build_campaign(config)
    else:
        if args.count < 0:
            parser.error("--count must be >= 0")
        scenarios = [] if args.no_corpus else list(adversarial_corpus())
        if args.budget:
            scenarios = [
                dataclasses.replace(sc, perf_budget=args.budget)
                for sc in scenarios
            ]
        if args.count:
            scenarios += generate_scenarios(
                args.count, seed=args.seed, perf_budget=args.budget
            )
        if not scenarios:
            parser.error("nothing to run (--count 0 together with --no-corpus)")
    tick = None
    if len(scenarios) >= 100:
        # Live in-flight ticker on stderr (chunk granularity) so long
        # campaigns are not silent until the summary.
        def tick(done: int, total: int) -> None:
            end = "\n" if done == total else ""
            print(f"\r  {done}/{total} cells", end=end, file=sys.stderr, flush=True)

    campaign = run_campaign(
        scenarios,
        executor=make_executor(args.executor, args.jobs),
        store=args.store,
        resume=args.resume,
        tick=tick,
        cost_model=None if args.no_cost_model else "auto",
    )
    if args.verbose:
        rows = [
            [o.scenario.name, o.eff_mode, o.eff_backend, o.hops,
             o.measured, o.bound, o.tightness, "yes" if o.sound else "NO"]
            for o in campaign.report.outcomes
        ]
        print(render_table(
            ["scenario", "mode", "backend", "hops", "measured", "bound",
             "tightness", "sound"],
            rows, title="== Scenario matrix cross-validation ==",
        ))
    print("== Scenario matrix summary ==")
    for line in campaign.summary_lines():
        print(line)
    if args.profile:
        if args.store:
            records = list(ResultStore(args.store).load().values())
        else:
            records = [outcome_record(o) for o in campaign.report.outcomes]
        rows = [
            [r["backend"], r["cells"], r["wall_total"], r["wall_mean"],
             r["wall_max"], f"{100.0 * r['share']:.1f}%"]
            for r in backend_profile(records)
        ]
        print(render_table(
            ["backend", "cells", "wall total [s]", "mean [s]", "max [s]",
             "share"],
            rows, title="== Per-backend cell cost (from store) =="
            if args.store else "== Per-backend cell cost (this run) ==",
        ))
    return 0 if campaign.clean else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SUBCOMMANDS:
        return _scenarios_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale (shorter horizons, fewer sweep points)",
    )
    args = parser.parse_args(argv)
    exp = args.experiment
    if exp == "all":
        for panel in "abc":
            _print_fig4(panel, args.quick)
        for panel in "abc":
            _print_fig6(panel, args.quick)
        for which in "123":
            _print_table(which, args.quick)
        _print_theory()
        return 0
    if exp.startswith("fig4"):
        _print_fig4(exp[-1], args.quick)
    elif exp.startswith("fig6"):
        _print_fig6(exp[-1], args.quick)
    elif exp.startswith("table"):
        _print_table(exp[-1], args.quick)
    elif exp == "theory":
        _print_theory()
    elif exp == "validate":
        _print_validation(args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
