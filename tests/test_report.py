"""Report helpers: crossover detection, improvement, table rendering."""

import pytest

from repro.experiments.report import (
    find_crossover,
    format_series,
    max_improvement,
    render_table,
)


class TestFindCrossover:
    def test_simple_crossing(self):
        us = [0.4, 0.6, 0.8]
        baseline = [0.1, 0.3, 0.9]
        candidate = [0.5, 0.5, 0.5]
        # candidate dips below baseline between 0.6 and 0.8.
        c = find_crossover(us, baseline, candidate)
        assert 0.6 < c < 0.8

    def test_interpolation_exact(self):
        us = [0.0, 1.0]
        c = find_crossover(us, [0.0, 1.0], [0.5, 0.5])
        assert c == pytest.approx(0.5)

    def test_no_crossing(self):
        assert find_crossover([0.4, 0.8], [0.1, 0.2], [0.5, 0.6]) is None

    def test_candidate_wins_everywhere(self):
        assert find_crossover([0.4, 0.8], [0.5, 0.6], [0.1, 0.2]) == 0.4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            find_crossover([0.1], [1.0, 2.0], [0.5])


class TestMaxImprovement:
    def test_paper_style_readout(self):
        us = [0.7, 0.8, 0.9]
        baseline = [0.5, 0.72, 0.9]
        candidate = [0.6, 0.26, 0.5]
        at, ratio = max_improvement(us, baseline, candidate)
        assert at == pytest.approx(0.8)
        assert ratio == pytest.approx(0.72 / 0.26)

    def test_never_wins(self):
        at, ratio = max_improvement([0.5], [0.1], [0.5])
        assert at is None
        assert ratio == 1.0

    def test_zero_candidate_skipped(self):
        at, ratio = max_improvement([0.5, 0.6], [1.0, 1.0], [0.0, 0.5])
        assert at == pytest.approx(0.6)


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "0.125" in lines[3] or "0.125" in out

    def test_render_table_title(self):
        out = render_table(["x"], [[1]], title="Table I")
        assert out.startswith("Table I")

    def test_format_series(self):
        s = format_series("curve", [0.1, 0.2], [1.0, 2.0])
        assert "curve" in s
        assert "1.000" in s
