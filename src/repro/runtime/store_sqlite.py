"""SQLite result-store backend: safe concurrent writers for campaigns.

The JSONL backend is single-writer: two processes appending to one
``results.jsonl`` can interleave mid-line and tear records.  This
backend keeps the exact store contract (records, last-write-wins keys,
quarantine, deterministic ``summary.json``) on an SQLite file instead:

* **WAL journal + busy timeout** -- readers never block writers and
  concurrent writers serialise at commit granularity, so N campaign
  shard processes (or hosts sharing a filesystem) fill one store
  safely; ``append_many`` commits a whole batch of cells in one
  transaction, which is also what makes ingest fast.
* **content-hashed cell keys as primary keys** -- ``INSERT OR
  REPLACE`` gives the JSONL backend's duplicate-key semantics (the
  last record for a key wins) directly in the schema.
* **corrupt-row quarantine parity** -- record payloads are stored as
  canonical JSON text; a row whose payload no longer parses (manual
  edits, partial restores) is moved to a ``quarantine`` table on
  :meth:`load`, counted, and never raised -- the same recovery story
  as ``quarantine.jsonl``.

The JSON-text payload keeps the two backends bit-compatible: a record
round-trips through either backend to the identical Python dict
(non-finite floats included), so summaries, diffs, and merges never
see which backend held the data.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from repro.runtime.faults import InjectedFault, active_plan
from repro.runtime.store import ResultStore, _canonical_json, _coerce_root

__all__ = [
    "SqliteResultStore",
    "LeaseTable",
    "LEASE_STATES",
    "LEASE_UNFINISHED",
]

#: Milliseconds a writer waits on a locked database before erroring;
#: generous because shard processes commit whole campaign batches.
BUSY_TIMEOUT_MS = 30_000

#: Bounded busy-retry on top of SQLite's own busy timeout: attempts of
#: the whole transaction after a ``database is locked/busy`` error.
BUSY_RETRIES = 4
#: First busy-retry backoff (seconds); doubles per retry, capped below.
BUSY_BACKOFF_S = 0.05
BUSY_BACKOFF_MAX_S = 1.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key    TEXT PRIMARY KEY,
    v      INTEGER NOT NULL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    line TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS telemetry (
    id     INTEGER PRIMARY KEY,
    kind   TEXT NOT NULL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS poison (
    id     INTEGER PRIMARY KEY,
    key    TEXT NOT NULL,
    record TEXT NOT NULL
);
"""

#: Lease-coordination tables (PR 10): workers claim cost-sized cell
#: leases and renew heartbeats through the same WAL database the
#: results land in, so "who owns what" and "what is done" share one
#: crash-consistency story.  ``CREATE TABLE IF NOT EXISTS`` throughout:
#: any pre-coordinator store upgrades in place on first connect.
_LEASE_SCHEMA = """
CREATE TABLE IF NOT EXISTS leases (
    id       INTEGER PRIMARY KEY,
    state    TEXT NOT NULL DEFAULT 'open',
    worker   TEXT,
    cost     REAL NOT NULL DEFAULT 0,
    deadline REAL,
    deaths   INTEGER NOT NULL DEFAULT 0,
    steals   INTEGER NOT NULL DEFAULT 0,
    cells    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS heartbeats (
    worker TEXT PRIMARY KEY,
    beat   REAL NOT NULL,
    lease  INTEGER,
    pid    INTEGER
);
"""

_SCHEMA += _LEASE_SCHEMA


def _is_busy_error(exc: sqlite3.OperationalError) -> bool:
    msg = str(exc).lower()
    return "locked" in msg or "busy" in msg


def _busy_retry(op: Callable[[], Any], tally: Callable[[], None]) -> Any:
    """Run one whole transaction with bounded backoff on lock
    contention (on top of SQLite's own ``busy_timeout``, which a
    writer-starved WAL checkpoint can still exhaust)."""
    delay = BUSY_BACKOFF_S
    for attempt in range(BUSY_RETRIES + 1):
        try:
            return op()
        except sqlite3.OperationalError as exc:
            if not _is_busy_error(exc) or attempt >= BUSY_RETRIES:
                raise
            tally()
            time.sleep(delay)
            delay = min(delay * 2.0, BUSY_BACKOFF_MAX_S)


class SqliteResultStore(ResultStore):
    """WAL-mode SQLite store under one campaign directory.

    Two files: ``results.sqlite`` (records + quarantine tables) and the
    shared ``summary.json``.  Open one instance per process; SQLite's
    locking makes cross-process writes safe, and every operation here
    is a single transaction.
    """

    RESULTS = "results.sqlite"

    kind = "sqlite"

    def __init__(self, root: Union[str, Path]):
        self.root = _coerce_root(root, "sqlite")
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantined = 0
        #: Busy-retry accounting: transactions re-run after a
        #: ``database is locked/busy`` error (surfaced as a
        #: ``store_retries`` telemetry record by campaign and merge).
        self.busy_retries = 0
        self._conn: sqlite3.Connection | None = None
        self._leases: "LeaseTable | None" = None

    def _with_busy_retry(self, op: Callable[[], Any]) -> Any:
        """See :func:`_busy_retry`; retries land in ``busy_retries``."""

        def _tally() -> None:
            self.busy_retries += 1

        return _busy_retry(op, _tally)

    @property
    def db_path(self) -> Path:
        return self.root / self.RESULTS

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(self.db_path, timeout=BUSY_TIMEOUT_MS / 1000)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._leases is not None:
            self._leases.close()
            self._leases = None

    # -- writing ---------------------------------------------------------
    @staticmethod
    def _row(record: Mapping[str, Any]) -> tuple[str, int, str]:
        rec = ResultStore._stamp(record)
        return (str(rec["key"]), int(rec["v"]), _canonical_json(rec))

    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [self._row(rec) for rec in records]
        if not rows:
            return
        plan = active_plan()
        torn_exc = None
        if plan is not None:
            # Chaos-harness path: an injected "fail" drops the whole
            # uncommitted transaction (what a crash mid-commit does);
            # an injected "torn" commits the batch with the victim's
            # payload truncated (what a corrupted page recovers to) --
            # a retry's INSERT OR REPLACE heals it, an abandoned store
            # quarantines it on the next load.
            for i, (key, v, raw) in enumerate(rows):
                kind = plan.store_fault(key)
                if kind == "fail":
                    raise InjectedFault(
                        f"injected store failure before record {key!r}"
                    )
                if kind == "torn":
                    rows[i] = (key, v, raw[: max(1, len(raw) // 2)])
                    torn_exc = InjectedFault(
                        f"injected torn payload at record {key!r}"
                    )
                    break

        def _commit():
            conn = self._connect()
            with conn:  # one transaction per batch, however large
                conn.executemany(
                    "INSERT OR REPLACE INTO results (key, v, record) "
                    "VALUES (?, ?, ?)",
                    rows,
                )

        self._with_busy_retry(_commit)
        if torn_exc is not None:
            raise torn_exc

    def append_telemetry(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [
            (str(rec.get("kind", "cell")), _canonical_json(dict(rec)))
            for rec in records
        ]
        if not rows:
            return

        def _commit():
            conn = self._connect()
            with conn:
                conn.executemany(
                    "INSERT INTO telemetry (kind, record) VALUES (?, ?)",
                    rows,
                )

        self._with_busy_retry(_commit)

    def load_telemetry(self) -> list[dict[str, Any]]:
        if not self.db_path.exists():
            return []
        out: list[dict[str, Any]] = []
        for (raw,) in self._connect().execute(
            "SELECT record FROM telemetry ORDER BY id"
        ):
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError:
                continue  # telemetry is best-effort: skip bad rows
            if isinstance(rec, dict):
                out.append(rec)
        return out

    def append_poison(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [
            (str(rec.get("key", "")), _canonical_json(dict(rec)))
            for rec in records
        ]
        if not rows:
            return

        def _commit():
            conn = self._connect()
            with conn:
                conn.executemany(
                    "INSERT INTO poison (key, record) VALUES (?, ?)",
                    rows,
                )

        self._with_busy_retry(_commit)

    def load_poison(self) -> list[dict[str, Any]]:
        if not self.db_path.exists():
            return []
        out: list[dict[str, Any]] = []
        for (raw,) in self._connect().execute(
            "SELECT record FROM poison ORDER BY id"
        ):
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError:
                continue  # diagnosis channel: best-effort like telemetry
            if isinstance(rec, dict):
                out.append(rec)
        return out

    # -- reading ---------------------------------------------------------
    def load(self) -> dict[str, dict[str, Any]]:
        self.quarantined = 0
        if not self.db_path.exists():
            return {}
        conn = self._connect()
        records: dict[str, dict[str, Any]] = {}
        bad: list[tuple[str, str]] = []  # (key, raw payload)
        for key, raw in conn.execute(
            "SELECT key, record FROM results ORDER BY rowid"
        ):
            try:
                rec = json.loads(raw)
                rec_key = rec["key"]
            except (json.JSONDecodeError, TypeError, KeyError):
                bad.append((key, raw))
                continue
            records[str(rec_key)] = rec
        if bad:
            self.quarantined = len(bad)

            def _commit():
                with conn:
                    conn.executemany(
                        "INSERT INTO quarantine (line) VALUES (?)",
                        [(raw,) for _, raw in bad],
                    )
                    conn.executemany(
                        "DELETE FROM results WHERE key = ?",
                        [(key,) for key, _ in bad],
                    )

            self._with_busy_retry(_commit)
        return records

    def quarantine_lines(self) -> list[str]:
        """Raw payloads moved aside so far (parity with ``quarantine.jsonl``)."""
        if not self.db_path.exists():
            return []
        return [
            line
            for (line,) in self._connect().execute(
                "SELECT line FROM quarantine ORDER BY rowid"
            )
        ]

    def leases(self) -> "LeaseTable":
        """This store's lease table, living inside ``results.sqlite``
        itself -- claims, results, and heartbeats commit through one
        WAL database (old stores grow the tables on first connect)."""
        if self._leases is None:
            self._leases = LeaseTable(self.db_path)
        return self._leases


# ----------------------------------------------------------------------
# Lease coordination (PR 10)
# ----------------------------------------------------------------------
#: Lease lifecycle: ``open`` (plannable) -> ``active`` (a worker holds
#: it until ``deadline``) -> ``done`` | ``split`` (re-issued as
#: single-cell children after a reclaim) | ``poison`` (killed too many
#: workers; cells routed to the poison channel) | ``reclaimed`` (a
#: restarted coordinator superseded it with a fresh plan).
LEASE_STATES = ("open", "active", "done", "split", "poison", "reclaimed")

#: Lease states that still represent outstanding work.
LEASE_UNFINISHED = ("open", "active")


class LeaseTable:
    """Atomic lease + heartbeat operations over one SQLite database.

    The coordination half of the distributed-campaign story: the
    SQLite result store hosts these tables inside ``results.sqlite``;
    the single-writer JSONL store delegates to a ``leases.sqlite``
    sidecar in the same campaign directory, so coordination is always
    multi-writer-safe regardless of where the records land.

    Every mutation is a single transaction under the same bounded
    busy-retry as the result tables.  Claim and steal are atomic
    compare-and-swap ``UPDATE``s: two racing workers can never both win
    a lease, and a worker that lost its lease to the reclaim path finds
    out at its next renew (rowcount 0) and abandons the work -- the
    records it may already have appended are harmless, because cell
    records are keyed last-record-wins and seeds derive from the spec,
    never the worker.

    All clocks are caller-supplied unix timestamps (``now``): the table
    stores and compares them but never reads the wall clock itself,
    which keeps expiry logic deterministic under test.
    """

    def __init__(self, db_path: Union[str, Path]):
        self.db_path = Path(db_path)
        self.busy_retries = 0
        self._conn: sqlite3.Connection | None = None

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.db_path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.db_path, timeout=BUSY_TIMEOUT_MS / 1000)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.executescript(_LEASE_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _retry(self, op: Callable[[], Any]) -> Any:
        def _tally() -> None:
            self.busy_retries += 1

        return _busy_retry(op, _tally)

    # -- rows ------------------------------------------------------------
    _COLS = "id, state, worker, cost, deadline, deaths, steals, cells"

    @staticmethod
    def _to_row(raw: tuple) -> dict[str, Any]:
        lease_id, state, worker, cost, deadline, deaths, steals, cells = raw
        try:
            parsed = json.loads(cells)
        except json.JSONDecodeError:
            parsed = []
        return {
            "id": int(lease_id),
            "state": str(state),
            "worker": worker,
            "cost": float(cost),
            "deadline": float(deadline) if deadline is not None else None,
            "deaths": int(deaths),
            "steals": int(steals),
            "cells": parsed if isinstance(parsed, list) else [],
        }

    def _fetch(self, lease_id: int) -> Optional[dict[str, Any]]:
        raw = (
            self._connect()
            .execute(
                f"SELECT {self._COLS} FROM leases WHERE id = ?", (lease_id,)
            )
            .fetchone()
        )
        return self._to_row(raw) if raw is not None else None

    def rows(self) -> list[dict[str, Any]]:
        """Every lease, in plan order (reporting / monitoring)."""
        if not self.db_path.exists():
            return []
        return [
            self._to_row(raw)
            for raw in self._connect().execute(
                f"SELECT {self._COLS} FROM leases ORDER BY id"
            )
        ]

    def counts(self) -> dict[str, int]:
        """Lease count per state (only states present appear)."""
        if not self.db_path.exists():
            return {}
        return {
            str(state): int(n)
            for state, n in self._connect().execute(
                "SELECT state, COUNT(*) FROM leases GROUP BY state"
            )
        }

    def unfinished(self) -> int:
        """Leases still representing outstanding work (open or active)."""
        (n,) = (
            self._connect()
            .execute(
                "SELECT COUNT(*) FROM leases WHERE state IN (?, ?)",
                LEASE_UNFINISHED,
            )
            .fetchone()
        )
        return int(n)

    # -- planning --------------------------------------------------------
    def add_many(self, leases: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert open leases (``{"cells": [...], "cost": float}`` each,
        optional inherited ``deaths``); returns their ids in order."""
        rows = [
            (
                float(lease.get("cost", 0.0)),
                int(lease.get("deaths", 0)),
                _canonical_json(list(lease["cells"])),
            )
            for lease in leases
        ]
        if not rows:
            return []

        def _commit() -> list[int]:
            conn = self._connect()
            ids: list[int] = []
            with conn:
                for cost, deaths, cells in rows:
                    cur = conn.execute(
                        "INSERT INTO leases (state, cost, deaths, cells) "
                        "VALUES ('open', ?, ?, ?)",
                        (cost, deaths, cells),
                    )
                    ids.append(int(cur.lastrowid))
            return ids

        return self._retry(_commit)

    def supersede_incomplete(self) -> list[dict[str, Any]]:
        """Mark every open/active lease ``reclaimed`` and return them.

        The coordinator-restart path: a fresh plan over the store's
        missing cells replaces whatever a dead coordinator left behind,
        and the returned rows let it carry each cell's accumulated
        death count into the new plan (a cell's kill history must
        survive the coordinator that observed it).
        """

        def _commit() -> list[dict[str, Any]]:
            conn = self._connect()
            with conn:
                stale = [
                    self._to_row(raw)
                    for raw in conn.execute(
                        f"SELECT {self._COLS} FROM leases "
                        "WHERE state IN (?, ?)",
                        LEASE_UNFINISHED,
                    )
                ]
                conn.execute(
                    "UPDATE leases SET state = 'reclaimed', deadline = NULL "
                    "WHERE state IN (?, ?)",
                    LEASE_UNFINISHED,
                )
            return stale

        return self._retry(_commit)

    # -- the worker protocol ---------------------------------------------
    def claim(
        self, worker: str, ttl: float, now: float
    ) -> Optional[dict[str, Any]]:
        """Atomically claim the dearest open lease (or ``None``).

        Dearest-first mirrors the planner: expensive leases start the
        moment a worker is free, cheap tail leases backfill.
        """

        def _op() -> Optional[dict[str, Any]]:
            conn = self._connect()
            while True:
                raw = conn.execute(
                    "SELECT id FROM leases WHERE state = 'open' "
                    "ORDER BY cost DESC, id LIMIT 1"
                ).fetchone()
                if raw is None:
                    return None
                lease_id = int(raw[0])
                with conn:
                    cur = conn.execute(
                        "UPDATE leases SET state = 'active', worker = ?, "
                        "deadline = ? WHERE id = ? AND state = 'open'",
                        (worker, now + ttl, lease_id),
                    )
                if cur.rowcount == 1:
                    return self._fetch(lease_id)
                # Raced: another worker won this lease; try the next.

        return self._retry(_op)

    def steal(
        self, worker: str, ttl: float, now: float
    ) -> Optional[dict[str, Any]]:
        """Atomically take over the dearest *expired* active lease.

        The work-stealing half of fault tolerance: a lease whose holder
        stopped renewing (SIGKILLed, hung, partitioned) becomes fair
        game once its deadline passes.  ``deaths`` counts the takeovers
        -- the cells' exposure ledger -- and the expiry re-check inside
        the UPDATE guards against a holder that renewed in between.
        """

        def _op() -> Optional[dict[str, Any]]:
            conn = self._connect()
            while True:
                raw = conn.execute(
                    "SELECT id FROM leases WHERE state = 'active' "
                    "AND deadline IS NOT NULL AND deadline < ? "
                    "ORDER BY cost DESC, id LIMIT 1",
                    (now,),
                ).fetchone()
                if raw is None:
                    return None
                lease_id = int(raw[0])
                with conn:
                    cur = conn.execute(
                        "UPDATE leases SET worker = ?, deadline = ?, "
                        "deaths = deaths + 1, steals = steals + 1 "
                        "WHERE id = ? AND state = 'active' "
                        "AND deadline IS NOT NULL AND deadline < ?",
                        (worker, now + ttl, lease_id, now),
                    )
                if cur.rowcount == 1:
                    return self._fetch(lease_id)

        return self._retry(_op)

    def renew(self, lease_id: int, worker: str, ttl: float, now: float) -> bool:
        """Extend a held lease's deadline; ``False`` means the lease was
        stolen or finished elsewhere and the worker must abandon it."""

        def _op() -> bool:
            conn = self._connect()
            with conn:
                cur = conn.execute(
                    "UPDATE leases SET deadline = ? "
                    "WHERE id = ? AND worker = ? AND state = 'active'",
                    (now + ttl, lease_id, worker),
                )
            return cur.rowcount == 1

        return self._retry(_op)

    def finish(
        self, lease_id: int, worker: Optional[str], state: str = "done"
    ) -> bool:
        """Move an active lease to a terminal state (holder-checked when
        ``worker`` is given)."""
        if state not in LEASE_STATES or state in LEASE_UNFINISHED:
            raise ValueError(f"not a terminal lease state: {state!r}")

        def _op() -> bool:
            conn = self._connect()
            with conn:
                if worker is None:
                    cur = conn.execute(
                        "UPDATE leases SET state = ?, deadline = NULL "
                        "WHERE id = ? AND state = 'active'",
                        (state, lease_id),
                    )
                else:
                    cur = conn.execute(
                        "UPDATE leases SET state = ?, deadline = NULL "
                        "WHERE id = ? AND worker = ? AND state = 'active'",
                        (state, lease_id, worker),
                    )
            return cur.rowcount == 1

        return self._retry(_op)

    def split(
        self,
        lease_id: int,
        worker: str,
        children: Iterable[Mapping[str, Any]],
    ) -> list[int]:
        """Replace a held multi-cell lease with open single-cell children.

        Culprit isolation after a reclaim (the pool-death resurrection
        idiom, lifted to leases): a stolen lease's cells re-enter the
        queue one per lease, so whichever cell kills workers is cornered
        alone while its innocent chunk-mates complete normally.
        """
        rows = [
            (
                float(child.get("cost", 0.0)),
                int(child.get("deaths", 0)),
                _canonical_json(list(child["cells"])),
            )
            for child in children
        ]

        def _commit() -> list[int]:
            conn = self._connect()
            ids: list[int] = []
            with conn:
                cur = conn.execute(
                    "UPDATE leases SET state = 'split', deadline = NULL "
                    "WHERE id = ? AND worker = ? AND state = 'active'",
                    (lease_id, worker),
                )
                if cur.rowcount != 1:
                    return []  # lost the lease mid-split: abandon
                for cost, deaths, cells in rows:
                    cur = conn.execute(
                        "INSERT INTO leases (state, cost, deaths, cells) "
                        "VALUES ('open', ?, ?, ?)",
                        (cost, deaths, cells),
                    )
                    ids.append(int(cur.lastrowid))
            return ids

        return self._retry(_commit)

    # -- heartbeats ------------------------------------------------------
    def beat(
        self,
        worker: str,
        now: float,
        lease_id: Optional[int] = None,
        pid: Optional[int] = None,
    ) -> None:
        """Record a worker's liveness (idle polls beat too, so a hung
        *cell* is distinguishable from a dead *process*)."""

        def _commit() -> None:
            conn = self._connect()
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO heartbeats "
                    "(worker, beat, lease, pid) VALUES (?, ?, ?, ?)",
                    (worker, now, lease_id, pid),
                )

        self._retry(_commit)

    def heartbeat_rows(self) -> list[dict[str, Any]]:
        if not self.db_path.exists():
            return []
        return [
            {
                "worker": str(worker),
                "beat": float(beat),
                "lease": int(lease) if lease is not None else None,
                "pid": int(pid) if pid is not None else None,
            }
            for worker, beat, lease, pid in self._connect().execute(
                "SELECT worker, beat, lease, pid FROM heartbeats "
                "ORDER BY worker"
            )
        ]
