"""The analytic-vs-measured validation harness (soundness of the repo)."""

import pytest

from repro.experiments.validation import (
    DEFAULT_MIXES,
    ValidationCell,
    validate_bounds,
)
from repro.workloads.profiles import VIDEO_MIX
from tests.tolerances import TIGHTNESS_FLOOR


@pytest.fixture(scope="module")
def cells():
    # Reduced grid for CI; the bench runs the full one.
    return validate_bounds(
        mixes=(VIDEO_MIX,), utilizations=(0.6, 0.9), horizon=6.0, dt=1e-3
    )


class TestSoundness:
    def test_every_cell_is_sound(self, cells):
        bad = [c for c in cells if not c.sound]
        assert bad == [], [
            (c.mix_name, c.mode, c.utilization, c.tightness) for c in bad
        ]

    def test_grid_covers_both_modes(self, cells):
        modes = {c.mode for c in cells}
        assert modes == {"sigma-rho", "sigma-rho-lambda"}

    def test_tightness_meaningful(self, cells):
        """Synchronised streams should realise a decent fraction of the
        worst case somewhere in the grid (the measurement is not
        vacuously loose)."""
        assert max(c.tightness for c in cells) > TIGHTNESS_FLOOR


class TestCell:
    def test_tightness_and_soundness(self):
        c = ValidationCell("m", "sigma-rho", 0.5, measured=0.5, bound=1.0)
        assert c.tightness == pytest.approx(0.5)
        assert c.sound
        bad = ValidationCell("m", "sigma-rho", 0.5, measured=1.2, bound=1.0)
        assert not bad.sound

    def test_zero_bound(self):
        c = ValidationCell("m", "sigma-rho", 0.5, measured=0.0, bound=0.0)
        assert c.tightness == 0.0


def test_default_mixes_are_the_papers():
    names = {m.name for m in DEFAULT_MIXES}
    assert names == {"3xaudio", "3xvideo", "1video+2audio"}
