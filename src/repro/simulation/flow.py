"""Traffic sources and packet traces.

The paper's evaluation feeds two kinds of real-time streams into the
network: **64 kbps audio** and **1.5 Mbps MPEG-1 video**, both variable
bit rate ("the audio and video streams in the simulation are all
variable bit rate (VBR) flows", Section VI).  This module provides the
corresponding generators plus generic ones (CBR, on/off, Poisson).

Sources generate a :class:`PacketTrace` -- plain NumPy arrays of
emission times and sizes -- which both the discrete-event and the fluid
backend consume, so the two backends can be compared on *identical*
input.  Sizes are in capacity-seconds (``C = 1`` convention); use
:meth:`TrafficSource.scaled_to` to retarget a source at a given
utilisation, which is how the experiment harness sweeps the x-axis of
Figures 4 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.calculus.envelope import ArrivalEnvelope
from repro.utils.piecewise import PiecewiseLinearCurve
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "PacketTrace",
    "trace_from_arrays",
    "TrafficSource",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "AudioSource",
    "VBRVideoSource",
]


@dataclass(frozen=True)
class PacketTrace:
    """A realised packet stream: emission times and sizes (NumPy arrays)."""

    times: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=np.float64)
        s = np.asarray(self.sizes, dtype=np.float64)
        if t.ndim != 1 or s.ndim != 1 or t.shape != s.shape:
            raise ValueError("times and sizes must be 1-D arrays of equal length")
        if t.size and np.any(np.diff(t) < 0):
            raise ValueError("packet times must be non-decreasing")
        if np.any(s <= 0):
            raise ValueError("packet sizes must be > 0")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "sizes", s)

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def total(self) -> float:
        """Total data (capacity-seconds) in the trace."""
        return float(self.sizes.sum())

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0]) if len(self) else 0.0

    def mean_rate(self) -> float:
        """Average rate over the trace duration (0 for degenerate traces)."""
        d = self.duration
        return self.total / d if d > 0 else 0.0

    def to_curve(self) -> PiecewiseLinearCurve:
        """Cumulative arrival staircase of the trace."""
        return PiecewiseLinearCurve.from_packet_arrivals(self.times, self.sizes)

    def empirical_sigma(self, rho: float) -> float:
        """Tightest burst parameter making the trace (sigma, rho)-conformant."""
        return self.to_curve().min_sigma(rho)

    def binned_arrivals(self, dt: float, horizon: float) -> np.ndarray:
        """Rasterise the trace onto a uniform grid: data per bin.

        Bin ``i`` covers ``[i dt, (i+1) dt)``.  This is the fluid
        backend's input; a single vectorised ``np.add.at``.
        """
        check_positive(dt, "dt")
        check_positive(horizon, "horizon")
        n_bins = int(np.ceil(horizon / dt))
        bins = np.zeros(n_bins, dtype=np.float64)
        if len(self) == 0:
            return bins
        idx = np.floor(self.times / dt).astype(np.int64)
        keep = idx < n_bins
        np.add.at(bins, idx[keep], self.sizes[keep])
        return bins

    def restrict(self, horizon: float) -> "PacketTrace":
        """Keep only packets emitted strictly before ``horizon``."""
        keep = self.times < horizon
        return PacketTrace(self.times[keep], self.sizes[keep])

    def shifted(self, offset: float) -> "PacketTrace":
        """The same packet stream started ``offset`` seconds later.

        Time translation leaves the (sigma, rho) description unchanged
        (burstiness is a difference of the cumulative curve), which is
        what lets adversarial scenario schedules skew per-flow start
        times without invalidating the analytic bounds.
        """
        check_non_negative(offset, "offset")
        return PacketTrace(self.times + offset, self.sizes)

    def fragment(self, mtu: float) -> "PacketTrace":
        """Split packets larger than ``mtu`` into MTU-sized fragments.

        Application frames (a 60 kbit MPEG I-frame, say) are transmitted
        as several link-layer packets; the DES regulators are
        non-preemptive per packet, so fragmenting keeps their deviation
        from the fluid model bounded by one MTU serialisation time.
        Fragments share the original emission time (cumulative curves,
        and hence all delay measures, are unchanged).
        """
        check_positive(mtu, "mtu")
        if len(self) == 0 or float(self.sizes.max()) <= mtu:
            return self
        counts = np.ceil(self.sizes / mtu).astype(np.int64)
        times = np.repeat(self.times, counts)
        sizes = np.full(times.shape, mtu, dtype=np.float64)
        # The last fragment of each packet carries the remainder.
        last_idx = np.cumsum(counts) - 1
        remainders = self.sizes - (counts - 1) * mtu
        sizes[last_idx] = remainders
        return PacketTrace(times, sizes)


def trace_from_arrays(times: np.ndarray, sizes: np.ndarray) -> PacketTrace:
    """Construct a :class:`PacketTrace` from kernel-produced arrays.

    Skips ``__post_init__`` validation: the batch realisation kernels
    produce float64 arrays that are sorted and positive by construction
    (they restate the scalar generators float op for float op), so the
    O(n) re-validation per lane is pure overhead on the campaign hot
    path.  Only for arrays a generator kernel just built -- anything
    that crosses an API boundary goes through ``PacketTrace(...)``.
    """
    tr = object.__new__(PacketTrace)
    object.__setattr__(tr, "times", times)
    object.__setattr__(tr, "sizes", sizes)
    return tr


def _bursts_arange(
    starts: np.ndarray, stops: np.ndarray, step: float
) -> np.ndarray:
    """Concatenated ``np.arange(start, stop, step)`` over pair arrays.

    Replicates numpy's float-arange semantics bit for bit so the
    vectorised on/off generator matches the per-burst loop it replaced:
    the element count is ``ceil((stop - start) / step)`` in double
    precision, the first two elements are ``start`` and ``start + step``
    exactly, and elements from index 2 on extrapolate as
    ``start + i * delta`` with ``delta = (start + step) - start`` --
    the buffer-fill rule of ``np.arange``, whose ``delta`` differs from
    ``step`` in the last bit whenever ``start + step`` rounds.
    """
    counts_f = np.ceil((stops - starts) / step)
    counts = np.where(counts_f > 0, counts_f, 0.0).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.float64)
    rep_start = np.repeat(starts, counts)
    bases = np.concatenate(([0], np.cumsum(counts)[:-1]))
    j = np.arange(total, dtype=np.int64) - np.repeat(bases, counts)
    delta = (starts + step) - starts
    times = rep_start + j.astype(np.float64) * np.repeat(delta, counts)
    # arange writes the first two elements directly; only i >= 2 use
    # the extrapolation rule, so pin j == 1 to start + step (j == 0 is
    # exact already: start + 0.0 * delta == start).
    second = j == 1
    times[second] = rep_start[second] + step
    return times


class TrafficSource:
    """Base class of all traffic generators.

    Subclasses implement :meth:`generate`; the base class provides
    rate-retargeting (:meth:`scaled_to`) and envelope extraction.

    Parameters
    ----------
    rate:
        Nominal sustained rate (utilisation of the ``C = 1`` link).
    """

    def __init__(self, rate: float):
        self.rate = check_positive(rate, "rate")

    def generate(self, horizon: float, rng: RandomSource = None) -> PacketTrace:
        """Produce the packet emissions in ``[0, horizon)``."""
        raise NotImplementedError

    def scaled_to(self, rate: float) -> "TrafficSource":
        """A copy of this source retargeted to a new sustained rate.

        The default implementation rescales packet sizes via a wrapper;
        subclasses with a natural rate parameter override it.
        """
        return _ScaledSource(self, rate)

    def envelope(self, horizon: float, rng: RandomSource = None) -> ArrivalEnvelope:
        """Empirical (sigma, rho) envelope of one realisation.

        ``rho`` is the nominal rate; ``sigma`` is measured from a
        generated trace.  The regulators are configured from this, just
        as a deployment would profile its media streams.
        """
        trace = self.generate(horizon, rng)
        return ArrivalEnvelope(max(trace.empirical_sigma(self.rate), 1e-9), self.rate)


class _ScaledSource(TrafficSource):
    """Wrap another source, scaling its packet sizes to hit a target rate."""

    def __init__(self, inner: TrafficSource, rate: float):
        super().__init__(rate)
        self._inner = inner

    def generate(self, horizon: float, rng: RandomSource = None) -> PacketTrace:
        trace = self._inner.generate(horizon, rng)
        factor = self.rate / self._inner.rate
        return PacketTrace(trace.times, trace.sizes * factor)


class CBRSource(TrafficSource):
    """Constant bit rate source: one packet of fixed size every interval.

    Parameters
    ----------
    rate:
        Sustained rate (utilisation).
    packet_size:
        Size of each packet in capacity-seconds.
    phase:
        Offset of the first packet within the emission interval.
    """

    def __init__(self, rate: float, packet_size: float, phase: float = 0.0):
        super().__init__(rate)
        self.packet_size = check_positive(packet_size, "packet_size")
        self.phase = check_non_negative(phase, "phase")

    def time_grid(self, horizon: float) -> np.ndarray:
        """The deterministic emission grid (no RNG consumed).

        Array entry point for the batch realiser: the grid depends only
        on ``(phase, interval, horizon)``, so cells sharing those share
        one array instead of re-running ``arange`` per cell.
        """
        interval = self.packet_size / self.rate
        times = np.arange(self.phase, horizon, interval, dtype=np.float64)
        return times[times < horizon]  # guard float edge at the stop value

    def trace_on_grid(self, times: np.ndarray) -> PacketTrace:
        """The trace over a precomputed :meth:`time_grid` array."""
        return trace_from_arrays(times, np.full(times.shape, self.packet_size))

    def generate(self, horizon: float, rng: RandomSource = None) -> PacketTrace:
        check_positive(horizon, "horizon")
        return self.trace_on_grid(self.time_grid(horizon))

    def scaled_to(self, rate: float) -> "CBRSource":
        return CBRSource(rate, self.packet_size * rate / self.rate, self.phase)


class PoissonSource(TrafficSource):
    """Poisson packet arrivals with exponential spacing, fixed size."""

    def __init__(self, rate: float, packet_size: float):
        super().__init__(rate)
        self.packet_size = check_positive(packet_size, "packet_size")

    def generate(self, horizon: float, rng: RandomSource = None) -> PacketTrace:
        check_positive(horizon, "horizon")
        gen = ensure_rng(rng)
        mean_gap = self.packet_size / self.rate
        # Draw enough gaps to cover the horizon with margin, then trim.
        n_est = max(int(horizon / mean_gap * 1.5) + 16, 16)
        times = np.cumsum(gen.exponential(mean_gap, size=n_est))
        while times.size and times[-1] < horizon:
            extra = np.cumsum(gen.exponential(mean_gap, size=n_est)) + times[-1]
            times = np.concatenate([times, extra])
        times = times[times < horizon]
        return PacketTrace(times, np.full(times.shape, self.packet_size))

    def scaled_to(self, rate: float) -> "PoissonSource":
        return PoissonSource(rate, self.packet_size * rate / self.rate)


class OnOffSource(TrafficSource):
    """Exponential on/off source emitting CBR bursts at a peak rate.

    During *on* periods packets stream at ``peak_rate``; *off* periods
    are silent.  The sustained rate is
    ``peak_rate * mean_on / (mean_on + mean_off)``.
    """

    def __init__(
        self,
        peak_rate: float,
        mean_on: float,
        mean_off: float,
        packet_size: float,
    ):
        check_positive(peak_rate, "peak_rate")
        check_positive(mean_on, "mean_on")
        check_positive(mean_off, "mean_off")
        rate = peak_rate * mean_on / (mean_on + mean_off)
        super().__init__(rate)
        self.peak_rate = peak_rate
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.packet_size = check_positive(packet_size, "packet_size")

    def generate(self, horizon: float, rng: RandomSource = None) -> PacketTrace:
        """Vectorised on/off realisation, bit-identical to the scalar loop.

        The replaced per-period Python loop drew ``exponential(mean_on)``
        / ``exponential(mean_off)`` alternately and ran one ``arange``
        per burst.  This pre-draws the same alternating stream as one
        ``standard_exponential`` block (``Generator.exponential(scale)``
        is ``scale * standard_exponential()``, so the even/odd split
        times the means reproduces every draw exactly), rebuilds the
        period starts with a cumsum (the same left-to-right float
        accumulation as ``t += on + off``) and synthesises all bursts in
        one :func:`_bursts_arange` pass.  The trace is bit-identical;
        the generator may be advanced *further* than the loop consumed
        (whole pre-drawn blocks), which is invisible to the pipeline --
        every call site seeds a fresh per-trace generator.
        """
        check_positive(horizon, "horizon")
        gen = ensure_rng(rng)
        gap = self.packet_size / self.peak_rate
        mean_period = self.mean_on + self.mean_off
        n_est = max(int(horizon / mean_period * 1.5) + 16, 16)
        raw = gen.standard_exponential(2 * n_est)
        on = raw[0::2] * self.mean_on
        off = raw[1::2] * self.mean_off
        cum = np.cumsum(on + off)
        while cum[-1] < horizon:
            raw = gen.standard_exponential(2 * n_est)
            on = np.concatenate([on, raw[0::2] * self.mean_on])
            off = np.concatenate([off, raw[1::2] * self.mean_off])
            cum = np.cumsum(on + off)
        # Period m is the first whose cumulative end reaches the
        # horizon: the loop ran iterations 0..m (starts all < horizon).
        m = int(np.searchsorted(cum, horizon, side="left"))
        starts = np.concatenate(([0.0], cum[:m]))
        stops = np.minimum(starts + on[: m + 1], horizon)
        times = _bursts_arange(starts, stops, gap)
        return trace_from_arrays(times, np.full(times.shape, self.packet_size))

    def scaled_to(self, rate: float) -> "OnOffSource":
        factor = rate / self.rate
        return OnOffSource(
            self.peak_rate * factor, self.mean_on, self.mean_off,
            self.packet_size * factor,
        )


class AudioSource(TrafficSource):
    """A 64 kbps-style packet-audio stream (paper's audio workload).

    Modelled as 20 ms frames with mild lognormal size variation (VBR
    codecs such as GSM/AMR vary frame sizes; the paper stresses that its
    streams are VBR).  ``rate`` is the sustained utilisation after
    normalising the link capacity; frame period stays fixed while sizes
    scale.

    Parameters
    ----------
    rate:
        Sustained utilisation of the ``C = 1`` link.
    frame_interval:
        Seconds between audio frames (20 ms default).
    variability:
        Standard deviation of the lognormal size multiplier (0 gives
        CBR frames).
    """

    def __init__(
        self,
        rate: float,
        frame_interval: float = 0.020,
        variability: float = 0.15,
    ):
        super().__init__(rate)
        self.frame_interval = check_positive(frame_interval, "frame_interval")
        self.variability = check_non_negative(variability, "variability")

    def time_grid(self, horizon: float) -> np.ndarray:
        """The deterministic frame grid (no RNG consumed).

        Array entry point for the batch realiser: one shared array per
        ``(frame_interval, horizon)`` serves every audio lane; only the
        size draws stay per-lane.
        """
        times = np.arange(0.0, horizon, self.frame_interval, dtype=np.float64)
        return times[times < horizon]  # guard float edge at the stop value

    def trace_on_grid(
        self, times: np.ndarray, rng: RandomSource = None
    ) -> PacketTrace:
        """The trace over a precomputed :meth:`time_grid` array.

        Consumes exactly the RNG draws of :meth:`generate` (the frame
        grid itself is deterministic).
        """
        gen = ensure_rng(rng)
        mean_size = self.rate * self.frame_interval
        if self.variability > 0:
            # Lognormal with unit mean so the sustained rate is preserved.
            sig = self.variability
            mult = gen.lognormal(mean=-0.5 * sig * sig, sigma=sig, size=times.shape)
        else:
            mult = np.ones(times.shape)
        return trace_from_arrays(times, mean_size * mult)

    def generate(self, horizon: float, rng: RandomSource = None) -> PacketTrace:
        check_positive(horizon, "horizon")
        return self.trace_on_grid(self.time_grid(horizon), rng)

    def scaled_to(self, rate: float) -> "AudioSource":
        return AudioSource(rate, self.frame_interval, self.variability)


class VBRVideoSource(TrafficSource):
    """An MPEG-1-style VBR video stream (paper's 1.5 Mbps workload).

    Frames are emitted at ``fps`` with a repeating GoP pattern
    ``IBBPBBPBBPBB`` (12 frames).  Frame sizes follow the classic MPEG
    ratios (I : P : B close to 5 : 3 : 1) modulated by lognormal noise
    and a slow scene-level AR(1) process, producing the bursty traffic
    whose "throughput fluctuation" the paper blames for the simulated
    threshold landing slightly below theory.

    The sustained rate is calibrated so one realisation averages
    ``rate`` (the GoP mix is normalised to unit mean).
    """

    #: MPEG GoP pattern used by the generator.
    GOP_PATTERN = "IBBPBBPBBPBB"
    #: Relative frame sizes (will be normalised to unit mean over a GoP).
    FRAME_WEIGHTS = {"I": 5.0, "P": 3.0, "B": 1.0}

    def __init__(
        self,
        rate: float,
        fps: float = 25.0,
        variability: float = 0.2,
        scene_persistence: float = 0.95,
        scene_strength: float = 0.15,
    ):
        super().__init__(rate)
        self.fps = check_positive(fps, "fps")
        self.variability = check_non_negative(variability, "variability")
        self.scene_persistence = check_non_negative(scene_persistence, "scene_persistence")
        if self.scene_persistence >= 1.0:
            raise ValueError("scene_persistence must be < 1")
        self.scene_strength = check_non_negative(scene_strength, "scene_strength")

    def _gop_weights(self) -> np.ndarray:
        w = np.array([self.FRAME_WEIGHTS[c] for c in self.GOP_PATTERN])
        return w / w.mean()

    def generate(self, horizon: float, rng: RandomSource = None) -> PacketTrace:
        check_positive(horizon, "horizon")
        gen = ensure_rng(rng)
        frame_interval = 1.0 / self.fps
        times = np.arange(0.0, horizon, frame_interval, dtype=np.float64)
        times = times[times < horizon]  # guard float edge at the stop value
        n = times.shape[0]
        weights = np.tile(self._gop_weights(), n // len(self.GOP_PATTERN) + 1)[:n]
        mean_size = self.rate * frame_interval
        sizes = mean_size * weights
        if self.variability > 0:
            sig = self.variability
            sizes = sizes * gen.lognormal(-0.5 * sig * sig, sig, size=n)
        if self.scene_strength > 0:
            # AR(1) scene process in log space, normalised to unit mean.
            phi = self.scene_persistence
            innov = gen.normal(0.0, self.scene_strength * np.sqrt(1 - phi * phi), n)
            scene = np.empty(n)
            acc = 0.0
            for i in range(n):  # short loop: one step per video frame
                acc = phi * acc + innov[i]
                scene[i] = acc
            scene_mult = np.exp(scene)
            sizes = sizes * (scene_mult / scene_mult.mean())
        return PacketTrace(times, sizes)

    def scaled_to(self, rate: float) -> "VBRVideoSource":
        return VBRVideoSource(
            rate, self.fps, self.variability,
            self.scene_persistence, self.scene_strength,
        )
