"""Seeded random scenario generation.

:func:`generate_scenarios` draws an arbitrary-size scenario matrix from
a single seed.  Each scenario's *configuration* is a stable function of
``(seed, index)`` -- child streams come from
:func:`repro.utils.rng.spawn_rngs`, so growing the matrix never
perturbs earlier scenarios (the same contract the experiment sweeps
rely on).  Each scenario's *realisation seed* is then derived solely
from ``(campaign seed, spec fingerprint)`` via
:func:`repro.utils.rng.derive_seed` over
:func:`repro.runtime.store.spec_fingerprint` -- a content hash of the
cell, not of any execution detail -- so serial and parallel campaign
runs (any worker count, any chunking) realise bit-identical traces.

The draw mixes the paper's configuration axes:

* population size ``K`` (2 up to ``max_k`` flows per host; campaign
  configs push past the paper's 6 into the K > 6 regime);
* workload family -- homogeneous, heterogeneous, bursty (on/off
  dominated), or adversarial staggered-start (synchronised streams with
  per-flow start skew);
* regulator mode, including the adaptive controller, plus a random
  vacation stagger phase;
* aggregate utilisation, with a dedicated slice inside the Theorem 5
  heavy-load band ``rho_bar in [1/K - 1/K^(n+1), 1/K)`` where the
  (sigma, rho, lambda) regulator's ``O(K^n)`` advantage lives;
* topology -- single host, critical-path chain (2 up to ``max_hops``
  hops), or DSCT tree over a transit-stub underlay;
* backend -- mostly the vectorised fluid engine, with a DES slice for
  packet-exact coverage.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.delay_bounds import theorem5_band
from repro.runtime.store import spec_fingerprint
from repro.scenarios.spec import Scenario
from repro.utils.rng import derive_seed, spawn_rngs
from repro.utils.validation import check_positive_int
from repro.workloads.profiles import MIX_KINDS

__all__ = ["generate_scenarios"]

#: Workload families the generator draws from.
FAMILIES = ("homogeneous", "heterogeneous", "bursty", "staggered")

#: Hard cap on the aggregate utilisation of generated scenarios: keeps
#: every cell stable (finite bounds) and drain horizons short.
MAX_UTILIZATION = 0.96


def _draw_kinds(rng: np.random.Generator, family: str, k: int) -> tuple[str, ...]:
    if family == "homogeneous" or family == "staggered":
        return (str(rng.choice(MIX_KINDS)),) * k
    if family == "bursty":
        # On/off dominated, with occasional VBR video companions.
        return tuple(
            str(rng.choice(("onoff", "onoff", "video"))) for _ in range(k)
        )
    # Heterogeneous: at least two distinct kinds.
    kinds = [str(rng.choice(MIX_KINDS)) for _ in range(k)]
    if len(set(kinds)) == 1:
        others = [kd for kd in MIX_KINDS if kd != kinds[0]]
        kinds[int(rng.integers(k))] = str(rng.choice(others))
    return tuple(kinds)


def _draw_utilization(rng: np.random.Generator, k: int) -> tuple[float, str]:
    """Aggregate utilisation plus a tag describing the load regime."""
    if rng.random() < 0.2:
        # The Theorem 5/6 heavy-load band: per-flow rho_bar just below
        # 1/K, where the new regulator's O(K^n) advantage concentrates.
        # Only depths whose whole band fits under the stability cap are
        # admissible -- clipping into the band from above would leave a
        # "heavy-band" tag on a cell that sits outside the band.
        depths = [
            n for n in (1, 2)
            if k * theorem5_band(k, n)[0] <= MAX_UTILIZATION
        ]
        if depths:
            n = int(rng.choice(depths))
            lo, hi = theorem5_band(k, n)
            rho_bar = lo + float(rng.random()) * (hi - lo)
            u = k * rho_bar
            if u <= MAX_UTILIZATION:
                return u, "heavy-band"
    return 0.3 + float(rng.random()) * (MAX_UTILIZATION - 0.3), "broad"


def generate_scenarios(
    count: int,
    seed: int = 0,
    *,
    max_k: int = 6,
    max_hops: int = 3,
    horizon: float = 2.0,
    dt: float = 2e-3,
    perf_budget: float = 0.0,
) -> list[Scenario]:
    """Draw ``count`` scenarios deterministically from ``seed``.

    ``max_k``/``max_hops`` cap the drawn population size and chain
    depth (campaign configs raise them past the paper's ranges);
    ``perf_budget`` stamps every cell with a wall-clock budget verdict
    (0 disables).  Every cell's realisation seed is
    ``derive_seed(seed, "cell", spec_fingerprint(cell))`` -- a pure
    function of the campaign seed and the cell's content, independent
    of execution order, worker count and chunking.
    """
    check_positive_int(count, "count")
    if max_k < 2:
        raise ValueError(f"max_k must be >= 2, got {max_k}")
    if max_hops < 2:
        raise ValueError(f"max_hops must be >= 2, got {max_hops}")
    rngs = spawn_rngs(derive_seed(seed, "scenario-matrix"), count)
    scenarios: list[Scenario] = []
    for i, rng in enumerate(rngs):
        k = int(rng.integers(2, max_k + 1))
        family = str(rng.choice(FAMILIES))
        kinds = _draw_kinds(rng, family, k)
        u, load_tag = _draw_utilization(rng, k)
        mode = str(
            rng.choice(
                ("sigma-rho", "sigma-rho-lambda", "adaptive"),
                p=(0.35, 0.45, 0.2),
            )
        )
        topo_draw = rng.random()
        if topo_draw < 0.70:
            topology, hops, members = "host", 1, 0
        elif topo_draw < 0.90:
            topology, hops, members = "chain", int(rng.integers(2, max_hops + 1)), 0
        else:
            topology, hops, members = "tree", 1, int(rng.integers(12, 25))
        backend = "des" if (topology != "tree" and rng.random() < 0.1) else "fluid"
        start_offsets: tuple[float, ...] = ()
        if family == "staggered":
            # Adversarial per-flow start skew within half a horizon.
            start_offsets = tuple(
                float(x) for x in rng.uniform(0.0, 0.4 * horizon, size=k)
            )
            start_offsets = (0.0,) + start_offsets[1:]  # tagged flow leads
        spec = Scenario(
            name=f"gen-{seed}-{i:04d}-{family}-{topology}",
            kinds=kinds,
            utilization=round(u, 6),
            mode=mode,
            topology=topology,
            hops=hops,
            tree_members=members,
            backend=backend,
            horizon=horizon,
            dt=dt,
            seed=0,  # placeholder: replaced by the content-derived seed
            shared=bool(rng.random() < 0.7),
            stagger_phase=float(rng.random()),
            start_offsets=start_offsets,
            propagation=float(rng.choice((0.0, 0.002, 0.01)))
            if topology == "chain"
            else 0.0,
            perf_budget=perf_budget,
            tags=(family, topology, backend, load_tag),
        )
        scenarios.append(
            replace(spec, seed=derive_seed(seed, "cell", spec_fingerprint(spec)))
        )
    return scenarios
