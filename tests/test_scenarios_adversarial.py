"""Adversarial schedule tests: deterministic worst-case delays.

Modeled on the adversarial-delay testing idiom (skew selected flows /
phases heavily, then assert the protocol invariant still holds): here
the invariant is Theorem 1/2 soundness, and the adversary controls

* **per-flow start skew** -- synchronised streams released with heavy
  per-pair offsets, so cross-traffic bursts collide with the tagged
  flow at staggered instants;
* **regulator phase** -- the vacation windows shifted through the whole
  cycle, including the worst phase where a burst arrives just as its
  window closes and must sit out a full vacation.

The analytic bounds claim to dominate *any* admissible schedule, so no
skew or phase may push a measured delay past them.
"""

import numpy as np
import pytest

from repro.calculus.envelope import ArrivalEnvelope
from repro.core.delay_bounds import (
    remark1_wdb_heterogeneous,
    theorem1_wdb_heterogeneous,
)
from repro.scenarios import Scenario, run_scenario
from repro.simulation.flow import VBRVideoSource
from repro.simulation.fluid import simulate_fluid_host
from repro.simulation.host_sim import simulate_regulated_host
from tests.tolerances import SOUND_ABS_DES, SOUND_ABS_FLUID, sound_limit


@pytest.fixture(scope="module")
def video_world():
    """Three synchronised VBR video flows near the heavy-load regime."""
    k, u = 3, 0.85
    rho = u / k
    stream = VBRVideoSource(rho).generate(3.0, rng=11).fragment(0.002)
    sigma = max(stream.empirical_sigma(rho), 1e-6)
    envs = [ArrivalEnvelope(sigma, rho)] * k
    return stream, envs, sigma, rho


class TestStartSkew:
    """Per-pair delay skew: flow j starts ``offsets[j]`` late."""

    @pytest.mark.parametrize(
        "offsets",
        [
            (0.0, 0.02, 0.06),   # light skew
            (0.0, 0.25, 0.50),   # heavy skew across half the horizon
            (0.4, 0.0, 0.4),     # tagged flow late, cross flows aligned
        ],
        ids=["light", "heavy", "tagged-late"],
    )
    @pytest.mark.parametrize("mode", ["sigma-rho", "sigma-rho-lambda"])
    def test_bounds_dominate_any_start_skew(self, video_world, mode, offsets):
        stream, envs, sigma, rho = video_world
        traces = [stream.shifted(off) for off in offsets]
        res = simulate_fluid_host(
            traces, envs, mode=mode, discipline="adversarial", dt=1e-3
        )
        sigmas, rhos = [sigma] * 3, [rho] * 3
        bound = (
            remark1_wdb_heterogeneous(sigmas, rhos)
            if mode == "sigma-rho"
            else theorem1_wdb_heterogeneous(sigmas, rhos)
        )
        assert res.worst_case_delay <= sound_limit(
            bound, abs_tol=SOUND_ABS_FLUID
        ), f"skew {offsets} broke the {mode} bound"

    def test_scenario_spec_start_offsets_end_to_end(self):
        """The declarative path: skew through a Scenario, both backends."""
        for backend in ("fluid", "des"):
            outcome = run_scenario(
                Scenario(
                    name=f"adv-skew-{backend}",
                    kinds=("onoff",) * 4,
                    utilization=0.8,
                    mode="sigma-rho-lambda",
                    backend=backend,
                    start_offsets=(0.0, 0.07, 0.19, 0.31),
                    seed=77,
                )
            )
            assert outcome.sound, f"{backend}: {outcome.measured} > {outcome.bound}"


class TestWorstPhaseStagger:
    """The vacation schedule swept through the whole cycle."""

    PHASES = (0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875)

    def test_fluid_bound_dominates_every_phase(self, video_world):
        stream, envs, sigma, rho = video_world
        bound = theorem1_wdb_heterogeneous([sigma] * 3, [rho] * 3)
        measured = []
        for phase in self.PHASES:
            res = simulate_fluid_host(
                [stream] * 3, envs, mode="sigma-rho-lambda",
                discipline="adversarial", stagger_phase=phase, dt=1e-3,
            )
            measured.append(res.worst_case_delay)
            assert res.worst_case_delay <= sound_limit(
                bound, abs_tol=SOUND_ABS_FLUID
            ), f"phase {phase} broke Theorem 1"
        # The phase genuinely moves the measurement (the sweep is not a
        # no-op) while the bound holds across all of it.
        assert max(measured) > min(measured) + 1e-6

    def test_des_bound_dominates_worst_phases(self, video_world):
        stream, envs, sigma, rho = video_world
        bound = theorem1_wdb_heterogeneous([sigma] * 3, [rho] * 3)
        for phase in (0.25, 0.5, 0.75):
            res = simulate_regulated_host(
                [stream] * 3, envs, mode="sigma-rho-lambda",
                discipline="priority", stagger_phase=phase,
            )
            assert res.worst_case_delay <= sound_limit(
                bound, abs_tol=SOUND_ABS_DES
            ), f"DES phase {phase} broke Theorem 1"

    def test_phase_is_a_pure_time_shift_for_lone_flows(self):
        """One flow, phase-shifted regulator: output delayed, never
        reordered -- the worst delay grows by at most one period."""
        rho = 0.4
        times = np.arange(0.0, 1.0, 0.01)
        from repro.simulation.flow import PacketTrace

        trace = PacketTrace(times, np.full(times.shape, rho * 0.01))
        env = ArrivalEnvelope(0.02, rho)
        base = simulate_fluid_host(
            [trace], [env], mode="sigma-rho-lambda",
            discipline="adversarial", stagger_phase=0.0, dt=1e-3,
        )
        shifted = simulate_fluid_host(
            [trace], [env], mode="sigma-rho-lambda",
            discipline="adversarial", stagger_phase=0.5, dt=1e-3,
        )
        period = 0.02 / (1.0 - rho) + 0.02 / rho  # W + V at minimum lambda
        assert shifted.worst_case_delay <= base.worst_case_delay + period + 1e-6
