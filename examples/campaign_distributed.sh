#!/bin/sh
# Distributed thousand-cell campaign: a lease-based coordinator spawns
# local workers that claim, renew, and steal cost-sized fingerprint
# leases from one shared store -- then an extra late-joining worker
# attaches by hand, exactly as a second host would.
#
# Unlike static sharding (examples/campaign_sharded.sh), the lease
# queue balances work dynamically: a slow, dead, or hung worker's
# lease lapses and a live peer steals it.  Every cell's RNG derives
# from (campaign seed, spec fingerprint), so no matter which worker
# runs a cell -- or how many times it is re-run after a steal -- the
# store converges to records and a summary.json byte-identical to a
# serial `scenarios run` over the same matrix.
#
# Usage: examples/campaign_distributed.sh [STORE_DIR] [BASELINE_STORE]
set -e

STORE="sqlite:${1:-campaigns/distributed}"
BASELINE="${2:-}"
CAMPAIGN="$(dirname "$0")/campaign_thousand.json"

# The coordinator: plans leases over the missing cells, spawns two
# supervised workers, respawns dead ones, reaps hung ones, and exits
# once every cell has a record.  Keep --lease-ttl comfortably above
# the slowest cell's full attempt budget; renewals happen between
# cells only.
python -m repro.experiments.cli scenarios run \
    --campaign "$CAMPAIGN" \
    --store "$STORE" --resume \
    --coordinator 2 --lease-ttl 30 --retries 3 &
COORD=$!

# A late-joining worker (this is all a second host would run): it
# claims open leases from the same store until none remain.  The
# worker id only labels the lease/heartbeat ledgers.
sleep 2
python -m repro.experiments.cli scenarios work "$STORE" \
    --worker-id extra-1 --lease-ttl 30 --retries 3 || true

wait "$COORD"

# The lease ledger: per-lease worker, deaths, steals, disposition,
# plus the coordinator digest and the poison channel (if any).
python -m repro.experiments.cli scenarios report "$STORE"

if [ -n "$BASELINE" ]; then
    # CI gate: exit 1 on any soundness/perf-budget regression.
    python -m repro.experiments.cli scenarios diff --strict \
        "$BASELINE" "$STORE"
fi
