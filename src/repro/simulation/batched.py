"""Window-batched DES components: the engine-hot-path overhaul.

The legacy components (:mod:`repro.simulation.regulator_sim`,
:mod:`repro.simulation.mux_sim`) drive one callback chain per packet:
``receive -> schedule finish -> finish -> try-start-next``, with wakeup
cancel/reschedule churn on top.  For the expensive cells -- vacation
regulators and whole-tree runs -- almost all of that per-packet event
traffic is redundant, because the service inside a vacation window (and
a constant-rate MUX drain between arrival epochs) is a *closed-form
drain*: once the head of the queue starts transmitting, every
subsequent departure in the same busy train is determined by a
cumulative sum of serialisation times, and the non-preemptive fit check
is a cumulative-sum threshold against the window end.

This module exploits exactly that structure, at three levels:

:func:`vacation_departures`
    The pure kernel: departure times of a *fully known* arrival train
    through a (sigma, rho, lambda) vacation regulator, computed one
    busy train at a time with ``np.add.accumulate`` -- the float
    operations are sequenced identically to the legacy per-packet
    event chain, so the results are bit-identical to running the
    legacy :class:`~repro.simulation.regulator_sim.VacationComponent`.

:class:`BatchVacationComponent` / :class:`BatchMuxServer`
    Drop-in evented components for pipelines whose arrivals are *not*
    known in advance (chain hops, whole trees).  The vacation component
    commits a whole window's worth of service per wakeup (one
    continuation event per busy train instead of one finish event per
    packet); the MUX commits each packet's departure at arrival time
    (the constant-rate drain is a running ``busy_until`` float, no
    internal heap, no per-packet finish/start-next events) and, under
    the adversarial discipline, delivers each busy period with a single
    lazily-rescheduled release event.

:func:`primed_vacation_host` / :func:`primed_adversarial_host`
    The array fast paths for fully-known single-host cells: all flows'
    traces are known up front, so the entire cell -- regulators,
    adversarial MUX, delay recording -- collapses into NumPy passes
    over merged departure arrays with *no per-packet events at all*.
    PR 5 extends the original vacation-only path to every regulator
    family: :func:`sigma_rho_departures` is the token-bucket analogue
    of :func:`vacation_departures` (closed-form departures, float ops
    sequenced identically to the legacy ``TokenBucketComponent``), and
    :func:`primed_adversarial_host` dispatches on the control mode
    (``sigma-rho`` / ``sigma-rho-lambda`` / ``none``).  Used by
    :func:`repro.simulation.host_sim.simulate_regulated_host` whenever
    the batched engine meets ``discipline="adversarial"``, and by
    :func:`repro.simulation.chain.simulate_regulated_chain` to resolve
    hop 0 (whose arrivals are all known) as a pure array pass.

Background-primed MUX (:meth:`BatchMuxServer.prime_background`)
    Chain hops past hop 0 and every tree member host serve K-1 *cross*
    flows whose traces are known up front while the tagged flow stays
    event-driven.  The cross flows' regulator departures are closed
    form, so they are folded into the MUX as a sorted *background
    train*: they occupy the server (extending busy periods exactly as
    evented arrivals would) but materialise **no events and no Packet
    objects at all** -- the running ``busy_until`` recurrence absorbs
    them lazily whenever a dynamic arrival or release check happens.
    Packets materialise only where the adversarial MUX genuinely needs
    events: the tagged flow.

Equivalence contract: for every supported configuration the batched
components must reproduce the legacy components' measured delays
bit-for-bit (the float arithmetic is sequenced identically; only event
*counts* differ).  ``tests/test_des_batched_equivalence.py`` enforces
this over the curated corpus and hypothesis-generated traces; the
legacy path stays addressable as ``backend="des_legacy"`` /
``engine="legacy"`` precisely so that suite keeps both implementations
honest.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.regulator import SigmaRhoLambdaRegulator
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "vacation_departures",
    "sigma_rho_departures",
    "BatchVacationComponent",
    "BatchMuxServer",
    "primed_vacation_host",
    "primed_adversarial_host",
    "primed_adversarial_worst",
    "PrimedHostOutcome",
    "PRIMED_MODES",
]

#: Control modes :func:`primed_adversarial_host` resolves closed-form.
PRIMED_MODES = ("sigma-rho", "sigma-rho-lambda", "none")

#: Window-boundary tolerance -- identical to the legacy component's
#: ``VacationComponent._TOL`` (the two implementations must agree on
#: every boundary decision to stay bit-identical).
_TOL = 1e-12
#: Fit-check slack, identical to the legacy ``_try_start`` comparison.
_FIT_EPS = 1e-15

_OVERSIZE_MSG = (
    "packet serialisation time exceeds the working period; "
    "decrease packet sizes or increase sigma"
)


# ----------------------------------------------------------------------
# Window arithmetic (kept formula-identical to the legacy component)
# ----------------------------------------------------------------------
def _window_index(t: float, offset: float, period: float) -> int:
    """Index of the cycle containing ``t`` (-1 before the first)."""
    if t < offset - _TOL:
        return -1
    return int((t - offset) // period)


def _service_step(
    t: float, tx_head: float, working: float, period: float, offset: float
) -> tuple[str, float]:
    """One legacy ``_try_start`` decision for a head packet at time ``t``.

    Returns ``("serve", window_end)`` when the head may start now
    (non-preemptive fit check), else ``("wake", wake_time)`` with the
    legacy wake instant (including the ``max(start, now + TOL)``
    nudge).  Both the evented component and the primed kernel route
    every tolerance-critical boundary decision through this single
    helper so the two paths cannot drift.
    """
    m = _window_index(t, offset, period)
    window_end = None
    if m >= 0:
        start = offset + m * period
        end = start + working
        if start - _TOL <= t < end - _TOL:
            window_end = end
    if window_end is not None and t + tx_head <= window_end + _FIT_EPS:
        return "serve", window_end
    if tx_head > working + _FIT_EPS:
        raise ValueError(_OVERSIZE_MSG)
    if window_end is None:
        if m < 0:
            nxt = offset
        else:
            start = offset + m * period
            if t < start + working - _TOL:
                nxt = t if t > start else start
            else:
                nxt = offset + (m + 1) * period
    else:
        # Inside a window the head does not fit into: next cycle.
        nxt = offset + (m + 1) * period
    # The legacy wake never lands at (or before) the current instant --
    # float noise there would spin the event loop.
    return "wake", (nxt if nxt > t + _TOL else t + _TOL)


def _service_base(
    t: float, tx_head: float, working: float, period: float, offset: float
) -> tuple[float, float]:
    """First instant >= ``t`` at which a head packet of serialisation
    time ``tx_head`` may start, plus the end of the window it starts
    in: the legacy ``_try_start`` / ``_wake_up`` loop without events.
    """
    for _ in range(64):
        action, value = _service_step(t, tx_head, working, period, offset)
        if action == "serve":
            return t, value
        t = value
    raise RuntimeError(
        "vacation window search did not converge; degenerate schedule?"
    )  # pragma: no cover - guarded by the oversize check


# ----------------------------------------------------------------------
# The pure kernel
# ----------------------------------------------------------------------
def vacation_departures(
    times: np.ndarray,
    sizes: np.ndarray,
    regulator: SigmaRhoLambdaRegulator,
    *,
    offset: float = 0.0,
    out_rate: float = 1.0,
) -> tuple[np.ndarray, int]:
    """Departure times of a known arrival train through a vacation regulator.

    Parameters
    ----------
    times, sizes:
        Non-decreasing arrival times and packet sizes (capacity-seconds).
    regulator:
        Window schedule source (working period / cycle period).
    offset, out_rate:
        Phase offset of the window cycle and in-window forwarding rate.

    Returns
    -------
    (departures, trains):
        Per-packet departure times, plus the number of busy trains
        processed (the batched path's event-count analogue: the legacy
        component pays one finish event per *packet*, this kernel one
        pass per *train*).

    The float arithmetic reproduces the legacy component exactly: each
    busy train's finish times are ``np.add.accumulate`` over
    ``[base, tx_0, tx_1, ...]`` -- the same left-to-right additions the
    per-packet ``schedule_in`` chain performs -- and every window
    boundary decision uses the legacy tolerances.
    """
    times = np.ascontiguousarray(times, dtype=np.float64)
    sizes = np.ascontiguousarray(sizes, dtype=np.float64)
    n = times.size
    deps = np.empty(n, dtype=np.float64)
    if n == 0:
        return deps, 0
    check_positive(out_rate, "out_rate")
    check_non_negative(offset, "offset")
    tx = sizes / out_rate
    working = float(regulator.working_period)
    period = float(regulator.regulator_period)
    if float(tx.max()) > working + _FIT_EPS:
        raise ValueError(_OVERSIZE_MSG)
    # Monotone cumulative work, used only to bound candidate train
    # lengths (an estimate -- under-estimates merely split a train into
    # two back-to-back passes with identical results).
    cum = np.concatenate(([0.0], np.cumsum(tx)))
    i = 0
    last_fin = -np.inf
    trains = 0
    while i < n:
        t = times[i] if times[i] > last_fin else last_fin
        base, end = _service_base(t, tx[i], working, period, offset)
        hi = int(np.searchsorted(cum, cum[i] + (end - base) + 1e-9, side="right"))
        hi = min(max(hi, i + 1), n)
        seg = np.empty(hi - i + 1, dtype=np.float64)
        seg[0] = base
        seg[1:] = tx[i:hi]
        fin = np.add.accumulate(seg)[1:]
        if hi > i + 1:
            # Non-preemptive continuation, exactly the legacy per-packet
            # checks: the server must still be inside the window when
            # the previous packet finishes (window_at), the next packet
            # must have arrived by then (queue non-empty; equal-time
            # arrivals precede the finish event), and it must fit.
            ok = (
                (times[i + 1 : hi] <= fin[:-1])
                & (fin[:-1] < end - _TOL)
                & (fin[1:] <= end + _FIT_EPS)
            )
            k = (hi - i) if bool(ok.all()) else 1 + int(np.argmin(ok))
        else:
            k = 1
        deps[i : i + k] = fin[:k]
        last_fin = float(fin[k - 1])
        i += k
        trains += 1
    return deps, trains


def sigma_rho_departures(
    times: np.ndarray,
    sizes: np.ndarray,
    sigma: float,
    rho: float,
) -> tuple[np.ndarray, int]:
    """Departure times of a known arrival train through a token bucket.

    The (sigma, rho) analogue of :func:`vacation_departures`: replays
    the exact event sequence of the legacy
    :class:`~repro.simulation.regulator_sim.TokenBucketComponent`
    without an event loop, so the departures are bit-identical.

    Fidelity notes (each one matters for bit-identity):

    * Refills happen at every *event* instant -- each arrival and each
      wakeup -- because ``min(sigma, tokens + rho * dt)`` chains are
      not associative in floats; collapsing two refills into one would
      drift.
    * At equal instants an arrival precedes a pending wakeup (arrival
      events are batch-scheduled at injection with lower sequence
      numbers than any runtime-scheduled wake).
    * A wakeup is *cancelled* only by a drain pass that leaves the
      queue non-empty (which reschedules it); a drain that empties the
      queue leaves the stale wake pending, and its later refill is a
      real arithmetic event the replay must keep.

    Returns ``(departures, drains)`` where ``drains`` counts drain
    passes -- the evented path's event-count analogue.
    """
    times = np.ascontiguousarray(times, dtype=np.float64)
    sizes = np.ascontiguousarray(sizes, dtype=np.float64)
    n = times.size
    deps = np.empty(n, dtype=np.float64)
    if n == 0:
        return deps, 0
    check_positive(sigma, "sigma")
    check_positive(rho, "rho")
    t_l = times.tolist()
    s_l = sizes.tolist()
    tokens = sigma
    last = 0.0
    head = 0      # first unserved packet
    arrived = 0   # next arrival event to process
    wake = None   # pending wakeup instant (may be stale)
    drains = 0
    while head < n:
        if arrived < n and (wake is None or t_l[arrived] <= wake):
            t = t_l[arrived]
            arrived += 1
        else:
            t = wake
            wake = None  # the wake event is consumed by firing
        drains += 1
        # _refill: one clamp per event instant, never coalesced.
        tokens = min(sigma, tokens + rho * (t - last))
        last = t
        while head < arrived and tokens >= s_l[head] - 1e-15:
            tokens -= s_l[head]
            deps[head] = t
            head += 1
        if head < arrived:
            # Queue non-empty: cancel-and-reschedule the wakeup.
            wake = t + (s_l[head] - tokens) / rho
        # else: any pending stale wake stays pending (legacy leaves it
        # uncancelled; its refill still happens).
    return deps, drains


# ----------------------------------------------------------------------
# Evented batched components
# ----------------------------------------------------------------------
class BatchVacationComponent:
    """(sigma, rho, lambda) vacation regulator with window-batched service.

    Semantics are identical to the legacy
    :class:`~repro.simulation.regulator_sim.VacationComponent`; the
    difference is purely mechanical: when service starts, the whole
    backlog that fits into the current window is committed in one
    cumulative-sum pass -- one delivery event per packet plus a single
    train-end continuation event, instead of a finish/try-start
    callback pair per packet -- and the wakeup logic never reschedules
    an already-correct wake (no cancel churn on bursts).
    """

    def __init__(
        self,
        sim: Simulator,
        regulator: SigmaRhoLambdaRegulator,
        sink,
        *,
        offset: float = 0.0,
        out_rate: float = 1.0,
    ):
        self.sim = sim
        self.regulator = regulator
        self.sink = sink
        self.offset = check_non_negative(offset, "offset")
        self.out_rate = check_positive(out_rate, "out_rate")
        self._queue: deque[Packet] = deque()
        #: A committed busy train is in flight (deliveries scheduled).
        self._committed = False
        self._wake = None

    # -- inspection (parity with the legacy component) -------------------
    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def backlog(self) -> float:
        return sum(p.size for p in self._queue)

    # -- component interface ----------------------------------------------
    def receive(self, packet: Packet) -> None:
        self._queue.append(packet)
        if not self._committed:
            self._try_start()

    def receive_batch(self, packets: Sequence[Packet]) -> None:
        """Accept several packets arriving at the current instant (one
        replicated busy period).

        Equivalent to sequential :meth:`receive` calls: a single
        commit over the longer queue performs the same left-to-right
        cumulative-sum additions and the same window boundary checks
        the per-packet chain would, so departures are identical --
        only the event count drops.
        """
        self.sim.receive_batch_calls += 1
        self._queue.extend(packets)
        if not self._committed:
            self._try_start()

    def _try_start(self) -> None:
        """Commit the longest head train the current window admits."""
        if self._committed or not self._queue:
            return
        sim = self.sim
        now = sim.now
        head_tx = self._queue[0].size / self.out_rate
        action, value = _service_step(
            now,
            head_tx,
            self.regulator.working_period,
            self.regulator.regulator_period,
            self.offset,
        )
        if action == "serve":
            self._commit_train(now, value)
            return
        start = value
        if self._wake is None or self._wake.cancelled or self._wake.time > start:
            if self._wake is not None:
                self._wake.cancel()
            self._wake = sim.schedule(start, self._wake_up)

    def _wake_up(self) -> None:
        self._wake = None
        self._try_start()

    def _commit_train(self, base: float, end: float) -> None:
        """Serve every queued packet that fits after ``base``; one pass."""
        queue = self._queue
        if len(queue) == 1:
            # Scalar fast path: short queues dominate at low load.
            pkt = queue.popleft()
            fin = base + pkt.size / self.out_rate
            self._committed = True
            self.sim.schedule(fin, self._finish_train, pkt)
            return
        pkts = list(queue)
        tx = np.array([p.size for p in pkts], dtype=np.float64) / self.out_rate
        seg = np.empty(tx.size + 1, dtype=np.float64)
        seg[0] = base
        seg[1:] = tx
        fin = np.add.accumulate(seg)[1:]
        ok = (fin[:-1] < end - _TOL) & (fin[1:] <= end + _FIT_EPS)
        k = tx.size if bool(ok.all()) else 1 + int(np.argmin(ok))
        for _ in range(k):
            queue.popleft()
        self._committed = True
        sim = self.sim
        if k > 1:
            sim.schedule_batch(
                fin[: k - 1], self.sink.receive, ((p,) for p in pkts[: k - 1])
            )
        sim.schedule(float(fin[k - 1]), self._finish_train, pkts[k - 1])

    def _finish_train(self, last_pkt: Packet) -> None:
        """Deliver the train's last packet, then look for more work.

        Mirrors the legacy ``_finish_tx``: the delivery happens before
        the next service decision, at the same timestamp.
        """
        self._committed = False
        self.sink.receive(last_pkt)
        self._try_start()


class BatchMuxServer:
    """Work-conserving MUX with commit-on-receive constant-rate drains.

    Supports the ``"fifo"`` and ``"adversarial"`` disciplines of the
    legacy :class:`~repro.simulation.mux_sim.MuxServer` (for
    ``"priority"`` the builders keep the legacy component -- a strict
    priority order cannot be committed ahead of future arrivals).

    FIFO service order equals arrival order, so each packet's departure
    is fixed the instant it arrives: ``dep = max(now, busy_until) +
    size/C`` -- a running float instead of an internal heap, and one
    delivery event per packet instead of a finish/start-next pair.

    The adversarial discipline (deliver at the end of the busy period;
    the general-MUX worst case the paper bounds) needs no per-packet
    events at all: packets are held, and a single *release check* event
    lazily chases the end of the busy period (rescheduling itself only
    when arrivals extended the period past its horizon -- typically one
    or two events per busy period, never more than one per packet).
    The release delivers each flow's packets of the busy period in one
    ``receive_batch`` call when the target supports it, which is what
    lets tree replication commit one fanout event per busy period per
    child instead of one per packet.

    **Background trains** (:meth:`prime_background`): flows whose full
    MUX-arrival train is known up front (cross traffic through
    closed-form regulators) need neither events nor ``Packet``
    objects.  Their sorted ``(times, sizes)`` arrays are folded into
    the ``busy_until`` recurrence lazily -- on each dynamic arrival
    (arrivals up to and including ``now``: background events were
    scheduled first, so they precede equal-time dynamic ones) and on
    each release check (strictly before ``now``: the release decision
    carries priority -1, so it precedes equal-time arrivals).
    Background packets occupy the server and extend busy periods
    exactly as evented arrivals would, but are never delivered and
    never counted in ``served_count`` (their delivery target is the
    cross-traffic drop sink).  ``queue_length``/``backlog`` report
    held *dynamic* packets only.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        sink,
        *,
        discipline: str = "fifo",
        priorities: Optional[Mapping[int, int]] = None,
    ):
        if discipline not in ("fifo", "adversarial"):
            raise ValueError(
                f"BatchMuxServer supports 'fifo'/'adversarial', got {discipline!r}"
                " (use the legacy MuxServer for 'priority')"
            )
        self.sim = sim
        self.capacity = check_positive(capacity, "capacity")
        self.sink = sink
        self.discipline = discipline
        # Kept for interface parity (chain builders assign priorities
        # unconditionally); unused by these disciplines.
        self.priorities = dict(priorities or {})
        self._busy_until = -np.inf
        self._held: list[Packet] = []
        self._check = None
        self.served_count = 0
        self.served_data = 0.0
        #: Background train (sorted arrival times / serialisation
        #: times) plus the fold pointer; see :meth:`prime_background`.
        self._bg_t: list[float] = []
        self._bg_tx: list[float] = []
        self._bg_i = 0

    @property
    def queue_length(self) -> int:
        """Committed-but-undelivered packets (adversarial hold depth)."""
        return len(self._held)

    @property
    def backlog(self) -> float:
        return sum(p.size for p in self._held)

    # -- background trains -------------------------------------------------
    def prime_background(self, times, sizes) -> None:
        """Install a known train of arrivals that occupy the server but
        are never delivered (cross traffic bound for a drop sink).

        ``times`` must be non-decreasing; ``sizes`` are packet sizes in
        capacity-seconds (the serialisation-time division happens here,
        elementwise -- identical IEEE results to the evented per-packet
        ``size / capacity``).  May be called once per MUX, before any
        dynamic traffic is processed.
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        sizes = np.ascontiguousarray(sizes, dtype=np.float64)
        if times.size and np.any(np.diff(times) < 0):
            raise ValueError("background train times must be non-decreasing")
        if self._bg_t or self._bg_i:
            raise ValueError("background train already primed")
        if self._busy_until != -np.inf or self._held:
            raise ValueError(
                "prime_background must precede any dynamic traffic"
            )
        self._bg_t = times.tolist()
        self._bg_tx = (sizes / self.capacity).tolist()
        self._bg_i = 0

    def _fold_background(self, limit: float, *, strict: bool) -> None:
        """Advance ``busy_until`` over background arrivals up to
        ``limit`` (exclusive when ``strict``).  The recurrence is the
        exact arithmetic of :meth:`receive`: ``start = max(t, bu)``
        then ``start + tx``."""
        i = self._bg_i
        bg_t = self._bg_t
        n = len(bg_t)
        if i >= n:
            return
        bg_tx = self._bg_tx
        bu = self._busy_until
        while i < n:
            t = bg_t[i]
            if t > limit or (strict and t == limit):
                break
            start = t if t > bu else bu
            bu = start + bg_tx[i]
            i += 1
        self._bg_i = i
        self._busy_until = bu

    # -- component interface ----------------------------------------------
    def receive(self, packet: Packet) -> None:
        now = self.sim.now
        if self._bg_i < len(self._bg_t):
            # Background arrivals up to *and including* now precede
            # this dynamic arrival (they were scheduled first).
            self._fold_background(now, strict=False)
        bu = self._busy_until
        start = now if now > bu else bu
        dep = start + packet.size / self.capacity
        self._busy_until = dep
        if self.discipline == "adversarial":
            self._held.append(packet)
            if self._check is None:
                # priority=-1: the release decision precedes equal-time
                # arrivals, matching the legacy finish-before-delivery
                # event order (an arrival at exactly the completion
                # instant opens a fresh busy period).
                self._check = self.sim.schedule(
                    dep, self._release_check, priority=-1
                )
        else:
            self.sim.schedule(dep, self._route, packet)

    def receive_batch(self, packets: Sequence[Packet]) -> None:
        """Accept several packets arriving at the current instant (a
        replicated busy period); equivalent to sequential receives."""
        self.sim.receive_batch_calls += 1
        for pkt in packets:
            self.receive(pkt)

    def _release_check(self) -> None:
        if self._bg_i < len(self._bg_t):
            # Strictly-before-now only: an arrival at exactly the
            # release instant opens a fresh busy period (priority -1
            # runs first in the evented order).
            self._fold_background(self.sim.now, strict=True)
        if self.sim.now < self._busy_until:
            # Arrivals extended the busy period past this check's
            # horizon: chase the new end (no cancellation residue).
            self._check = self.sim.schedule(
                self._busy_until, self._release_check, priority=-1
            )
            return
        self._check = None
        self.sim.busy_periods += 1
        held, self._held = self._held, []
        if len(held) == 1:
            self._route(held[0])
            return
        # One delivery per (flow, busy period): group in first-arrival
        # order and hand each flow's packets over in a single batch
        # when the target supports it.  Targets are per-flow components
        # (or one shared terminal sink), so regrouping by flow cannot
        # change any measured delay -- every delivery happens at this
        # same instant.
        groups: dict[int, list[Packet]] = {}
        for pkt in held:
            groups.setdefault(pkt.flow_id, []).append(pkt)
        sink = self.sink
        for flow_id, pkts in groups.items():
            self.served_count += len(pkts)
            self.served_data += sum(p.size for p in pkts)
            target = sink.get(flow_id) if isinstance(sink, Mapping) else sink
            if target is None:
                continue
            batch = getattr(target, "receive_batch", None)
            if batch is not None:
                batch(pkts)
            else:
                for pkt in pkts:
                    target.receive(pkt)

    def _route(self, pkt: Packet) -> None:
        # Served accounting happens here -- at delivery, not arrival --
        # so FIFO counters match the legacy completion-time counting
        # under horizon truncation (adversarial counts lag until the
        # busy period's release, equal once drained).
        self.served_count += 1
        self.served_data += pkt.size
        sink = self.sink
        if isinstance(sink, Mapping):
            target = sink.get(pkt.flow_id)
            if target is not None:
                target.receive(pkt)
            return
        sink.receive(pkt)


# ----------------------------------------------------------------------
# The primed single-host fast paths
# ----------------------------------------------------------------------
class PrimedHostOutcome:
    """Raw product of the primed host passes (arrays, no Packets).

    ``per_flow_deliveries`` carries each flow's absolute delivery
    instants in emission order -- the chain simulator consumes them to
    forward hop-0 output into hop 1 without ever materialising hop-0
    packets.
    """

    __slots__ = (
        "per_flow_delays", "per_flow_deliveries", "trains", "busy_periods",
    )

    def __init__(
        self,
        per_flow_delays: list[np.ndarray],
        trains: int,
        busy_periods: int,
        per_flow_deliveries: Optional[list[np.ndarray]] = None,
    ):
        self.per_flow_delays = per_flow_delays
        self.per_flow_deliveries = (
            per_flow_deliveries
            if per_flow_deliveries is not None
            else [np.empty(0) for _ in per_flow_delays]
        )
        self.trains = trains
        self.busy_periods = busy_periods

    @property
    def batch_events(self) -> int:
        """The batched path's event-count analogue: one pass per
        regulator busy train (or token-bucket drain) plus one release
        per MUX busy period."""
        return self.trains + self.busy_periods


def _adversarial_mux_deliveries(
    arr: np.ndarray, tx: np.ndarray
) -> tuple[np.ndarray, int]:
    """Delivery instants of time-sorted MUX arrivals under the
    adversarial hold-and-release discipline.

    The constant-rate drain is the ``busy_until`` recurrence,
    float-sequenced exactly like the evented MUX's per-packet chain;
    delivery equals the end of each packet's busy period.  A busy
    period ends where the next arrival does not precede the
    completion; an arrival at *exactly* the completion instant starts
    a fresh period (in the evented chain the release decision carries
    priority -1, so it precedes the equal-time arrival -- and in the
    legacy chain the finish event popped first for the same reason).

    Returns ``(delivery, busy_periods)``.
    """
    n = arr.size
    bu = np.empty(n, dtype=np.float64)
    current = -np.inf
    arr_l = arr.tolist()
    tx_l = tx.tolist()
    for i in range(n):
        t = arr_l[i]
        if t > current:
            current = t
        current += tx_l[i]
        bu[i] = current
    nxt = np.empty(n, dtype=np.float64)
    nxt[:-1] = arr[1:]
    nxt[-1] = np.inf
    is_end = nxt >= bu
    end_idx = np.nonzero(is_end)[0]
    reps = np.diff(np.concatenate(([-1], end_idx)))
    delivery = np.repeat(bu[end_idx], reps)
    return delivery, int(end_idx.size)


def _merge_and_deliver(
    dep_list: Sequence[np.ndarray],
    emit_list: Sequence[np.ndarray],
    size_list: Sequence[np.ndarray],
    *,
    capacity: float,
    trains: int,
    horizon: Optional[float],
    drain: bool,
) -> PrimedHostOutcome:
    """Merge per-flow regulator departures through the adversarial MUX
    pass and split delays/deliveries back per flow."""
    k = len(dep_list)
    flow_list = [
        np.full(d.size, f, dtype=np.int64) for f, d in enumerate(dep_list)
    ]
    arr = np.concatenate(dep_list) if dep_list else np.empty(0)
    emits = np.concatenate(emit_list) if emit_list else np.empty(0)
    sizes_all = np.concatenate(size_list) if size_list else np.empty(0)
    flows = np.concatenate(flow_list) if flow_list else np.empty(0, dtype=np.int64)
    n = arr.size
    if n == 0:
        empty = [np.empty(0) for _ in range(k)]
        return PrimedHostOutcome(empty, 0, 0, [np.empty(0) for _ in range(k)])
    # Stable sort: equal departure instants keep flow-injection order,
    # matching the evented engines' event-sequence tie-break.
    order = np.argsort(arr, kind="stable")
    arr = arr[order]
    emits = emits[order]
    flows = flows[order]
    tx = sizes_all[order] / capacity
    delivery, busy_periods = _adversarial_mux_deliveries(arr, tx)
    if not drain:
        if horizon is None:
            raise ValueError("drain=False requires a horizon")
        keep = delivery <= horizon
        delivery = delivery[keep]
        emits = emits[keep]
        flows = flows[keep]
    delays = delivery - emits
    # Per-flow split preserves emission order: each flow's regulator
    # departures are non-decreasing, and the sort above is stable.
    per_flow = [delays[flows == f] for f in range(k)]
    per_deliv = [delivery[flows == f] for f in range(k)]
    return PrimedHostOutcome(per_flow, trains, busy_periods, per_deliv)


def primed_vacation_host(
    traces: Sequence[tuple[np.ndarray, np.ndarray]],
    regulators: Sequence[SigmaRhoLambdaRegulator],
    offsets: Sequence[float],
    *,
    capacity: float = 1.0,
    horizon: Optional[float] = None,
    drain: bool = True,
) -> PrimedHostOutcome:
    """Array fast path for the staggered-vacation single host.

    Every flow's full arrival trace is known up front, so the cell
    needs no event loop at all: per-flow regulator departures come from
    :func:`vacation_departures`, the adversarial general MUX is a
    single merged pass (running ``busy_until`` float recurrence --
    sequenced exactly like the legacy per-packet events -- then a
    vectorised busy-period-end assignment), and per-flow delays are one
    subtraction.  Delivery times equal the end of each packet's MUX
    busy period, which is the legacy adversarial MUX's hold-and-release
    instant.

    Parameters
    ----------
    traces:
        Per-flow ``(times, sizes)`` arrays (already horizon-restricted).
    regulators, offsets:
        The stagger plan realised by the builder (absolute offsets).
    capacity:
        MUX service rate; also the regulators' in-window rate.
    horizon:
        With ``drain=False``, deliveries after this instant are
        discarded (the legacy ``run(until=horizon)`` truncation).
    drain:
        Keep every delivery (the default, like the legacy drain loop).
    """
    check_positive(capacity, "capacity")
    k = len(traces)
    dep_list: list[np.ndarray] = []
    emit_list: list[np.ndarray] = []
    size_list: list[np.ndarray] = []
    trains_total = 0
    for f in range(k):
        times, sizes = traces[f]
        deps, trains = vacation_departures(
            times, sizes, regulators[f], offset=float(offsets[f]),
            out_rate=capacity,
        )
        trains_total += trains
        dep_list.append(deps)
        emit_list.append(np.asarray(times, dtype=np.float64))
        size_list.append(np.asarray(sizes, dtype=np.float64))
    return _merge_and_deliver(
        dep_list, emit_list, size_list,
        capacity=capacity, trains=trains_total, horizon=horizon, drain=drain,
    )


def primed_adversarial_host(
    traces: Sequence[tuple[np.ndarray, np.ndarray]],
    envelopes: Sequence,
    mode: str,
    *,
    capacity: float = 1.0,
    stagger_phase: float = 0.0,
    horizon: Optional[float] = None,
    drain: bool = True,
) -> PrimedHostOutcome:
    """Array fast path for any fully-known adversarial host cell.

    Generalises :func:`primed_vacation_host` over the control mode:

    * ``"sigma-rho"`` -- per-flow token buckets
      (:func:`sigma_rho_departures`, parameterised exactly like the
      builder: ``sigma = e.sigma``, ``rho = e.rho / capacity``);
    * ``"sigma-rho-lambda"`` -- the staggered vacation regulators (the
      stagger plan is rebuilt from the envelopes the way
      :func:`repro.simulation.host_sim.build_regulated_host` does);
    * ``"none"`` -- no regulation: arrivals feed the MUX directly.

    ``mode`` must already be resolved (no ``"adaptive"`` here -- the
    caller resolves it exactly like the builders do).  Delivery times
    equal the end of each packet's MUX busy period, the adversarial
    hold-and-release instant, bit-identical to the evented batched
    engine.
    """
    if mode not in PRIMED_MODES:
        raise ValueError(
            f"primed_adversarial_host supports modes {PRIMED_MODES}, "
            f"got {mode!r}"
        )
    check_positive(capacity, "capacity")
    k = len(traces)
    dep_list: list[np.ndarray] = []
    emit_list: list[np.ndarray] = []
    size_list: list[np.ndarray] = []
    trains_total = 0
    if mode == "sigma-rho-lambda":
        from repro.core.adaptive import AdaptiveController

        plan = AdaptiveController(envelopes, capacity).build_stagger_plan()
        base = (stagger_phase % 1.0) * plan.period
        regulators = plan.regulators
        offsets = [base + off for off in plan.offsets]
    for f in range(k):
        times, sizes = traces[f]
        if mode == "sigma-rho":
            env = envelopes[f]
            deps, trains = sigma_rho_departures(
                times, sizes, env.sigma, env.rho / capacity
            )
        elif mode == "sigma-rho-lambda":
            deps, trains = vacation_departures(
                times, sizes, regulators[f], offset=float(offsets[f]),
                out_rate=capacity,
            )
        else:  # none: arrivals feed the MUX directly
            deps = np.ascontiguousarray(times, dtype=np.float64)
            trains = 0
        trains_total += trains
        dep_list.append(deps)
        emit_list.append(np.asarray(times, dtype=np.float64))
        size_list.append(np.asarray(sizes, dtype=np.float64))
    return _merge_and_deliver(
        dep_list, emit_list, size_list,
        capacity=capacity, trains=trains_total, horizon=horizon, drain=drain,
    )


def primed_adversarial_worst(
    traces: Sequence[tuple[np.ndarray, np.ndarray]],
    envelopes: Sequence,
    mode: str,
    *,
    capacity: float = 1.0,
    stagger_phase: float = 0.0,
    dep_cache: Optional[dict] = None,
    cache_keys: Optional[Sequence] = None,
) -> tuple[float, int]:
    """Worst delay (and batch-event count) of one primed adversarial
    host cell, skipping the per-flow bookkeeping.

    This is :func:`primed_adversarial_host` minus everything the
    grouped cell-matrix evaluator does not consume: no per-flow delay
    split, no delivery arrays, no :class:`PrimedHostOutcome`.  The
    measured worst over *all* packets equals the per-cell
    ``max(flow.worst)`` because delays are non-negative and the merged
    array is exactly the concatenation of the per-flow splits.

    ``dep_cache`` / ``cache_keys`` let a caller evaluating many cells
    that share flow objects reuse regulator passes: flows whose
    ``cache_keys[f]`` is not ``None`` and hashes equal are assumed to
    have identical ``(times, sizes)`` arrays and regulator parameters
    (only sound for ``"sigma-rho"`` / ``"none"`` -- the lambda mode's
    per-flow stagger offsets differ between flows, so pass no keys
    there).  Cache values are ``(departures, trains)`` tuples; the
    departure arrays are never mutated, so sharing is safe.

    Returns ``(worst_delay, batch_events)`` with ``drain=True``
    semantics (every delivery kept).
    """
    if mode not in PRIMED_MODES:
        raise ValueError(
            f"primed_adversarial_worst supports modes {PRIMED_MODES}, "
            f"got {mode!r}"
        )
    check_positive(capacity, "capacity")
    k = len(traces)
    dep_list: list[np.ndarray] = []
    emit_list: list[np.ndarray] = []
    size_list: list[np.ndarray] = []
    trains_total = 0
    if mode == "sigma-rho-lambda":
        from repro.core.adaptive import AdaptiveController

        plan = AdaptiveController(envelopes, capacity).build_stagger_plan()
        base = (stagger_phase % 1.0) * plan.period
        regulators = plan.regulators
        offsets = [base + off for off in plan.offsets]
    for f in range(k):
        times, sizes = traces[f]
        key = cache_keys[f] if cache_keys is not None else None
        cached = (
            dep_cache.get(key)
            if dep_cache is not None and key is not None
            else None
        )
        if cached is not None:
            deps, trains = cached
        else:
            if mode == "sigma-rho":
                env = envelopes[f]
                deps, trains = sigma_rho_departures(
                    times, sizes, env.sigma, env.rho / capacity
                )
            elif mode == "sigma-rho-lambda":
                deps, trains = vacation_departures(
                    times, sizes, regulators[f], offset=float(offsets[f]),
                    out_rate=capacity,
                )
            else:  # none: arrivals feed the MUX directly
                deps = np.ascontiguousarray(times, dtype=np.float64)
                trains = 0
            if dep_cache is not None and key is not None:
                dep_cache[key] = (deps, trains)
        trains_total += trains
        dep_list.append(deps)
        emit_list.append(np.asarray(times, dtype=np.float64))
        size_list.append(np.asarray(sizes, dtype=np.float64))
    arr = np.concatenate(dep_list) if dep_list else np.empty(0)
    if arr.size == 0:
        return 0.0, 0
    emits = np.concatenate(emit_list)
    sizes_all = np.concatenate(size_list)
    # Same stable sort and busy-until recurrence as _merge_and_deliver:
    # the merged delays are bit-identical, only the per-flow split and
    # delivery bookkeeping are skipped.
    order = np.argsort(arr, kind="stable")
    arr = arr[order]
    emits = emits[order]
    tx = sizes_all[order] / capacity
    delivery, busy_periods = _adversarial_mux_deliveries(arr, tx)
    delays = delivery - emits
    worst = float(max(delays.max(), 0.0))
    return worst, trains_total + busy_periods
