"""Packet objects flowing through the discrete-event simulator.

Sizes are measured in *capacity-seconds* (the paper normalises every
link to ``C = 1``): a packet of size ``s`` takes ``s`` seconds to
serialise onto a full link.  Use
:func:`repro.utils.units.normalize_rate` to convert real traffic into
this unit system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Packet"]

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One packet of one flow.

    Attributes
    ----------
    flow_id:
        Index of the flow (group) the packet belongs to.
    size:
        Packet size in capacity-seconds.
    t_emit:
        Emission time at the original source -- end-to-end delays are
        always measured against this.
    uid:
        Monotonically increasing identifier (tie-breaking, tracing).
    hops:
        Number of overlay hops traversed so far (incremented by hosts).
    """

    flow_id: int
    size: float
    t_emit: float
    uid: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be > 0, got {self.size}")
        if self.t_emit < 0:
            raise ValueError(f"t_emit must be >= 0, got {self.t_emit}")
