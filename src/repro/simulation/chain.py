"""Multi-hop chain simulation: the critical path of a multicast tree.

The worst-case multicast delay of Theorem 7 is attained on the longest
source-to-receiver path of the tallest group tree, with every forwarder
on that path joining all K groups (the theorem's proof construction).
:func:`simulate_regulated_chain` realises exactly that construction: a
chain of ``hops`` regulated end hosts, where the *tagged* flow (flow 0)
travels the whole chain while each host additionally serves K-1 fresh
cross-flows from the other groups.  Whole-tree DES runs on small trees
are used in the test suite to validate this critical-path reduction.

Propagation delays between consecutive hosts are taken from the overlay
path (underlay shortest-path latencies); queueing/regulation delays
emerge from the components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.calculus.envelope import ArrivalEnvelope
from repro.simulation.batched import PRIMED_MODES, primed_adversarial_host
from repro.simulation.engine import Simulator
from repro.simulation.flow import PacketTrace
from repro.simulation.host_sim import (
    build_regulated_host,
    inject_trace,
    resolve_mode,
)
from repro.simulation.measures import DelayRecorder, DelayStats
from repro.simulation.packet import Packet
from repro.utils.validation import check_non_negative

__all__ = ["ChainResult", "simulate_regulated_chain"]


@dataclass(frozen=True)
class ChainResult:
    """Outcome of a critical-path chain simulation."""

    mode: str
    hops: int
    worst_case_delay: float
    tagged_stats: DelayStats
    events: int
    #: Cancelled events popped off the heap (see ``HostResult``).
    cancelled_events: int = 0
    #: Whether hop 0 (and the cross traffic of every later hop) was
    #: resolved closed-form (see ``simulate_regulated_chain`` notes).
    primed: bool = False


class _Relay:
    """Forward the tagged flow into the next hop after a propagation delay."""

    def __init__(self, sim: Simulator, delay: float, next_entry):
        self.sim = sim
        self.delay = check_non_negative(delay, "propagation delay")
        self.next_entry = next_entry

    def receive(self, packet: Packet) -> None:
        packet.hops += 1
        self.sim.schedule_in(self.delay, self.next_entry.receive, packet)

    def receive_batch(self, packets: Sequence[Packet]) -> None:
        """Forward a whole released busy period in one event."""
        for packet in packets:
            packet.hops += 1
        self.sim.schedule_in(
            self.delay, self.next_entry.receive_batch, packets
        )


class _Drop:
    """Terminal sink for cross-traffic (delays measured only for the tagged flow)."""

    def receive(self, packet: Packet) -> None:  # noqa: D102 - trivial
        pass

    def receive_batch(self, packets) -> None:  # noqa: D102 - trivial
        pass


def simulate_regulated_chain(
    tagged_trace: PacketTrace,
    cross_traces_per_hop: Sequence[Sequence[PacketTrace]],
    envelopes: Sequence[ArrivalEnvelope],
    *,
    mode: str = "sigma-rho",
    capacity: float = 1.0,
    discipline: str = "priority",
    stagger_phase: float = 0.0,
    propagation: Optional[Sequence[float]] = None,
    horizon: Optional[float] = None,
    engine: str = "batched",
) -> ChainResult:
    """Simulate the tagged flow across a chain of regulated hosts.

    Parameters
    ----------
    tagged_trace:
        Packet emissions of the tagged group flow (flow id 0); it enters
        host 0 and is forwarded through every host in the chain.
    cross_traces_per_hop:
        ``cross_traces_per_hop[h]`` holds the K-1 cross-flow traces
        entering host ``h`` (flow ids 1..K-1).  Its length defines the
        number of hops.
    envelopes:
        The K per-flow envelopes (tagged first); every host uses the
        same flow population, per the Theorem 7 worst-case construction.
    mode, capacity, discipline:
        As in :func:`repro.simulation.host_sim.build_regulated_host`.
        With ``discipline="priority"`` the tagged flow carries the
        lowest priority (flow id 0 -> priority 0 serves *first*), so we
        remap: the tagged flow is assigned the largest priority value to
        realise the adversarial general MUX.
    stagger_phase:
        Base fraction of the stagger period added to every hop's
        vacation offsets, on top of the built-in per-hop
        de-synchronisation (the bounds hold for any phase; adversarial
        scenario sweeps shift it).
    propagation:
        Per-hop propagation delay entering each host (length ``hops``;
        index 0 is source -> host 0).  Defaults to zero.
    engine:
        ``"batched"`` (window-batched components, default) or
        ``"legacy"`` (per-packet event chain); see
        :func:`repro.simulation.host_sim.build_regulated_host`.

    Notes
    -----
    Consecutive hosts use staggered vacation offsets shifted by half a
    window so the tagged flow does not ride a lucky synchronisation.

    Under the batched engine with the adversarial discipline the chain
    is *array-first*: every flow entering hop 0 is known up front, so
    hop 0 resolves as one closed-form pass
    (:func:`repro.simulation.batched.primed_adversarial_host`) and the
    tagged packets materialise only at hop 1; the K-1 cross flows of
    every later hop are likewise known up front, so their regulator
    departures fold into each hop's MUX as a zero-event background
    train.  Only the tagged flow is event-driven past hop 0, and its
    inter-hop handoff travels one relay event per MUX busy period.
    Measured delays are bit-identical to the fully evented batched
    engine (``engine="evented"``).
    """
    hops = len(cross_traces_per_hop)
    if hops < 1:
        raise ValueError("at least one hop is required")
    k = len(envelopes)
    for h, cross in enumerate(cross_traces_per_hop):
        if len(cross) != k - 1:
            raise ValueError(
                f"hop {h} has {len(cross)} cross traces; expected K-1={k - 1}"
            )
    if propagation is None:
        propagation = [0.0] * hops
    if len(propagation) != hops:
        raise ValueError("propagation must have one entry per hop")
    if horizon is None:
        horizon = float(tagged_trace.times[-1]) + 1e-9 if len(tagged_trace) else 1.0

    mode_eff = resolve_mode(mode, envelopes, capacity)
    primed = (
        engine == "batched"
        and discipline == "adversarial"
        and mode_eff in PRIMED_MODES
    )
    tagged_in = tagged_trace.restrict(horizon)
    cross_in = [
        [trace.restrict(horizon) for trace in cross]
        for cross in cross_traces_per_hop
    ]

    batch_events = 0
    if primed:
        # Hop 0: every flow's arrival train is known, so the whole host
        # (regulators, adversarial MUX, delivery) is one array pass.
        # The tagged flow enters after its access propagation delay;
        # delays are still measured against the original emissions.
        outcome0 = primed_adversarial_host(
            [(tagged_in.times + propagation[0], tagged_in.sizes)]
            + [(tr.times, tr.sizes) for tr in cross_in[0]],
            envelopes,
            mode_eff,
            capacity=capacity,
            stagger_phase=(stagger_phase + 0 * 0.37) % 1.0,
        )
        batch_events = outcome0.batch_events
        hop0_out = outcome0.per_flow_deliveries[0]
        if hops == 1:
            stats = DelayStats.from_delays(hop0_out - tagged_in.times)
            return ChainResult(
                mode=mode,
                hops=hops,
                worst_case_delay=stats.worst,
                tagged_stats=stats,
                events=batch_events,
                cancelled_events=0,
                primed=True,
            )

    sim = Simulator()
    recorder = DelayRecorder(sim)

    # The adversarial priority order serves the tagged flow last: larger
    # value = later service in MuxServer, so tagged flow 0 gets k.
    # Build hosts back to front so each host's tagged-flow output can be
    # wired to the next host's entry.  With hop 0 primed, its host is
    # never built -- the closed-form deliveries feed hop 1 directly.
    first_hop = 1 if primed else 0
    entries_per_hop: list = [None] * hops
    for h in reversed(range(first_hop, hops)):
        if h == hops - 1:
            tagged_sink = recorder
        else:
            tagged_sink = _Relay(sim, propagation[h + 1], entries_per_hop[h + 1][0])
        sink_map = {0: tagged_sink}
        for f in range(1, k):
            sink_map[f] = _Drop()
        entries, mux = build_regulated_host(
            sim,
            envelopes,
            sink_map,
            mode=mode,
            capacity=capacity,
            discipline=discipline,
            # De-synchronise consecutive hops' vacation schedules by a
            # golden-ratio-ish fraction of the stagger period.
            stagger_phase=(stagger_phase + h * 0.37) % 1.0,
            engine=engine,
            # Cross traffic is known up front: fold it into the MUX as
            # a zero-event background train instead of injecting it.
            primed_traces=(
                {f: cross_in[h][f - 1] for f in range(1, k)} if primed else None
            ),
        )
        mux.priorities = {0: k, **{f: f for f in range(1, k)}}
        entries_per_hop[h] = entries

    if primed:
        # The hop-0 array pass feeds hop 1: tagged packets materialise
        # here, one delivery event each (the only per-packet events the
        # chain still pays), sorted into an empty queue.
        sim.schedule_batch(
            hop0_out + propagation[1],
            entries_per_hop[1][0].receive,
            (
                (Packet(flow_id=0, size=float(s), t_emit=float(t), hops=1),)
                for t, s in zip(tagged_in.times, tagged_in.sizes)
            ),
        )
    else:
        # Tagged flow enters host 0 after its access propagation delay.
        first_entry = entries_per_hop[0][0]
        sim.schedule_batch(
            tagged_in.times + propagation[0],
            first_entry.receive,
            (
                (Packet(flow_id=0, size=float(s), t_emit=float(t)),)
                for t, s in zip(tagged_in.times, tagged_in.sizes)
            ),
        )
        # Cross flows enter their hop directly.
        for h, cross in enumerate(cross_in):
            for f, trace in enumerate(cross, start=1):
                inject_trace(sim, trace, f, entries_per_hop[h][f])

    sim.run()
    # Function-local import: keeps the simulation layer importable
    # without the runtime package at module-load time.
    from repro.runtime.telemetry import record_engine

    record_engine(sim)
    stats = recorder.stats(0)
    return ChainResult(
        mode=mode,
        hops=hops,
        worst_case_delay=stats.worst,
        tagged_stats=stats,
        events=sim.events_processed + batch_events,
        cancelled_events=sim.cancelled_events,
        primed=primed,
    )
