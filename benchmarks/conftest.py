"""Shared fixtures and artefact reporting for the benchmark harness.

Every benchmark regenerates one paper artefact (figure panel, table, or
theory result) at full paper scale, prints it in the paper's layout,
and asserts the qualitative *shape* criteria from DESIGN.md.  Absolute
delays differ from the paper's ns-2/SPARC numbers by construction; the
shapes (who wins, crossover position, growth trends) must hold.

Benchmarks run once per artefact (``benchmark.pedantic`` with a single
round) -- they are measurements of the reproduction pipeline, not
micro-benchmarks; kernel-level micro-benchmarks live in
``test_bench_kernels.py``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def artifact_report():
    """Collects rendered artefacts and prints them at session end."""
    chunks: list[str] = []
    yield chunks
    if chunks:
        print("\n" + "\n\n".join(chunks))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
