"""repro -- reproduction of "Worst-Case Delay Control in Multi-Group Overlay Networks".

A production-quality Python library reproducing Tu, Sreenan & Jia's
adaptive (sigma, rho, lambda) traffic-control system for end-host
multicast, together with every substrate the paper's evaluation needs:
Cruz-style network calculus, a discrete-event/fluid traffic simulator,
an underlay topology model, and the DSCT / NICE / capacity-aware
overlay multicast trees.

Quickstart
----------
>>> from repro import AdaptiveController, ArrivalEnvelope
>>> flows = [ArrivalEnvelope(sigma=0.02, rho=0.28)] * 3   # 3 heavy flows
>>> ctrl = AdaptiveController(flows)
>>> ctrl.select_mode().value
'sigma-rho-lambda'

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
scripts regenerating every figure and table of the paper.
"""

from repro.calculus import ArrivalEnvelope, LatencyRateServer
from repro.core import (
    AdaptiveController,
    ControlMode,
    SigmaRhoLambdaRegulator,
    SigmaRhoRegulator,
    StaggerPlan,
    dsct_height_bound,
    heterogeneous_threshold,
    homogeneous_threshold,
    lemma1_regulator_delay,
    remark1_wdb_heterogeneous,
    remark1_wdb_homogeneous,
    theorem1_wdb_heterogeneous,
    theorem2_wdb_homogeneous,
)
from repro.utils import PiecewiseLinearCurve

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ArrivalEnvelope",
    "LatencyRateServer",
    "AdaptiveController",
    "ControlMode",
    "SigmaRhoRegulator",
    "SigmaRhoLambdaRegulator",
    "StaggerPlan",
    "PiecewiseLinearCurve",
    "homogeneous_threshold",
    "heterogeneous_threshold",
    "dsct_height_bound",
    "lemma1_regulator_delay",
    "theorem1_wdb_heterogeneous",
    "theorem2_wdb_homogeneous",
    "remark1_wdb_heterogeneous",
    "remark1_wdb_homogeneous",
]
