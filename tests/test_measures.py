"""Delay recording and statistics."""

import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.simulation.measures import DelayRecorder, DelayStats
from repro.simulation.packet import Packet


class TestDelayStats:
    def test_from_delays(self):
        s = DelayStats.from_delays(np.array([0.1, 0.2, 0.3, 1.0]))
        assert s.count == 4
        assert s.worst == pytest.approx(1.0)
        assert s.mean == pytest.approx(0.4)
        assert s.p50 == pytest.approx(0.25)

    def test_empty(self):
        s = DelayStats.from_delays(np.array([]))
        assert s.count == 0
        assert s.worst == 0.0


class TestDelayRecorder:
    def test_records_against_emission_time(self):
        sim = Simulator()
        rec = DelayRecorder(sim)
        pkt = Packet(flow_id=0, size=0.1, t_emit=1.0)
        sim.schedule(3.5, rec.receive, pkt)
        sim.run()
        assert rec.worst_case_delay(0) == pytest.approx(2.5)

    def test_per_flow_separation(self):
        sim = Simulator()
        rec = DelayRecorder(sim)
        sim.schedule(1.0, rec.receive, Packet(0, 0.1, 0.0))
        sim.schedule(2.0, rec.receive, Packet(1, 0.1, 0.0))
        sim.run()
        assert rec.flows() == [0, 1]
        assert rec.worst_case_delay(0) == pytest.approx(1.0)
        assert rec.worst_case_delay(1) == pytest.approx(2.0)
        assert rec.worst_case_delay() == pytest.approx(2.0)

    def test_received_total(self):
        sim = Simulator()
        rec = DelayRecorder(sim)
        sim.schedule(1.0, rec.receive, Packet(0, 0.25, 0.0))
        sim.schedule(2.0, rec.receive, Packet(0, 0.5, 0.0))
        sim.run()
        assert rec.received_total(0) == pytest.approx(0.75)

    def test_empty_recorder(self):
        rec = DelayRecorder(Simulator())
        assert rec.worst_case_delay() == 0.0
        assert rec.stats().count == 0


class TestPacket:
    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Packet(0, 0.1, -1.0)

    def test_uids_monotone(self):
        a = Packet(0, 0.1, 0.0)
        b = Packet(0, 0.1, 0.0)
        assert b.uid > a.uid
