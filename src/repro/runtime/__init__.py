"""Parallel execution runtime for thousand-cell scenario campaigns.

The scenario matrix (:mod:`repro.scenarios`) cross-validates the
paper's analytic worst-case delay bounds against simulation, one
verdict per cell.  Cells are embarrassingly parallel -- each is a pure
function of its :class:`~repro.scenarios.spec.Scenario` spec -- and
this package supplies the machinery that scales campaigns from the
tier-1 smoke slice to thousands of cells:

``executor`` (:mod:`repro.runtime.executor`)
    The **executor contract**: ``map_tasks(fn, payloads)`` evaluates a
    picklable module-level function over picklable payloads and returns
    one ``TaskResult`` per payload *in payload order*.  Implementations:
    ``SerialExecutor`` (the in-process reference), ``ThreadExecutor``
    and ``ProcessExecutor`` (chunked ``concurrent.futures`` pools).
    Failures are captured worker-side into per-cell ``TaskResult.error``
    tracebacks -- one crashing cell fails its own verdict, never the
    campaign -- and a hard worker death degrades into error results for
    its chunk only.  Backends must be *semantically interchangeable*:
    for a deterministic ``fn``, every backend returns bit-identical
    values (the scenario runner guarantees its side by deriving all
    randomness from the spec's seed).

``store`` (:mod:`repro.runtime.store`)
    The **pluggable persistent result store**: one record per evaluated
    cell, keyed by a sha256 content hash of the full spec (``cell_key``)
    plus a seed-independent ``spec_fingerprint`` used for deterministic
    per-cell seed derivation and campaign sharding.  Two backends share
    the contract behind ``open_store(url_or_path)``: the append-only
    JSONL directory store (``jsonl:DIR`` or a bare path) and a WAL-mode
    SQLite store (``sqlite:DIR``, :mod:`repro.runtime.store_sqlite`)
    that is safe for concurrent shard writers.  Corrupt rows are
    quarantined (file or table), never fatal; ``summary.json``
    aggregates the store **deterministically** (verdict counts only, no
    wall clocks), so sharded and serial runs summarise bit-identically;
    ``diff_stores`` compares two campaigns cell-by-cell and flags
    soundness and perf-budget regressions (the CI baseline gate);
    ``merge_stores`` joins per-shard stores.  The record schema is
    documented in the module docstring.

``campaign`` (:mod:`repro.runtime.campaign`)
    The driver tying both together: ``run_campaign`` evaluates a matrix
    on an executor, appends verdicts to a store, skips already-completed
    cells on ``resume``, restricts itself to a fingerprint-partitioned
    slice under ``shard="i/N"``, and reports perf-budget violations
    alongside soundness.  ``CampaignConfig`` is the JSON description
    behind the CLI's ``--campaign`` flag.

``cost`` (:mod:`repro.runtime.cost`)
    Cost-model-driven scheduling: ``CellCostModel`` predicts per-cell
    wall-clock from the spec (refittable from any store's recorded
    wall clocks), ``plan_chunks`` orders cells dearest-first into
    cost-equalised, variance-shrunk executor chunks, and
    ``backend_profile`` powers ``scenarios run --profile``.  Scheduling
    only: outcomes are bit-identical with or without it.

``telemetry`` (:mod:`repro.runtime.telemetry`)
    Dependency-free tracing/metrics: per-cell ``CellTelemetry`` records
    (phase spans, named counters, engine tallies) collected worker-side
    and returned with results, persisted to a separate telemetry
    table/file by both store backends (``summary.json`` never sees
    them), consumed by ``scenarios report`` and ``scenarios run
    --trace`` (Chrome trace-event JSON).  On by default; near-zero
    overhead; ``--no-telemetry`` (``set_enabled(False)``) kills it.

``faults`` (:mod:`repro.runtime.faults`)
    Deterministic chaos harness: a picklable ``FaultPlan`` injects
    worker kills, kernel raises, delays/hangs and store-write faults
    on a schedule that is a pure function of ``(fault_seed, cell
    fingerprint, attempt)``.  Paired with the executor's
    ``RetryPolicy`` / ``cell_timeout`` / pool resurrection and the
    stores' crash-consistent writes, it backs the campaign invariant
    that **retries never change results**: a campaign that survived
    injected worker kills writes a ``summary.json`` byte-identical to
    an undisturbed run (the CI chaos gate).  Off by default with a
    zero-overhead no-op check.

``coordinator`` (:mod:`repro.runtime.coordinator`)
    Lease-based work-stealing coordination for **multi-worker
    campaigns** over one store: the coordinator plans cost-sized
    fingerprint leases (dearest first, shrinking toward the tail) into
    the store's ``leases``/``heartbeats`` tables (created ``IF NOT
    EXISTS``; the JSONL backend uses a ``leases.sqlite`` sidecar),
    ``scenarios work`` processes claim/steal them with atomic
    compare-and-swap and commit through the campaign's
    crash-consistent append path, and expired leases -- a SIGKILLed or
    hung worker -- are stolen, split for culprit isolation, or routed
    to the poison channel after repeated kills.  Leases only change
    *who* runs a cell, never its seed: ``summary.json`` after any
    chaos is byte-identical to an undisturbed serial run.

Usage::

    from repro.runtime import ProcessExecutor, ResultStore, run_campaign
    from repro.scenarios import generate_scenarios

    report = run_campaign(
        generate_scenarios(1000, seed=0, max_k=9, max_hops=6),
        executor=ProcessExecutor(jobs=4),
        store="campaigns/nightly",
        resume=True,
    )
    assert report.clean

or from the shell::

    repro-experiments scenarios run --campaign examples/campaign_thousand.json \\
        --jobs 4 --store campaigns/nightly --resume
    repro-experiments scenarios diff campaigns/last-week campaigns/nightly
"""

from repro.runtime.campaign import (
    CampaignConfig,
    CampaignReport,
    append_results_with_retry,
    build_campaign,
    outcome_record,
    parse_shard,
    run_campaign,
    shard_scenarios,
)
from repro.runtime.coordinator import (
    CoordinatorReport,
    WorkerReport,
    plan_campaign_leases,
    run_coordinator,
    work_store,
)
from repro.runtime.cost import (
    CellCostModel,
    backend_profile,
    plan_chunks,
    plan_leases,
)
from repro.runtime.executor import (
    EXECUTOR_KINDS,
    CellTimeout,
    Executor,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    TaskResult,
    ThreadExecutor,
    make_executor,
)
from repro.runtime.executor import run_one_with_retry
from repro.runtime.faults import FaultPlan, InjectedFault
from repro.runtime.store import (
    CampaignDiff,
    JsonlResultStore,
    ResultStore,
    cell_key,
    diff_records,
    diff_stores,
    fingerprint_shard,
    merge_stores,
    open_store,
    spec_fingerprint,
)
from repro.runtime.store_sqlite import (
    LEASE_STATES,
    LeaseTable,
    SqliteResultStore,
)
from repro.runtime.telemetry import (
    CellTelemetry,
    chrome_trace_events,
    enabled as telemetry_enabled,
    set_enabled as set_telemetry_enabled,
    write_chrome_trace,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignDiff",
    "CellCostModel",
    "CellTelemetry",
    "CoordinatorReport",
    "LEASE_STATES",
    "LeaseTable",
    "WorkerReport",
    "append_results_with_retry",
    "plan_campaign_leases",
    "plan_leases",
    "run_coordinator",
    "run_one_with_retry",
    "work_store",
    "chrome_trace_events",
    "set_telemetry_enabled",
    "telemetry_enabled",
    "write_chrome_trace",
    "backend_profile",
    "plan_chunks",
    "EXECUTOR_KINDS",
    "CellTimeout",
    "Executor",
    "FaultPlan",
    "InjectedFault",
    "JsonlResultStore",
    "RetryPolicy",
    "ProcessExecutor",
    "ResultStore",
    "SerialExecutor",
    "SqliteResultStore",
    "TaskResult",
    "ThreadExecutor",
    "build_campaign",
    "cell_key",
    "diff_records",
    "diff_stores",
    "fingerprint_shard",
    "make_executor",
    "merge_stores",
    "open_store",
    "outcome_record",
    "parse_shard",
    "run_campaign",
    "shard_scenarios",
    "spec_fingerprint",
]
