"""Multi-group network bookkeeping."""

import numpy as np
import pytest

from repro.overlay.groups import MultiGroupNetwork


class TestFullyJoined:
    def test_paper_population(self, small_network):
        mgn = MultiGroupNetwork.fully_joined(small_network, 3, rng=1)
        assert mgn.n_groups == 3
        assert mgn.max_k_hat() == 3
        for g in range(3):
            assert len(mgn.memberships[g]) == small_network.n_hosts

    def test_sources_distinct_members(self, small_network):
        mgn = MultiGroupNetwork.fully_joined(small_network, 3, rng=2)
        assert len(set(mgn.sources)) == 3

    def test_capacities_in_range(self, small_network):
        mgn = MultiGroupNetwork.fully_joined(
            small_network, 2, host_capacity_range=(3.0, 6.0), rng=3
        )
        assert np.all(mgn.host_capacity >= 3.0)
        assert np.all(mgn.host_capacity <= 6.0)

    def test_k_hat_per_host(self, small_network):
        mgn = MultiGroupNetwork.fully_joined(small_network, 3, rng=4)
        assert mgn.k_hat(0) == 3
        assert mgn.joined_groups(0) == [0, 1, 2]


class TestValidation:
    def test_rejects_empty_group(self, small_network):
        with pytest.raises(ValueError):
            MultiGroupNetwork(
                network=small_network,
                memberships=[np.array([], dtype=np.int64)],
                sources=[0],
                host_capacity=np.ones(small_network.n_hosts),
            )

    def test_rejects_foreign_source(self, small_network):
        with pytest.raises(ValueError, match="source"):
            MultiGroupNetwork(
                network=small_network,
                memberships=[np.array([1, 2, 3])],
                sources=[0],
                host_capacity=np.ones(small_network.n_hosts),
            )

    def test_rejects_unknown_hosts(self, small_network):
        with pytest.raises(ValueError):
            MultiGroupNetwork(
                network=small_network,
                memberships=[np.array([0, 10_000])],
                sources=[0],
                host_capacity=np.ones(small_network.n_hosts),
            )

    def test_rejects_bad_capacities(self, small_network):
        with pytest.raises(ValueError):
            MultiGroupNetwork(
                network=small_network,
                memberships=[np.arange(5)],
                sources=[0],
                host_capacity=np.zeros(small_network.n_hosts),
            )


class TestTreeBuilding:
    def test_all_schemes_build(self, small_mgn):
        for scheme in ("dsct", "nice"):
            trees = small_mgn.build_all_trees(scheme, rng=1)
            assert len(trees) == 3
            for g, t in enumerate(trees):
                assert t.root == small_mgn.sources[g]
                assert t.size == small_mgn.network.n_hosts

    def test_capacity_schemes_need_rate(self, small_mgn):
        with pytest.raises(ValueError, match="aggregate_rate"):
            small_mgn.build_tree(0, "capacity-aware-dsct")
        t = small_mgn.build_tree(0, "capacity-aware-dsct", aggregate_rate=0.5)
        assert t.size == small_mgn.network.n_hosts

    def test_unknown_scheme(self, small_mgn):
        with pytest.raises(ValueError):
            small_mgn.build_tree(0, "banyan")

    def test_groups_get_independent_but_stable_draws(self, small_mgn):
        a = small_mgn.build_all_trees("dsct", rng=5)
        b = small_mgn.build_all_trees("dsct", rng=5)
        for x, y in zip(a, b):
            assert x.parent == y.parent
        # Different groups (different sources) produce different trees.
        assert a[0].parent != a[1].parent

    def test_rtt_and_latency_cached(self, small_mgn):
        r1 = small_mgn.rtt
        r2 = small_mgn.rtt
        assert r1 is r2
        assert np.allclose(small_mgn.rtt, 2 * small_mgn.latency)
