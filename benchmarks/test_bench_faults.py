"""Fault-tolerance overhead benchmark (the PR-8 robustness numbers).

The retry/timeout machinery is opt-in, but campaigns that want it must
not pay for robustness they never use: with a :class:`RetryPolicy` and
a ``cell_timeout`` armed and **zero faults occurring**, the hardened
per-cell path (attempt scoping, SIGALRM arming, retry bookkeeping) must
stay within 5% of the plain path on the cheapest cells in the repo --
the workload where fixed per-cell overhead is the largest relative
fraction.  A second measurement records what recovery actually costs:
the wall clock of a chaos campaign (injected raises/delays, bounded
retries) next to its undisturbed twin, with verdicts asserted identical
first -- the determinism invariant is a precondition for trusting
either number.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.runtime import RetryPolicy
from repro.runtime.executor import SerialExecutor
from repro.runtime.faults import FaultPlan
from repro.scenarios import run_batch
from repro.scenarios.spec import Scenario

#: Hard acceptance bar: hardened-path wall clock vs plain path.
OVERHEAD_CEILING = 1.05
#: Absolute cushion (seconds) so sub-second timer noise cannot flake
#: a ratio assertion that the averages comfortably meet.
ABS_CUSHION_S = 0.05

#: Interleaved plain/hardened timing rounds; best-of each side.
ROUNDS = 4

N_CELLS = 192


def _closed_form_matrix(n: int = N_CELLS, k: int = 12):
    """Homogeneous shared-CBR adversarial hosts: the cheapest cells per
    unit, hence the worst case for fixed per-cell overhead."""
    return [
        Scenario(
            name=f"flt-{i}",
            kinds=("cbr",) * k,
            utilization=0.55 + 0.0005 * (i % 64),
            mode="sigma-rho",
            backend="fluid",
            horizon=0.5,
            seed=i,
        )
        for i in range(n)
    ]


def _timed_run(cells, **kwargs):
    t0 = time.perf_counter()
    report = run_batch(cells, executor=SerialExecutor(), **kwargs)
    return time.perf_counter() - t0, report


def _plain_hardened_best(cells):
    """Best-of-N interleaved plain/hardened timings (noise lands on
    both sides of the ratio)."""
    hardened_kwargs = dict(
        retry=RetryPolicy(max_attempts=3),
        cell_timeout=300.0,
        group_cells=False,
    )
    t_plain = t_hard = float("inf")
    plain = hard = None
    for _ in range(ROUNDS):
        t, plain = _timed_run(cells, group_cells=False)
        t_plain = min(t_plain, t)
        t, hard = _timed_run(cells, **hardened_kwargs)
        t_hard = min(t_hard, t)
    return t_plain, t_hard, plain, hard


def test_fault_tolerance_overhead_under_five_percent(
    benchmark, bench_pr8, artifact_report
):
    cells = _closed_form_matrix()

    def measure():
        t_plain, t_hard, plain, hard = _plain_hardened_best(cells)
        # The recovery price: the same matrix under injected raises and
        # delays, retried to a clean finish, vs its undisturbed twin.
        t_chaos, chaos = _timed_run(
            cells,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0),
            fault_plan=FaultPlan(seed=7, rate=0.15, kinds=("raise", "delay")),
        )
        return t_plain, t_hard, plain, hard, t_chaos, chaos

    t_plain, t_hard, plain, hard, t_chaos, chaos = run_once(
        benchmark, measure
    )

    # Verdicts first: the hardened path and the recovered chaos run
    # must both be invisible in the results.
    for a, b, c in zip(plain.outcomes, hard.outcomes, chaos.outcomes):
        assert a.measured == b.measured == c.measured
        assert a.bound == b.bound == c.bound
        assert a.sound and b.sound and c.sound
        assert a.error is None and b.error is None and c.error is None
    retried = sum(1 for o in chaos.outcomes if o.attempts > 1)
    assert retried > 0  # the chaos side actually recovered something

    assert t_hard <= t_plain * OVERHEAD_CEILING + ABS_CUSHION_S, (
        f"hardened path overhead "
        f"{100.0 * (t_hard / t_plain - 1.0):.1f}% exceeds the 5% bar"
    )

    bench_pr8["fault_tolerance_overhead"] = {
        "cells": N_CELLS,
        "plain_s": t_plain,
        "hardened_s": t_hard,
        "hardened_overhead": t_hard / t_plain - 1.0,
        "chaos_recovered_s": t_chaos,
        "chaos_retried_cells": retried,
        "ceiling": OVERHEAD_CEILING - 1.0,
    }
    artifact_report.append(
        "== Fault-tolerance overhead (closed-form fluid campaign, "
        f"{N_CELLS} cells) ==\n"
        f"plain:            {1e3 * t_plain:7.1f} ms\n"
        f"hardened (no faults): {1e3 * t_hard:7.1f} ms   overhead "
        f"{100.0 * (t_hard / t_plain - 1.0):+5.1f}%\n"
        f"chaos, recovered: {1e3 * t_chaos:7.1f} ms   "
        f"({retried} cells retried, verdicts identical)"
    )
