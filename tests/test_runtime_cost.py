"""Cost-model-driven campaign scheduling (repro.runtime.cost)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.cost import (
    BACKEND_VARIANCE,
    CellCostModel,
    backend_profile,
    plan_chunks,
)
from repro.runtime.executor import SerialExecutor, ThreadExecutor
from repro.scenarios.generator import generate_scenarios
from repro.scenarios.runner import run_batch
from repro.scenarios.spec import Scenario


def _cell(**kw) -> Scenario:
    base = dict(name="cost-cell", kinds=("video",) * 3, utilization=0.8)
    base.update(kw)
    return Scenario(**base)


# ----------------------------------------------------------------------
# Estimation
# ----------------------------------------------------------------------
def test_des_cells_estimated_dearer_than_fluid():
    model = CellCostModel()
    fluid = model.estimate(_cell(backend="fluid"))
    des = model.estimate(_cell(backend="des"))
    tree = model.estimate(
        _cell(backend="tree_des", topology="tree", tree_members=16,
              mode="sigma-rho")
    )
    assert fluid > 0
    assert des > fluid
    assert tree > des


def test_estimate_scales_with_workload():
    model = CellCostModel()
    small = model.estimate(_cell(backend="des", horizon=1.0))
    big = model.estimate(_cell(backend="des", horizon=4.0))
    assert big == pytest.approx(4.0 * small)
    shallow = model.estimate(
        _cell(backend="des", topology="chain", hops=2)
    )
    deep = model.estimate(_cell(backend="des", topology="chain", hops=6))
    assert deep == pytest.approx(3.0 * shallow)


def test_legacy_backends_estimated_dearer_than_batched():
    model = CellCostModel()
    assert model.estimate(
        _cell(backend="des_legacy")
    ) > model.estimate(_cell(backend="des"))


def test_variance_marks_des_high():
    model = CellCostModel()
    assert model.relative_variance(_cell(backend="des")) > \
        model.relative_variance(_cell(backend="fluid"))


# ----------------------------------------------------------------------
# Fitting from store records
# ----------------------------------------------------------------------
def test_fit_recovers_coefficient_from_records():
    model = CellCostModel()
    records = []
    coeff = 5e-6
    for horizon in (1.0, 2.0, 3.0, 4.0, 5.0):
        sc = _cell(backend="des", horizon=horizon)
        from repro.runtime.cost import _spec_features

        _, workload = _spec_features(sc)
        records.append(
            {
                "backend": "des",
                "k": sc.k,
                "hops": sc.hops,
                "tree_members": 0,
                "horizon": horizon,
                "dt": sc.dt,
                "wall_time": coeff * workload,
            }
        )
    fitted = CellCostModel.fit(records, base=model)
    assert fitted.coefficients["des"] == pytest.approx(coeff)
    # Backends absent from the data keep their prior coefficients.
    assert fitted.coefficients["fluid"] == model.coefficients["fluid"]
    assert fitted.variance == dict(BACKEND_VARIANCE)


def test_fit_ignores_unusable_records():
    model = CellCostModel.fit(
        [{"backend": "des", "wall_time": 0.0}, {"nonsense": True}, "junk"]
    )
    assert model.coefficients == CellCostModel().coefficients


def test_fit_empty_store_keeps_prior():
    prior = CellCostModel(coefficients={"des": 1.0}, variance={"des": 0.5})
    fitted = CellCostModel.fit([], base=prior)
    assert fitted.coefficients == {"des": 1.0}
    assert fitted.variance == {"des": 0.5}


def test_fit_guards_nonfinite_wall_clocks():
    """NaN/inf wall clocks (error cells, clock glitches) must never
    poison a coefficient -- the degenerate-refit guard."""
    records = [
        {"backend": "des", "horizon": 2.0, "k": 3, "hops": 1,
         "wall_time": wall}
        for wall in (float("nan"), float("inf"), -1.0, None, "fast")
    ]
    fitted = CellCostModel.fit(records)
    assert fitted.coefficients == CellCostModel().coefficients
    assert all(np.isfinite(c) for c in fitted.coefficients.values())


def test_fit_guards_degenerate_feature_columns():
    """Zero/non-finite workloads (the ratio model's singular or constant
    feature column) are skipped; a usable record still fits."""
    records = [
        # Negative horizon -> non-positive workload: the constant/
        # singular-column analogue of the ratio model.
        {"backend": "des", "horizon": -1.0, "k": 3, "wall_time": 0.5},
        # non-finite feature -> non-finite workload.
        {"backend": "des", "horizon": float("inf"), "k": 3, "wall_time": 0.5},
        {"backend": "des", "horizon": float("nan"), "k": 3, "wall_time": 0.5},
    ]
    fitted = CellCostModel.fit(records)
    assert fitted.coefficients == CellCostModel().coefficients
    # Mixing in one clean record fits from that record alone.
    from repro.runtime.cost import _spec_features

    sc = _cell(backend="des", horizon=2.0)
    _, workload = _spec_features(sc)
    records.append(
        {"backend": "des", "horizon": 2.0, "k": sc.k, "hops": 1,
         "tree_members": 0, "dt": sc.dt, "wall_time": 3e-6 * workload}
    )
    refit = CellCostModel.fit(records)
    assert refit.coefficients["des"] == pytest.approx(3e-6)


def test_fit_never_produces_nonpositive_coefficients():
    fitted = CellCostModel.fit(
        [{"backend": "des", "horizon": 2.0, "k": 3, "wall_time": 1e-300},
         {"backend": "des", "horizon": 2.0, "k": 3, "wall_time": 1.0}]
    )
    assert all(c > 0 for c in fitted.coefficients.values())


# ----------------------------------------------------------------------
# Chunk planning
# ----------------------------------------------------------------------
def test_plan_chunks_is_a_partition_dearest_first():
    rng = np.random.default_rng(0)
    costs = rng.uniform(0.001, 2.0, size=57)
    plan = plan_chunks(costs, jobs=4)
    flat = [i for chunk in plan for i in chunk]
    assert sorted(flat) == list(range(57))
    # Dearest-first: the very first scheduled cell is the dearest.
    assert plan[0][0] == int(np.argmax(costs))
    # Chunk sizes bounded.
    assert all(1 <= len(chunk) <= 16 for chunk in plan)


def test_plan_chunks_variance_shrinks_chunks():
    costs = [0.01] * 32
    uniform = plan_chunks(costs, jobs=2, variances=[0.0] * 32)
    jittery = plan_chunks(costs, jobs=2, variances=[2.0] * 32)
    assert max(len(c) for c in jittery) < max(len(c) for c in uniform)


def test_plan_chunks_edge_cases():
    assert plan_chunks([], jobs=2) == []
    assert plan_chunks([0.0, 0.0], jobs=1) != []
    with pytest.raises(ValueError):
        plan_chunks([1.0], jobs=0)
    with pytest.raises(ValueError):
        plan_chunks([1.0, -1.0], jobs=1)
    with pytest.raises(ValueError):
        plan_chunks([1.0, 1.0], jobs=1, variances=[0.1])


def test_single_high_variance_cell_travels_nearly_alone():
    costs = [1e-6] * 20
    variances = [0.0] * 20
    variances[7] = 5.0
    plan = plan_chunks(costs, jobs=2, variances=variances)
    for chunk in plan:
        if 7 in chunk:
            assert len(chunk) <= 2


# ----------------------------------------------------------------------
# End to end: scheduling must not change outcomes
# ----------------------------------------------------------------------
@pytest.mark.runtime
def test_cost_scheduled_batch_is_bit_identical():
    scenarios = generate_scenarios(10, seed=3, horizon=0.6)
    serial = run_batch(scenarios, executor=SerialExecutor())
    threaded = run_batch(
        scenarios,
        executor=ThreadExecutor(jobs=2),
        cost_model=CellCostModel(),
    )
    for a, b in zip(serial.outcomes, threaded.outcomes):
        assert a.scenario.name == b.scenario.name
        assert a.measured == b.measured
        assert a.bound == b.bound
        assert a.sound == b.sound


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
def test_backend_profile_breakdown():
    records = [
        {"eff_backend": "fluid", "wall_time": 0.01},
        {"eff_backend": "fluid", "wall_time": 0.03},
        {"eff_backend": "tree_des", "wall_time": 1.0},
    ]
    rows = backend_profile(records)
    assert [r["backend"] for r in rows] == ["tree_des", "fluid"]
    assert rows[0]["cells"] == 1
    assert rows[1]["wall_total"] == pytest.approx(0.04)
    assert rows[0]["share"] == pytest.approx(1.0 / 1.04)
    assert backend_profile([]) == []
