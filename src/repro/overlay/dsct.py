"""DSCT tree construction (Tu & Jia, GlobeCom'04; Section V of the paper).

DSCT ("a scalable and efficient end host multicast for peer-to-peer
systems") is a *location-aware hierarchy and cluster tree*:

1. Members partition into **local domains** -- "each local domain only
   contains the group members attaching to the same backbone routers".
2. Inside a domain, the closest hosts (by RTT) form **intra-clusters**
   of size ``s_ina in [k, 3k-1]``; each cluster's core joins the next
   layer and clusters again, until one host -- the **local core** --
   tops the domain.
3. Across domains, the local cores form **inter-clusters** of size
   ``s_ine in [k, 3k-1]`` and keep layering the same way until a single
   host tops the whole tree.

Tree edges run core -> members of its cluster.  When the multicast
source is among the members it is preferred as core of every cluster it
sits in, so the hierarchy is rooted at the source (the construction the
paper's Theorem 7 assumes).

The resulting height is bounded by Lemma 2,
``H <= ceil(log_k [k + (n - j1)(k-1)])`` -- a property test in the test
suite checks every constructed tree against the bound.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.overlay.clustering import cluster_by_proximity, elect_core
from repro.overlay.tree import MulticastTree
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["build_dsct_tree", "layer_once"]


def layer_once(
    layer: Sequence[int],
    rtt: np.ndarray,
    k: int,
    rng: np.random.Generator,
    parent: dict[int, int],
    prefer: Optional[int],
    *,
    core_policy: str = "medoid",
    size_cap_per_seed: Optional[Callable[[int], int]] = None,
    fill_to_capacity: bool = False,
) -> list[int]:
    """Cluster one layer, record core->member edges, return the next layer."""
    clusters = cluster_by_proximity(
        layer, rtt, k, rng, size_cap_per_seed=size_cap_per_seed,
        fill_to_capacity=fill_to_capacity,
    )
    next_layer = []
    charge = getattr(size_cap_per_seed, "charge", None)
    for cluster in clusters:
        if core_policy == "seed":
            # The seed cores its cluster unconditionally: capacity caps
            # were computed against the seed, so honouring `prefer` here
            # would bind a cap to the wrong host.  Rooting at the source
            # is restored by the top-level graft in the tree builders.
            core = cluster[0]
        elif core_policy == "capacity":
            # Capacity-aware core election: the member with the largest
            # remaining fan-out budget cores the cluster.  Since the
            # cluster size was capped by the seed's budget and the core
            # maximises the budget, the core can always afford its
            # children (no capacity violation).
            if size_cap_per_seed is None:
                raise ValueError("core_policy='capacity' needs size_cap_per_seed")
            core = max(cluster, key=lambda m: (size_cap_per_seed(m), -m))
        elif core_policy == "medoid":
            core = elect_core(cluster, rtt, prefer=prefer)
        else:
            raise ValueError(f"unknown core_policy {core_policy!r}")
        for m in cluster:
            if m != core:
                parent[m] = core
        if charge is not None:
            # Capacity-aware budgets are cumulative across layers.
            charge(core, len(cluster) - 1)
        next_layer.append(core)
    return next_layer


def build_dsct_tree(
    source: int,
    members: Sequence[int],
    rtt: np.ndarray,
    host_router: Sequence[int],
    *,
    k: int = 3,
    rng: RandomSource = None,
    core_policy: str = "medoid",
    size_cap_per_seed: Optional[Callable[[int], int]] = None,
    fill_to_capacity: bool = False,
) -> MulticastTree:
    """Build the DSCT tree of one multicast group.

    Parameters
    ----------
    source:
        The group's source host; must be a member.  It becomes the root.
    members:
        Member host indices (including the source).
    rtt:
        Host-to-host RTT matrix (see :func:`repro.topology.routing.host_rtt_matrix`).
    host_router:
        ``host_router[h]`` -- backbone router of host ``h`` (defines the
        local domains).
    k:
        Cluster size base (3 in the paper's experiments).
    rng:
        Seed/generator driving the random cluster sizes.
    core_policy:
        ``"medoid"`` (RTT centre, the default protocol behaviour) or
        ``"seed"`` (the cluster seed cores it -- used by the
        capacity-aware variant so fan-out caps bind to the right host).
    size_cap_per_seed:
        Optional per-host cluster size cap (capacity-aware variant).

    Returns
    -------
    MulticastTree rooted at ``source``.
    """
    members = list(dict.fromkeys(members))
    if source not in members:
        raise ValueError("the source must be one of the members")
    if len(members) == 1:
        return MulticastTree(root=source, parent={})
    gen = ensure_rng(rng)
    parent: dict[int, int] = {}

    # 1. Local domains by backbone router.
    domains: dict[int, list[int]] = {}
    for m in members:
        domains.setdefault(int(host_router[m]), []).append(m)

    # 2. Intra-domain layering -> one local core per domain.
    local_cores: list[int] = []
    for router in sorted(domains):
        layer = domains[router]
        prefer = source if source in layer else None
        while len(layer) > 1:
            layer = layer_once(
                layer, rtt, k, gen, parent, prefer,
                core_policy=core_policy, size_cap_per_seed=size_cap_per_seed,
                fill_to_capacity=fill_to_capacity,
            )
        local_cores.append(layer[0])

    # 3. Inter-domain layering of the local cores.
    layer = local_cores
    while len(layer) > 1:
        layer = layer_once(
            layer, rtt, k, gen, parent, source if source in layer else None,
            core_policy=core_policy, size_cap_per_seed=size_cap_per_seed,
            fill_to_capacity=fill_to_capacity,
        )

    top = layer[0]
    if top != source:
        # The source was preferred in every cluster containing it, so it
        # survives to the top whenever it is a member; reaching here
        # means a capacity cap displaced it -- re-root by grafting.
        parent[top] = source
        if source in parent:
            del parent[source]
    return MulticastTree(root=source, parent=parent)
