"""SQLite result-store backend: safe concurrent writers for campaigns.

The JSONL backend is single-writer: two processes appending to one
``results.jsonl`` can interleave mid-line and tear records.  This
backend keeps the exact store contract (records, last-write-wins keys,
quarantine, deterministic ``summary.json``) on an SQLite file instead:

* **WAL journal + busy timeout** -- readers never block writers and
  concurrent writers serialise at commit granularity, so N campaign
  shard processes (or hosts sharing a filesystem) fill one store
  safely; ``append_many`` commits a whole batch of cells in one
  transaction, which is also what makes ingest fast.
* **content-hashed cell keys as primary keys** -- ``INSERT OR
  REPLACE`` gives the JSONL backend's duplicate-key semantics (the
  last record for a key wins) directly in the schema.
* **corrupt-row quarantine parity** -- record payloads are stored as
  canonical JSON text; a row whose payload no longer parses (manual
  edits, partial restores) is moved to a ``quarantine`` table on
  :meth:`load`, counted, and never raised -- the same recovery story
  as ``quarantine.jsonl``.

The JSON-text payload keeps the two backends bit-compatible: a record
round-trips through either backend to the identical Python dict
(non-finite floats included), so summaries, diffs, and merges never
see which backend held the data.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Mapping, Union

from repro.runtime.store import ResultStore, _canonical_json, _coerce_root

__all__ = ["SqliteResultStore"]

#: Milliseconds a writer waits on a locked database before erroring;
#: generous because shard processes commit whole campaign batches.
BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key    TEXT PRIMARY KEY,
    v      INTEGER NOT NULL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    line TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS telemetry (
    id     INTEGER PRIMARY KEY,
    kind   TEXT NOT NULL,
    record TEXT NOT NULL
);
"""


class SqliteResultStore(ResultStore):
    """WAL-mode SQLite store under one campaign directory.

    Two files: ``results.sqlite`` (records + quarantine tables) and the
    shared ``summary.json``.  Open one instance per process; SQLite's
    locking makes cross-process writes safe, and every operation here
    is a single transaction.
    """

    RESULTS = "results.sqlite"

    kind = "sqlite"

    def __init__(self, root: Union[str, Path]):
        self.root = _coerce_root(root, "sqlite")
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantined = 0
        self._conn: sqlite3.Connection | None = None

    @property
    def db_path(self) -> Path:
        return self.root / self.RESULTS

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(self.db_path, timeout=BUSY_TIMEOUT_MS / 1000)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- writing ---------------------------------------------------------
    @staticmethod
    def _row(record: Mapping[str, Any]) -> tuple[str, int, str]:
        rec = ResultStore._stamp(record)
        return (str(rec["key"]), int(rec["v"]), _canonical_json(rec))

    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [self._row(rec) for rec in records]
        if not rows:
            return
        conn = self._connect()
        with conn:  # one transaction per batch, however large
            conn.executemany(
                "INSERT OR REPLACE INTO results (key, v, record) "
                "VALUES (?, ?, ?)",
                rows,
            )

    def append_telemetry(self, records: Iterable[Mapping[str, Any]]) -> None:
        rows = [
            (str(rec.get("kind", "cell")), _canonical_json(dict(rec)))
            for rec in records
        ]
        if not rows:
            return
        conn = self._connect()
        with conn:
            conn.executemany(
                "INSERT INTO telemetry (kind, record) VALUES (?, ?)",
                rows,
            )

    def load_telemetry(self) -> list[dict[str, Any]]:
        if not self.db_path.exists():
            return []
        out: list[dict[str, Any]] = []
        for (raw,) in self._connect().execute(
            "SELECT record FROM telemetry ORDER BY id"
        ):
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError:
                continue  # telemetry is best-effort: skip bad rows
            if isinstance(rec, dict):
                out.append(rec)
        return out

    # -- reading ---------------------------------------------------------
    def load(self) -> dict[str, dict[str, Any]]:
        self.quarantined = 0
        if not self.db_path.exists():
            return {}
        conn = self._connect()
        records: dict[str, dict[str, Any]] = {}
        bad: list[tuple[str, str]] = []  # (key, raw payload)
        for key, raw in conn.execute(
            "SELECT key, record FROM results ORDER BY rowid"
        ):
            try:
                rec = json.loads(raw)
                rec_key = rec["key"]
            except (json.JSONDecodeError, TypeError, KeyError):
                bad.append((key, raw))
                continue
            records[str(rec_key)] = rec
        if bad:
            self.quarantined = len(bad)
            with conn:
                conn.executemany(
                    "INSERT INTO quarantine (line) VALUES (?)",
                    [(raw,) for _, raw in bad],
                )
                conn.executemany(
                    "DELETE FROM results WHERE key = ?",
                    [(key,) for key, _ in bad],
                )
        return records

    def quarantine_lines(self) -> list[str]:
        """Raw payloads moved aside so far (parity with ``quarantine.jsonl``)."""
        if not self.db_path.exists():
            return []
        return [
            line
            for (line,) in self._connect().execute(
                "SELECT line FROM quarantine ORDER BY rowid"
            )
        ]
