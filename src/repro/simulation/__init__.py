"""Traffic simulation substrate.

The paper evaluates with ns-2; we provide two in-repo backends with the
same regulator/MUX semantics (see DESIGN.md, substitution table):

* a **discrete-event simulator** (:mod:`repro.simulation.engine` and the
  component modules) with exact packet semantics -- token-bucket
  regulators, staggered vacation regulators, work-conserving
  multiplexers with FIFO/priority disciplines, multi-hop host chains;
* a **fluid backend** (:mod:`repro.simulation.fluid`) that rasterises
  traffic onto a uniform time grid and pushes cumulative curves through
  vectorised NumPy kernels -- orders of magnitude faster for the
  parameter sweeps, cross-validated against the DES in the test suite.

Both backends consume the same :class:`~repro.simulation.flow.PacketTrace`
inputs, so any scenario can be run on either and compared.

The DES ships two component engines: the **batched** engine
(:mod:`repro.simulation.batched`: window-batched vacation service,
commit-on-receive MUX drains, and an event-free array fast path for the
primed vacation host -- the default) and the **legacy** per-packet
event chain (kept addressable as ``engine="legacy"`` /
``backend="des_legacy"`` for the equivalence suite).
"""

from repro.simulation.batched import (
    BatchMuxServer,
    BatchVacationComponent,
    vacation_departures,
)
from repro.simulation.chain import ChainResult, simulate_regulated_chain
from repro.simulation.engine import Simulator
from repro.simulation.flow import (
    AudioSource,
    CBRSource,
    OnOffSource,
    PacketTrace,
    PoissonSource,
    TrafficSource,
    VBRVideoSource,
)
from repro.simulation.fluid import (
    FluidChainResult,
    fluid_mux,
    fluid_token_bucket,
    fluid_vacation_regulator,
    simulate_fluid_host,
    simulate_fluid_chain,
)
from repro.simulation.host_sim import HostResult, simulate_regulated_host
from repro.simulation.loss import LossAccountant, LossyLink
from repro.simulation.tree_sim import TreeSimResult, simulate_multicast_tree
from repro.simulation.measures import DelayRecorder, DelayStats
from repro.simulation.mux_sim import MuxServer
from repro.simulation.packet import Packet
from repro.simulation.regulator_sim import TokenBucketComponent, VacationComponent

__all__ = [
    "Simulator",
    "Packet",
    "TrafficSource",
    "PacketTrace",
    "CBRSource",
    "AudioSource",
    "VBRVideoSource",
    "OnOffSource",
    "PoissonSource",
    "TokenBucketComponent",
    "VacationComponent",
    "BatchVacationComponent",
    "BatchMuxServer",
    "vacation_departures",
    "MuxServer",
    "DelayRecorder",
    "DelayStats",
    "HostResult",
    "simulate_regulated_host",
    "LossyLink",
    "LossAccountant",
    "TreeSimResult",
    "simulate_multicast_tree",
    "ChainResult",
    "simulate_regulated_chain",
    "fluid_token_bucket",
    "fluid_vacation_regulator",
    "fluid_mux",
    "simulate_fluid_host",
    "simulate_fluid_chain",
    "FluidChainResult",
]
