"""Setuptools shim.

All project metadata lives in ``pyproject.toml``.  This file exists so
the package can be installed editable on machines without the ``wheel``
package (PEP 660 editable builds need it): there,

    pip install -e . --no-build-isolation --no-use-pep517

falls back to the classic ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
