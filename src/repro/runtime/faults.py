"""Deterministic, seeded fault injection for campaign chaos testing.

The runtime's fault-tolerance story (retries, per-cell timeouts, pool
resurrection, crash-consistent stores) is only trustworthy if it is
*exercised*, and exercised reproducibly.  This module is the harness:
a picklable :class:`FaultPlan` that decides -- as a pure function of
``(fault_seed, site, cell fingerprint, attempt)`` -- whether a given
evaluation or store write fails, and how:

``raise``
    An :class:`InjectedFault` thrown inside the worker stage (between
    realisation and simulation), indistinguishable from a kernel crash
    to everything above it.
``kill``
    ``os._exit`` in the worker **process** -- a hard death the parent
    only sees as a broken pool.  In the parent process itself (serial
    executor, thread workers, degraded-serial fallback) a kill degrades
    to ``raise``: the campaign must survive its own chaos harness.
``delay`` / ``hang``
    ``time.sleep`` for :attr:`FaultPlan.delay_s` (a slow cell) or
    :attr:`FaultPlan.hang_s` (a stuck cell, long enough to trip the
    per-cell timeout watchdog; raises afterwards as a failsafe so an
    un-watched hang still resolves to a retryable error).
``fail`` / ``torn`` (store site)
    A store write that raises before the record lands, or after writing
    a *torn prefix* of it -- the two ways a crash can interrupt an
    append.  The store backends apply these themselves (the JSONL
    backend leaves real torn bytes on disk; SQLite commits a corrupt
    payload row) so recovery exercises the actual quarantine path.

Determinism contract: decisions depend only on the plan's seed and the
``(site, token, attempt)`` triple -- never on wall clock, process,
thread, execution order, or prior draws -- so two runs with the same
plan inject the same faults at the same cells, and the chaos gate in
``ci/gate.sh`` can assert that a fault-riddled campaign's
``summary.json`` is byte-identical to an undisturbed run.  Injection
is **off by default and zero-overhead when off**: the per-cell check
is a single module-global ``None`` test, and no fingerprint is ever
hashed unless a plan is active.

Attempt numbers come from the executor (thread-local, see
:func:`attempt_scope`): a fault fires only while ``attempt <=
max_attempt`` (default: first attempt only), which guarantees a
bounded retry policy always recovers -- the property the determinism
gate stands on.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import derive_seed

__all__ = [
    "CELL_FAULT_KINDS",
    "STORE_FAULT_KINDS",
    "KILL_EXIT_CODE",
    "InjectedFault",
    "FaultPlan",
    "active_plan",
    "activate",
    "allow_kill",
    "kill_allowed",
    "current_attempt",
    "attempt_scope",
    "check_fault",
    "evaluate_cell_under_plan",
    "plan_to_dict",
    "plan_from_dict",
]

#: Fault kinds the cell (kernel) site understands.
CELL_FAULT_KINDS = ("raise", "kill", "delay", "hang")
#: Fault kinds the store-write site understands.
STORE_FAULT_KINDS = ("fail", "torn")
#: Exit status of an injected worker kill (diagnosable in pool logs).
KILL_EXIT_CODE = 113


class InjectedFault(RuntimeError):
    """A failure raised by the fault-injection harness (retryable)."""


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule (picklable, immutable).

    ``decide`` is a pure function of ``(seed, site, token, attempt)``;
    everything else is how each decision is *applied*.  ``rate`` is the
    per-(cell, attempt) fault probability at the kernel site;
    ``store_rate`` (default: same as ``rate``) the per-record one at
    the store site.  Faults fire only while ``attempt <= max_attempt``,
    so any retry policy with ``max_attempts > max_attempt`` recovers
    every injected fault by construction.
    """

    seed: int
    rate: float
    kinds: tuple = ("raise", "kill", "delay")
    store_kinds: tuple = STORE_FAULT_KINDS
    store_rate: Optional[float] = None
    max_attempt: int = 1
    delay_s: float = 0.02
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must lie in [0, 1], got {self.rate}")
        if self.store_rate is not None and not 0.0 <= self.store_rate <= 1.0:
            raise ValueError(
                f"store fault rate must lie in [0, 1], got {self.store_rate}"
            )
        if self.max_attempt < 0:
            raise ValueError("max_attempt must be >= 0 (0 disables injection)")
        unknown = set(self.kinds) - set(CELL_FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown cell fault kinds {sorted(unknown)}; "
                f"expected a subset of {CELL_FAULT_KINDS}"
            )
        unknown = set(self.store_kinds) - set(STORE_FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown store fault kinds {sorted(unknown)}; "
                f"expected a subset of {STORE_FAULT_KINDS}"
            )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a default plan from the CLI's ``SEED:RATE`` syntax."""
        parts = str(spec).split(":")
        try:
            if len(parts) != 2:
                raise ValueError(spec)
            seed, rate = int(parts[0]), float(parts[1])
        except ValueError:
            raise ValueError(
                f"fault spec must look like 'SEED:RATE' (e.g. 7:0.15), "
                f"got {spec!r}"
            ) from None
        return cls(seed=seed, rate=rate)

    # -- the pure decision function --------------------------------------
    def decide(self, site: str, token: str, attempt: int) -> Optional[str]:
        """The fault (or ``None``) for one ``(site, token, attempt)``.

        Pure: the same arguments always return the same kind, in any
        process, at any time, in any call order.
        """
        if attempt > self.max_attempt:
            return None
        if site == "store":
            kinds, rate = self.store_kinds, (
                self.rate if self.store_rate is None else self.store_rate
            )
        else:
            kinds, rate = self.kinds, self.rate
        if not kinds or rate <= 0.0:
            return None
        rng = np.random.default_rng(
            derive_seed(self.seed, "fault", site, str(token), int(attempt))
        )
        if rng.random() >= rate:
            return None
        return kinds[int(rng.integers(len(kinds)))]

    # -- application -----------------------------------------------------
    def apply_cell(self, fingerprint: str) -> None:
        """Fire this attempt's kernel-site fault for a cell, if any."""
        attempt = current_attempt()
        kind = self.decide("kernel", fingerprint, attempt)
        if kind is None:
            return
        from repro.runtime.telemetry import counter_add

        counter_add("injected_faults")
        if kind == "delay":
            time.sleep(self.delay_s)
            return
        if kind == "hang":
            time.sleep(self.hang_s)
            # Failsafe: without a timeout watchdog the hang must still
            # resolve to a retryable error, never a silent slow success.
        elif kind == "kill":
            if multiprocessing.parent_process() is not None or _KILL_ALLOWED:
                os._exit(KILL_EXIT_CODE)
            kind = "kill->raise"  # the parent process must survive
        raise InjectedFault(
            f"injected fault {kind!r} at cell {fingerprint} "
            f"(seed={self.seed}, attempt={attempt})"
        )

    def store_fault(self, key: str) -> Optional[str]:
        """The store-site fault for one record key on this attempt."""
        return self.decide("store", key, current_attempt())


# ----------------------------------------------------------------------
# Per-process plumbing (plan installation, attempt tracking)
# ----------------------------------------------------------------------
#: The process-wide active plan (installed per worker call by
#: :func:`evaluate_cell_under_plan`, which crosses pickle boundaries).
_PLAN: Optional[FaultPlan] = None

#: Whether an injected ``kill`` may hard-exit *this* process even when
#: it is not a multiprocessing pool child.  Off by default -- a
#: campaign's own process must survive its chaos harness -- and armed
#: only by dedicated worker processes (``scenarios work``) whose death
#: the lease coordinator is built to reclaim.
_KILL_ALLOWED = False

_TLS = threading.local()


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


@contextmanager
def activate(plan: Optional[FaultPlan]):
    """Install ``plan`` as this process's active plan for the block."""
    global _PLAN
    prev = _PLAN
    _PLAN = plan
    try:
        yield
    finally:
        _PLAN = prev


def allow_kill(flag: bool = True) -> None:
    """Arm (or disarm) hard ``kill`` faults for this whole process.

    Pool children always honour kills; any other process degrades them
    to ``raise`` unless it opts in here.  ``scenarios work`` opts in:
    a lease worker's death is exactly what the coordinator's reclaim
    path exists to absorb, so its chaos runs must die for real.
    """
    global _KILL_ALLOWED
    _KILL_ALLOWED = bool(flag)


def kill_allowed() -> bool:
    """Whether this process honours injected hard kills (see above)."""
    return _KILL_ALLOWED or multiprocessing.parent_process() is not None


def current_attempt() -> int:
    """The executing attempt number of this thread (1-based)."""
    return getattr(_TLS, "attempt", 1)


@contextmanager
def attempt_scope(attempt: int):
    """Mark the current thread as executing ``attempt`` (the executor
    wraps every task call; the campaign wraps store writes)."""
    prev = getattr(_TLS, "attempt", 1)
    _TLS.attempt = int(attempt)
    try:
        yield
    finally:
        _TLS.attempt = prev


def check_fault(site: str, spec) -> None:
    """The kernel-site injection hook (called inside ``evaluate_cell``).

    Zero-overhead default: a single ``None`` check when no plan is
    active -- the fingerprint is only hashed under an active plan.
    """
    if _PLAN is None:
        return
    from repro.runtime.store import spec_fingerprint

    _PLAN.apply_cell(spec_fingerprint(spec))


def plan_to_dict(plan: FaultPlan) -> dict:
    """A JSON-safe dict round-trippable through :func:`plan_from_dict`.

    Lease coordinators hand their exact plan to ``scenarios work``
    subprocesses this way (the CLI's ``SEED:RATE`` shorthand cannot
    express custom kinds or attempt ceilings)."""
    import dataclasses

    return dataclasses.asdict(plan)


def plan_from_dict(payload: dict) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` serialised by :func:`plan_to_dict`."""
    data = dict(payload)
    for field in ("kinds", "store_kinds"):
        if field in data and data[field] is not None:
            data[field] = tuple(data[field])
    return FaultPlan(**data)


def evaluate_cell_under_plan(plan: FaultPlan, scenario):
    """Worker function for fault-injected campaigns (picklable via
    ``functools.partial(evaluate_cell_under_plan, plan)``): installs
    the plan in the executing process, then runs the normal cell
    evaluation with injection live."""
    from repro.scenarios.runner import evaluate_cell

    with activate(plan):
        return evaluate_cell(scenario)
