"""Persistent campaign result store with content-addressed cell keys.

A campaign directory holds three files:

``results.jsonl``
    One JSON object per evaluated cell (schema below), appended as
    cells complete.  The file is the source of truth: re-running a
    campaign with ``resume`` skips every cell whose key already has a
    record, so a crashed or interrupted campaign continues where it
    stopped.  Duplicate keys are legal; the **last** record wins.
``quarantine.jsonl``
    Lines of ``results.jsonl`` that failed to parse (torn writes,
    manual edits).  Corruption is never fatal: bad lines are moved
    here on load and the campaign proceeds without them.
``summary.json``
    Aggregate counts rewritten after every campaign run.

Cell record schema (``v`` = 1)::

    {"v": 1,
     "key": <sha256 prefix over the full scenario spec, seed included>,
     "fingerprint": <sha256 prefix over the spec minus its seed>,
     "name": str, "sound": bool, "error": str | null,
     "measured": float, "bound": float, "baseline_bound": float,
     "eps": float, "tightness": float,
     "eff_mode": str, "eff_backend": str, "hops": int,
     "propagation_total": float, "events": int, "cancelled_events": int,
     "height_ok": bool, "wall_time": float,
     "perf_budget": float, "budget_ok": bool, "tags": [str, ...]}

``key`` identifies *the evaluation*: it hashes every field that can
change a realised trace or a measured delay (any such change
re-evaluates), but **not** ``perf_budget`` -- a budget only moves the
verdict threshold, so tightening it must neither invalidate stored
measurements nor decouple two otherwise-identical campaigns under
``diff``.  ``fingerprint`` additionally drops the seed: it names the
configuration alone, and is what deterministic per-cell seed
derivation hashes (:func:`repro.scenarios.generator.generate_scenarios`).
Keys are content hashes, so two campaigns are diffable cell-by-cell no
matter how their matrices were ordered or chunked.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Union

__all__ = [
    "SCHEMA_VERSION",
    "spec_fingerprint",
    "cell_key",
    "ResultStore",
    "CampaignDiff",
    "diff_records",
    "diff_stores",
]

SCHEMA_VERSION = 1

#: Hex digits kept from the sha256 digest (64 bits: ample for campaign
#: sizes while keeping keys human-greppable).
_KEY_LEN = 16


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _spec_dict(spec: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        return dataclasses.asdict(spec)
    if isinstance(spec, Mapping):
        return dict(spec)
    raise TypeError(
        f"spec must be a dataclass instance or mapping, got {type(spec).__name__}"
    )


#: Spec fields that cannot change a realised trace or measured delay
#: (verdict-threshold knobs); excluded from both hashes so execution
#: details never re-key or re-seed a cell.
_VERDICT_ONLY_FIELDS = ("perf_budget",)


def _hash_fields(fields: Mapping[str, Any]) -> str:
    digest = hashlib.sha256(_canonical_json(dict(fields)).encode()).hexdigest()
    return digest[:_KEY_LEN]


def spec_fingerprint(spec: Any) -> str:
    """Content hash of a scenario spec **excluding seed and verdict knobs**.

    The fingerprint names a cell's configuration; the deterministic
    seed derivation ``derive_seed(campaign_seed, fingerprint)`` then
    gives every cell an RNG stream that depends only on *what* the cell
    is, never on where or when it executes or how it is verdicted.
    """
    fields = _spec_dict(spec)
    fields.pop("seed", None)
    for name in _VERDICT_ONLY_FIELDS:
        fields.pop(name, None)
    return _hash_fields(fields)


def cell_key(spec: Any) -> str:
    """Content hash of the evaluation-relevant spec (seed included).

    Verdict-only knobs (``perf_budget``) are excluded: they cannot
    change a measurement, so budget changes neither invalidate stored
    results on resume nor break cell alignment across ``diff``.
    """
    fields = _spec_dict(spec)
    for name in _VERDICT_ONLY_FIELDS:
        fields.pop(name, None)
    return _hash_fields(fields)


class ResultStore:
    """Append-only JSONL store under one campaign directory."""

    RESULTS = "results.jsonl"
    QUARANTINE = "quarantine.jsonl"
    SUMMARY = "summary.json"

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Number of corrupt lines moved aside by the last :meth:`load`.
        self.quarantined = 0

    @property
    def results_path(self) -> Path:
        return self.root / self.RESULTS

    @property
    def quarantine_path(self) -> Path:
        return self.root / self.QUARANTINE

    @property
    def summary_path(self) -> Path:
        return self.root / self.SUMMARY

    # -- writing ---------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> None:
        """Append one cell record (must carry a ``key``)."""
        if "key" not in record:
            raise ValueError("a cell record needs a 'key'")
        rec = {"v": SCHEMA_VERSION, **record}
        with self.results_path.open("a") as fh:
            fh.write(_canonical_json(rec) + "\n")

    def append_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        for rec in records:
            self.append(rec)

    # -- reading ---------------------------------------------------------
    def load(self) -> dict[str, dict[str, Any]]:
        """All valid records keyed by cell key (last record wins).

        Unparseable or keyless lines are moved to ``quarantine.jsonl``
        and counted in :attr:`quarantined` -- never raised.
        """
        self.quarantined = 0
        records: dict[str, dict[str, Any]] = {}
        if not self.results_path.exists():
            return records
        bad: list[str] = []
        for line in self.results_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                key = rec["key"]
            except (json.JSONDecodeError, TypeError, KeyError):
                bad.append(line)
                continue
            records[str(key)] = rec
        if bad:
            self.quarantined = len(bad)
            with self.quarantine_path.open("a") as fh:
                for line in bad:
                    fh.write(line + "\n")
            kept = [_canonical_json(rec) for rec in records.values()]
            self.results_path.write_text(
                "".join(r + "\n" for r in kept)
            )
        return records

    def completed_keys(self) -> set[str]:
        """Keys of cells whose evaluation finished without a crash."""
        return {
            key
            for key, rec in self.load().items()
            if not rec.get("error")
        }

    # -- summary ---------------------------------------------------------
    def write_summary(self, extra: Optional[Mapping[str, Any]] = None) -> dict:
        """Aggregate the store into ``summary.json`` (and return it)."""
        records = self.load()
        finite = [
            r["tightness"]
            for r in records.values()
            if isinstance(r.get("tightness"), (int, float))
        ]
        summary = {
            "v": SCHEMA_VERSION,
            "cells": len(records),
            "sound": sum(1 for r in records.values() if r.get("sound")),
            "unsound": sum(
                1
                for r in records.values()
                if not r.get("sound") and not r.get("error")
            ),
            "errors": sum(1 for r in records.values() if r.get("error")),
            "budget_violations": sum(
                1 for r in records.values() if r.get("budget_ok") is False
            ),
            "max_tightness": max(finite, default=0.0),
            "wall_time_total": sum(
                float(r.get("wall_time", 0.0)) for r in records.values()
            ),
            "quarantined_lines": self.quarantined,
        }
        if extra:
            summary.update(extra)
        self.summary_path.write_text(json.dumps(summary, indent=2) + "\n")
        return summary


# ----------------------------------------------------------------------
# Campaign diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignDiff:
    """Cell-level comparison of two campaigns (keys are cell keys)."""

    regressions: tuple[str, ...]          # sound -> unsound/error
    fixes: tuple[str, ...]                # unsound/error -> sound
    budget_regressions: tuple[str, ...]   # within budget -> over budget
    added: tuple[str, ...]                # only in the new campaign
    removed: tuple[str, ...]              # only in the old campaign

    @property
    def clean(self) -> bool:
        return not self.regressions and not self.budget_regressions

    def summary_lines(self) -> list[str]:
        lines = [
            f"soundness regressions: {len(self.regressions)}",
            f"soundness fixes: {len(self.fixes)}",
            f"perf-budget regressions: {len(self.budget_regressions)}",
            f"cells added: {len(self.added)}, removed: {len(self.removed)}",
        ]
        lines.extend(f"  REGRESSION {key}" for key in self.regressions)
        lines.extend(
            f"  BUDGET-REGRESSION {key}" for key in self.budget_regressions
        )
        return lines


def _is_sound(rec: Mapping[str, Any]) -> bool:
    return bool(rec.get("sound")) and not rec.get("error")


def diff_records(
    old: Mapping[str, Mapping[str, Any]],
    new: Mapping[str, Mapping[str, Any]],
) -> CampaignDiff:
    """Compare two record maps cell by cell (content-hash aligned)."""
    both = sorted(set(old) & set(new))
    regressions = tuple(
        k for k in both if _is_sound(old[k]) and not _is_sound(new[k])
    )
    fixes = tuple(
        k for k in both if not _is_sound(old[k]) and _is_sound(new[k])
    )
    budget_regressions = tuple(
        k
        for k in both
        if old[k].get("budget_ok") is not False
        and new[k].get("budget_ok") is False
    )
    return CampaignDiff(
        regressions=regressions,
        fixes=fixes,
        budget_regressions=budget_regressions,
        added=tuple(sorted(set(new) - set(old))),
        removed=tuple(sorted(set(old) - set(new))),
    )


def diff_stores(
    old: Union[str, Path, ResultStore], new: Union[str, Path, ResultStore]
) -> CampaignDiff:
    """Diff two campaign directories (or stores)."""
    old_store = old if isinstance(old, ResultStore) else ResultStore(old)
    new_store = new if isinstance(new, ResultStore) else ResultStore(new)
    return diff_records(old_store.load(), new_store.load())
