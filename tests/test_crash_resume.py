"""Crash consistency: SIGKILL a live campaign, resume to the same bytes.

The store layer claims crash-consistent writes (append atomicity plus
torn-line quarantine on JSONL, transactional commits on SQLite, and a
fsync'd write-temp-then-replace ``summary.json``).  These tests earn
the claim the honest way: a subprocess runs a sliced campaign, the
parent SIGKILLs it mid-run at an arbitrary instant, and a plain
``resume=True`` re-run must converge to a ``summary.json``
byte-identical to an undisturbed campaign -- on both backends,
whatever half-written state the kill left behind.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.runtime import run_campaign
from repro.runtime.store import JsonlResultStore, open_store
from repro.scenarios import generate_scenarios

pytestmark = pytest.mark.runtime

N_CELLS = 24
SEED = 11

#: Driver for the victim subprocess: evaluates the smoke matrix in
#: small resumable slices, so a kill can land between (or inside) many
#: separate store-append windows.
_DRIVER = """
import sys
from repro.runtime import run_campaign
from repro.scenarios import generate_scenarios

store = sys.argv[1]
cells = generate_scenarios({n}, seed={seed})
for hi in range(3, {n} + 1, 3):
    run_campaign(cells[:hi], store=store, resume=True)
print("COMPLETE", flush=True)
""".format(n=N_CELLS, seed=SEED)


def _run_driver(store_url):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return subprocess.Popen(
        [sys.executable, "-c", _DRIVER, store_url],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


@pytest.fixture(scope="module")
def reference_summary(tmp_path_factory):
    root = tmp_path_factory.mktemp("ref") / "store"
    report = run_campaign(
        generate_scenarios(N_CELLS, seed=SEED), store=root
    )
    assert report.clean
    return (root / "summary.json").read_bytes()


@pytest.mark.parametrize("scheme", ["jsonl:", "sqlite:"])
def test_sigkill_mid_campaign_resumes_byte_identical(
    scheme, tmp_path, reference_summary
):
    root = tmp_path / "victim"
    url = scheme + str(root)

    victim = _run_driver(url)
    # Kill as soon as the store shows first results on disk -- early
    # enough that real work (and real appends) remain outstanding.
    results = root / (
        "results.jsonl" if scheme == "jsonl:" else "results.sqlite"
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and victim.poll() is None:
        if results.exists() and results.stat().st_size > 0:
            break
        time.sleep(0.01)
    if victim.poll() is None:
        time.sleep(0.05)  # land inside the next slice, not at a seam
        victim.send_signal(signal.SIGKILL)
    out, _ = victim.communicate(timeout=60)
    assert "Traceback" not in out, out

    finisher = _run_driver(url)
    out, _ = finisher.communicate(timeout=300)
    assert finisher.returncode == 0, out
    assert "COMPLETE" in out

    assert (root / "summary.json").read_bytes() == reference_summary
    summary = json.loads((root / "summary.json").read_text())
    assert summary["cells"] == N_CELLS and summary["errors"] == 0


def test_torn_results_tail_quarantined_on_resume(
    tmp_path, reference_summary
):
    """A real torn tail (what SIGKILL mid-append leaves): resume must
    quarantine it, re-evaluate the lost cell, and still converge."""
    cells = generate_scenarios(N_CELLS, seed=SEED)
    root = tmp_path / "torn"
    run_campaign(cells[:8], store=root)
    results = JsonlResultStore(root).results_path
    whole = results.read_text().splitlines()
    # Tear the final record in half, exactly like an interrupted write.
    results.write_text(
        "\n".join(whole[:-1]) + "\n" + whole[-1][: len(whole[-1]) // 2]
    )

    report = run_campaign(cells, store=root, resume=True)
    assert report.clean
    assert report.quarantined == 1
    assert report.evaluated == N_CELLS - 7  # the torn cell re-ran
    assert (root / "summary.json").read_bytes() == reference_summary
    assert (root / "quarantine.jsonl").exists()


def test_corrupt_summary_regenerated_on_resume(tmp_path, reference_summary):
    """summary.json is derived state: a truncated one (power cut during
    a non-fsync'd write on an old store) is simply rewritten."""
    cells = generate_scenarios(N_CELLS, seed=SEED)
    root = tmp_path / "sumcut"
    run_campaign(cells, store=root)
    summary_path = root / "summary.json"
    summary_path.write_bytes(summary_path.read_bytes()[:37])

    report = run_campaign(cells, store=root, resume=True)
    assert report.clean and report.skipped == N_CELLS
    assert summary_path.read_bytes() == reference_summary


def test_append_after_torn_tail_never_eats_a_record(tmp_path):
    """The store-level regression behind the quarantine story: a fresh
    append after a torn tail must start on its own line, or the torn
    residue silently swallows the first new record."""
    store = JsonlResultStore(tmp_path / "tail")
    store.append_many([{"key": "a", "sound": True}])
    with store.results_path.open("a") as fh:
        fh.write('{"key": "half')  # no newline: a torn tail
    store.append_many([{"key": "b", "sound": True}])
    loaded = store.load()
    assert set(loaded) == {"a", "b"}
    assert store.quarantined == 1


def test_open_store_autodetects_after_crash(tmp_path):
    """Resume never needs the URL re-spelled: a bare path reopens the
    backend the crashed run was using."""
    root = tmp_path / "auto"
    run_campaign(
        generate_scenarios(4, seed=SEED), store="sqlite:" + str(root)
    )
    assert open_store(root).kind == "sqlite"
