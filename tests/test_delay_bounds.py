"""Section-IV delay bounds: Lemma 1, Theorems 1/2/5/6, Remark 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delay_bounds import (
    improvement_ratio_heterogeneous,
    improvement_ratio_homogeneous,
    lemma1_regulator_delay,
    reduced_sigma_star,
    remark1_wdb_heterogeneous,
    remark1_wdb_homogeneous,
    theorem1_wdb_heterogeneous,
    theorem2_wdb_homogeneous,
    theorem5_band,
    theorem5_ratio_intermediate,
    theorem5_ratio_lower_bound,
)
from repro.core.threshold import homogeneous_threshold


class TestLemma1:
    def test_conformant_input(self):
        # sigma* <= sigma: only the 2 lambda sigma / rho term remains.
        d = lemma1_regulator_delay(sigma_star=0.5, sigma=1.0, rho=0.25)
        lam = 1 / 0.75
        assert d == pytest.approx(2 * lam * 1.0 / 0.25)

    def test_excess_burst_term(self):
        d = lemma1_regulator_delay(sigma_star=2.0, sigma=1.0, rho=0.5)
        assert d == pytest.approx(1.0 / 0.5 + 2 * 2.0 * 1.0 / 0.5)

    def test_custom_lambda(self):
        d = lemma1_regulator_delay(0.0, 1.0, 0.5, lam=4.0)
        assert d == pytest.approx(2 * 4.0 * 1.0 / 0.5)


class TestReducedSigmaStar:
    def test_equalises_regulator_periods(self):
        """The whole point of sigma_i*: every flow shares one period."""
        sigmas = [0.2, 0.05, 0.4]
        rhos = [0.1, 0.3, 0.2]
        stars = reduced_sigma_star(sigmas, rhos)
        periods = [
            s / (r * (1 - r)) for s, r in zip(stars, rhos)
        ]
        assert all(p == pytest.approx(periods[0]) for p in periods)

    def test_never_exceeds_original_sigma(self):
        sigmas = [0.2, 0.05, 0.4]
        rhos = [0.1, 0.3, 0.2]
        for s, s_star in zip(sigmas, reduced_sigma_star(sigmas, rhos)):
            assert s_star <= s + 1e-12

    def test_homogeneous_identity(self):
        stars = reduced_sigma_star([0.1] * 3, [0.2] * 3)
        assert all(s == pytest.approx(0.1) for s in stars)


class TestTheorem2:
    def test_formula(self):
        k, sigma, rho = 3, 0.1, 0.2
        lam = 1 / 0.8
        expected = 3 * 0.1 / 0.8 + 2 * lam * 0.1 / 0.2
        assert theorem2_wdb_homogeneous(k, sigma, rho) == pytest.approx(expected)

    def test_sigma0_excess(self):
        base = theorem2_wdb_homogeneous(3, 0.1, 0.2)
        with_excess = theorem2_wdb_homogeneous(3, 0.1, 0.2, sigma0=0.15)
        assert with_excess == pytest.approx(base + 0.05 / 0.2)

    def test_unstable_is_inf(self):
        assert theorem2_wdb_homogeneous(3, 0.1, 0.4) == float("inf")


class TestTheorem1:
    def test_homogeneous_reduction(self):
        """With identical flows Theorem 1 reduces to Theorem 2."""
        k, sigma, rho = 4, 0.1, 0.15
        t1 = theorem1_wdb_heterogeneous([sigma] * k, [rho] * k)
        t2 = theorem2_wdb_homogeneous(k, sigma, rho)
        assert t1 == pytest.approx(t2)

    def test_unstable_is_inf(self):
        assert theorem1_wdb_heterogeneous([0.1, 0.1], [0.6, 0.6]) == float("inf")

    def test_capacity_normalisation(self):
        a = theorem1_wdb_heterogeneous([0.2, 0.1], [0.2, 0.3])
        b = theorem1_wdb_heterogeneous([0.4, 0.2], [0.4, 0.6], capacity=2.0)
        assert a == pytest.approx(b)


class TestRemark1:
    def test_forms_agree(self):
        het = remark1_wdb_heterogeneous([0.1] * 3, [0.2] * 3)
        hom = remark1_wdb_homogeneous(3, 0.1, 0.2)
        assert het == pytest.approx(hom) == pytest.approx(0.3 / 0.4)


class TestImprovementRatio:
    def test_crossing_at_threshold(self):
        """ratio < 1 below rho*, > 1 above (Theorems 3/4 restated)."""
        k = 3
        rho_star = homogeneous_threshold(k)
        below = improvement_ratio_homogeneous(k, 0.1, rho_star * 0.8)
        above = improvement_ratio_homogeneous(k, 0.1, rho_star * 1.1)
        assert below < 1.0 < above

    def test_ratio_independent_of_sigma_homogeneous(self):
        """Both bounds scale linearly in sigma, so the ratio cancels it."""
        k, rho = 3, 0.3
        r1 = improvement_ratio_homogeneous(k, 0.01, rho)
        r2 = improvement_ratio_homogeneous(k, 10.0, rho)
        assert r1 == pytest.approx(r2)

    def test_heterogeneous_ratio_positive(self):
        r = improvement_ratio_heterogeneous([0.1, 0.2, 0.05], [0.3, 0.25, 0.2])
        assert r > 0


class TestTheorem5:
    def test_band_edges(self):
        lo, hi = theorem5_band(3, 1)
        assert lo == pytest.approx(1 / 3 - 1 / 9)
        assert hi == pytest.approx(1 / 3)

    def test_ratio_exceeds_lower_bound_in_band(self):
        """Theorem 6: Dg/D^g >= O(K^n) inside the heavy-load band."""
        for k in (2, 3, 5, 8):
            for n in (1, 2):
                lo, hi = theorem5_band(k, n)
                rho = (lo + hi) / 2
                ratio = improvement_ratio_homogeneous(k, 0.05, rho)
                assert ratio >= theorem5_ratio_lower_bound(k, n), (k, n)

    def test_lower_bound_grows_like_k_to_n(self):
        b1 = theorem5_ratio_lower_bound(10, 1)
        b2 = theorem5_ratio_lower_bound(10, 2)
        assert b2 / b1 == pytest.approx(10.0, rel=0.15)

    def test_intermediate_bound_domain(self):
        with pytest.raises(ValueError):
            theorem5_ratio_intermediate(3, 0.5)
        assert theorem5_ratio_intermediate(3, 0.3) > 0

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=3),
        st.floats(min_value=0.0, max_value=1.0, exclude_min=True, exclude_max=True),
    )
    @settings(max_examples=80, deadline=None)
    def test_ratio_dominates_intermediate_bound(self, k, n, frac):
        """The proof chain: exact ratio >= intermediate >= final bound."""
        lo, hi = theorem5_band(k, n)
        rho = lo + frac * (hi - lo) * 0.999
        if rho <= 0 or rho >= 1 / k:
            return
        exact = improvement_ratio_homogeneous(k, 0.05, rho)
        inter = theorem5_ratio_intermediate(k, rho)
        assert exact >= inter * 0.99
