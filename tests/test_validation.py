"""Argument-checking helpers."""

import math

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_same_length,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive(math.nan, "x")
        with pytest.raises(ValueError):
            check_positive(math.inf, "x")

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")
        with pytest.raises(TypeError):
            check_positive(True, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, v):
        assert check_probability(v, "p") == v

    @pytest.mark.parametrize("v", [-0.1, 1.1])
    def test_rejects_outside(self, v):
        with pytest.raises(ValueError):
            check_probability(v, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive_low=False)
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", 1.0, 2.0, inclusive_high=False)

    def test_error_message_shows_interval(self):
        with pytest.raises(ValueError, match=r"\(1, 2\]"):
            check_in_range(5.0, "x", 1, 2, inclusive_low=False)


class TestIntChecks:
    def test_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(2.0, "n")
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_non_negative_int(self):
        assert check_non_negative_int(0, "n") == 0
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "n")


def test_same_length():
    check_same_length("a", [1, 2], "b", [3, 4])
    with pytest.raises(ValueError, match="same length"):
        check_same_length("a", [1], "b", [3, 4])
